//! The Zeiner–Schwarz–Schmid restricted adversaries: trees with exactly
//! `k` leaves or exactly `k` inner nodes per round stay linear with slope
//! governed by `k` (the two restricted rows of Figure 1).
//!
//! ```text
//! cargo run --release --example restricted_trees
//! ```

use treecast::adversary::{ExactInnerPool, ExactLeafPool, GreedyAdversary, SurvivalObjective};
use treecast::core::{bounds, simulate, SimulationConfig};

fn main() {
    println!("restricted adversaries: broadcast time under exactly-k trees\n");
    println!(
        "{:>3} {:>4} {:>10} {:>10} {:>8} {:>8}",
        "k", "n", "k-leaves", "k-inner", "k·n", "path n−1"
    );
    for k in [2usize, 3, 4] {
        for n in [8usize, 16, 32, 64] {
            if k >= n {
                continue;
            }
            let leaves = simulate(
                n,
                &mut GreedyAdversary::new(ExactLeafPool::new(k, 8, 1), SurvivalObjective),
                SimulationConfig::for_n(n),
            )
            .broadcast_time_or_panic();
            let inner = simulate(
                n,
                &mut GreedyAdversary::new(ExactInnerPool::new(k, 8, 1), SurvivalObjective),
                SimulationConfig::for_n(n),
            )
            .broadcast_time_or_panic();
            println!(
                "{:>3} {:>4} {:>10} {:>10} {:>8} {:>8}",
                k,
                n,
                leaves,
                inner,
                bounds::upper_k_leaves(k as u64, n as u64),
                n - 1
            );
        }
        println!();
    }
    println!(
        "Both families grow linearly in n for fixed k and sit under the k·n\n\
         reference curve — the O(kn) behaviour Figure 1 quotes from ZSS."
    );
}
