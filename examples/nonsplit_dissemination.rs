//! The nonsplit-graph story behind the previous best bound: products of
//! `n − 1` rooted trees are nonsplit (CFN lemma), and nonsplit rounds
//! disseminate in `O(log log n)` (FNW) — together giving the old
//! `O(n log log n)` column of Figure 1.
//!
//! ```text
//! cargo run --release --example nonsplit_dissemination
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use treecast::core::bounds;
use treecast::nonsplit::{
    broadcast_time_nonsplit, cfn_product_is_nonsplit, random_tree_sequence, split_path_power,
    GreedyNonsplit, GridNonsplit, RandomNonsplit,
};

fn main() {
    let mut rng = StdRng::seed_from_u64(2022);

    println!("== CFN composition lemma ==");
    for n in [4usize, 8, 16, 32] {
        let trees = random_tree_sequence(n, n - 1, &mut rng);
        let nonsplit = cfn_product_is_nonsplit(&trees);
        let tight = !split_path_power(n).is_nonsplit();
        println!(
            "n = {n:>3}: product of n−1 random trees nonsplit: {nonsplit};  \
             n−2 path powers still split: {tight}"
        );
        assert!(nonsplit && tight);
    }

    println!("\n== FNW dissemination (rounds until broadcast) ==");
    println!(
        "{:>5} {:>16} {:>16} {:>12} {:>18}",
        "n", "random nonsplit", "greedy nonsplit", "sqrt-grid", "2·loglog n + 2 ref"
    );
    for n in [8usize, 32, 128, 512, 2048] {
        let t_rand = broadcast_time_nonsplit(n, &mut RandomNonsplit, 1_000, &mut rng)
            .expect("random nonsplit rounds broadcast");
        let t_greedy = broadcast_time_nonsplit(n, &mut GreedyNonsplit::default(), 1_000, &mut rng)
            .expect("greedy nonsplit rounds broadcast");
        let t_grid = broadcast_time_nonsplit(n, &mut GridNonsplit, 1_000, &mut rng)
            .expect("grid rounds broadcast");
        println!(
            "{:>5} {:>16} {:>16} {:>12} {:>18.1}",
            n,
            t_rand,
            t_greedy,
            t_grid,
            bounds::fnw_reference(n as u64, 2.0) / n as f64
        );
    }
    println!(
        "\nDissemination grows doubly-logarithmically — multiply by the n − 1\n\
         tree-rounds per nonsplit round and you recover the previous best\n\
         O(n log log n) upper bound that Theorem 3.1 improves to linear."
    );
}
