//! The adversary tournament: every strategy races on a grid of network
//! sizes; the table shows who delays broadcast longest.
//!
//! ```text
//! cargo run --release --example adversary_tournament
//! ```

use treecast::adversary::{
    best_per_n, render_table, run_tournament, standard_lineup, TournamentConfig,
};

fn main() {
    let ns = [6usize, 10, 16, 24];
    let lineup = standard_lineup();
    println!(
        "racing {} adversaries on n ∈ {:?} (parallel across {} jobs)…\n",
        lineup.len(),
        ns,
        lineup.len() * ns.len()
    );
    let rows = run_tournament(&lineup, &ns, TournamentConfig::default());
    println!("{}", render_table(&rows));

    println!("best delay per n:");
    for (n, t, who) in best_per_n(&rows) {
        println!("  n = {n:>3}: {t:>4} rounds by {who}");
    }
    println!(
        "\nReading guide: static-star loses instantly (1 round); the static\n\
         path sets the n − 1 baseline; random play is far weaker than the\n\
         baseline; only the arborescence-based survival strategies push\n\
         decisively beyond it toward the ZSS lower bound."
    );
}
