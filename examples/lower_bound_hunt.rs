//! The lower-bound hunt: how long can an adversary really delay?
//!
//! Runs the exact solver on small networks (ground truth), then sends the
//! searched adversaries after the `⌈(3n−1)/2⌉ − 2` bound on larger ones.
//!
//! ```text
//! cargo run --release --example lower_bound_hunt
//! ```

use treecast::adversary::{beam_search_plan, ArborescencePool, BeamOptions, SurvivalAdversary};
use treecast::core::{bounds, simulate, SequenceSource, SimulationConfig};
use treecast::solver;

fn main() {
    println!("== exact ground truth (state-space solver) ==");
    println!(
        "{:>3} {:>9} {:>8} {:>8}  {}",
        "n", "t* exact", "LB", "UB", "LB tight?"
    );
    for n in 2..=5usize {
        let r = solver::solve(n).expect("small n solves");
        let lb = bounds::lower_bound(n as u64);
        println!(
            "{:>3} {:>9} {:>8} {:>8}  {}",
            n,
            r.t_star,
            lb,
            bounds::upper_bound(n as u64),
            if r.t_star == lb {
                "yes"
            } else {
                "NO — new bound!"
            }
        );
        // The optimal schedule replays through the public engine.
        let replayed = solver::verify_schedule(n, &r.schedule);
        assert_eq!(replayed, r.t_star);
    }
    println!("(n = 6 takes ~30 s: run `experiments exact --full` for it)");

    println!("\n== searched adversaries vs the ZSS bound ==");
    println!(
        "{:>3} {:>7} {:>9} {:>9} {:>8} {:>8}",
        "n", "path", "survival", "beam-32", "LB", "UB"
    );
    for n in [8usize, 12, 16, 24, 32] {
        let path = (n - 1) as u64;
        let survival = simulate(
            n,
            &mut SurvivalAdversary::default(),
            SimulationConfig::for_n(n),
        )
        .broadcast_time_or_panic();
        let plan = beam_search_plan(
            n,
            &mut ArborescencePool::new(4),
            BeamOptions::for_n(n).with_width(32),
        );
        let beam = simulate(
            n,
            &mut SequenceSource::new(plan),
            SimulationConfig::for_n(n),
        )
        .broadcast_time_or_panic();
        println!(
            "{:>3} {:>7} {:>9} {:>9} {:>8} {:>8}",
            n,
            path,
            survival,
            beam,
            bounds::lower_bound(n as u64),
            bounds::upper_bound(n as u64)
        );
    }
    println!(
        "\nEvery run is a *certified achievable* lower bound on t*(T_n): the\n\
         schedule replays deterministically through the simulation engine."
    );
}
