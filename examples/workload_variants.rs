//! The companion paper's workload variants, measured against the bounds
//! recorded in `treecast::core::bounds`: k-broadcast and gossip under the
//! rooted-tree adversary (where only k = 1 has a finite worst case) and
//! under tighter c-nonsplit adversaries (where the whole lattice
//! completes, faster as c grows).
//!
//! ```text
//! cargo run --release --example workload_variants
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use treecast::adversary::{GreedyAdversary, MinDisseminated, StructuredPool};
use treecast::core::{
    bounds, run_workload, Gossip, KBroadcast, SimulationConfig, StaticSource, Workload,
};
use treecast::nonsplit::{workload_time_nonsplit, PiecewiseNonsplit};
use treecast::trees::generators;

fn main() {
    println!("== k-broadcast under the rooted-tree adversary ==");
    println!("(worst-case-searched: greedy descent under min-disseminated)\n");
    println!(
        "{:>4} {:>4} {:>10} {:>8} {:>12} {:>10}",
        "n", "k", "measured", "LB ZSS", "UB", "verdict"
    );
    for n in [8usize, 16, 32] {
        for k in [1usize, 2, n / 2] {
            let mut adv = GreedyAdversary::new(StructuredPool::new(), MinDisseminated::default());
            let report = run_workload(n, &mut adv, &KBroadcast::new(k), SimulationConfig::for_n(n));
            let (nu, ku) = (n as u64, k as u64);
            let measured = report
                .completion_time
                .map(|t| t.to_string())
                .unwrap_or_else(|| ">cap".into());
            let ub = if bounds::tree_k_broadcast_diverges(ku) {
                "unbounded".to_string()
            } else {
                bounds::upper_bound(nu).to_string()
            };
            // Consistency with the recorded bounds: k = 1 must land inside
            // the Theorem 3.1 sandwich's achievable half; k ≥ 2 worst-case
            // searches are expected to hit the cap (the static path is an
            // explicit infinite witness).
            let consistent = match report.completion_time {
                Some(t) => ku > 1 || t <= bounds::upper_bound(nu),
                None => bounds::tree_k_broadcast_diverges(ku),
            };
            assert!(consistent, "n = {n}, k = {k} inconsistent with bounds");
            println!(
                "{:>4} {:>4} {:>10} {:>8} {:>12} {:>10}",
                n,
                k,
                measured,
                bounds::k_broadcast_lower(nu, ku),
                ub,
                "ok"
            );
        }
    }

    // The diverging witness, explicitly.
    let n = 8;
    let mut path = StaticSource::new(generators::path(n));
    let stuck = run_workload(
        n,
        &mut path,
        &KBroadcast::new(2),
        SimulationConfig::for_n(n).with_max_rounds(10_000),
    );
    println!(
        "\nstatic path, k = 2, n = {n}: {} disseminated token(s) after {} rounds — \
         the worst case is unbounded for every k ≥ 2",
        stuck.disseminated, stuck.rounds
    );

    println!("\n== the same lattice under c-nonsplit adversaries ==");
    println!("(every workload completes; tighter c ⇒ faster)\n");
    println!(
        "{:>4} {:>18} {:>6} {:>6} {:>6} {:>20}",
        "n", "workload", "c=2", "c=4", "c=8", "FNW 2loglog n + 2 ref"
    );
    for n in [16usize, 64, 256] {
        let workloads: Vec<Box<dyn Workload>> = vec![
            Box::new(KBroadcast::new(1)),
            Box::new(KBroadcast::new(n / 2)),
            Box::new(Gossip),
        ];
        for workload in &workloads {
            let mut times = Vec::new();
            for c in [2usize, 4, 8] {
                let mut rng = StdRng::seed_from_u64(2211_10151);
                let t = workload_time_nonsplit(
                    n,
                    workload.as_ref(),
                    &mut PiecewiseNonsplit::new(c),
                    10_000,
                    &mut rng,
                )
                .expect("c-nonsplit rounds complete every workload");
                times.push(t);
            }
            println!(
                "{:>4} {:>18} {:>6} {:>6} {:>6} {:>20.1}",
                n,
                workload.name(),
                times[0],
                times[1],
                times[2],
                bounds::fnw_reference(n as u64, 2.0) / n as f64
            );
        }
    }
}
