//! Quickstart: the model in one screen.
//!
//! Builds the Section 2 intuition — the static path takes exactly `n − 1`
//! rounds, a star floods instantly, and Theorem 3.1's window brackets
//! everything an adversary can do.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use treecast::core::{bounds, simulate, SimulationConfig, StaticSource};
use treecast::trees::generators;

fn main() {
    let n = 12;
    println!("broadcast in dynamic rooted trees, n = {n} processes\n");

    // A static path: information crawls one hop per round.
    let mut path = StaticSource::new(generators::path(n));
    let report = simulate(n, &mut path, SimulationConfig::for_n(n));
    println!(
        "static path      : broadcast after {:>3} rounds (expected n − 1 = {})",
        report.broadcast_time.expect("path always broadcasts"),
        n - 1
    );

    // A static star: the center reaches everyone in one round.
    let mut star = StaticSource::new(generators::star(n));
    let report = simulate(n, &mut star, SimulationConfig::for_n(n));
    println!(
        "static star      : broadcast after {:>3} rounds",
        report.broadcast_time.expect("star broadcasts instantly")
    );

    // The theorem's window for the worst case over ALL tree sequences.
    println!(
        "\nTheorem 3.1      : {} ≤ t*(T_{n}) ≤ {}",
        bounds::lower_bound(n as u64),
        bounds::upper_bound(n as u64),
    );
    println!(
        "prior bounds     : n² = {}, n·log n = {}, 2n·loglog n + 2n = {}",
        bounds::upper_trivial(n as u64),
        bounds::upper_n_log_n(n as u64),
        bounds::upper_n_loglog_n(n as u64),
    );

    // A strong adversary lands inside the window, above the path.
    let mut adversary = treecast::adversary::SurvivalAdversary::default();
    let report = simulate(n, &mut adversary, SimulationConfig::for_n(n));
    println!(
        "\nsurvival greedy  : broadcast after {:>3} rounds — the adversary \
         buys {} extra rounds over the path",
        report.broadcast_time.expect("within theorem bound"),
        report.broadcast_time.unwrap() as i64 - (n as i64 - 1),
    );
}
