//! The fault/scenario layer in action: broadcast and gossip under token
//! loss, node dropout, and dynamic root reassignment — every run replayed
//! bit-identically from its recorded fault log.
//!
//! ```text
//! cargo run --release --example fault_scenarios
//! ```

use treecast::adversary::{
    beam_search_workload_plan, BeamOptions, MinDisseminated, StructuredPool,
};
use treecast::core::{
    run_workload_faulty, Broadcast, BroadcastState, FaultModel, FaultSchedule, Gossip, NoFaults,
    RotatingRoot, SeededFaults, SequenceSource, SimulationConfig, StaticSource, Workload,
};
use treecast::trees::generators;

fn main() {
    let n = 16;
    let cfg = SimulationConfig::for_n(n);

    println!("== fault scenarios on the static path (broadcast) ==\n");
    println!(
        "{:>42} {:>8} {:>14} {:>10}",
        "faults", "rounds", "faulty rounds", "replay"
    );
    let models: Vec<Box<dyn FaultModel>> = vec![
        Box::new(NoFaults),
        Box::new(SeededFaults::new(1).with_token_loss(15)),
        Box::new(SeededFaults::new(1).with_dropout(10, 3)),
        Box::new(RotatingRoot::new(3)),
        Box::new(
            SeededFaults::new(1)
                .with_token_loss(10)
                .with_dropout(10, 2)
                .with_root_changes(20),
        ),
    ];
    for mut model in models {
        let name = model.name();
        let run = |faults: &mut dyn FaultModel| {
            let mut src = StaticSource::new(generators::path(n));
            run_workload_faulty(n, &mut src, &Broadcast, faults, cfg)
        };
        let report = run(model.as_mut());
        // Replay the recorded log: the outcome must be bit-identical.
        let mut replay = FaultSchedule::replay(&report.fault_log);
        let rerun = run(&mut replay);
        let identical =
            rerun.completion_time == report.completion_time && rerun.fault_log == report.fault_log;
        assert!(identical, "replay diverged under {name}");
        println!(
            "{:>42} {:>8} {:>14} {:>10}",
            name,
            report
                .completion_time
                .map(|t| t.to_string())
                .unwrap_or_else(|| ">cap".into()),
            report.fault_log.iter().filter(|f| !f.is_quiet()).count(),
            "identical"
        );
    }

    println!("\n== workload-aware beam vs faults (gossip, rotating stars) ==\n");
    // An offline gossip-delaying beam plan, then the same schedule under a
    // lossy network: faults can only make the adversary's life easier.
    let mut options = BeamOptions::for_n(n).with_width(4);
    options.max_rounds = cfg.max_rounds;
    let plan = beam_search_workload_plan(
        &BroadcastState::new(n),
        &mut StructuredPool::new(),
        &MinDisseminated::default(),
        &Gossip,
        options,
    );
    let mut src = SequenceSource::new(plan.clone());
    let clean = run_workload_faulty(n, &mut src, &Gossip, &mut NoFaults, cfg);
    let mut src = SequenceSource::new(plan);
    let mut lossy = SeededFaults::new(7).with_token_loss(20);
    let faulty = run_workload_faulty(n, &mut src, &Gossip, &mut lossy, cfg);
    let show = |r: &treecast::core::WorkloadReport| {
        r.completion_time
            .map(|t| t.to_string())
            .unwrap_or_else(|| ">cap".into())
    };
    println!("  beam plan, fault-free : rounds = {}", show(&clean));
    println!("  beam plan, 20% loss   : rounds = {}", show(&faulty));
    assert!(
        faulty.completion_time.unwrap_or(u64::MAX) >= clean.completion_time.unwrap_or(u64::MAX),
        "token loss must never speed gossip up"
    );
    println!(
        "\nAll scenario replays identical; {} runs green.",
        Gossip.name()
    );
}
