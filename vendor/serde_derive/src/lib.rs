//! Offline stand-in for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` for the shapes the treecast workspace uses —
//! non-generic structs with named fields, and enums of unit / newtype /
//! struct variants.
//!
//! The macros target the vendored `serde` shim's `Value` model: a derive
//! only needs the *names* of fields and variants (field types are reached
//! through trait method calls, so they are never parsed). That keeps the
//! implementation at a hand-rolled `TokenStream` walk — no `syn`, no
//! `quote`, nothing to vendor transitively. Shapes outside the supported
//! subset fail loudly at expansion time rather than mis-serializing.
//!
//! The JSON representation matches real serde's externally-tagged
//! default: a unit variant serializes as its name, a newtype variant as
//! `{"Name": value}`, a struct variant as `{"Name": {fields…}}`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What a field or variant list boils down to: names only.
struct Parsed {
    name: String,
    body: Body,
}

enum Body {
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Newtype,
    Struct(Vec<String>),
}

/// Derives the shim's `serde::Serialize` (a `to_value` impl).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    let name = &parsed.name;
    let body = match &parsed.body {
        Body::Struct(fields) => {
            let pairs = fields
                .iter()
                .map(|f| format!("(\"{f}\", ::serde::Serialize::to_value(&self.{f}))"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::object([{pairs}])")
        }
        Body::Enum(variants) => {
            let arms = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => {
                            format!("{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),")
                        }
                        VariantKind::Newtype => format!(
                            "{name}::{vn}(f0) => ::serde::Value::object(\
                             [(\"{vn}\", ::serde::Serialize::to_value(f0))]),"
                        ),
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(", ");
                            let pairs = fields
                                .iter()
                                .map(|f| format!("(\"{f}\", ::serde::Serialize::to_value({f}))"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::object(\
                                 [(\"{vn}\", ::serde::Value::object([{pairs}]))]),"
                            )
                        }
                    }
                })
                .collect::<Vec<_>>()
                .join("\n            ");
            format!("match self {{\n            {arms}\n        }}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n        {body}\n    }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive: generated Serialize impl must parse")
}

/// Derives the shim's `serde::Deserialize` (a `from_value` impl).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    let name = &parsed.name;
    let body = match &parsed.body {
        Body::Struct(fields) => {
            let inits = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(value.field(\"{f}\")?)?,"))
                .collect::<Vec<_>>()
                .join("\n            ");
            format!("Ok({name} {{\n            {inits}\n        }})")
        }
        Body::Enum(variants) => {
            let unit_arms = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
                .collect::<Vec<_>>()
                .join("\n                ");
            let tagged_arms = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Newtype => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(inner)?)),"
                        )),
                        VariantKind::Struct(fields) => {
                            let inits = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         inner.field(\"{f}\")?)?,"
                                    )
                                })
                                .collect::<Vec<_>>()
                                .join(" ");
                            Some(format!("\"{vn}\" => Ok({name}::{vn} {{ {inits} }}),"))
                        }
                    }
                })
                .collect::<Vec<_>>()
                .join("\n                ");
            format!(
                "if let ::serde::Value::Str(tag) = value {{\n\
                     return match tag.as_str() {{\n                {unit_arms}\n\
                         other => Err(::serde::Error::msg(format!(\n\
                             \"unknown unit variant `{{other}}` of `{name}`\"))),\n\
                     }};\n\
                 }}\n\
                 let (tag, inner) = value.variant()?;\n\
                 match tag {{\n                {tagged_arms}\n\
                     other => Err(::serde::Error::msg(format!(\n\
                         \"unknown variant `{{other}}` of `{name}`\"))),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) \
                -> ::core::result::Result<Self, ::serde::Error> {{\n        {body}\n    }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive: generated Deserialize impl must parse")
}

/// Walks the item's tokens down to names: `struct Name { fields… }` or
/// `enum Name { variants… }`. Panics (= a compile error at the derive
/// site) on generics, tuple structs, and multi-field tuple variants.
fn parse(input: TokenStream) -> Parsed {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got `{other}`"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected a type name, got `{other}`"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic types are not supported (type `{name}`)");
    }
    let group = match &tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => panic!("serde_derive: `{name}` must have a braced body (no tuple/unit structs)"),
    };
    let body = match keyword.as_str() {
        "struct" => Body::Struct(parse_named_fields(group)),
        "enum" => Body::Enum(parse_variants(group)),
        other => panic!("serde_derive: unsupported item kind `{other}`"),
    };
    Parsed { name, body }
}

/// `#[attr…]` runs and `pub` / `pub(…)` markers, skipped in place.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` and the bracketed attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // the `(crate)` part of `pub(crate)`
                }
            }
            _ => return,
        }
    }
}

/// Field names of a `{ name: Type, … }` body; types are consumed by
/// tracking `<`/`>` depth until a top-level comma.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let field = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected a field name, got `{other}`"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field `{field}`, got `{other}`"),
        }
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(field);
    }
    fields
}

/// Variant names and shapes of an enum body.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected a variant name, got `{other}`"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                VariantKind::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let top_commas = {
                    let mut depth = 0i32;
                    let mut commas = 0usize;
                    let mut trailing = false;
                    for (j, t) in inner.iter().enumerate() {
                        match t {
                            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                                commas += 1;
                                trailing = j + 1 == inner.len();
                            }
                            _ => {}
                        }
                    }
                    commas - usize::from(trailing)
                };
                if inner.is_empty() || top_commas > 0 {
                    panic!(
                        "serde_derive: variant `{name}` must be unit, newtype, \
                         or struct-like (multi-field tuples unsupported)"
                    );
                }
                i += 1;
                VariantKind::Newtype
            }
            _ => VariantKind::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("serde_derive: explicit discriminants are not supported (variant `{name}`)");
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}
