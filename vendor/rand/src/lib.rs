//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The treecast build environment has no network access to crates.io, so
//! this vendored shim provides the exact API subset the workspace uses —
//! [`Rng`], [`SeedableRng`], [`rngs::StdRng`] and [`seq::SliceRandom`] —
//! with the same signatures as `rand 0.8`. Swapping the real crate back in
//! is a one-line `Cargo.toml` change; no source edits are required.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256\*\* seeded through
//! SplitMix64, so streams are deterministic per seed (which is all the
//! workspace's seeded tests rely on) but do **not** match the byte streams
//! of the real `rand::rngs::StdRng` (ChaCha12).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A random number generator: the subset of `rand::Rng` used by treecast.
///
/// All provided methods are derived from [`RngCore::next_u64`]. The trait
/// is usable through `&mut R` and `R: Rng + ?Sized` bounds exactly like the
/// real crate.
pub trait Rng: RngCore {
    /// Samples a uniform value from the given range.
    ///
    /// Supports `a..b` and `a..=b` over the integer types and `a..b` over
    /// `f64`, matching the call sites in this workspace.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(&mut bits_fn(self))
    }

    /// Samples a value of any [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(&mut bits_fn(self))
    }

    /// Returns `true` with probability `numerator / denominator`.
    ///
    /// # Panics
    ///
    /// Panics if `denominator == 0` or `numerator > denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "gen_ratio: zero denominator");
        assert!(
            numerator <= denominator,
            "gen_ratio: numerator {numerator} > denominator {denominator}"
        );
        (self.next_u64() % u64::from(denominator)) < u64::from(numerator)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The core source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 bits of the stream (the high half of a word).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed. Identical seeds yield
    /// identical streams.
    fn seed_from_u64(seed: u64) -> Self;
}

// `gen_range`/`gen` need to draw words from an `?Sized` Rng through a
// sized handle; a closure over `next_u64` is that handle.
fn bits_fn<R: RngCore + ?Sized>(rng: &mut R) -> impl FnMut() -> u64 + '_ {
    move || rng.next_u64()
}

fn unit_f64(word: u64) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable from the "standard" distribution via [`Rng::gen`].
pub trait Standard {
    /// Draws one value using the supplied word source.
    fn sample(bits: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample(bits: &mut dyn FnMut() -> u64) -> Self {
                bits() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample(bits: &mut dyn FnMut() -> u64) -> Self {
        bits() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample(bits: &mut dyn FnMut() -> u64) -> Self {
        unit_f64(bits())
    }
}

/// Marker for element types [`Rng::gen_range`] can produce.
pub trait SampleUniform {}

/// Range shapes [`Rng::gen_range`] accepts for an element type `T`.
pub trait SampleRange<T> {
    /// Samples a uniform element of the range using the supplied word
    /// source.
    fn sample_from(self, bits: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {}

        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, bits: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (bits() as u128 % span) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, bits: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (bits() as u128 % span) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

impl SampleUniform for f64 {}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from(self, bits: &mut dyn FnMut() -> u64) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let v = self.start + unit_f64(bits()) * (self.end - self.start);
        // `start + (1 - 2^-53) * span` can round up to exactly `end`;
        // keep the half-open contract of rand 0.8.
        if v < self.end {
            v
        } else {
            self.end.next_down().max(self.start)
        }
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256\*\*.
    ///
    /// Deterministic per seed; not a drop-in bitstream match for the real
    /// `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the recommended xoshiro seeding.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related extensions.

    use super::Rng;

    /// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1u8..=6);
            assert!((1..=6).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_ratio_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| rng.gen_ratio(100, 100)));
        assert!((0..100).all(|_| !rng.gen_ratio(0, 100)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn works_through_unsized_bounds() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> usize {
            rng.gen_range(0..10)
        }
        let mut rng = StdRng::seed_from_u64(2);
        assert!(draw(&mut rng) < 10);
    }
}
