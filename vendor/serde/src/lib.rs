//! Offline stand-in for `serde` + `serde_json`: exactly the API subset
//! the treecast workspace uses, so `#[derive(serde::Serialize, serde::Deserialize)]`
//! and JSON round-trips work without a registry.
//!
//! Unlike real serde's visitor architecture, this shim routes everything
//! through one dynamic [`Value`] tree — `Serialize` renders into it,
//! `Deserialize` reads from it, and [`json`] converts it to and from
//! text. Orders of magnitude less machinery, same observable behavior
//! for the shapes we derive (named-field structs; unit / newtype /
//! struct enum variants, externally tagged like serde's default). Swap
//! in the real crates by pointing the workspace dependency at a
//! registry version and replacing `serde::json::*` call sites with
//! `serde_json::*`.
//!
//! Integers ride an `i128`, so `u64` fingerprints and `i64` cells
//! round-trip exactly; `f64` uses Rust's shortest round-trip `Display`.

pub use serde_derive::{Deserialize as DeserializeDerive, Serialize as SerializeDerive};
// Expose the derives under the trait names, like real serde's
// `derive` feature: `#[derive(serde::Serialize)]` resolves to the macro
// in the macro namespace and to the trait in the type namespace.
pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// The dynamic data model every shimmed (de)serialization goes through.
///
/// Object fields keep insertion order (a `Vec`, not a map), so rendered
/// JSON is deterministic — which the bench baselines diff on.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also `None` and non-finite floats).
    Null,
    /// JSON booleans.
    Bool(bool),
    /// JSON integers; `i128` covers the full `u64` and `i64` ranges.
    Int(i128),
    /// JSON non-integer numbers.
    Float(f64),
    /// JSON strings.
    Str(String),
    /// JSON arrays.
    Array(Vec<Value>),
    /// JSON objects, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// An object from `(name, value)` pairs, in order.
    pub fn object<K: Into<String>, I: IntoIterator<Item = (K, Value)>>(pairs: I) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// The value of field `name` of an object.
    ///
    /// # Errors
    ///
    /// If `self` is not an object or has no such field.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(pairs) => pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::msg(format!("missing field `{name}`"))),
            other => Err(Error::msg(format!(
                "expected an object with field `{name}`, got {}",
                other.kind()
            ))),
        }
    }

    /// Destructures a single-key object — the externally-tagged enum
    /// encoding — into `(tag, inner)`.
    ///
    /// # Errors
    ///
    /// If `self` is not an object with exactly one field.
    pub fn variant(&self) -> Result<(&str, &Value), Error> {
        match self {
            Value::Object(pairs) if pairs.len() == 1 => Ok((pairs[0].0.as_str(), &pairs[0].1)),
            other => Err(Error::msg(format!(
                "expected a single-key variant object, got {}",
                other.kind()
            ))),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "a bool",
            Value::Int(_) => "an integer",
            Value::Float(_) => "a float",
            Value::Str(_) => "a string",
            Value::Array(_) => "an array",
            Value::Object(_) => "an object",
        }
    }
}

/// A (de)serialization failure, as one human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// An error carrying `message`.
    pub fn msg(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Renders `self` into the [`Value`] model. Derivable.
pub trait Serialize {
    /// The value-model rendering of `self`.
    fn to_value(&self) -> Value;
}

/// Reconstructs `Self` from the [`Value`] model. Derivable.
pub trait Deserialize: Sized {
    /// Parses `value` into `Self`.
    ///
    /// # Errors
    ///
    /// A message naming the first shape mismatch or missing field.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected a bool, got {}", other.kind()))),
        }
    }
}

macro_rules! int_impls {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                // Plain `as`: every supported integer type fits in i128
                // (usize/isize lack a `From` impl but are ≤ 64 bits here).
                Value::Int(*self as i128)
            }
        }

        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Int(i) => <$ty>::try_from(*i).map_err(|_| {
                        Error::msg(format!(
                            "integer {i} out of range for {}",
                            stringify!($ty)
                        ))
                    }),
                    other => Err(Error::msg(format!(
                        "expected an integer, got {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// usize/u64 ride i128 via From on every supported platform; u128 is not
// representable in this model and intentionally unsupported.
impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(f) => Ok(*f),
            // JSON cannot tell `2` from `2.0`; accept integers.
            Value::Int(i) => Ok(*i as f64),
            other => Err(Error::msg(format!(
                "expected a number, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!(
                "expected a string, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!(
                "expected an array, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

/// JSON text ↔ [`Value`] — the `serde_json` corner of the shim.
pub mod json {
    use super::{Deserialize, Error, Serialize, Value};
    use std::fmt::Write as _;

    /// Compact JSON of any [`Serialize`] value.
    pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
        let mut out = String::new();
        render(&value.to_value(), None, 0, &mut out);
        out
    }

    /// Pretty-printed (two-space indented) JSON.
    pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> String {
        let mut out = String::new();
        render(&value.to_value(), Some(2), 0, &mut out);
        out
    }

    /// Parses JSON text into any [`Deserialize`] type.
    ///
    /// # Errors
    ///
    /// A message with the byte offset of the first syntax error, or the
    /// [`Deserialize`] impl's shape mismatch.
    pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
        T::from_value(&value_from_str(text)?)
    }

    /// Parses JSON text into the raw [`Value`] model.
    ///
    /// # Errors
    ///
    /// A message with the byte offset of the first syntax error.
    pub fn value_from_str(text: &str) -> Result<Value, Error> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(Error::msg(format!("trailing input at byte {pos}")));
        }
        Ok(value)
    }

    fn render(value: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
        match value {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::Float(f) if f.is_finite() => {
                // `Display` omits the point for integral floats; keep the
                // token a float so it round-trips as one.
                let mut token = format!("{f}");
                if !token.contains(['.', 'e', 'E']) {
                    token.push_str(".0");
                }
                out.push_str(&token);
            }
            Value::Float(_) => out.push_str("null"),
            Value::Str(s) => render_string(s, out),
            Value::Array(items) => {
                render_seq(items.len(), indent, depth, out, '[', ']', |i, out| {
                    render(&items[i], indent, depth + 1, out);
                });
            }
            Value::Object(pairs) => {
                render_seq(pairs.len(), indent, depth, out, '{', '}', |i, out| {
                    render_string(&pairs[i].0, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    render(&pairs[i].1, indent, depth + 1, out);
                });
            }
        }
    }

    fn render_seq(
        len: usize,
        indent: Option<usize>,
        depth: usize,
        out: &mut String,
        open: char,
        close: char,
        mut item: impl FnMut(usize, &mut String),
    ) {
        out.push(open);
        if len == 0 {
            out.push(close);
            return;
        }
        for i in 0..len {
            if i > 0 {
                out.push(',');
            }
            if let Some(width) = indent {
                out.push('\n');
                out.extend(std::iter::repeat(' ').take(width * (depth + 1)));
            }
            item(i, out);
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(width * depth));
        }
        out.push(close);
    }

    fn render_string(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), Error> {
        if bytes[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{lit}` at byte {pos}",
                pos = *pos
            )))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            None => Err(Error::msg("unexpected end of input")),
            Some(b'n') => expect(bytes, pos, "null").map(|()| Value::Null),
            Some(b't') => expect(bytes, pos, "true").map(|()| Value::Bool(true)),
            Some(b'f') => expect(bytes, pos, "false").map(|()| Value::Bool(false)),
            Some(b'"') => parse_string(bytes, pos).map(Value::Str),
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(parse_value(bytes, pos)?);
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => {
                            return Err(Error::msg(format!(
                                "expected `,` or `]` at byte {pos}",
                                pos = *pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                *pos += 1;
                let mut pairs = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    skip_ws(bytes, pos);
                    let key = parse_string(bytes, pos)?;
                    skip_ws(bytes, pos);
                    expect(bytes, pos, ":")?;
                    pairs.push((key, parse_value(bytes, pos)?));
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        _ => {
                            return Err(Error::msg(format!(
                                "expected `,` or `}}` at byte {pos}",
                                pos = *pos
                            )))
                        }
                    }
                }
            }
            Some(_) => parse_number(bytes, pos),
        }
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
        if bytes.get(*pos) != Some(&b'"') {
            return Err(Error::msg(format!(
                "expected a string at byte {pos}",
                pos = *pos
            )));
        }
        *pos += 1;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = bytes
                                .get(*pos + 1..*pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by the
                            // renderer; reject them rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::msg("invalid \\u code point"))?;
                            out.push(c);
                            *pos += 4;
                        }
                        _ => return Err(Error::msg("invalid escape")),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&bytes[*pos..])
                        .map_err(|_| Error::msg("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty by the match");
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
        let start = *pos;
        if bytes.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        let mut float = false;
        while let Some(&b) = bytes.get(*pos) {
            match b {
                b'0'..=b'9' => *pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    *pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII digits are valid UTF-8");
        if text.is_empty() || text == "-" {
            return Err(Error::msg(format!("expected a number at byte {start}")));
        }
        if float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::msg(format!("invalid number `{text}` at byte {start}")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error::msg(format!("invalid number `{text}` at byte {start}")))
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn scalars_round_trip() {
            for text in ["null", "true", "false", "0", "-7", "18446744073709551615"] {
                let v = value_from_str(text).unwrap();
                assert_eq!(to_string(&v), text);
            }
            assert_eq!(
                value_from_str("1.5").unwrap(),
                Value::Float(1.5),
                "floats parse as floats"
            );
            assert_eq!(to_string(&Value::Float(2.0)), "2.0");
        }

        #[test]
        fn u64_max_is_exact() {
            let v = u64::MAX.to_value();
            let back: u64 = from_str(&to_string(&v)).unwrap();
            assert_eq!(back, u64::MAX);
        }

        #[test]
        fn strings_escape_and_unescape() {
            let s = "a\"b\\c\nd\te\u{1}π".to_string();
            let text = to_string(&s);
            let back: String = from_str(&text).unwrap();
            assert_eq!(back, s);
        }

        #[test]
        fn arrays_objects_and_pretty_nesting() {
            let v = Value::object([
                ("xs", Value::Array(vec![Value::Int(1), Value::Int(2)])),
                ("name", Value::Str("t".into())),
                ("none", Value::Null),
            ]);
            let compact = to_string(&v);
            assert_eq!(compact, r#"{"xs":[1,2],"name":"t","none":null}"#);
            assert_eq!(value_from_str(&compact).unwrap(), v);
            let pretty = to_string_pretty(&v);
            assert!(pretty.contains("\n  \"xs\": [\n    1,"));
            assert_eq!(value_from_str(&pretty).unwrap(), v);
        }

        #[test]
        fn errors_name_the_byte_offset() {
            assert!(value_from_str("[1,]").is_err());
            assert!(value_from_str("{\"a\" 1}").is_err());
            assert!(value_from_str("12 34")
                .unwrap_err()
                .to_string()
                .contains("trailing"));
            assert!(from_str::<u8>("300").is_err(), "out-of-range integers fail");
        }

        #[test]
        fn option_and_vec_round_trip() {
            let v: Vec<Option<u64>> = vec![Some(3), None, Some(u64::MAX)];
            let text = to_string(&v);
            let back: Vec<Option<u64>> = from_str(&text).unwrap();
            assert_eq!(back, v);
        }
    }
}
