//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The treecast build environment cannot reach crates.io, so this vendored
//! shim implements the API subset the workspace's `benches/` use:
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! [`black_box`] and the [`criterion_group!`]/[`criterion_main!`] macros.
//! Bench targets keep `harness = false` and the same source, so swapping
//! the real crate back in is a one-line `Cargo.toml` change.
//!
//! Semantics follow criterion's CLI contract:
//!
//! * `cargo bench` passes `--bench`, which selects **measure mode**: each
//!   benchmark is warmed up and timed, and a `median ns/iter` line is
//!   printed per benchmark.
//! * `cargo test --benches` omits `--bench`, which selects **test mode**:
//!   each benchmark body runs exactly once as a smoke test.
//! * A trailing free argument acts as a substring filter on benchmark ids,
//!   like criterion's `cargo bench -- <filter>`.
//!
//! There are no statistics, plots or saved baselines — this is a
//! smoke-and-rough-numbers harness, not a measurement-grade one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// An opaque identity function that prevents the optimizer from deleting
/// benchmarked computations.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with an explicit function name and parameter.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter; the group name provides context.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything accepted as a benchmark id: a [`BenchmarkId`] or a plain `&str`.
pub trait IntoBenchmarkId {
    /// Converts into the rendered id string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// `--bench` was passed (cargo bench): warm up and time.
    Measure,
    /// No `--bench` (cargo test --benches): run each body once.
    Test,
}

/// The benchmark driver handed to `criterion_group!` target functions.
#[derive(Debug)]
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut mode = Mode::Test;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => mode = Mode::Measure,
                // Flags criterion/libtest accept that a plain runner can
                // safely treat as no-ops.
                "--test" | "--nocapture" | "-q" | "--quiet" => {}
                other if !other.starts_with('-') => filter = Some(other.to_string()),
                _ => {}
            }
        }
        Criterion {
            mode,
            filter,
            sample_size: 30,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            group_name: group_name.to_string(),
            sample_size: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        self.run_one(id.into_id(), sample_size, &mut f);
        self
    }

    fn run_one<F>(&mut self, id: String, sample_size: usize, f: &mut F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            mode: self.mode,
            sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        match self.mode {
            Mode::Test => println!("test {id} ... ok"),
            Mode::Measure => {
                bencher.samples.sort_unstable();
                let median = bencher
                    .samples
                    .get(bencher.samples.len() / 2)
                    .copied()
                    .unwrap_or(0);
                println!(
                    "bench {id:<48} median {median:>12} ns/iter ({} samples)",
                    bencher.samples.len()
                );
            }
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group_name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs a benchmark inside this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.group_name, id.into_id());
        let sample_size = self.effective_sample_size();
        self.criterion.run_one(id, sample_size, &mut f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.group_name, id.into_id());
        let sample_size = self.effective_sample_size();
        self.criterion
            .run_one(id, sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group. (Present for API parity; nothing is deferred.)
    pub fn finish(self) {}

    fn effective_sample_size(&self) -> usize {
        self.sample_size.unwrap_or(self.criterion.sample_size)
    }
}

/// Runs the closure under measurement inside a benchmark body.
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    sample_size: usize,
    samples: Vec<u128>,
}

impl Bencher {
    /// Calls `routine` repeatedly and records wall-clock samples (measure
    /// mode) or exactly once (test mode).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.mode == Mode::Test {
            black_box(routine());
            return;
        }
        // Warm-up: at least one call, at most ~50 ms, to size iterations
        // so one sample costs ~1 ms.
        let warmup_budget = Duration::from_millis(50);
        let warmup_start = Instant::now();
        let mut warmup_calls: u32 = 0;
        while warmup_calls == 0 || warmup_start.elapsed() < warmup_budget {
            black_box(routine());
            warmup_calls += 1;
            if warmup_calls >= 1000 {
                break;
            }
        }
        let per_call = warmup_start.elapsed().as_nanos() / u128::from(warmup_calls);
        let iters_per_sample = (1_000_000 / per_call.max(1)).clamp(1, 10_000) as u32;

        let budget = Duration::from_millis(500);
        let run_start = Instant::now();
        for _ in 0..self.sample_size {
            let sample_start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(sample_start.elapsed().as_nanos() / u128::from(iters_per_sample));
            if run_start.elapsed() > budget {
                break;
            }
        }
    }
}

/// Declares a function running a list of benchmark target functions, like
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `fn main` running one or more [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(mode: Mode, filter: Option<&str>) -> Criterion {
        Criterion {
            mode,
            filter: filter.map(Into::into),
            sample_size: 5,
        }
    }

    #[test]
    fn test_mode_runs_body_once() {
        let mut c = drive(Mode::Test, None);
        let mut calls = 0;
        c.bench_function("probe", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn measure_mode_collects_samples() {
        let mut c = drive(Mode::Measure, None);
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut ran = false;
        group.bench_with_input(BenchmarkId::from_parameter(7), &7usize, |b, &n| {
            b.iter(|| {
                ran = true;
                n * 2
            })
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = drive(Mode::Test, Some("nomatch"));
        let mut calls = 0;
        c.bench_function("probe", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 0);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 8).into_id(), "f/8");
        assert_eq!(BenchmarkId::from_parameter(8).into_id(), "8");
    }
}
