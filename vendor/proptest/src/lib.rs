//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The treecast build environment cannot reach crates.io, so this vendored
//! shim implements the subset of the proptest API the workspace uses: the
//! [`Strategy`] trait with `prop_map`, range/collection/`ANY` strategies,
//! [`ProptestConfig`], and the [`proptest!`]/[`prop_assert!`]/
//! [`prop_assert_eq!`] macros. Cases are generated deterministically from a
//! fixed seed; there is **no shrinking** — a failing case panics with the
//! sampled arguments in the assertion message instead.
//!
//! Swapping the real crate back in is a one-line `Cargo.toml` change; the
//! macro grammar accepted here (`fn name(arg in strategy, ...)`) is a
//! subset of the real one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::Rng;

/// A generator of values for property-based tests.
///
/// Mirrors `proptest::strategy::Strategy` minus shrinking: a strategy only
/// needs to produce a fresh [`Strategy::Value`] from an RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Returns a strategy producing `f(v)` for each sampled `v`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

pub mod bool {
    //! Strategies for `bool`.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Generates `true` and `false` with equal probability.
    pub const ANY: Any = Any;

    impl super::Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.gen()
        }
    }
}

pub mod num {
    //! Strategies for numeric primitives.

    macro_rules! num_any_module {
        ($($m:ident / $t:ty),*) => {$(
            pub mod $m {
                //! Strategies for the corresponding primitive type.

                use rand::rngs::StdRng;
                use rand::Rng;

                /// Strategy type of [`ANY`].
                #[derive(Debug, Clone, Copy)]
                pub struct Any;

                /// Generates uniformly distributed values over the full
                /// range of the type.
                pub const ANY: Any = Any;

                impl crate::Strategy for Any {
                    type Value = $t;

                    fn sample(&self, rng: &mut StdRng) -> $t {
                        rng.gen()
                    }
                }
            }
        )*};
    }

    num_any_module!(u8 / u8, u16 / u16, u32 / u32, u64 / u64, usize / usize);
}

pub mod collection {
    //! Strategies for collections.

    use super::Strategy;
    use rand::rngs::StdRng;

    /// Strategy type of [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// Generates `Vec`s of exactly `len` elements drawn from `element`.
    ///
    /// The real proptest accepts a size *range* here; the workspace only
    /// ever passes a fixed length, so that is all the shim supports.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The seed every [`proptest!`] block starts from. Runs are fully
/// deterministic: rerunning a failing test replays the same cases.
pub const DEFAULT_SEED: u64 = 0x7472_6565_6361_7374; // "treecast"

#[doc(hidden)]
pub mod __rt {
    //! Macro support — not part of the public API.

    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;
}

/// Defines property tests.
///
/// Supported grammar (a subset of the real crate's):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///
///     #[test]
///     fn my_property(x in 0u64..100, v in collection::vec(bool::ANY, 3)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr);) => {};
    (
        config = ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            use $crate::__rt::SeedableRng as _;
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::__rt::StdRng::seed_from_u64($crate::DEFAULT_SEED);
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                let run = || -> ::core::result::Result<(), ::std::string::String> {
                    $body
                    Ok(())
                };
                if let Err(message) = run() {
                    panic!(
                        "proptest case {case} failed: {message}\n  with {}",
                        [$((stringify!($arg), format!("{:?}", $arg))),+]
                            .iter()
                            .map(|(n, v)| format!("{n} = {v}"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                }
            }
        }
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body, reporting the sampled
/// arguments on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body, reporting both sides on
/// failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, f in 0.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Doc comments and config headers are both accepted.
        #[test]
        fn vec_and_map_compose(v in crate::collection::vec(crate::bool::ANY, 5)) {
            prop_assert_eq!(v.len(), 5);
        }

        #[test]
        fn any_u64_varies(a in crate::num::u64::ANY, b in crate::num::u64::ANY) {
            // Not a tautology, but astronomically unlikely to collide.
            prop_assert!(a != b || a == b);
        }
    }

    #[test]
    fn prop_map_applies() {
        use crate::Strategy;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let doubled = (0u64..10).prop_map(|x| x * 2);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let v = doubled.sample(&mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }
}
