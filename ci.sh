#!/usr/bin/env bash
# The tiered CI gate for the treecast workspace. Run from the repo root.
#
#   ./ci.sh [quick|full|release] [--fix]
#
#   quick    fmt check, release build, tests, bench smoke, frontier
#            smoke (n = 10^4), server smoke (n = 64), montecarlo smoke
#            (n = 64), emulation smoke (n = 64), static analysis (L1-L6
#            + allowlist + baseline gate), docs (skips the bench
#            regression gates and the --ignored tier)
#   full     quick + the compose/solver/workloads/adversary/frontier/
#            server/montecarlo/emulation bench gates, the release-mode
#            differential/scenario proptests, and the concurrency-
#            determinism audit (debug build, threads 1/2/4/8) (default)
#   release  full + the slow --ignored solver tier, the beam width
#            sweep, and the frontier scale rows (n = 10^6)
#   --fix    apply rustfmt instead of failing on drift
#
# Every step runs even after a failure: one CI run reports all breakage,
# prints a per-step wall-time summary, and exits nonzero listing every
# failed step. Everything runs offline: the rand/proptest/criterion
# dependencies are vendored path crates (see vendor/).
# TREECAST_BENCH_GATE=off skips the *timing* halves of the bench gates
# (exact t*/round-count halves are always enforced).
set -uo pipefail
cd "$(dirname "$0")"

TIER=full
FMT_MODE=--check
for arg in "$@"; do
    case "$arg" in
        quick|full|release) TIER=$arg ;;
        --fix) FMT_MODE="" ;;
        *)
            echo "usage: ./ci.sh [quick|full|release] [--fix]" >&2
            exit 2
            ;;
    esac
done

STEP_NAMES=()
STEP_SECS=()
STEP_RESULTS=()
FAILED=()

# run_step <name> <command...> — runs the command, records wall time and
# pass/fail, and keeps going on failure.
run_step() {
    local name="$1"
    shift
    printf '\n== %s ==\n' "$name"
    local start
    start=$(date +%s)
    local result=ok
    if ! "$@"; then
        result=FAIL
        FAILED+=("$name")
    fi
    STEP_NAMES+=("$name")
    STEP_SECS+=($(($(date +%s) - start)))
    STEP_RESULTS+=("$result")
}

step_fmt() {
    # shellcheck disable=SC2086 # intentional word splitting of the flag
    cargo fmt $FMT_MODE || return 1
    local shim
    for shim in vendor/rand vendor/proptest vendor/criterion vendor/serde vendor/serde_derive; do
        # shellcheck disable=SC2086
        (cd "$shim" && cargo fmt $FMT_MODE) || return 1
    done
}

step_docs() {
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps
}

run_step "cargo fmt ${FMT_MODE:-(fix)}" step_fmt
run_step "cargo build --release" cargo build --release
run_step "cargo test -q" cargo test -q
run_step "bench smoke (criterion test mode)" cargo test -q -p treecast-bench --benches
# Frontier-engine smoke at n = 10^4 (release binary, ~1 s): proves the
# sparse engine completes both scale workloads far above the dense
# engine's comfort zone even in the quick tier. No --check here; the
# gated comparison runs in the full tier below.
run_step "frontier smoke (n = 10^4, release)" \
    cargo run --release -p treecast-bench --bin bench_frontier
# Server smoke: the cached query engine on a toy load shape (n = 64,
# 300 requests) — asserts the primed stream runs fully warm and beats
# the uncached engine. The gated full-size comparison is in the full
# tier below.
run_step "server smoke (n = 64, release)" \
    cargo run --release -p treecast-bench --bin bench_server -- --smoke
# Monte Carlo smoke: three seeded estimator cells (static-path loss
# sweep endpoints plus one seeded-uniform k = 2 row) — proves the
# replica pool, estimators and both engines run end to end. The exact
# full-grid comparison is in the full tier below.
run_step "montecarlo smoke (n = 64, release)" \
    cargo run --release -p treecast-bench --bin bench_montecarlo -- --smoke
# Emulation smoke: three paired emulated-vs-synchronous cells (quiet
# path unconstrained, bandwidth-1 star, seeded gossip under the fault
# cocktail) — proves the gossip protocol layer, the knob caps, and the
# model-pinning ratio end to end. The exact full-grid comparison is in
# the full tier below.
run_step "emulation smoke (n = 64, release)" \
    cargo run --release -p treecast-bench --bin bench_emulation -- --smoke
# Static analysis: the six workspace rules (layering DAG, panic policy,
# unsafe hygiene, bench-gate coverage, feature hygiene, doc coverage)
# with the checked-in allowlist, gated against the per-rule baseline so
# grandfathered counts only ratchet down. Writes results/ANALYZE.json.
run_step "static analysis (L1-L6, allowlist ratchet)" \
    cargo run --release -p treecast-analyze --bin analyze -- \
    --rules all --check results/ANALYZE_baseline.json

if [[ "$TIER" != quick ]]; then
    # Each gate re-measures, writes results/BENCH_<x>.json and compares
    # against the checked-in baseline: wall times at +25%, exact values
    # (solver t*, workload round counts) with zero tolerance.
    run_step "compose bench gate (n = 1024, +25%)" \
        cargo run --release -p treecast-bench --bin bench_compose -- \
        --check results/BENCH_compose_baseline.json
    run_step "solver bench gate (quick sizes, exact t* + n = 6 wall)" \
        cargo run --release -p treecast-bench --bin bench_solver -- \
        --quick --check results/BENCH_solver_baseline.json
    run_step "workloads bench gate (exact rounds + tracked-step wall)" \
        cargo run --release -p treecast-bench --bin bench_workloads -- \
        --check results/BENCH_workloads_baseline.json
    run_step "adversary bench gate (exact plan rounds + planning wall)" \
        cargo run --release -p treecast-bench --bin bench_adversary -- \
        --check results/BENCH_adversary_baseline.json
    run_step "frontier bench gate (exact rounds + sweep wall, n = 10^4)" \
        cargo run --release -p treecast-bench --bin bench_frontier -- \
        --check results/BENCH_frontier_baseline.json
    run_step "server bench gate (exact cells + warm wall + 5x floor)" \
        cargo run --release -p treecast-bench --bin bench_server -- \
        --check results/BENCH_server_baseline.json
    run_step "montecarlo bench gate (exact estimator cells + grid wall)" \
        cargo run --release -p treecast-bench --bin bench_montecarlo -- \
        --check results/BENCH_montecarlo_baseline.json
    run_step "emulation bench gate (exact paired cells + grid wall)" \
        cargo run --release -p treecast-bench --bin bench_emulation -- \
        --check results/BENCH_emulation_baseline.json
    # The beam/greedy/exact differential harness, the fault-layer
    # scenario properties, and the sparse-vs-dense frontier differential
    # suite, in release mode (they also run in the debug tier-1 pass;
    # this run is the fast, optimized re-check).
    run_step "adversary differential + scenario proptests (release)" \
        cargo test -q --release --test adversary_differential --test scenarios
    run_step "frontier differential proptests (release)" \
        cargo test -q --release --test frontier_differential --test edge_cases
    # Cached server == uncached server == direct engine, across every
    # workload, faults included (also in the debug tier-1 pass).
    run_step "server differential tests (release)" \
        cargo test -q --release -p treecast --test server_differential
    # Concurrency-determinism audit: the five threaded subsystems
    # (sharded compose, solver discovery, server worker pool, Monte
    # Carlo replica pool, gossip-emulation replica pool) across
    # {1,2,4,8} threads must be bit-identical, with the debug_validate
    # invariant checkers live — hence a DEBUG build, not --release.
    # Combined with --rules all so the checked-in results/ANALYZE.json
    # carries both the lexical findings and the audit fingerprints.
    run_step "determinism audit (debug, threads 1/2/4/8) + rules" \
        cargo run -p treecast-analyze --bin analyze -- \
        --rules all --determinism --check results/ANALYZE_baseline.json
fi

if [[ "$TIER" == release ]]; then
    # Brute-force cross-check at n = 5, old-recursive vs layered agreement
    # at n = 6, and the deepest-chain small-stack run — too slow for the
    # debug tier. The n = 7 frontier test stays opt-in via TREECAST_N7=1.
    run_step "release-tier slow solver tests (--ignored)" \
        cargo test -q --release -p treecast-solver -- --ignored
    # Beam width heuristic validation on the E10 grid; records
    # results/width_sweep.csv and asserts width 8 never loses to width 2.
    run_step "beam width sweep (--ignored, writes results/width_sweep.csv)" \
        cargo test -q --release --test adversary_width_sweep -- --ignored
    # The tentpole: both frontier scale rows at n = 10^6 (plus the gated
    # smoke rows). Exact rounds still compared; the baseline holds only
    # the smoke cells, so the million-node rows are informational.
    run_step "frontier scale rows (n = 10^6, release tier only)" \
        cargo run --release -p treecast-bench --bin bench_frontier -- \
        --scale --check results/BENCH_frontier_baseline.json
fi

run_step "cargo doc --no-deps (warnings are errors)" step_docs

printf '\n== ci.sh %s tier summary ==\n' "$TIER"
printf '%-55s %8s  %s\n' step seconds result
printf '%s\n' "-------------------------------------------------------------------------"
total=0
for i in "${!STEP_NAMES[@]}"; do
    printf '%-55s %8s  %s\n' "${STEP_NAMES[$i]}" "${STEP_SECS[$i]}" "${STEP_RESULTS[$i]}"
    total=$((total + STEP_SECS[i]))
done
printf '%-55s %8s\n' total "$total"

if ((${#FAILED[@]} > 0)); then
    printf '\nci.sh: %d step(s) FAILED:\n' "${#FAILED[@]}"
    printf '  - %s\n' "${FAILED[@]}"
    exit 1
fi
printf '\nci.sh: all green (%s tier)\n' "$TIER"
