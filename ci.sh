#!/usr/bin/env bash
# The tier-1 gate for the treecast workspace. Run from the repo root.
#
#   ./ci.sh          # fmt check, release build, tests, bench smoke, docs
#   ./ci.sh --fix    # same, but apply rustfmt instead of failing on drift
#
# Everything runs offline: the rand/proptest/criterion dependencies are
# vendored path crates (see vendor/).
set -euo pipefail
cd "$(dirname "$0")"

FMT_MODE=--check
if [[ "${1:-}" == "--fix" ]]; then
    FMT_MODE=""
fi

step() { printf '\n== %s ==\n' "$*"; }

step "cargo fmt ${FMT_MODE:-(fix)}"
# shellcheck disable=SC2086 # intentional word splitting of the flag
cargo fmt $FMT_MODE
for shim in vendor/rand vendor/proptest vendor/criterion; do
    (cd "$shim" && cargo fmt $FMT_MODE)
done

step "cargo build --release"
cargo build --release

step "cargo test -q"
cargo test -q

step "cargo test -q --benches (criterion smoke mode)"
cargo test -q -p treecast-bench --benches

step "compose bench gate (fails on >25% regression at n = 1024)"
# Re-measures the compose kernel, writes results/BENCH_compose.json and
# compares against the checked-in baseline. TREECAST_BENCH_GATE=off skips
# the comparison (underpowered or heavily loaded hosts).
cargo run --release -p treecast-bench --bin bench_compose -- \
    --check results/BENCH_compose_baseline.json

step "solver bench gate (quick sizes, fails on >25% regression at n = 6)"
# Re-solves n = 2..=6 with the layered engine, writes
# results/BENCH_solver.json and gates both wall time (n = 6, skippable
# via TREECAST_BENCH_GATE=off) and exact t* values (always enforced)
# against the checked-in baseline.
cargo run --release -p treecast-bench --bin bench_solver -- \
    --quick --check results/BENCH_solver_baseline.json

step "release-tier slow solver tests (--ignored)"
# Brute-force cross-check at n = 5, old-recursive vs layered agreement at
# n = 6, and the deepest-chain small-stack run — too slow for the debug
# tier. The n = 7 frontier test stays opt-in via TREECAST_N7=1 (a long
# release-mode run; see results/BENCH_solver.json for its recorded data).
cargo test -q --release -p treecast-solver -- --ignored

step "cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps

printf '\nci.sh: all green\n'
