#!/usr/bin/env bash
# The tier-1 gate for the treecast workspace. Run from the repo root.
#
#   ./ci.sh          # fmt check, release build, tests, bench smoke, docs
#   ./ci.sh --fix    # same, but apply rustfmt instead of failing on drift
#
# Everything runs offline: the rand/proptest/criterion dependencies are
# vendored path crates (see vendor/).
set -euo pipefail
cd "$(dirname "$0")"

FMT_MODE=--check
if [[ "${1:-}" == "--fix" ]]; then
    FMT_MODE=""
fi

step() { printf '\n== %s ==\n' "$*"; }

step "cargo fmt ${FMT_MODE:-(fix)}"
# shellcheck disable=SC2086 # intentional word splitting of the flag
cargo fmt $FMT_MODE
for shim in vendor/rand vendor/proptest vendor/criterion; do
    (cd "$shim" && cargo fmt $FMT_MODE)
done

step "cargo build --release"
cargo build --release

step "cargo test -q"
cargo test -q

step "cargo test -q --benches (criterion smoke mode)"
cargo test -q -p treecast-bench --benches

step "cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps

printf '\nci.sh: all green\n'
