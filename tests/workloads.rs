//! Workload-engine properties: the refactored trait path must be
//! round-for-round identical to the pre-refactor engine loop, and the
//! gossip mode must satisfy the companion paper's reduction to per-source
//! broadcast on reversed (transposed) product sequences.

use proptest::prelude::*;
use rand::rngs::StdRng;

use treecast::bitmatrix::BoolMatrix;
use treecast::core::{
    run_workload, simulate, Broadcast, BroadcastState, Gossip, KBroadcast, SequenceSource,
    SimulationConfig, TrackedTokens, WorkloadOutcome,
};
use treecast::trees::{generators, random, RootedTree};

/// A random tree schedule ending in a full star rotation, which forces
/// gossip (hence every workload below it) to complete.
fn gossip_completing_schedule(n: usize, len: usize, rng: &mut StdRng) -> Vec<RootedTree> {
    let mut trees: Vec<RootedTree> = (0..len).map(|_| random::uniform(n, rng)).collect();
    trees.extend((0..n).map(|c| generators::star_with_center(n, c)));
    trees
}

/// The pre-refactor engine loop, replicated verbatim: step a
/// `BroadcastState`, query `broadcast_witness()` every round, stop at the
/// first witness or the round cap.
fn pre_refactor_broadcast(n: usize, trees: &[RootedTree], max_rounds: u64) -> (Option<u64>, u64) {
    let mut state = BroadcastState::new(n);
    let mut broadcast_time = state.broadcast_witness().map(|_| 0);
    let mut next = 0usize;
    while broadcast_time.is_none() && state.round() < max_rounds {
        let idx = next.min(trees.len() - 1);
        next += 1;
        state.apply(&trees[idx]);
        if state.broadcast_witness().is_some() {
            broadcast_time = Some(state.round());
        }
    }
    (broadcast_time, state.round())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Single-source broadcast through the `Workload` trait is
    /// round-for-round identical to the pre-refactor engine path, and to
    /// the classic `simulate` entry point.
    #[test]
    fn workload_broadcast_matches_pre_refactor_engine(seed in 0u64..1000, n in 2usize..9) {
        let mut rng = StdRng::seed_from_u64(seed);
        let trees = gossip_completing_schedule(n, 2 * n, &mut rng);
        let config = SimulationConfig::for_n(n);

        let (legacy_time, legacy_rounds) = pre_refactor_broadcast(n, &trees, config.max_rounds);

        let mut source = SequenceSource::new(trees.clone());
        let report = run_workload(n, &mut source, &Broadcast, config);
        prop_assert_eq!(report.completion_time, legacy_time);
        prop_assert_eq!(report.rounds, legacy_rounds);

        let mut source = SequenceSource::new(trees);
        let classic = simulate(n, &mut source, config);
        prop_assert_eq!(classic.broadcast_time, legacy_time);
        prop_assert_eq!(classic.rounds, legacy_rounds);
    }

    /// The companion reduction: the gossip time of a sequence equals the
    /// max over sources `x` of the broadcast time of `x` measured on the
    /// reversed, edge-transposed prefix products. (`G(t)` is all-ones iff
    /// every row of `Aᵗᵀ ∘ … ∘ A₁ᵀ = G(t)ᵀ` is full.)
    #[test]
    fn gossip_is_max_source_broadcast_on_reversed_products(seed in 0u64..1000, n in 2usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let trees = gossip_completing_schedule(n, n, &mut rng);
        let cap = SimulationConfig::for_n(n).max_rounds;

        let mut source = SequenceSource::new(trees.clone());
        let gossip = run_workload(n, &mut source, &Gossip, SimulationConfig::for_n(n))
            .completion_time_or_panic();

        // Round matrices with self-loops, transposed.
        let reversed: Vec<BoolMatrix> = trees
            .iter()
            .map(|t| t.to_matrix(true).transpose())
            .collect();
        // Broadcast time of source x on the reversed-transposed prefix of
        // length t: replay (A_t^T, ..., A_1^T) and ask whether x's row of
        // the resulting product is full.
        let mut max_source_time = 0u64;
        for x in 0..n {
            let mut sx = None;
            for t in 1..=cap.min(trees.len() as u64) {
                let mut state = BroadcastState::new(n);
                for s in (0..t as usize).rev() {
                    state.apply_matrix(&reversed[s]);
                }
                if state.reach_set(x).is_full() {
                    sx = Some(t);
                    break;
                }
            }
            let sx = sx.expect("schedule completes gossip, so every source finishes");
            max_source_time = max_source_time.max(sx);
        }
        prop_assert_eq!(gossip, max_source_time);
    }

    /// k-broadcast thresholds are consistent: completion happens at the
    /// first round with k disseminated tokens, times are monotone in k,
    /// and k = n coincides with gossip.
    #[test]
    fn k_broadcast_thresholds(seed in 0u64..500, n in 2usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let trees = gossip_completing_schedule(n, n, &mut rng);
        let config = SimulationConfig::for_n(n);
        let mut prev = 0u64;
        for k in 1..=n {
            let mut source = SequenceSource::new(trees.clone());
            let report = run_workload(n, &mut source, &KBroadcast::new(k), config);
            prop_assert_eq!(report.outcome, WorkloadOutcome::Completed);
            let t = report.completion_time_or_panic();
            prop_assert!(t >= prev, "k-broadcast times must be monotone in k");
            // Replay: strictly fewer than k tokens one round earlier.
            if t > 0 {
                let mut state = BroadcastState::new(n);
                for tree in trees.iter().take(t as usize - 1) {
                    state.apply(tree);
                }
                prop_assert!(state.disseminated_count() < k, "completed too late");
                state.apply(&trees[t as usize - 1]);
                prop_assert!(state.disseminated_count() >= k, "completed too early");
            }
            prev = t;
        }
        let mut source = SequenceSource::new(trees);
        let gossip = run_workload(n, &mut source, &Gossip, config);
        prop_assert_eq!(gossip.completion_time, Some(prev));
    }

    /// The batched holder rows of a `TrackedTokens` state equal the
    /// tracked sources' reach sets in the full product state, for every
    /// prefix of any schedule.
    #[test]
    fn tracked_tokens_match_full_state(seed in 0u64..500, n in 2usize..9) {
        let mut rng = StdRng::seed_from_u64(seed);
        let trees = gossip_completing_schedule(n, n, &mut rng);
        let sources: Vec<usize> = (0..n).step_by(2).collect();
        let mut tracked = TrackedTokens::new(n, &sources);
        let mut full = BroadcastState::new(n);
        for tree in &trees {
            tracked.apply(tree);
            full.apply(tree);
            for (i, &s) in sources.iter().enumerate() {
                prop_assert_eq!(tracked.holders(i).to_bitset(), full.reach_set(s));
            }
            prop_assert_eq!(
                tracked.disseminated_count(),
                sources
                    .iter()
                    .filter(|&&s| full.reach_set(s).is_full())
                    .count()
            );
        }
    }
}
