//! Release-tier validation of the `BeamOptions::for_n` width heuristic on
//! the variant objectives — the width knob had never been measured against
//! the E10 scenario table before this sweep.
//!
//! Run with:
//!
//! ```text
//! cargo test --release --test adversary_width_sweep -- --ignored
//! ```
//!
//! Records a width-vs-quality table into `results/width_sweep.csv` and
//! asserts that width 8 is never worse (for the adversary) than width 2 on
//! any cell of the E10 scenario grid.

use treecast::adversary::{
    beam_search_workload_plan, BeamOptions, MinDisseminated, StructuredPool,
};
use treecast::core::{
    run_workload, Broadcast, BroadcastState, Gossip, KBroadcast, SequenceSource, SimulationConfig,
    Workload,
};

/// The E10 scenario table's workloads at size `n`.
fn grid_workloads(n: usize) -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(Broadcast),
        Box::new(KBroadcast::new(2)),
        Box::new(KBroadcast::new((n / 2).max(2))),
        Box::new(Gossip),
    ]
}

/// Achieved completion round of a width-`w` beam plan replayed through the
/// workload engine; `None` = the run capped (best case for the adversary).
fn beam_time(n: usize, workload: &dyn Workload, width: usize) -> Option<u64> {
    let cfg = SimulationConfig::for_n(n);
    let mut options = BeamOptions::for_n(n).with_width(width);
    options.max_rounds = cfg.max_rounds;
    let plan = beam_search_workload_plan(
        &BroadcastState::new(n),
        &mut StructuredPool::new(),
        &MinDisseminated::default(),
        workload,
        options,
    );
    let mut replay = SequenceSource::new(plan);
    run_workload(n, &mut replay, workload, cfg).completion_time
}

#[test]
#[ignore = "release-tier sweep (~minutes in debug); run via ci.sh release"]
fn width_eight_never_loses_to_width_two_on_the_e10_grid() {
    const WIDTHS: [usize; 5] = [1, 2, 4, 8, 16];
    let mut csv = String::from("workload,n,width,rounds\n");
    let mut failures = Vec::new();

    for n in [16usize, 32, 64] {
        for workload in grid_workloads(n) {
            let mut by_width = Vec::new();
            for width in WIDTHS {
                let t = beam_time(n, workload.as_ref(), width);
                csv.push_str(&format!(
                    "{},{},{},{}\n",
                    workload.name(),
                    n,
                    width,
                    t.map(|t| t as i64).unwrap_or(-1)
                ));
                by_width.push((width, t));
            }
            let rank = |t: Option<u64>| t.unwrap_or(u64::MAX);
            let at = |w: usize| {
                by_width
                    .iter()
                    .find(|(width, _)| *width == w)
                    .expect("width measured")
                    .1
            };
            if rank(at(8)) < rank(at(2)) {
                failures.push(format!(
                    "{} at n = {n}: width 8 achieved {:?} < width 2's {:?}",
                    workload.name(),
                    at(8),
                    at(2)
                ));
            }
        }
    }

    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/width_sweep.csv", &csv).expect("write width_sweep.csv");
    assert!(
        failures.is_empty(),
        "width heuristic regressions:\n{}",
        failures.join("\n")
    );
}
