//! Boundary behaviour, exercised on **both** engines: the one-process
//! model, single-round completions, rounds in which every node is
//! offline, and re-rooting at leaves (the deepest possible
//! [`RootedTree::rerooted`] flip).
//!
//! [`RootedTree::rerooted`]: treecast::trees::RootedTree::rerooted

use treecast::core::{
    run_workload_faulty, run_workload_faulty_traced, run_workload_frontier,
    run_workload_frontier_faulty, run_workload_frontier_faulty_traced, Broadcast, FaultSchedule,
    FrontierSource, Gossip, KBroadcast, RoundFaults, SimulationConfig, StaticSource, Workload,
    WorkloadOutcome, WorkloadReport,
};
use treecast::trees::generators;

fn assert_engines_agree(
    n: usize,
    mut sparse_src: FrontierSource,
    workload: &dyn Workload,
    schedule: &[RoundFaults],
    cfg: SimulationConfig,
    ctx: &str,
) -> (WorkloadReport, WorkloadReport) {
    let mut dense_src = sparse_src.dense_twin(cfg.max_rounds);
    let mut sparse_trace = Vec::new();
    let sparse = run_workload_frontier_faulty_traced(
        n,
        &mut sparse_src,
        workload,
        &mut FaultSchedule::new(schedule.to_vec()),
        cfg,
        |_, tree, state| sparse_trace.push((state.disseminated_count(), tree.root())),
    );
    let mut dense_trace = Vec::new();
    let dense = run_workload_faulty_traced(
        n,
        &mut dense_src,
        workload,
        &mut FaultSchedule::new(schedule.to_vec()),
        cfg,
        |_, tree, state| dense_trace.push((state.disseminated_count(), tree.root())),
    );
    assert_eq!(sparse.completion_time, dense.completion_time, "{ctx}");
    assert_eq!(sparse.broadcast_time, dense.broadcast_time, "{ctx}");
    assert_eq!(sparse.rounds, dense.rounds, "{ctx}");
    assert_eq!(sparse.outcome, dense.outcome, "{ctx}");
    assert_eq!(sparse.disseminated, dense.disseminated, "{ctx}");
    assert_eq!(sparse.fault_log, dense.fault_log, "{ctx}");
    assert_eq!(sparse_trace, dense_trace, "{ctx}: round traces");
    (sparse, dense)
}

/// One process: every workload is complete before any round runs, on
/// both engines, with or without faults aimed at the only node.
#[test]
fn single_node_completes_immediately_on_both_engines() {
    let n = 1;
    let cfg = SimulationConfig::for_n(n);
    let workloads: [&dyn Workload; 3] = [&Broadcast, &KBroadcast::new(1), &Gossip];
    for workload in workloads {
        let sparse = run_workload_frontier(
            n,
            &mut FrontierSource::fixed(generators::star(1)),
            workload,
            cfg,
        );
        let dense = treecast::core::run_workload(
            n,
            &mut StaticSource::new(generators::star(1)),
            workload,
            cfg,
        );
        assert_eq!(sparse.completion_time, Some(0));
        assert_eq!(sparse.broadcast_time, Some(0));
        assert_eq!(sparse.rounds, 0);
        assert_eq!(sparse.outcome, WorkloadOutcome::Completed);
        assert_eq!(dense.completion_time, sparse.completion_time);
        assert_eq!(dense.rounds, sparse.rounds);
    }
}

/// Faults aimed at the single node of a one-process run are absorbed
/// without effect: it is complete at round 0 before faults ever apply.
#[test]
fn single_node_ignores_faults() {
    let n = 1;
    let cfg = SimulationConfig::for_n(n);
    let hostile = vec![RoundFaults {
        losses: vec![0],
        root: Some(0),
        offline: vec![0],
    }];
    let mut sched = FaultSchedule::new(hostile.clone());
    let sparse = run_workload_frontier_faulty(
        n,
        &mut FrontierSource::fixed(generators::star(1)),
        &Gossip,
        &mut sched,
        cfg,
    );
    assert_eq!(sparse.completion_time, Some(0));
    assert!(sparse.fault_log.is_empty(), "no round ever executed");

    let mut sched = FaultSchedule::new(hostile);
    let dense = run_workload_faulty(
        n,
        &mut StaticSource::new(generators::star(1)),
        &Gossip,
        &mut sched,
        cfg,
    );
    assert_eq!(dense.completion_time, Some(0));
    assert!(dense.fault_log.is_empty());
}

/// A star rooted at its center broadcasts in exactly one round, on both
/// engines and at a word-boundary size.
#[test]
fn star_broadcast_completes_in_one_round() {
    for n in [2usize, 64, 65] {
        let cfg = SimulationConfig::for_n(n);
        let (sparse, _) = assert_engines_agree(
            n,
            FrontierSource::fixed(generators::star(n)),
            &Broadcast,
            &[],
            cfg,
            &format!("star n={n}"),
        );
        assert_eq!(sparse.completion_time, Some(1), "star n={n}");
        assert_eq!(sparse.broadcast_time, Some(1), "star n={n}");
    }
}

/// A round in which *every* node is offline moves nothing — the
/// completion time shifts by exactly the number of such stalled rounds,
/// and memory (tokens already held) survives the outage.
#[test]
fn all_nodes_offline_rounds_stall_without_losing_memory() {
    let n = 12;
    let cfg = SimulationConfig::for_n(n);
    let everyone: Vec<usize> = (0..n).collect();
    for stalls in [1usize, 3] {
        let schedule: Vec<RoundFaults> = (0..stalls)
            .map(|_| RoundFaults {
                offline: everyone.clone(),
                ..RoundFaults::quiet()
            })
            .collect();
        let (sparse, _) = assert_engines_agree(
            n,
            FrontierSource::fixed(generators::path(n)),
            &Broadcast,
            &schedule,
            cfg,
            &format!("{stalls} stalled rounds"),
        );
        assert_eq!(
            sparse.completion_time,
            Some((n - 1 + stalls) as u64),
            "path broadcast delayed by exactly the stalled prefix"
        );
    }
}

/// An all-offline round *between* productive rounds: progress made before
/// the outage is retained and resumed after it.
#[test]
fn mid_run_blackout_resumes_where_it_stopped() {
    let n = 10;
    let cfg = SimulationConfig::for_n(n);
    let everyone: Vec<usize> = (0..n).collect();
    let mut schedule = vec![RoundFaults::quiet(); 4];
    schedule.insert(
        2,
        RoundFaults {
            offline: everyone,
            ..RoundFaults::quiet()
        },
    );
    let (sparse, _) = assert_engines_agree(
        n,
        FrontierSource::fixed(generators::path(n)),
        &Broadcast,
        &schedule,
        cfg,
        "mid-run blackout",
    );
    assert_eq!(sparse.completion_time, Some(n as u64));
}

/// Re-rooting a path at its far leaf every round: the tree flips between
/// the two orientations, the deepest possible `rerooted` path. Both
/// engines agree, and the alternation is slower than the quiet run (the
/// token keeps being chased back).
#[test]
fn rerooting_at_leaves_flips_the_path_identically() {
    let n = 9;
    let cfg = SimulationConfig::for_n(n);
    // Rounds 1, 3, 5, … re-root at the far leaf; rounds 2, 4, … at the
    // original root (also a leaf of the flipped tree).
    let schedule: Vec<RoundFaults> = (0..cfg.max_rounds as usize)
        .map(|i| RoundFaults {
            root: Some(if i % 2 == 0 { n - 1 } else { 0 }),
            ..RoundFaults::quiet()
        })
        .collect();
    let (sparse, _) = assert_engines_agree(
        n,
        FrontierSource::fixed(generators::path(n)),
        &Broadcast,
        &schedule,
        cfg,
        "leaf re-rooting",
    );
    assert_eq!(sparse.outcome, WorkloadOutcome::Completed);

    let quiet = run_workload_frontier(
        n,
        &mut FrontierSource::fixed(generators::path(n)),
        &Broadcast,
        cfg,
    );
    assert!(
        sparse.completion_time.unwrap() >= quiet.completion_time.unwrap(),
        "chasing the token with leaf re-roots cannot beat the quiet run"
    );
}

/// Re-rooting at a leaf of a star turns the center into a relay: both
/// engines agree on the two-hop broadcast it produces.
#[test]
fn star_rerooted_at_leaf_broadcasts_in_two_rounds() {
    let n = 16;
    let cfg = SimulationConfig::for_n(n);
    let schedule: Vec<RoundFaults> = (0..cfg.max_rounds as usize)
        .map(|_| RoundFaults {
            root: Some(5),
            ..RoundFaults::quiet()
        })
        .collect();
    let (sparse, _) = assert_engines_agree(
        n,
        FrontierSource::fixed(generators::star(n)),
        &Broadcast,
        &schedule,
        cfg,
        "star re-rooted at leaf",
    );
    // Leaf 5's token goes 5 → center in round 1, center → rest in round 2.
    assert_eq!(sparse.completion_time, Some(2));
}

/// The round-limit path: a workload that cannot complete (gossip on a
/// static star never returns leaf tokens) reports `RoundLimit` with the
/// same counters on both engines.
#[test]
fn round_limit_agrees_on_both_engines() {
    let n = 8;
    let cfg = SimulationConfig::for_n(n).with_max_rounds(10);
    let (sparse, dense) = assert_engines_agree(
        n,
        FrontierSource::fixed(generators::star(n)),
        &Gossip,
        &[],
        cfg,
        "gossip round limit",
    );
    assert_eq!(sparse.outcome, WorkloadOutcome::RoundLimit);
    assert_eq!(sparse.rounds, 10);
    assert_eq!(sparse.completion_time, None);
    assert_eq!(dense.disseminated, sparse.disseminated);
}
