//! Full-pipeline integration: tournaments, restricted adversaries honoring
//! their constraint over whole runs, metrics CSV shape, and the
//! nonsplit/CFN bridge between crates.

use treecast::adversary::{
    run_tournament, ExactInnerPool, ExactLeafPool, GreedyAdversary, Lineup, SurvivalObjective,
    TournamentConfig,
};
use treecast::core::{
    simulate_observed, BroadcastState, MetricsRecorder, Observer, RunReport, SimulationConfig,
    StaticSource,
};
use treecast::trees::{generators, RootedTree};

#[test]
fn tournament_pipeline_with_bounds() {
    let lineup = Lineup::new()
        .with(
            "static-path",
            Box::new(|n, _| Box::new(StaticSource::new(generators::path(n)))),
        )
        .with(
            "survival",
            Box::new(|_, _| Box::new(treecast::adversary::SurvivalAdversary::default())),
        );
    let rows = run_tournament(&lineup, &[6, 10, 14], TournamentConfig::default());
    assert_eq!(rows.len(), 6);
    for row in &rows {
        assert!(row.broadcast_time <= row.upper_bound, "{row:?}");
    }
    // The survival adversary wins every size.
    for n in [6usize, 10, 14] {
        let path = rows
            .iter()
            .find(|r| r.n == n && r.adversary == "static-path")
            .unwrap();
        let surv = rows
            .iter()
            .find(|r| r.n == n && r.adversary == "survival")
            .unwrap();
        assert!(
            surv.broadcast_time >= path.broadcast_time,
            "survival lost to the path at n = {n}"
        );
    }
}

/// Observer asserting a per-round structural constraint on every tree.
struct ShapeAsserter<F: Fn(&RootedTree)> {
    check: F,
    rounds: u64,
}

impl<F: Fn(&RootedTree)> Observer for ShapeAsserter<F> {
    fn on_round(&mut self, tree: &RootedTree, _state: &BroadcastState) {
        (self.check)(tree);
        self.rounds += 1;
    }

    fn on_finish(&mut self, report: &RunReport) {
        assert_eq!(report.rounds, self.rounds);
    }
}

#[test]
fn restricted_adversaries_honor_k_every_round() {
    let n = 12;
    for k in [2usize, 3, 5] {
        let mut leaves_check = ShapeAsserter {
            check: move |t: &RootedTree| assert_eq!(t.leaf_count(), k, "leaf constraint broken"),
            rounds: 0,
        };
        let mut adv = GreedyAdversary::new(ExactLeafPool::new(k, 6, 9), SurvivalObjective);
        simulate_observed(
            n,
            &mut adv,
            SimulationConfig::for_n(n),
            &mut [&mut leaves_check],
        );
        assert!(leaves_check.rounds > 0);

        let mut inner_check = ShapeAsserter {
            check: move |t: &RootedTree| assert_eq!(t.inner_count(), k, "inner constraint broken"),
            rounds: 0,
        };
        let mut adv = GreedyAdversary::new(ExactInnerPool::new(k, 6, 9), SurvivalObjective);
        simulate_observed(
            n,
            &mut adv,
            SimulationConfig::for_n(n),
            &mut [&mut inner_check],
        );
        assert!(inner_check.rounds > 0);
    }
}

#[test]
fn metrics_csv_shape_through_public_api() {
    let n = 10;
    let mut rec = MetricsRecorder::every_round();
    let mut src = StaticSource::new(generators::path(n));
    simulate_observed(n, &mut src, SimulationConfig::for_n(n), &mut [&mut rec]);
    let csv = rec.to_csv();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 1 + (n - 1), "header + one row per round");
    let header_cols = lines[0].split(',').count();
    assert!(lines[1..]
        .iter()
        .all(|l| l.split(',').count() == header_cols));
}

#[test]
fn cfn_bridge_nonsplit_state_broadcasts_fast() {
    // Cross-crate: drive the core state with a nonsplit matrix built by
    // the nonsplit crate from trees-crate trees — the CFN pipeline.
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let n = 16;
    let mut state = BroadcastState::new(n);
    let mut rounds = 0;
    while state.broadcast_witness().is_none() {
        let m = treecast::nonsplit::generators::tree_product(n, &mut rng);
        assert!(m.is_nonsplit());
        state.apply_matrix(&m);
        rounds += 1;
        assert!(rounds < 50, "nonsplit rounds must broadcast quickly");
    }
    // Doubly-logarithmic: far below n rounds.
    assert!(rounds <= 10, "took {rounds} rounds");
}

#[test]
fn facade_reexports_are_wired() {
    // One line from every member crate through the facade.
    let _ = treecast::bitmatrix::BitSet::new(4);
    let _ = treecast::trees::generators::path(3);
    let _ = treecast::core::bounds::upper_bound(10);
    let _ = treecast::adversary::standard_lineup();
    let _ = treecast::solver::CanonMode::Exact;
    let _ = treecast::nonsplit::RandomNonsplit;
}
