//! The differential harness pinning the workload-aware beam refactor.
//!
//! Three cross-checks, each against an independent engine:
//!
//! * **greedy ≤ beam ≤ exact** — for `n ≤ 6` and every workload in
//!   {broadcast, 2-broadcast, gossip}, the beam's achieved round count is
//!   at least greedy descent's under the same pool/objective, and for
//!   broadcast it never exceeds the exact `t*(n)` recorded from the
//!   solver in `bounds::known_t_star` (the worst case over *all*
//!   adversaries — any replayable schedule must sit below it).
//! * **width 1 ≡ greedy** — a width-1, lookahead-0 beam replays greedy
//!   descent step for step under completion-dominated objectives.
//! * **lookahead 0 ≡ the old scorer** — the generic planner at depth 0
//!   reproduces, tree for tree, the pre-refactor broadcast-only beam
//!   (reimplemented verbatim below as the reference).

use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};

use proptest::prelude::*;

use treecast::adversary::{
    beam_search_plan, beam_search_workload_plan, survival_rank, ArborescencePool, BeamOptions,
    CandidateGen, GreedyAdversary, MinDisseminated, MinMaxReach, Objective, StructuredPool,
};
use treecast::core::{
    bounds, run_workload, Broadcast, BroadcastState, Gossip, KBroadcast, SequenceSource,
    SimulationConfig, Workload, WorkloadProgress,
};
use treecast::trees::RootedTree;

/// The workload grid of the harness: broadcast, 2-broadcast, gossip.
fn workload_by_index(i: usize) -> Box<dyn Workload> {
    match i {
        0 => Box::new(Broadcast),
        1 => Box::new(KBroadcast::new(2)),
        _ => Box::new(Gossip),
    }
}

/// Achieved completion round, with "never" ordered above every finite
/// time (the adversary's ideal outcome).
fn achieved(completion: Option<u64>) -> u64 {
    completion.unwrap_or(u64::MAX)
}

/// Greedy descent's completion time under the shared pool/objective.
fn greedy_time(n: usize, workload: &dyn Workload, cfg: SimulationConfig) -> Option<u64> {
    let mut greedy = GreedyAdversary::new(StructuredPool::new(), MinDisseminated::default());
    run_workload(n, &mut greedy, workload, cfg).completion_time
}

/// Beam completion time: plan offline over the whole replay horizon, then
/// replay the schedule through the public workload engine.
fn beam_time(
    n: usize,
    workload: &dyn Workload,
    width: usize,
    cfg: SimulationConfig,
) -> Option<u64> {
    let mut options = BeamOptions::for_n(n).with_width(width);
    options.max_rounds = cfg.max_rounds;
    let plan = beam_search_workload_plan(
        &BroadcastState::new(n),
        &mut StructuredPool::new(),
        &MinDisseminated::default(),
        workload,
        options,
    );
    let mut replay = SequenceSource::new(plan);
    run_workload(n, &mut replay, workload, cfg).completion_time
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// greedy ≤ beam ≤ exact t* (the latter for broadcast, where the
    /// solver's worst case over all adversaries is recorded).
    #[test]
    fn beam_sandwiched_between_greedy_and_exact(
        n in 2usize..7,
        width in 1usize..9,
        workload_idx in 0usize..3,
    ) {
        let workload = workload_by_index(workload_idx);
        let cfg = SimulationConfig::for_n(n);
        let greedy = greedy_time(n, workload.as_ref(), cfg);
        let beam = beam_time(n, workload.as_ref(), width, cfg);
        prop_assert!(
            achieved(beam) >= achieved(greedy),
            "beam (w={width}) {beam:?} lost to greedy {greedy:?} on {} at n = {n}",
            workload.name()
        );
        if workload_idx == 0 {
            let t_star = bounds::known_t_star(n as u64)
                .expect("exact frontier covers n ≤ 7");
            let b = beam.expect("broadcast always completes");
            let g = greedy.expect("broadcast always completes");
            prop_assert!(b <= t_star, "beam {b} exceeded exact t* = {t_star} at n = {n}");
            prop_assert!(g <= t_star, "greedy {g} exceeded exact t* = {t_star} at n = {n}");
        }
    }

    /// A width-1, lookahead-0 beam replays greedy descent step for step
    /// under a completion-dominated objective.
    #[test]
    fn width_one_beam_is_greedy_step_for_step(
        n in 2usize..9,
        workload_idx in 0usize..3,
    ) {
        let workload = workload_by_index(workload_idx);
        let cfg = SimulationConfig::for_n(n);
        let mut options = BeamOptions::for_n(n).with_width(1);
        options.max_rounds = cfg.max_rounds;
        let plan = beam_search_workload_plan(
            &BroadcastState::new(n),
            &mut StructuredPool::new(),
            &MinDisseminated::default(),
            workload.as_ref(),
            options,
        );

        // Step greedy by hand on the same pool/objective and compare
        // trees round for round.
        let mut pool = StructuredPool::new();
        let objective = MinDisseminated::default();
        let mut state = BroadcastState::new(n);
        for (i, planned) in plan.iter().enumerate() {
            let progress = WorkloadProgress {
                n,
                round: state.round(),
                tokens: n,
                disseminated: state.disseminated_count(),
            };
            if workload.is_complete(&progress) {
                break;
            }
            if i + 1 == plan.len() && plan.len() as u64 == cfg.max_rounds + 1 {
                // A capped plan ends with an arbitrary closing candidate,
                // not a greedy choice — nothing to compare.
                break;
            }
            let greedy_choice = pool
                .candidates(&state)
                .into_iter()
                .map(|t| (objective.score(&state, &t), t))
                .min_by_key(|(s, _)| *s)
                .map(|(_, t)| t)
                .expect("structured pool is non-empty");
            prop_assert!(
                planned == &greedy_choice,
                "plan diverged from greedy at round {} (n = {}, {}): {planned} vs {greedy_choice}",
                i + 1,
                n,
                workload.name()
            );
            state.apply(&greedy_choice);
        }

        // And the achieved times agree.
        let mut greedy = GreedyAdversary::new(StructuredPool::new(), MinDisseminated::default());
        let greedy_report = run_workload(n, &mut greedy, workload.as_ref(), cfg);
        let mut replay = SequenceSource::new(plan);
        let beam_report = run_workload(n, &mut replay, workload.as_ref(), cfg);
        prop_assert_eq!(beam_report.completion_time, greedy_report.completion_time);
    }

    /// Also pin width 1 ≡ greedy for the classic broadcast objective
    /// `MinMaxReach` (max reach is completion-dominated too).
    #[test]
    fn width_one_beam_is_greedy_for_max_reach(n in 2usize..10) {
        let cfg = SimulationConfig::for_n(n);
        let mut options = BeamOptions::for_n(n).with_width(1);
        options.max_rounds = cfg.max_rounds;
        let plan = beam_search_workload_plan(
            &BroadcastState::new(n),
            &mut StructuredPool::new(),
            &MinMaxReach,
            &Broadcast,
            options,
        );
        let mut pool = StructuredPool::new();
        let mut state = BroadcastState::new(n);
        for planned in &plan {
            if state.broadcast_witness().is_some() {
                break;
            }
            let greedy_choice = pool
                .candidates(&state)
                .into_iter()
                .map(|t| (MinMaxReach.score(&state, &t), t))
                .min_by_key(|(s, _)| *s)
                .map(|(_, t)| t)
                .expect("structured pool is non-empty");
            prop_assert_eq!(planned, &greedy_choice);
            state.apply(&greedy_choice);
        }
        prop_assert!(state.broadcast_witness().is_some(), "plan must broadcast");
    }
}

// ---------------------------------------------------------------------------
// The pre-refactor beam, reimplemented verbatim as the depth-0 reference.
// ---------------------------------------------------------------------------

fn state_fingerprint(state: &BroadcastState) -> u64 {
    let mut h = DefaultHasher::new();
    for y in 0..state.n() {
        state.heard_set(y).words().hash(&mut h);
    }
    h.finish()
}

/// The old `beam_search_plan`: broadcast-only, survival-ranked, no
/// lookahead — copied from the pre-refactor module.
fn reference_beam_plan<P: CandidateGen + ?Sized>(
    n: usize,
    pool: &mut P,
    options: BeamOptions,
) -> Vec<RootedTree> {
    #[derive(Clone)]
    struct Entry {
        state: BroadcastState,
        schedule: Vec<RootedTree>,
    }
    let root = Entry {
        state: BroadcastState::new(n),
        schedule: Vec::new(),
    };
    if root.state.broadcast_witness().is_some() {
        return pool.candidates(&root.state).into_iter().take(1).collect();
    }
    let mut beam = vec![root];
    let mut last_full_entry: Option<(Entry, RootedTree)> = None;
    let mut probe = BroadcastState::new(n);

    for _round in 0..options.max_rounds {
        let mut next: Vec<Entry> = Vec::new();
        let mut seen: HashSet<u64> = HashSet::new();
        for entry in &beam {
            for tree in pool.candidates(&entry.state) {
                probe.clone_from(&entry.state);
                probe.apply(&tree);
                if probe.broadcast_witness().is_some() {
                    if last_full_entry.is_none() {
                        last_full_entry = Some((entry.clone(), tree));
                    }
                    continue;
                }
                if seen.insert(state_fingerprint(&probe)) {
                    let mut schedule = entry.schedule.clone();
                    schedule.push(tree);
                    next.push(Entry {
                        state: probe.clone(),
                        schedule,
                    });
                }
            }
        }
        if next.is_empty() {
            break;
        }
        next.sort_by_key(|e| survival_rank(&e.state));
        next.truncate(options.width);
        last_full_entry = None;
        beam = next;
    }

    if let Some((entry, tree)) = last_full_entry {
        let mut schedule = entry.schedule;
        schedule.push(tree);
        return schedule;
    }
    let best = beam
        .into_iter()
        .min_by_key(|e| survival_rank(&e.state))
        .expect("beam is never empty");
    let mut schedule = best.schedule;
    if let Some(t) = pool.candidates(&best.state).into_iter().next() {
        schedule.push(t);
    }
    schedule
}

/// Depth-0 lookahead reproduces the pre-refactor scorer tree for tree —
/// this is the regression pin of the beam rewrite.
#[test]
fn depth_zero_beam_matches_pre_refactor_reference() {
    for n in [2usize, 4, 6, 8, 10] {
        for width in [1usize, 4, 16, 48] {
            let options = BeamOptions::for_n(n).with_width(width);
            let new = beam_search_plan(n, &mut StructuredPool::new(), options);
            let old = reference_beam_plan(n, &mut StructuredPool::new(), options);
            assert_eq!(new, old, "structured pool diverged at n = {n}, w = {width}");
        }
    }
    // And over the branching arborescence pool, which exercises forced
    // roots and reweighted candidates.
    for n in [4usize, 6, 8] {
        let options = BeamOptions::for_n(n).with_width(8);
        let new = beam_search_plan(n, &mut ArborescencePool::new(4), options);
        let old = reference_beam_plan(n, &mut ArborescencePool::new(4), options);
        assert_eq!(new, old, "arborescence pool diverged at n = {n}");
    }
}

/// The exact-solver sandwich holds for the strongest configured beam as
/// well: arborescence pool, survival scorer.
#[test]
fn survival_beam_stays_below_exact_t_star() {
    for n in 2..=6usize {
        let plan = beam_search_plan(
            n,
            &mut ArborescencePool::new(4),
            BeamOptions::for_n(n).with_width(16),
        );
        let mut replay = SequenceSource::new(plan);
        let t = run_workload(n, &mut replay, &Broadcast, SimulationConfig::for_n(n))
            .completion_time
            .expect("broadcast completes");
        let t_star = bounds::known_t_star(n as u64).expect("exact frontier covers n ≤ 7");
        assert!(t <= t_star, "n = {n}: beam {t} above exact {t_star}");
    }
}

/// Deeper lookahead stays inside the same sandwich (it may find better
/// stalls, never invalid ones).
#[test]
fn lookahead_beam_stays_sandwiched() {
    for n in 2..=6usize {
        for depth in [1u32, 2] {
            let plan = beam_search_workload_plan(
                &BroadcastState::new(n),
                &mut StructuredPool::new(),
                &MinDisseminated::default(),
                &Broadcast,
                BeamOptions::for_n(n).with_width(4).with_lookahead(depth),
            );
            let mut replay = SequenceSource::new(plan);
            let t = run_workload(n, &mut replay, &Broadcast, SimulationConfig::for_n(n))
                .completion_time
                .expect("broadcast completes");
            let t_star = bounds::known_t_star(n as u64).expect("covers n ≤ 7");
            assert!(t <= t_star, "n = {n}, d = {depth}: {t} > {t_star}");
        }
    }
}
