//! End-to-end solver pipeline: exact optima flow through the public API —
//! schedules replay in the engine, pass the certificates, and match the
//! theorem.

use treecast::core::{bounds, simulate_observed, CertObserver, SequenceSource, SimulationConfig};
use treecast::solver::{solve, solve_with, verify_schedule, CanonMode, SolveOptions};

#[test]
fn exact_values_match_the_zss_lower_bound() {
    // The headline experimental finding (E7): t*(T_n) = ⌈(3n−1)/2⌉ − 2 for
    // every n the solver reaches in test time.
    for n in 2..=5usize {
        let r = solve(n).expect("small n solves");
        assert_eq!(
            r.t_star,
            bounds::lower_bound(n as u64),
            "ZSS bound not tight at n = {n}?!"
        );
    }
}

#[test]
fn optimal_schedules_replay_and_certify() {
    for n in 2..=5usize {
        let r = solve(n).expect("small n solves");
        assert_eq!(r.schedule.len() as u64, r.t_star);
        assert_eq!(verify_schedule(n, &r.schedule), r.t_star);

        // Replaying through the engine with full certificates on.
        let mut cert = CertObserver::full();
        let mut source = SequenceSource::new(r.schedule.clone());
        let report =
            simulate_observed(n, &mut source, SimulationConfig::for_n(n), &mut [&mut cert]);
        assert!(cert.is_clean(), "n = {n}: {:?}", cert.violations());
        assert_eq!(report.broadcast_time, Some(r.t_star));
    }
}

#[test]
fn canonicalization_modes_agree_end_to_end() {
    for n in 2..=5usize {
        let mut values = Vec::new();
        for canon in [CanonMode::Exact, CanonMode::Fast, CanonMode::None] {
            let r = solve_with(
                n,
                SolveOptions {
                    canon,
                    skip_schedule: true,
                    ..Default::default()
                },
            )
            .expect("small n solves");
            values.push(r.t_star);
        }
        assert!(
            values.windows(2).all(|w| w[0] == w[1]),
            "canon modes disagree at n = {n}: {values:?}"
        );
    }
}

#[test]
fn exact_orbit_reduction_shrinks_the_search() {
    let exact = solve_with(
        5,
        SolveOptions {
            canon: CanonMode::Exact,
            skip_schedule: true,
            ..Default::default()
        },
    )
    .unwrap();
    let none = solve_with(
        5,
        SolveOptions {
            canon: CanonMode::None,
            skip_schedule: true,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(
        exact.stats.states_explored < none.stats.states_explored,
        "orbit reduction must shrink the memo: {} vs {}",
        exact.stats.states_explored,
        none.stats.states_explored
    );
}
