//! Smoke test: every module the `treecast` facade advertises must resolve
//! under its re-exported name, and the headline entry points must be
//! callable. This pins the public API surface the README documents.

use treecast::adversary::SurvivalAdversary;
use treecast::bitmatrix::{BitSet, BoolMatrix, PackedMatrix};
use treecast::core::{bounds, simulate, BroadcastState, SimulationConfig};
use treecast::nonsplit::cfn_product_is_nonsplit;
use treecast::solver::{solve_with, CanonMode, SolveOptions};
use treecast::trees::{generators, pruefer, random, RootedTree};

#[test]
fn bitmatrix_reexports_resolve() {
    let set = BitSet::new(4);
    assert_eq!(set.universe_size(), 4);
    assert!(BoolMatrix::identity(4).is_reflexive());
    let _ = PackedMatrix::identity(4);
}

#[test]
fn trees_reexports_resolve() {
    let path: RootedTree = generators::path(5);
    assert_eq!(pruefer::encode(&path).len(), 3);
    use treecast::trees; // the module path itself, as the docs spell it
    let star = trees::generators::star(5);
    assert_eq!(star.leaf_count(), 4);
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    assert_eq!(random::uniform(6, &mut rng).n(), 6);
}

#[test]
fn core_reexports_resolve() {
    assert!(bounds::lower_bound(100) <= bounds::upper_bound(100));
    let mut state = BroadcastState::new(3);
    state.apply(&generators::star(3));
    assert!(state.broadcast_witness().is_some());
}

#[test]
fn adversary_reexports_resolve() {
    let n = 8;
    let mut adversary = SurvivalAdversary::default();
    let report = simulate(n, &mut adversary, SimulationConfig::for_n(n));
    let t = report
        .broadcast_time
        .expect("survival adversary broadcasts");
    assert!(t <= bounds::upper_bound(n as u64));
}

#[test]
fn solver_reexports_resolve() {
    let result = solve_with(
        3,
        SolveOptions {
            canon: CanonMode::Exact,
            skip_schedule: true,
            threads: 1,
            ..Default::default()
        },
    )
    .expect("n = 3 solves");
    assert!(result.t_star >= 2);
    assert_eq!(Some(result.t_star), bounds::known_t_star(3));
    // The layered engine's expansion primitive is part of the surface.
    let mut gen = treecast::solver::SuccessorGen::new(3);
    let succs = gen.minimal_successors(treecast::solver::state::identity_state(3));
    assert!(!succs.is_empty());
}

#[test]
fn nonsplit_reexports_resolve() {
    // The CFN lemma instance the crate docs open with: n − 1 self-looped
    // rooted trees always multiply to a nonsplit graph.
    let trees = vec![
        generators::path(4),
        generators::star(4),
        generators::path(4),
    ];
    assert!(cfn_product_is_nonsplit(&trees));
}
