//! Fault-layer properties: the scenario engine degenerates to the plain
//! workload engine when quiet, replays recorded fault logs bit-identically,
//! and dropout faults are monotone (more faults never finish earlier).

use proptest::prelude::*;
use rand::rngs::StdRng;

use treecast::core::{
    run_workload, run_workload_faulty, run_workload_faulty_traced, Broadcast, BroadcastState,
    FaultSchedule, Gossip, KBroadcast, NoFaults, RoundFaults, SeededFaults, SequenceSource,
    SimulationConfig, StaticSource, Workload,
};
use treecast::trees::{generators, random, RootedTree};

/// A random tree schedule ending in a full star rotation, which forces
/// gossip (hence every workload below it) to complete when fault-free.
fn gossip_completing_schedule(n: usize, len: usize, rng: &mut StdRng) -> Vec<RootedTree> {
    let mut trees: Vec<RootedTree> = (0..len).map(|_| random::uniform(n, rng)).collect();
    trees.extend((0..n).map(|c| generators::star_with_center(n, c)));
    trees
}

fn workload_by_index(i: usize) -> Box<dyn Workload> {
    match i {
        0 => Box::new(Broadcast),
        1 => Box::new(KBroadcast::new(2)),
        _ => Box::new(Gossip),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// An empty loss schedule is round-for-round identical to the plain
    /// fault-free engine: same per-round product matrices, same report.
    #[test]
    fn quiet_faults_match_run_workload_round_for_round(
        seed in 0u64..1000,
        n in 2usize..9,
        workload_idx in 0usize..3,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let trees = gossip_completing_schedule(n, n, &mut rng);
        let workload = workload_by_index(workload_idx);
        let cfg = SimulationConfig::for_n(n);

        // Reference: the plain engine, stepped by hand so every round's
        // product matrix is captured.
        let mut reference_states = Vec::new();
        {
            let mut src = SequenceSource::new(trees.clone());
            let mut state = BroadcastState::new(n);
            let done = |s: &BroadcastState| {
                let progress = treecast::core::WorkloadProgress {
                    n,
                    round: s.round(),
                    tokens: n,
                    disseminated: s.disseminated_count(),
                };
                workload.is_complete(&progress)
            };
            use treecast::core::TreeSource;
            while !done(&state) && state.round() < cfg.max_rounds {
                let t = src.next_tree(&state);
                state.apply(&t);
                reference_states.push(state.product_matrix());
            }
        }

        let mut faulty_states = Vec::new();
        let mut all_quiet = true;
        let mut src = SequenceSource::new(trees.clone());
        let faulty = run_workload_faulty_traced(
            n,
            &mut src,
            workload.as_ref(),
            &mut NoFaults,
            cfg,
            |faults, _tree, state| {
                all_quiet &= faults.is_quiet();
                faulty_states.push(state.product_matrix());
            },
        );
        prop_assert!(all_quiet);
        prop_assert_eq!(&faulty_states, &reference_states);

        let mut src = SequenceSource::new(trees);
        let plain = run_workload(n, &mut src, workload.as_ref(), cfg);
        prop_assert_eq!(faulty.completion_time, plain.completion_time);
        prop_assert_eq!(faulty.broadcast_time, plain.broadcast_time);
        prop_assert_eq!(faulty.rounds, plain.rounds);
        prop_assert_eq!(faulty.disseminated, plain.disseminated);
        prop_assert_eq!(faulty.fault_log.len() as u64, faulty.rounds);
    }

    /// Replaying a recorded fault log (token loss + dynamic roots +
    /// dropout) reproduces the identical outcome, state for state.
    #[test]
    fn recorded_fault_log_replays_bit_identically(
        seed in 0u64..1000,
        n in 2usize..9,
        workload_idx in 0usize..3,
        loss in 0u32..40,
        drop in 0u32..30,
        root in 0u32..50,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let trees = gossip_completing_schedule(n, n, &mut rng);
        let workload = workload_by_index(workload_idx);
        let cfg = SimulationConfig::for_n(n).with_max_rounds(4 * n as u64);

        let mut model = SeededFaults::new(seed ^ 0xFA)
            .with_token_loss(loss)
            .with_dropout(drop, 2)
            .with_root_changes(root);
        let mut original_states = Vec::new();
        let mut src = SequenceSource::new(trees.clone());
        let original = run_workload_faulty_traced(
            n,
            &mut src,
            workload.as_ref(),
            &mut model,
            cfg,
            |_, _, state| original_states.push(state.product_matrix()),
        );

        let mut replay_states = Vec::new();
        let mut replay = FaultSchedule::replay(&original.fault_log);
        let mut src = SequenceSource::new(trees);
        let rerun = run_workload_faulty_traced(
            n,
            &mut src,
            workload.as_ref(),
            &mut replay,
            cfg,
            |_, _, state| replay_states.push(state.product_matrix()),
        );

        prop_assert_eq!(&replay_states, &original_states);
        prop_assert_eq!(rerun.completion_time, original.completion_time);
        prop_assert_eq!(rerun.broadcast_time, original.broadcast_time);
        prop_assert_eq!(rerun.rounds, original.rounds);
        prop_assert_eq!(rerun.disseminated, original.disseminated);
        prop_assert_eq!(&rerun.fault_log, &original.fault_log);
    }

    /// Dropout monotonicity on the static path: nesting the offline
    /// schedule (longer windows, more victims) never finishes broadcast
    /// earlier.
    #[test]
    fn dropout_monotonicity_on_static_paths(
        n in 3usize..10,
        start in 1u64..8,
        len_small in 0u64..6,
        extra in 0u64..6,
        victim in 1usize..9,
        second_victim in 1usize..9,
    ) {
        let victim = victim % (n - 1) + 1; // never the path root
        let second_victim = second_victim % (n - 1) + 1;
        let cfg = SimulationConfig::for_n(n);

        let window = |from: u64, len: u64, nodes: &[usize]| {
            let mut rounds = Vec::new();
            for r in 1..from + len {
                rounds.push(if r >= from {
                    RoundFaults {
                        offline: nodes.to_vec(),
                        ..RoundFaults::quiet()
                    }
                } else {
                    RoundFaults::quiet()
                });
            }
            FaultSchedule::new(rounds)
        };

        let time = |model: &mut FaultSchedule| {
            let mut src = StaticSource::new(generators::path(n));
            run_workload_faulty(n, &mut src, &Broadcast, model, cfg).completion_time
        };

        // Longer window, same victim.
        let t_small = time(&mut window(start, len_small, &[victim]));
        let t_large = time(&mut window(start, len_small + extra, &[victim]));
        // More victims, same window.
        let t_both = time(&mut window(
            start,
            len_small + extra,
            &[victim, second_victim],
        ));

        let rank = |t: Option<u64>| t.unwrap_or(u64::MAX);
        prop_assert!(
            rank(t_large) >= rank(t_small),
            "longer dropout finished earlier: {t_large:?} < {t_small:?}"
        );
        prop_assert!(
            rank(t_both) >= rank(t_large),
            "extra victim finished earlier: {t_both:?} < {t_large:?}"
        );
    }
}

/// Token loss can only delay (or stall) the static path, never speed it
/// up — and a lossy run's completion, when it happens, still comes from
/// the path root's token.
#[test]
fn token_loss_only_delays_the_path() {
    let n = 6;
    let cfg = SimulationConfig::for_n(n);
    let mut quiet = StaticSource::new(generators::path(n));
    let baseline = run_workload_faulty(n, &mut quiet, &Broadcast, &mut NoFaults, cfg)
        .completion_time
        .expect("fault-free path broadcasts");
    assert_eq!(baseline, (n - 1) as u64);

    for seed in 0..10u64 {
        let mut model = SeededFaults::new(seed).with_token_loss(30);
        let mut src = StaticSource::new(generators::path(n));
        let report = run_workload_faulty(n, &mut src, &Broadcast, &mut model, cfg);
        if let Some(t) = report.completion_time {
            assert!(t >= baseline, "seed {seed}: lossy run {t} beat {baseline}");
        }
    }
}
