//! The dense-oracle differential layer pinning the frontier-sparse engine:
//! for every workload × fault-model combination the sparse run must equal
//! the dense run **round for round** — per-round disseminated counts,
//! termination round, report fields, and the recorded fault log — and the
//! sparse log must replay bit-identically through [`FaultSchedule`].
//!
//! The dense side always runs the frontier source's
//! [`dense_twin`](FrontierSource::dense_twin), which produces the
//! identical tree sequence, so any divergence is the engine's fault, not
//! the adversary's.

use proptest::prelude::*;

use treecast::core::{
    run_workload_faulty, run_workload_faulty_traced, run_workload_frontier,
    run_workload_frontier_faulty, run_workload_frontier_faulty_traced, Broadcast, FaultModel,
    FaultSchedule, FrontierSource, Gossip, KBroadcast, NoFaults, RotatingRoot, SeededFaults,
    SimulationConfig, Workload, WorkloadReport,
};
use treecast::trees::generators;

/// Seeded fault rounds are unbounded streams, so runs under them cap the
/// round budget to keep the dense twin's materialized tree schedule (and
/// the dense O(n²) state) small.
const SEEDED_MAX_ROUNDS: u64 = 64;

fn workload_by_index(i: usize) -> Box<dyn Workload> {
    match i {
        0 => Box::new(Broadcast),
        1 => Box::new(KBroadcast::new(3)),
        _ => Box::new(Gossip),
    }
}

fn fault_model_by_index(i: usize, seed: u64) -> Box<dyn FaultModel> {
    match i {
        0 => Box::new(NoFaults),
        1 => Box::new(RotatingRoot::new(1 + (seed as usize % 3) as u64)),
        _ => Box::new(
            SeededFaults::new(seed)
                .with_token_loss(12)
                .with_dropout(8, 2)
                .with_root_changes(20),
        ),
    }
}

fn source_by_index(i: usize, n: usize, seed: u64) -> FrontierSource {
    match i {
        0 => FrontierSource::fixed(generators::path(n)),
        1 => FrontierSource::sequence(
            (0..n.min(9))
                .map(|c| generators::star_with_center(n, c))
                .collect(),
        ),
        _ => FrontierSource::seeded(n, seed),
    }
}

/// Runs the identical configuration on both engines, tracing both, and
/// asserts full equality: every report field, the fault logs, and the
/// per-round `(disseminated, tree root)` witness streams.
fn assert_differential(
    n: usize,
    mut sparse_src: FrontierSource,
    workload: &dyn Workload,
    sparse_faults: &mut dyn FaultModel,
    dense_faults: &mut dyn FaultModel,
    cfg: SimulationConfig,
    ctx: &str,
) -> WorkloadReport {
    let mut dense_src = sparse_src.dense_twin(cfg.max_rounds);

    let mut sparse_trace: Vec<(usize, usize)> = Vec::new();
    let sparse = run_workload_frontier_faulty_traced(
        n,
        &mut sparse_src,
        workload,
        sparse_faults,
        cfg,
        |_, tree, state| {
            // The structural invariant checker is live in debug builds; the
            // differential suite exercises it on every traced round.
            state.debug_validate();
            sparse_trace.push((state.disseminated_count(), tree.root()));
        },
    );

    let mut dense_trace: Vec<(usize, usize)> = Vec::new();
    let dense = run_workload_faulty_traced(
        n,
        &mut dense_src,
        workload,
        dense_faults,
        cfg,
        |_, tree, state| dense_trace.push((state.disseminated_count(), tree.root())),
    );

    assert_eq!(sparse.n, dense.n, "{ctx}: n");
    assert_eq!(sparse.workload, dense.workload, "{ctx}: workload name");
    assert_eq!(sparse.source, dense.source, "{ctx}: source label");
    assert_eq!(sparse.rounds, dense.rounds, "{ctx}: termination round");
    assert_eq!(sparse.outcome, dense.outcome, "{ctx}: outcome");
    assert_eq!(
        sparse.completion_time, dense.completion_time,
        "{ctx}: completion_time"
    );
    assert_eq!(
        sparse.broadcast_time, dense.broadcast_time,
        "{ctx}: broadcast_time"
    );
    assert_eq!(
        sparse.disseminated, dense.disseminated,
        "{ctx}: disseminated"
    );
    assert_eq!(sparse.tokens, dense.tokens, "{ctx}: tokens");
    assert_eq!(sparse.fault_log, dense.fault_log, "{ctx}: fault log");
    assert_eq!(
        sparse_trace, dense_trace,
        "{ctx}: per-round (disseminated, root) witness streams"
    );
    sparse
}

/// A sparse run's recorded fault log, replayed through
/// [`FaultSchedule::replay`] on *both* engines, must reproduce the run
/// bit-identically.
fn assert_replays(
    n: usize,
    src: &FrontierSource,
    workload: &dyn Workload,
    cfg: SimulationConfig,
    original: &WorkloadReport,
    ctx: &str,
) {
    let mut sparse_src = src.dense_twin(cfg.max_rounds);
    let mut replay = FaultSchedule::replay(&original.fault_log);
    let dense = run_workload_faulty(n, &mut sparse_src, workload, &mut replay, cfg);
    assert_eq!(
        dense.fault_log, original.fault_log,
        "{ctx}: dense replay log"
    );
    assert_eq!(
        dense.completion_time, original.completion_time,
        "{ctx}: dense replay completion"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The full cross product: {path, rotating stars, seeded-uniform}
    /// sources × {broadcast, 3-broadcast, gossip} × {quiet, rotating
    /// root, seeded losses+dropout+reroots}, at proptest-sampled sizes.
    #[test]
    fn sparse_equals_dense_round_for_round(
        n in 2usize..40,
        seed in proptest::num::u64::ANY,
        source_idx in 0usize..3,
        workload_idx in 0usize..3,
        fault_idx in 0usize..3,
    ) {
        let cfg = SimulationConfig::for_n(n).with_max_rounds(SEEDED_MAX_ROUNDS);
        let workload = workload_by_index(workload_idx);
        let mut sparse_faults = fault_model_by_index(fault_idx, seed);
        let mut dense_faults = fault_model_by_index(fault_idx, seed);
        let src = source_by_index(source_idx, n, seed);
        let report = assert_differential(
            n,
            src,
            workload.as_ref(),
            sparse_faults.as_mut(),
            dense_faults.as_mut(),
            cfg,
            &format!("n={n} seed={seed} src={source_idx} wl={workload_idx} faults={fault_idx}"),
        );
        assert_replays(
            n,
            &source_by_index(source_idx, n, seed),
            workload.as_ref(),
            cfg,
            &report,
            &format!("replay n={n} seed={seed} src={source_idx} wl={workload_idx} faults={fault_idx}"),
        );
    }
}

/// The acceptance ceiling: n = 1024 on every workload, quiet faults, a
/// static path (worst-case diameter) and a seeded-uniform source.
#[test]
fn n_1024_quiet_matches_dense() {
    let n = 1024;
    for workload_idx in 0..3 {
        let workload = workload_by_index(workload_idx);
        // Static path: completion is Θ(n) rounds, so give the full budget.
        let cfg = SimulationConfig::for_n(n);
        assert_differential(
            n,
            FrontierSource::fixed(generators::path(n)),
            workload.as_ref(),
            &mut NoFaults,
            &mut NoFaults,
            cfg,
            &format!("n=1024 path wl={workload_idx}"),
        );
        // Seeded uniform trees: expected O(log n) completion; the capped
        // budget keeps the dense twin's schedule small.
        let cfg = SimulationConfig::for_n(n).with_max_rounds(SEEDED_MAX_ROUNDS);
        assert_differential(
            n,
            FrontierSource::seeded(n, 7 + workload_idx as u64),
            workload.as_ref(),
            &mut NoFaults,
            &mut NoFaults,
            cfg,
            &format!("n=1024 seeded wl={workload_idx}"),
        );
    }
}

/// n = 1024 under the full seeded fault cocktail, including replay.
#[test]
fn n_1024_faulty_matches_dense_and_replays() {
    let n = 1024;
    let cfg = SimulationConfig::for_n(n).with_max_rounds(SEEDED_MAX_ROUNDS);
    let make_faults = || {
        SeededFaults::new(0xD1FF)
            .with_token_loss(10)
            .with_dropout(6, 3)
            .with_root_changes(15)
    };
    let report = assert_differential(
        n,
        FrontierSource::seeded(n, 99),
        &Broadcast,
        &mut make_faults(),
        &mut make_faults(),
        cfg,
        "n=1024 seeded faults",
    );
    assert!(
        !report.fault_log.is_empty(),
        "the cocktail must actually exercise faults"
    );
    assert!(
        report.fault_log.iter().any(|rf| !rf.losses.is_empty()),
        "token losses must occur"
    );
    assert!(
        report.fault_log.iter().any(|rf| !rf.offline.is_empty()),
        "dropout must occur"
    );
    assert_replays(
        n,
        &FrontierSource::seeded(n, 99),
        &Broadcast,
        cfg,
        &report,
        "n=1024 seeded faults replay",
    );
}

/// The plain (fault-free) frontier entry point matches `run_workload`'s
/// contract: same report as the faulty runner under `NoFaults`, with the
/// fault log cleared.
#[test]
fn plain_runner_is_quiet_faulty_runner_with_log_cleared() {
    let n = 257;
    let cfg = SimulationConfig::for_n(n).with_max_rounds(SEEDED_MAX_ROUNDS);
    let plain = run_workload_frontier(n, &mut FrontierSource::seeded(n, 5), &Gossip, cfg);
    let faulty = run_workload_frontier_faulty(
        n,
        &mut FrontierSource::seeded(n, 5),
        &Gossip,
        &mut NoFaults,
        cfg,
    );
    assert!(plain.fault_log.is_empty());
    assert_eq!(plain.completion_time, faulty.completion_time);
    assert_eq!(plain.broadcast_time, faulty.broadcast_time);
    assert_eq!(plain.rounds, faulty.rounds);
    assert_eq!(plain.disseminated, faulty.disseminated);
    assert!(faulty.fault_log.iter().all(|rf| rf.is_quiet()));
}
