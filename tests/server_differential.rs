//! Differential suite: the cache-backed query engine must be
//! bit-identical to the direct simulation engine, and the cached and
//! uncached server configurations must be bit-identical to each other —
//! across `{broadcast, k-broadcast, gossip, k-source-broadcast}` ×
//! `{no faults, seeded fault cocktail}`, comparing whole
//! [`WorkloadReport`]s (round counts, outcomes, and fault logs
//! included).

use rand::rngs::StdRng;
use rand::SeedableRng;
use treecast::core::{
    run_workload, run_workload_faulty, SeededFaults, SequenceSource, SimulationConfig,
};
use treecast::trees::{generators, random, RootedTree};
use treecast_server::{
    CacheConfig, Request, Response, Schedule, Server, ServerConfig, WorkloadSpec,
};

const N: usize = 10;

fn specs() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec::Broadcast,
        WorkloadSpec::KBroadcast { k: 3 },
        WorkloadSpec::Gossip,
        WorkloadSpec::KSourceBroadcast {
            sources: vec![0, N / 2],
        },
    ]
}

/// One adversarial schedule (rotating stars complete every workload)
/// and one seeded uniform-random schedule, long enough that gossip
/// finishes before the repeat-last tail.
fn schedules() -> Vec<Vec<RootedTree>> {
    let stars = (0..N).map(|c| generators::star_with_center(N, c)).collect();
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    let randoms = (0..4 * N).map(|_| random::uniform(N, &mut rng)).collect();
    vec![stars, randoms]
}

fn cached() -> Server {
    Server::new(ServerConfig {
        workers: 2,
        cache: CacheConfig::default(),
    })
}

fn uncached() -> Server {
    Server::new(ServerConfig {
        workers: 2,
        cache: CacheConfig::disabled(),
    })
}

fn cocktail() -> SeededFaults {
    SeededFaults::new(0xC0C7)
        .with_token_loss(25)
        .with_dropout(20, 2)
        .with_root_changes(10)
}

#[test]
fn fault_free_reports_agree_with_the_direct_engine() {
    for trees in schedules() {
        for spec in specs() {
            let workload = spec.workload(N).expect("valid spec");
            let mut source = SequenceSource::new(trees.clone());
            let want = run_workload(
                N,
                &mut source,
                workload.as_ref(),
                SimulationConfig::for_n(N),
            );

            let request = Request::BroadcastTime {
                tree_sequence: trees.clone(),
                workload: spec.clone(),
                rounds: 0,
            };
            let warm_server = cached();
            // Cold pass, then a warm pass over the now-populated cache.
            for pass in ["cold", "warm"] {
                let Response::BroadcastTime { report } = warm_server.serve(&request) else {
                    panic!("expected a broadcast-time response ({spec:?}, {pass})");
                };
                assert_eq!(report, want, "{spec:?} ({pass} cache)");
            }
            let Response::BroadcastTime { report } = uncached().serve(&request) else {
                panic!("expected a broadcast-time response ({spec:?}, uncached)");
            };
            assert_eq!(report, want, "{spec:?} (uncached)");
        }
    }
}

#[test]
fn seeded_fault_cocktails_replay_identically() {
    let mut cocktail_fired = false;
    for trees in schedules() {
        for spec in specs() {
            let workload = spec.workload(N).expect("valid spec");
            let mut source = SequenceSource::new(trees.clone());
            let mut faults = cocktail();
            let recorded = run_workload_faulty(
                N,
                &mut source,
                workload.as_ref(),
                &mut faults,
                SimulationConfig::for_n(N),
            );
            cocktail_fired |= recorded.fault_log.iter().any(|f| !f.is_quiet());

            let request = Request::ScenarioReplay {
                schedule: Schedule {
                    trees: trees.clone(),
                    faults: recorded.fault_log.clone(),
                    workload: spec.clone(),
                    rounds: 0,
                },
            };
            let warm_server = cached();
            for pass in ["cold", "warm"] {
                let Response::ScenarioReplay { report } = warm_server.serve(&request) else {
                    panic!("expected a scenario-replay response ({spec:?}, {pass})");
                };
                assert_eq!(report, recorded, "{spec:?} ({pass} cache)");
                assert_eq!(report.fault_log, recorded.fault_log, "{spec:?} fault log");
            }
            let Response::ScenarioReplay { report } = uncached().serve(&request) else {
                panic!("expected a scenario-replay response ({spec:?}, uncached)");
            };
            assert_eq!(report, recorded, "{spec:?} (uncached)");
        }
    }
    assert!(cocktail_fired, "the seeded cocktail never applied a fault");
}

#[test]
fn batched_serving_agrees_with_serial_serving() {
    let requests: Vec<Request> = schedules()
        .into_iter()
        .flat_map(|trees| {
            specs().into_iter().map(move |spec| Request::BroadcastTime {
                tree_sequence: trees.clone(),
                workload: spec,
                rounds: 0,
            })
        })
        .collect();
    let server = cached();
    let serial: Vec<Response> = requests.iter().map(|r| server.serve(r)).collect();
    let batched = server.serve_batch(&requests);
    assert_eq!(batched, serial);
    // The LRU/arena structural checker is live in debug builds: after a
    // serial pass plus a concurrent batch, every shard must still be sound.
    server.cache().debug_validate();
}
