//! Cross-crate property tests: the paper's structural facts must hold for
//! every adversary and every random tree sequence the workspace can
//! produce.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use treecast::adversary::{FamilyRandomAdversary, SurvivalAdversary, UniformRandomAdversary};
use treecast::bitmatrix::BoolMatrix;
use treecast::core::{bounds, simulate_observed, BroadcastState, CertObserver, SimulationConfig};
use treecast::trees::{random, RootedTree};

/// Column-view incremental state must equal the literal Definition 2.1
/// product for arbitrary random tree sequences.
#[test]
fn column_view_equals_matrix_product() {
    let mut rng = StdRng::seed_from_u64(101);
    for n in [2usize, 3, 5, 9, 17] {
        let mut state = BroadcastState::new(n);
        let mut product = BoolMatrix::identity(n);
        for round in 0..2 * n {
            let tree = random::uniform(n, &mut rng);
            state.apply(&tree);
            product = product.compose(&tree.to_matrix(true));
            assert_eq!(
                state.product_matrix(),
                product,
                "n = {n}, diverged at round {round}"
            );
        }
    }
}

/// Monotonicity + strict progress + the Theorem 3.1 upper bound, checked
/// by the certificate observer on live runs of three adversaries.
#[test]
fn certificates_hold_for_all_adversaries() {
    for n in [2usize, 6, 13, 25] {
        for seed in 0..3u64 {
            let mut checks: Vec<(&str, Box<dyn treecast::core::TreeSource>)> = vec![
                ("uniform", Box::new(UniformRandomAdversary::new(seed))),
                ("family", Box::new(FamilyRandomAdversary::new(seed))),
                ("survival", Box::new(SurvivalAdversary::default())),
            ];
            for (name, source) in checks.iter_mut() {
                let mut cert = CertObserver::full();
                let report =
                    simulate_observed(n, source, SimulationConfig::for_n(n), &mut [&mut cert]);
                assert!(
                    cert.is_clean(),
                    "{name} at n = {n}, seed {seed}: {:?}",
                    cert.violations()
                );
                let t = report.broadcast_time.expect("must broadcast");
                assert!(t <= bounds::upper_bound(n as u64));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every product of self-looped trees is reflexive and monotone.
    #[test]
    fn products_are_reflexive_and_monotone(seed in 0u64..1000, n in 2usize..10) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut product = BoolMatrix::identity(n);
        for _ in 0..n {
            let tree = random::uniform(n, &mut rng);
            let next = product.compose(&tree.to_matrix(true));
            prop_assert!(next.is_reflexive());
            prop_assert!(product.is_submatrix_of(&next));
            product = next;
        }
    }

    /// The broadcast witness, once present, never disappears.
    #[test]
    fn witnesses_are_stable(seed in 0u64..1000, n in 2usize..9) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut state = BroadcastState::new(n);
        let mut witnessed = false;
        for _ in 0..4 * n {
            state.apply(&random::uniform(n, &mut rng));
            let has = state.broadcast_witness().is_some();
            prop_assert!(!witnessed || has, "witness vanished");
            witnessed = has;
        }
        prop_assert!(witnessed, "4n random rounds must broadcast");
    }

    /// Prüfer round-trips through the tree representation.
    #[test]
    fn pruefer_roundtrip(seed in 0u64..1000, n in 3usize..40) {
        let mut rng = StdRng::seed_from_u64(seed);
        let tree = random::uniform(n, &mut rng);
        let seq = treecast::trees::pruefer::encode(&tree);
        let back = treecast::trees::pruefer::decode_rooted(&seq, tree.root()).unwrap();
        prop_assert_eq!(back.parents(), tree.parents());
    }

    /// Exact-k generators hold their contract for any k.
    #[test]
    fn exact_k_generators(seed in 0u64..500, n in 3usize..30, k_frac in 0.0f64..1.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let k = 1 + ((n - 2) as f64 * k_frac) as usize;
        let leaves: RootedTree = random::with_exact_leaves(n, k, &mut rng);
        prop_assert_eq!(leaves.leaf_count(), k);
        let inner = random::with_exact_inner(n, k, &mut rng);
        prop_assert_eq!(inner.inner_count(), k);
    }

    /// The sandwich formulas never cross and the upper bound is ~2.42 n.
    #[test]
    fn bound_formulas_consistent(n in 1u64..100_000) {
        prop_assert!(bounds::lower_bound(n) <= bounds::upper_bound(n));
        let ub = bounds::upper_bound(n) as f64;
        let target = (1.0 + 2f64.sqrt()) * n as f64;
        prop_assert!((ub - target).abs() <= 2.0);
    }
}
