//! `treecast` — broadcasting time in dynamic rooted trees.
//!
//! A full reproduction of *"Brief Announcement: Broadcasting Time in
//! Dynamic Rooted Trees is Linear"* (Antoine El-Hayek, Monika Henzinger,
//! Stefan Schmid — PODC 2022, arXiv:2211.11352): the synchronous broadcast
//! model over adversarial rooted-tree rounds, the bound formulas of
//! Theorem 3.1 and Figure 1, a zoo of delaying adversaries, an exact
//! worst-case solver for small `n`, and the nonsplit-graph machinery of
//! the prior bounds.
//!
//! This facade crate re-exports the member crates under stable names:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`bitmatrix`] | `treecast-bitmatrix` | bitsets, boolean adjacency matrices, the Definition 2.1 product |
//! | [`trees`] | `treecast-trees` | rooted trees, generators, Prüfer codes, enumeration, arborescences |
//! | [`core`] | `treecast-core` | the model, simulation engine, bounds, metrics, certificates |
//! | [`adversary`] | `treecast-adversary` | delaying strategies, candidate pools, beam search, tournaments |
//! | [`solver`] | `treecast-solver` | exact `t*(T_n)` by state-space search |
//! | [`nonsplit`] | `treecast-nonsplit` | nonsplit graphs, the CFN lemma, FNW dissemination |
//! | [`montecarlo`] | `treecast-montecarlo` | seeded Monte Carlo estimation over the fault layer: replica pools, online statistics, phase-transition sweeps |
//! | [`emulation`] | `treecast-emulation` | asynchronous push/pull gossip emulation over adversary trees, knob-bounded, pinned to the synchronous model when unconstrained |
//!
//! # Quickstart
//!
//! ```
//! use treecast::core::{bounds, simulate, SimulationConfig};
//! use treecast::adversary::SurvivalAdversary;
//!
//! let n = 16;
//! let mut adversary = SurvivalAdversary::default();
//! let report = simulate(n, &mut adversary, SimulationConfig::for_n(n));
//! let t = report.broadcast_time.unwrap();
//! assert!(t > (n as u64) - 1, "beats the static path");
//! assert!(t <= bounds::upper_bound(n as u64), "Theorem 3.1 upper bound");
//! ```
//!
//! See the `examples/` directory for runnable scenarios and the
//! `experiments` binary (`crates/bench`) for the full table/figure
//! reproduction harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use treecast_adversary as adversary;
pub use treecast_bitmatrix as bitmatrix;
pub use treecast_core as core;
pub use treecast_emulation as emulation;
pub use treecast_montecarlo as montecarlo;
pub use treecast_nonsplit as nonsplit;
pub use treecast_solver as solver;
pub use treecast_trees as trees;
