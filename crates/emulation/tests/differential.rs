//! The pinning differential: an unconstrained gossip emulation is the
//! synchronous model, round for round.
//!
//! * per-round holdings equal the dense engine's heard-from rows on all
//!   three replica tree sources, quiet and under a seeded fault
//!   cocktail;
//! * the full [`WorkloadReport`] (completion time, broadcast time,
//!   fault log, dissemination counts) matches across the three workload
//!   families, up to n = 1024;
//! * property tests: replaying an emulated run's fault log through
//!   [`FaultSchedule::replay`] reproduces it bit-identically for
//!   arbitrary seeds and knob settings, and quiet emulations agree with
//!   the synchronous engine for arbitrary seeds;
//! * constrained knobs only ever delay completion, never accelerate it
//!   past the model.

use proptest::prelude::*;
use treecast_core::scenario::{FaultSchedule, NoFaults, SeededFaults};
use treecast_core::{
    run_workload_faulty, run_workload_faulty_traced, Broadcast, FrontierSource, Gossip,
    KSourceBroadcast, SequenceSource, SimulationConfig, StaticSource, TreeSource, Workload,
    WorkloadReport,
};
use treecast_emulation::{run_emulation, run_emulation_traced, GossipKnobs};
use treecast_trees::generators;

/// The three replica-layer tree sources, as fresh dense sources: the
/// static path, a rotating-center star sequence, and a seeded uniform
/// stream (via the frontier source's dense twin, the exact stream the
/// replica layer replays).
fn sources(n: usize, tree_seed: u64, budget: u64) -> Vec<(&'static str, Box<dyn TreeSource>)> {
    let stars: Vec<_> = (0..n).map(|c| generators::star_with_center(n, c)).collect();
    vec![
        ("path", Box::new(StaticSource::new(generators::path(n)))),
        ("stars", Box::new(SequenceSource::new(stars))),
        (
            "seeded",
            FrontierSource::seeded(n, tree_seed).dense_twin(budget),
        ),
    ]
}

/// Runs the same (source, workload, faults) cell through the
/// unconstrained emulation and the dense synchronous engine, comparing
/// the *full* per-round evolution: normalized faults and every peer's
/// holdings against every node's heard-from row.
fn assert_round_for_round(
    n: usize,
    label: &str,
    mut emu_source: Box<dyn TreeSource>,
    mut sync_source: Box<dyn TreeSource>,
    workload: &dyn Workload,
    mut emu_faults: impl treecast_core::FaultModel,
    mut sync_faults: impl treecast_core::FaultModel,
    config: SimulationConfig,
) {
    let mut emu_rounds: Vec<Vec<Vec<usize>>> = Vec::new();
    let emulated = run_emulation_traced(
        n,
        &mut emu_source,
        workload,
        &GossipKnobs::unconstrained(),
        &mut emu_faults,
        config,
        |_, _, emu| {
            emu_rounds.push((0..n).map(|v| emu.holdings(v).iter().collect()).collect());
        },
    );
    let mut sync_rounds: Vec<Vec<Vec<usize>>> = Vec::new();
    let model = run_workload_faulty_traced(
        n,
        &mut sync_source,
        workload,
        &mut sync_faults,
        config,
        |_, _, state| {
            sync_rounds.push(
                (0..n)
                    .map(|y| state.heard_set(y).into_iter().collect())
                    .collect(),
            );
        },
    );
    assert_eq!(emulated, model, "{label}: reports diverge");
    assert_eq!(emu_rounds.len(), sync_rounds.len(), "{label}: round counts");
    for (round, (e, s)) in emu_rounds.iter().zip(&sync_rounds).enumerate() {
        assert_eq!(e, s, "{label}: holdings diverge in round {}", round + 1);
    }
}

#[test]
fn quiet_emulation_is_the_synchronous_model_round_for_round() {
    for n in [2usize, 9, 33] {
        let budget = 8 * n as u64 + 16;
        let config = SimulationConfig::for_n(n);
        let emu = sources(n, 0xD1FF ^ n as u64, budget);
        let sync = sources(n, 0xD1FF ^ n as u64, budget);
        for ((label, emu_src), (_, sync_src)) in emu.into_iter().zip(sync) {
            assert_round_for_round(
                n,
                &format!("quiet {label} n={n}"),
                emu_src,
                sync_src,
                &KSourceBroadcast::evenly_spread(n, 1.max(n / 3)),
                NoFaults,
                NoFaults,
                config,
            );
        }
    }
}

#[test]
fn faulty_emulation_is_the_synchronous_model_round_for_round() {
    // The seeded cocktail exercises loss, dropout windows and dynamic
    // re-rooting together; the streams on both sides are the same seed.
    let n = 17;
    let budget = 160;
    let config = SimulationConfig::gossip_for_n(n).with_max_rounds(budget);
    for seed in [3u64, 0xC0C0, 0xFA417] {
        let cocktail = || {
            SeededFaults::new(seed)
                .with_token_loss(15)
                .with_dropout(10, 2)
                .with_root_changes(20)
        };
        let emu = sources(n, seed, budget);
        let sync = sources(n, seed, budget);
        for ((label, emu_src), (_, sync_src)) in emu.into_iter().zip(sync) {
            assert_round_for_round(
                n,
                &format!("faulty {label} seed={seed}"),
                emu_src,
                sync_src,
                &Gossip,
                cocktail(),
                cocktail(),
                config,
            );
        }
    }
}

#[test]
fn workload_families_match_at_n_1024() {
    // The acceptance-scale check: the three workload families at the
    // dense engine's ceiling, report-level equality (per-round snapshots
    // would be O(n² · rounds) — the small-n tests above cover those).
    let n = 1024;

    // broadcast on the static path: the 1023-round diameter walk.
    let config = SimulationConfig::for_n(n);
    let mut a = StaticSource::new(generators::path(n));
    let mut b = StaticSource::new(generators::path(n));
    let knobs = GossipKnobs::unconstrained();
    let emulated = run_emulation(n, &mut a, &Broadcast, &knobs, &mut NoFaults, config);
    let model = run_workload_faulty(n, &mut b, &Broadcast, &mut NoFaults, config);
    assert_eq!(emulated, model, "broadcast/path");
    assert_eq!(emulated.completion_time, Some(1023));

    // gossip on the seeded uniform stream: the O(log n) regime.
    let budget = 704; // 64·⌈log₂ 1024⌉, the replica layer's budget
    let config = SimulationConfig::gossip_for_n(n).with_max_rounds(budget);
    let mut a = FrontierSource::seeded(n, 0xE15).dense_twin(budget);
    let mut b = FrontierSource::seeded(n, 0xE15).dense_twin(budget);
    let emulated = run_emulation(n, &mut a, &Gossip, &knobs, &mut NoFaults, config);
    let model = run_workload_faulty(n, &mut b, &Gossip, &mut NoFaults, config);
    assert_eq!(emulated, model, "gossip/seeded");
    assert!(emulated.completion_time.is_some(), "gossip must finish");

    // k-source broadcast on rotating star centers: center c of round
    // c + 1 spreads tokens 0..=c, so k = 4 evenly spread sources
    // complete exactly when center 768 has spoken.
    let stars: Vec<_> = (0..n).map(|c| generators::star_with_center(n, c)).collect();
    let workload = KSourceBroadcast::evenly_spread(n, 4);
    let config = SimulationConfig::for_n(n);
    let mut a = SequenceSource::new(stars.clone());
    let mut b = SequenceSource::new(stars);
    let emulated = run_emulation(n, &mut a, &workload, &knobs, &mut NoFaults, config);
    let model = run_workload_faulty(n, &mut b, &workload, &mut NoFaults, config);
    assert_eq!(emulated, model, "k-source/stars");
    assert_eq!(emulated.completion_time, Some(769));
}

#[test]
fn constrained_knobs_only_delay_completion() {
    // Tightening the bandwidth cap is monotone on the star broadcast,
    // and no cap may beat the synchronous model's time.
    let n = 24;
    let config = SimulationConfig::for_n(n);
    let mut source = StaticSource::new(generators::star(n));
    let model = run_workload_faulty(n, &mut source, &Broadcast, &mut NoFaults, config);
    let mut prev = model.completion_time.expect("star broadcasts");
    for bandwidth in [16u32, 4, 1] {
        let mut source = StaticSource::new(generators::star(n));
        let capped = run_emulation(
            n,
            &mut source,
            &Broadcast,
            &GossipKnobs::unconstrained().with_bandwidth(bandwidth),
            &mut NoFaults,
            config,
        );
        let time = capped.completion_time.expect("caps only delay");
        assert!(
            time >= prev,
            "bandwidth {bandwidth}: {time} beats the looser cap's {prev}"
        );
        prev = time;
    }
}

/// A knob grid point for the replay property: bounded caps so runs stay
/// short, plus the unconstrained corner.
fn knob_grid(which: u8) -> GossipKnobs {
    match which % 4 {
        0 => GossipKnobs::unconstrained(),
        1 => GossipKnobs::unconstrained().with_bandwidth(1),
        2 => GossipKnobs::unconstrained().with_fanout(2).with_batch(3),
        _ => GossipKnobs::unconstrained()
            .with_bandwidth(2)
            .with_discipline(treecast_emulation::QueueDiscipline::SmallestFirst),
    }
}

fn run_emulated_cell(
    n: usize,
    seed: u64,
    knobs: &GossipKnobs,
    faults: &mut dyn treecast_core::FaultModel,
    budget: u64,
) -> WorkloadReport {
    let workload = KSourceBroadcast::evenly_spread(n, 2.min(n));
    let mut source = StaticSource::new(generators::path(n));
    let _ = seed;
    run_emulation(
        n,
        &mut source,
        &workload,
        knobs,
        faults,
        SimulationConfig::for_n(n).with_max_rounds(budget),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Replaying an emulated run's recorded fault log reproduces the
    /// run bit-identically — for any seed and any knob grid point.
    #[test]
    fn fault_log_replay_is_bit_identical(seed in proptest::num::u64::ANY, which in 0u8..4) {
        let n = 11;
        let budget = 64;
        let knobs = knob_grid(which);
        let mut seeded = SeededFaults::new(seed)
            .with_token_loss(12)
            .with_dropout(8, 2)
            .with_root_changes(10);
        let original = run_emulated_cell(n, seed, &knobs, &mut seeded, budget);
        prop_assert_eq!(original.fault_log.len(), original.rounds as usize);
        let mut replay = FaultSchedule::replay(&original.fault_log);
        let replayed = run_emulated_cell(n, seed, &knobs, &mut replay, budget);
        prop_assert_eq!(&original, &replayed);
    }

    /// For any fault seed, the unconstrained emulation equals the
    /// synchronous engine on all three replica tree sources.
    #[test]
    fn unconstrained_emulation_matches_for_any_seed(seed in proptest::num::u64::ANY) {
        let n = 13;
        let budget = 96;
        let config = SimulationConfig::for_n(n).with_max_rounds(budget);
        let workload = KSourceBroadcast::evenly_spread(n, 3);
        let emu = sources(n, seed, budget);
        let sync = sources(n, seed, budget);
        for ((label, mut emu_src), (_, mut sync_src)) in emu.into_iter().zip(sync) {
            let mut fa = SeededFaults::new(seed).with_token_loss(18).with_dropout(12, 3);
            let mut fb = SeededFaults::new(seed).with_token_loss(18).with_dropout(12, 3);
            let emulated = run_emulation(
                n, &mut emu_src, &workload, &GossipKnobs::unconstrained(), &mut fa, config,
            );
            let model = run_workload_faulty(n, &mut sync_src, &workload, &mut fb, config);
            prop_assert!(emulated == model, "{} diverged at seed {}", label, seed);
        }
    }
}
