//! Asynchronous push/pull gossip-protocol emulation over
//! adversary-controlled round trees, pinned round-for-round to the
//! synchronous engines.
//!
//! The paper's model is synchronous: each round the adversary picks a
//! rooted tree and every edge transfers the parent's whole heard-from
//! set at once. Real gossip deployments are not like that — peers
//! advertise what they hold, request what they miss, and serve requests
//! under bandwidth, fan-out and batching limits, with messages queueing
//! across rounds. This crate runs that asynchronous protocol over the
//! *same* adversarial tree schedules, fault models and workloads as the
//! rest of the workspace, and answers the question the synchronous
//! model cannot: how much completion time do the protocol's resource
//! limits add on top of the adversary?
//!
//! * [`protocol`] — `n` simulated peers ([`EmulationState`]) running a
//!   deterministic advert → request → deliver exchange through per-peer
//!   FIFO queues, with [`GossipKnobs`] (bandwidth cap, advert fan-out,
//!   batch size, queue discipline) as scenario knobs;
//! * [`runner`] — [`run_emulation`], the emulation twin of the
//!   synchronous `run_workload_faulty`: identical loop order, identical
//!   fault normalization and logging, identical completion semantics,
//!   so `FaultSchedule::replay` reproduces emulated runs bit-identically
//!   too;
//! * [`spec`] — [`EmulationSpec`], a
//!   [`treecast_core::ReplicaSource`] implementation, which plugs
//!   emulated cells into `treecast-montecarlo`'s estimators, sweeps and
//!   critical-value readout verbatim, stream-paired seed-for-seed with
//!   the synchronous cells; [`EmuSweepDim`] makes the knobs sweepable
//!   dimensions.
//!
//! The pinning contract, enforced by this crate's differential tests
//! and audited by `analyze --determinism` as the workspace's fifth
//! threaded subsystem: with every knob unconstrained, an emulated run
//! equals the synchronous run *report-for-report* (completion time,
//! broadcast time, fault log) on the same trees, faults and workload —
//! asynchrony only appears when a knob constrains the protocol.
//!
//! ```
//! use treecast_core::scenario::NoFaults;
//! use treecast_core::{Broadcast, SimulationConfig, StaticSource};
//! use treecast_emulation::{run_emulation, GossipKnobs};
//! use treecast_trees::generators;
//!
//! let n = 8;
//! let cfg = SimulationConfig::for_n(n);
//! let mut source = StaticSource::new(generators::star(n));
//! // Unconstrained: the star broadcasts in 1 round, like the model.
//! let free = run_emulation(n, &mut source, &Broadcast,
//!     &GossipKnobs::unconstrained(), &mut NoFaults, cfg);
//! assert_eq!(free.completion_time, Some(1));
//! // One payload per peer per round: the same broadcast takes n − 1.
//! let mut source = StaticSource::new(generators::star(n));
//! let capped = run_emulation(n, &mut source, &Broadcast,
//!     &GossipKnobs::unconstrained().with_bandwidth(1), &mut NoFaults, cfg);
//! assert_eq!(capped.completion_time, Some(7));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod protocol;
pub mod runner;
pub mod spec;

pub use protocol::{EmulationState, GossipKnobs, QueueDiscipline, TokenSet};
pub use runner::{run_emulation, run_emulation_traced};
pub use spec::{EmuSweepDim, EmulationSpec};
