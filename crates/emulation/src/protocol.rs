//! The gossip protocol: token bitsets, per-peer FIFO message queues,
//! scenario knobs, and the five-phase round step.
//!
//! One [`EmulationState`] holds `n` peers; peer `v` starts holding only
//! its own token `v`. Where the synchronous engines union whole
//! heard-from rows in one `state.apply(tree)` step, the emulation moves
//! tokens with explicit messages, in five phases per round:
//!
//! 1. **advert** — every online peer offers a snapshot of its holdings
//!    to its online children in the round tree, at most
//!    [`GossipKnobs::fanout`] children per round (the start child
//!    rotates with the round index, so no child starves under a cap);
//! 2. **request** — every online peer works through its advert queue
//!    (at most [`GossipKnobs::batch`] messages) and asks each
//!    advertiser for the offered tokens it misses, deduplicated within
//!    the round so two adverts never trigger two requests for one
//!    token;
//! 3. **serve** — every online peer answers its request queue (batch
//!    cap again; at most [`GossipKnobs::bandwidth`] token payloads per
//!    round; [`GossipKnobs::discipline`] picks the order), re-queueing
//!    the unsent remainder of a partially served grant at the front of
//!    its queue;
//! 4. **integrate** — every peer unions the tokens delivered to it this
//!    round into its holdings;
//! 5. **lose** — the round's loss victims forget every foreign token
//!    (their message queues survive: loss is a memory fault, not a
//!    network fault).
//!
//! With every knob unconstrained a round collapses to "each child gains
//! exactly its parent's start-of-round holdings" — the synchronous
//! [`treecast_core::BroadcastState::apply`] step — and every queue is
//! empty again at the round boundary. That collapse is the crate's
//! pinning differential (see `tests/differential.rs`). With caps on,
//! adverts and requests genuinely persist in the FIFO queues across
//! rounds and dissemination lags the synchronous model; the lag is what
//! experiment E15 measures.

use std::collections::VecDeque;

use treecast_core::scenario::RoundFaults;
use treecast_trees::{NodeId, RootedTree};

/// A set of token ids over a fixed universe `0..n`, as a plain bitset.
///
/// This is the message payload type of the protocol: holdings
/// snapshots, wants, grants. (It deliberately does not reuse
/// `treecast-bitmatrix` rows — those are matrix-shaped and shared; a
/// payload is owned, cloned into messages, and split by bandwidth
/// caps.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenSet {
    n: usize,
    words: Vec<u64>,
}

impl TokenSet {
    /// The empty set over universe `0..n`.
    #[must_use]
    pub fn empty(n: usize) -> Self {
        TokenSet {
            n,
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// The singleton `{token}` over universe `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `token >= n`.
    #[must_use]
    pub fn singleton(n: usize, token: usize) -> Self {
        let mut set = TokenSet::empty(n);
        set.insert(token);
        set
    }

    /// Universe size.
    #[must_use]
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Number of tokens in the set.
    #[must_use]
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` when no token is present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Membership test.
    ///
    /// # Panics
    ///
    /// Panics if `token` is outside the universe.
    #[must_use]
    pub fn contains(&self, token: usize) -> bool {
        assert!(token < self.n, "token {token} outside universe {}", self.n);
        self.words[token / 64] >> (token % 64) & 1 == 1
    }

    /// Inserts `token`; returns `true` if it was newly added.
    ///
    /// # Panics
    ///
    /// Panics if `token` is outside the universe.
    pub fn insert(&mut self, token: usize) -> bool {
        assert!(token < self.n, "token {token} outside universe {}", self.n);
        let word = &mut self.words[token / 64];
        let mask = 1u64 << (token % 64);
        let fresh = *word & mask == 0;
        *word |= mask;
        fresh
    }

    /// `self ∪= other`.
    ///
    /// # Panics
    ///
    /// Panics on a universe mismatch.
    pub fn union_with(&mut self, other: &TokenSet) {
        assert_eq!(self.n, other.n, "token-universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// `self ∖= other`.
    ///
    /// # Panics
    ///
    /// Panics on a universe mismatch.
    pub fn subtract(&mut self, other: &TokenSet) {
        assert_eq!(self.n, other.n, "token-universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// `self ∩ other`, as a new set.
    ///
    /// # Panics
    ///
    /// Panics on a universe mismatch.
    #[must_use]
    pub fn intersection(&self, other: &TokenSet) -> TokenSet {
        assert_eq!(self.n, other.n, "token-universe mismatch");
        TokenSet {
            n: self.n,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
        }
    }

    /// Removes and returns the `cap` lowest-numbered tokens (all of
    /// them, if fewer are present) — how a bandwidth cap splits a
    /// grant into the sent part and the re-queued remainder.
    #[must_use]
    pub fn take_first(&mut self, cap: usize) -> TokenSet {
        let mut taken = TokenSet::empty(self.n);
        let mut left = cap;
        for (word, out) in self.words.iter_mut().zip(taken.words.iter_mut()) {
            while left > 0 && *word != 0 {
                let low = *word & word.wrapping_neg();
                *word ^= low;
                *out |= low;
                left -= 1;
            }
            if left == 0 {
                break;
            }
        }
        taken
    }

    /// Iterates the tokens in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.words.len()).flat_map(move |wi| {
            let mut word = self.words[wi];
            std::iter::from_fn(move || {
                if word == 0 {
                    None
                } else {
                    let bit = word.trailing_zeros() as usize;
                    word &= word - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }
}

/// How a serving peer orders its request queue.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum QueueDiscipline {
    /// Serve requests in arrival order.
    #[default]
    Fifo,
    /// Serve the smallest outstanding want first each round (a
    /// shortest-job-first variant; stable, so equal sizes keep arrival
    /// order).
    SmallestFirst,
}

/// The scenario knobs of the protocol — each one a first-class sweep
/// dimension through [`crate::EmuSweepDim`]. `None` means
/// unconstrained; with every knob unconstrained the emulation is
/// round-for-round the synchronous model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GossipKnobs {
    /// Max token payloads a peer may deliver per round (partial grants
    /// are re-queued at the front of the request queue).
    pub bandwidth: Option<u32>,
    /// Max children a peer adverts to per round (the start child
    /// rotates with the round index).
    pub fanout: Option<u32>,
    /// Max messages a peer processes per queue per round (adverts in
    /// the request phase, requests in the serve phase).
    pub batch: Option<u32>,
    /// Request-queue service order.
    pub discipline: QueueDiscipline,
}

impl GossipKnobs {
    /// No caps, FIFO service — the configuration pinned to the
    /// synchronous engines.
    #[must_use]
    pub fn unconstrained() -> Self {
        GossipKnobs::default()
    }

    /// Caps deliveries at `tokens` payloads per peer per round.
    #[must_use]
    pub fn with_bandwidth(mut self, tokens: u32) -> Self {
        self.bandwidth = Some(tokens);
        self
    }

    /// Caps adverts at `children` per peer per round.
    #[must_use]
    pub fn with_fanout(mut self, children: u32) -> Self {
        self.fanout = Some(children);
        self
    }

    /// Caps queue processing at `messages` per queue per peer per round.
    #[must_use]
    pub fn with_batch(mut self, messages: u32) -> Self {
        self.batch = Some(messages);
        self
    }

    /// Sets the request-queue service order.
    #[must_use]
    pub fn with_discipline(mut self, discipline: QueueDiscipline) -> Self {
        self.discipline = discipline;
        self
    }

    /// `true` when no knob constrains the protocol.
    #[must_use]
    pub fn is_unconstrained(&self) -> bool {
        *self == GossipKnobs::default()
    }

    /// Compact label for tables (`unconstrained`, or the set knobs:
    /// `bw=4,fan=2,smallest-first`).
    #[must_use]
    pub fn label(&self) -> String {
        if self.is_unconstrained() {
            return "unconstrained".into();
        }
        let mut parts = Vec::new();
        if let Some(b) = self.bandwidth {
            parts.push(format!("bw={b}"));
        }
        if let Some(f) = self.fanout {
            parts.push(format!("fan={f}"));
        }
        if let Some(b) = self.batch {
            parts.push(format!("batch={b}"));
        }
        if self.discipline == QueueDiscipline::SmallestFirst {
            parts.push("smallest-first".into());
        }
        parts.join(",")
    }
}

/// "I hold these tokens" — sent parent → child along round-tree edges.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Advert {
    from: NodeId,
    have: TokenSet,
}

/// "Send me these tokens" — the reply to an advert.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Request {
    from: NodeId,
    want: TokenSet,
}

/// One simulated peer: its token holdings plus one FIFO queue per
/// message class.
#[derive(Debug, Clone)]
struct Peer {
    holdings: TokenSet,
    adverts: VecDeque<Advert>,
    requests: VecDeque<Request>,
    delivers: VecDeque<TokenSet>,
}

impl Peer {
    fn new(n: usize, id: NodeId) -> Self {
        Peer {
            holdings: TokenSet::singleton(n, id),
            adverts: VecDeque::new(),
            requests: VecDeque::new(),
            delivers: VecDeque::new(),
        }
    }
}

/// The full network state of an emulation run: `n` peers, their queues,
/// and incrementally maintained per-token holder counts.
#[derive(Debug, Clone)]
pub struct EmulationState {
    peers: Vec<Peer>,
    /// `holders[t]` = number of peers currently holding token `t`.
    holders: Vec<u32>,
    /// Number of tokens with `holders == n`, maintained incrementally.
    disseminated: usize,
    round: u64,
    /// Per-peer within-round request dedup scratch (cleared via
    /// `touched` after every request phase).
    requested: Vec<TokenSet>,
    touched: Vec<NodeId>,
}

impl EmulationState {
    /// A fresh `n`-peer network: peer `v` holds exactly token `v`, all
    /// queues empty.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "emulation needs at least one peer");
        EmulationState {
            peers: (0..n).map(|v| Peer::new(n, v)).collect(),
            holders: vec![1; n],
            disseminated: if n == 1 { 1 } else { 0 },
            round: 0,
            requested: vec![TokenSet::empty(n); n],
            touched: Vec::new(),
        }
    }

    /// Number of peers (= number of tokens).
    #[must_use]
    pub fn n(&self) -> usize {
        self.peers.len()
    }

    /// Rounds executed so far.
    #[must_use]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Peer `v`'s current holdings.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[must_use]
    pub fn holdings(&self, v: NodeId) -> &TokenSet {
        &self.peers[v].holdings
    }

    /// Number of peers currently holding token `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= n`.
    #[must_use]
    pub fn holders(&self, t: usize) -> usize {
        self.holders[t] as usize
    }

    /// Number of fully disseminated tokens (held by every peer) — the
    /// emulation's [`treecast_core::BroadcastState::disseminated_count`].
    #[must_use]
    pub fn disseminated_count(&self) -> usize {
        self.disseminated
    }

    /// Number of fully disseminated tokens among `sources` — the
    /// tracked-workload progress count. `sources` must be duplicate-free.
    #[must_use]
    pub fn disseminated_among(&self, sources: &[NodeId]) -> usize {
        let n = self.n();
        sources
            .iter()
            .filter(|&&s| self.holders[s] as usize == n)
            .count()
    }

    /// Total messages sitting in queues across all peers — zero at
    /// every round boundary when the knobs are unconstrained, and the
    /// direct reading of how far the asynchronous run lags.
    #[must_use]
    pub fn pending_messages(&self) -> usize {
        self.peers
            .iter()
            .map(|p| p.adverts.len() + p.requests.len() + p.delivers.len())
            .sum()
    }

    /// Executes one protocol round over `tree` under the (normalized)
    /// round faults `rf` and the given knobs. `rf` carries loss and
    /// offline sets; re-rooting is the runner's job (the tree passed
    /// here is already re-rooted, exactly as in the synchronous
    /// runner).
    ///
    /// # Panics
    ///
    /// Panics if the tree's size differs from `n` or a fault names a
    /// node out of range. `rf` must have been normalized
    /// ([`RoundFaults::normalize`]) — the offline lookup binary-searches
    /// the sorted list.
    pub fn gossip_round(&mut self, tree: &RootedTree, rf: &RoundFaults, knobs: &GossipKnobs) {
        let n = self.peers.len();
        assert_eq!(tree.n(), n, "round tree size mismatch");
        let round_index = self.round + 1;
        let is_offline = |v: NodeId| rf.offline.binary_search(&v).is_ok();
        let fanout = knobs.fanout.map_or(usize::MAX, |f| f as usize);
        let batch = knobs.batch.map_or(usize::MAX, |b| b as usize);
        let bandwidth = knobs.bandwidth.map_or(usize::MAX, |b| b as usize);

        // Phase 1 — advert. Staged in ascending peer order, then
        // appended to the destinations' queues: deterministic, and no
        // aliasing between the senders we read and the queues we fill.
        let mut outbox: Vec<(NodeId, Advert)> = Vec::new();
        for p in 0..n {
            if is_offline(p) {
                continue;
            }
            let online: Vec<NodeId> = tree
                .children(p)
                .iter()
                .copied()
                .filter(|&c| !is_offline(c))
                .collect();
            if online.is_empty() {
                continue;
            }
            let advert = |from: NodeId, have: &TokenSet| Advert {
                from,
                have: have.clone(),
            };
            if online.len() <= fanout {
                for &c in &online {
                    outbox.push((c, advert(p, &self.peers[p].holdings)));
                }
            } else {
                // Capped: rotate the start child with the round index so
                // every child is served within ⌈children/fanout⌉ rounds.
                let start = ((round_index - 1) as usize) % online.len();
                for j in 0..fanout {
                    let c = online[(start + j) % online.len()];
                    outbox.push((c, advert(p, &self.peers[p].holdings)));
                }
            }
        }
        for (dest, ad) in outbox {
            self.peers[dest].adverts.push_back(ad);
        }

        // Phase 2 — request. A peer asks each advertiser for the offered
        // tokens it misses; `requested` dedups within the round so two
        // adverts never trigger two same-round requests for one token.
        // Adverts from a now-offline peer are dropped (the connection is
        // gone; the tokens will be re-advertised).
        let mut requests: Vec<(NodeId, Request)> = Vec::new();
        for y in 0..n {
            if is_offline(y) {
                continue;
            }
            let mut processed = 0;
            while processed < batch {
                let Some(ad) = self.peers[y].adverts.pop_front() else {
                    break;
                };
                processed += 1;
                if is_offline(ad.from) {
                    continue;
                }
                let mut want = ad.have;
                want.subtract(&self.peers[y].holdings);
                want.subtract(&self.requested[y]);
                if want.is_empty() {
                    continue;
                }
                self.requested[y].union_with(&want);
                self.touched.push(y);
                requests.push((ad.from, Request { from: y, want }));
            }
        }
        for (dest, rq) in requests {
            self.peers[dest].requests.push_back(rq);
        }
        for y in self.touched.drain(..) {
            let n = self.requested[y].universe();
            self.requested[y] = TokenSet::empty(n);
        }

        // Phase 3 — serve. Deliveries are staged (same reason as phase
        // 1); a grant the bandwidth cap truncates is re-queued at the
        // front so the transfer resumes next round. Wants the server
        // cannot supply are dropped — the requester re-requests on a
        // future advert.
        let mut deliveries: Vec<(NodeId, TokenSet)> = Vec::new();
        for p in 0..n {
            if is_offline(p) {
                continue;
            }
            let peer = &mut self.peers[p];
            if peer.requests.is_empty() {
                continue;
            }
            if knobs.discipline == QueueDiscipline::SmallestFirst {
                // Stable: equal-size wants keep their arrival order.
                peer.requests
                    .make_contiguous()
                    .sort_by_key(|r| r.want.count());
            }
            let mut bw_left = bandwidth;
            let mut served = 0;
            while served < batch && bw_left > 0 {
                let Some(rq) = peer.requests.pop_front() else {
                    break;
                };
                served += 1;
                if is_offline(rq.from) {
                    continue;
                }
                let mut grant = rq.want.intersection(&peer.holdings);
                if grant.is_empty() {
                    continue;
                }
                let sent = grant.take_first(bw_left);
                bw_left -= sent.count();
                if !grant.is_empty() {
                    peer.requests.push_front(Request {
                        from: rq.from,
                        want: grant,
                    });
                }
                deliveries.push((rq.from, sent));
            }
        }
        for (dest, tokens) in deliveries {
            self.peers[dest].delivers.push_back(tokens);
        }

        // Phase 4 — integrate. Deliveries only ever target peers online
        // in the round that staged them, and the deliver queue drains
        // fully every round, so it never persists across rounds.
        for v in 0..n {
            while let Some(tokens) = self.peers[v].delivers.pop_front() {
                for t in tokens.iter() {
                    if self.peers[v].holdings.insert(t) {
                        self.holders[t] += 1;
                        if self.holders[t] as usize == n {
                            self.disseminated += 1;
                        }
                    }
                }
            }
        }

        // Phase 5 — lose. The victim keeps its own token and its
        // queues; only the foreign-token memory is wiped (the exact
        // counterpart of the synchronous `forget`).
        for &v in &rf.losses {
            let old = std::mem::replace(&mut self.peers[v].holdings, TokenSet::singleton(n, v));
            for t in old.iter() {
                if t == v {
                    continue;
                }
                if self.holders[t] as usize == n {
                    self.disseminated -= 1;
                }
                self.holders[t] -= 1;
            }
        }

        self.round += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treecast_trees::generators;

    fn quiet() -> RoundFaults {
        RoundFaults::quiet()
    }

    #[test]
    fn token_set_basics() {
        let mut s = TokenSet::empty(130);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129), "second insert is not fresh");
        assert!(s.contains(0) && s.contains(129) && !s.contains(64));
        assert_eq!(s.count(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 129]);
    }

    #[test]
    fn token_set_algebra() {
        let mut a = TokenSet::empty(70);
        let mut b = TokenSet::empty(70);
        for t in [1, 3, 65] {
            a.insert(t);
        }
        for t in [3, 65, 69] {
            b.insert(t);
        }
        assert_eq!(a.intersection(&b).iter().collect::<Vec<_>>(), vec![3, 65]);
        a.subtract(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1]);
        a.union_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 3, 65, 69]);
    }

    #[test]
    fn take_first_splits_low_tokens_out() {
        let mut s = TokenSet::empty(200);
        for t in [5, 70, 140, 199] {
            s.insert(t);
        }
        let taken = s.take_first(3);
        assert_eq!(taken.iter().collect::<Vec<_>>(), vec![5, 70, 140]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![199]);
        let rest = s.take_first(10);
        assert_eq!(rest.count(), 1);
        assert!(s.is_empty());
    }

    #[test]
    fn knob_labels_read_back() {
        assert_eq!(GossipKnobs::unconstrained().label(), "unconstrained");
        assert!(GossipKnobs::unconstrained().is_unconstrained());
        let knobs = GossipKnobs::unconstrained()
            .with_bandwidth(4)
            .with_fanout(2)
            .with_discipline(QueueDiscipline::SmallestFirst);
        assert_eq!(knobs.label(), "bw=4,fan=2,smallest-first");
        assert!(!knobs.is_unconstrained());
    }

    #[test]
    fn unconstrained_round_equals_parent_union_and_drains_queues() {
        // On the path, one unconstrained round must advance the frontier
        // exactly one hop: child gains its parent's start-of-round
        // holdings, nothing else, queues empty at the boundary.
        let n = 6;
        let tree = generators::path(n);
        let mut emu = EmulationState::new(n);
        let knobs = GossipKnobs::unconstrained();
        emu.gossip_round(&tree, &quiet(), &knobs);
        for v in 0..n {
            let expect: Vec<usize> = if v == 0 { vec![0] } else { vec![v - 1, v] };
            assert_eq!(emu.holdings(v).iter().collect::<Vec<_>>(), expect, "v={v}");
        }
        assert_eq!(emu.pending_messages(), 0);
        assert_eq!(emu.round(), 1);
    }

    #[test]
    fn star_disseminates_the_center_token_in_one_unconstrained_round() {
        let n = 9;
        let tree = generators::star(n);
        let mut emu = EmulationState::new(n);
        emu.gossip_round(&tree, &quiet(), &GossipKnobs::unconstrained());
        assert_eq!(emu.holders(0), n);
        assert_eq!(
            emu.disseminated_count(),
            1,
            "only the center token is global"
        );
        assert_eq!(emu.disseminated_among(&[0]), 1);
        assert_eq!(
            emu.disseminated_among(&[1, 2]),
            0,
            "leaf tokens still local"
        );
    }

    #[test]
    fn fanout_cap_rotates_over_the_children() {
        // Star center with fanout 1: one child learns token 0 per round,
        // and the rotation reaches all n-1 children in n-1 rounds.
        let n = 5;
        let tree = generators::star(n);
        let mut emu = EmulationState::new(n);
        let knobs = GossipKnobs::unconstrained().with_fanout(1);
        for round in 1..n {
            emu.gossip_round(&tree, &quiet(), &knobs);
            assert_eq!(emu.holders(0), 1 + round, "after round {round}");
        }
        assert_eq!(emu.holders(0), n);
    }

    #[test]
    fn bandwidth_cap_defers_but_preserves_tokens() {
        // Star with bandwidth 1 at the center: every child requests
        // token 0 each round but only one payload leaves per round.
        let n = 6;
        let tree = generators::star(n);
        let mut emu = EmulationState::new(n);
        let knobs = GossipKnobs::unconstrained().with_bandwidth(1);
        for round in 1..n {
            emu.gossip_round(&tree, &quiet(), &knobs);
            assert_eq!(emu.holders(0), 1 + round, "after round {round}");
        }
        assert_eq!(emu.holders(0), n);
    }

    #[test]
    fn partial_grants_requeue_at_the_front() {
        // A two-token grant under bandwidth 1 is split: the low token
        // goes out, the remainder resumes next round. Fanout 0 keeps
        // the protocol otherwise silent so only the seeded request
        // moves tokens.
        let n = 4;
        let tree = generators::path(n);
        let mut emu = EmulationState::new(n);
        for t in 1..n {
            emu.peers[0].holdings.insert(t);
            emu.holders[t] += 1;
        }
        let mut want = TokenSet::empty(n);
        want.insert(1);
        want.insert(2);
        emu.peers[0].requests.push_back(Request { from: 3, want });
        let knobs = GossipKnobs::unconstrained()
            .with_fanout(0)
            .with_bandwidth(1);
        emu.gossip_round(&tree, &quiet(), &knobs);
        assert!(emu.holdings(3).contains(1), "low token first");
        assert!(!emu.holdings(3).contains(2), "remainder deferred");
        assert_eq!(emu.peers[0].requests.len(), 1, "remainder re-queued");
        emu.gossip_round(&tree, &quiet(), &knobs);
        assert!(emu.holdings(3).contains(2), "transfer resumed");
        assert!(emu.peers[0].requests.is_empty());
    }

    #[test]
    fn offline_peers_neither_send_nor_receive() {
        let n = 4;
        let tree = generators::path(n);
        let mut emu = EmulationState::new(n);
        let mut rf = RoundFaults {
            offline: vec![1],
            ..RoundFaults::quiet()
        };
        rf.normalize(n);
        emu.gossip_round(&tree, &rf, &GossipKnobs::unconstrained());
        assert_eq!(emu.holdings(1).count(), 1, "offline: no token in");
        assert_eq!(emu.holdings(2).count(), 1, "offline parent: no token out");
        assert_eq!(emu.holdings(3).count(), 2, "2 → 3 unaffected");
        assert_eq!(
            emu.pending_messages(),
            0,
            "no advert addressed an offline peer"
        );
    }

    #[test]
    fn losses_forget_foreign_tokens_and_fix_the_counters() {
        let n = 3;
        let tree = generators::star(n);
        let mut emu = EmulationState::new(n);
        emu.gossip_round(&tree, &quiet(), &GossipKnobs::unconstrained());
        assert!(emu.holdings(1).contains(0));
        let mut rf = RoundFaults {
            losses: vec![1],
            ..RoundFaults::quiet()
        };
        rf.normalize(n);
        emu.gossip_round(&tree, &rf, &GossipKnobs::unconstrained());
        // Nothing new arrived (node 1 already held {0, 1}); the loss
        // then wiped the foreign token back out.
        assert_eq!(emu.holdings(1).iter().collect::<Vec<_>>(), vec![1]);
        assert_eq!(emu.holders(0), 2);
        // The incremental counters must agree with a recount.
        for t in 0..n {
            let recount = (0..n).filter(|&v| emu.holdings(v).contains(t)).count();
            assert_eq!(emu.holders(t), recount, "token {t}");
        }
    }

    #[test]
    fn n_equal_one_is_born_disseminated() {
        let emu = EmulationState::new(1);
        assert_eq!(emu.disseminated_count(), 1);
    }
}
