//! The emulation's replica cell: [`EmulationSpec`] implements
//! [`ReplicaSource`], so `treecast-montecarlo`'s estimators, generic
//! replica pool, sweeps and critical-value readout apply to gossip
//! emulations verbatim — and [`EmuSweepDim`] turns the protocol knobs
//! (bandwidth, fan-out, batch, discipline) into first-class sweep
//! dimensions next to the fault rates.
//!
//! # Stream pairing
//!
//! Replica `r` derives its fault seed as [`replica_seed`]`(base, r)`
//! and its tree seed as [`splitmix64`]`(seed ⊕ `[`TREE_STREAM_TWEAK`]`)`
//! — the identical chain the synchronous `RunSpec` uses, with the
//! identical default base seed. Replica `r` of an emulated cell and
//! replica `r` of its synchronous twin therefore run against the *same*
//! trees and the *same* faults, which makes the emulated-vs-model
//! completion ratios of experiment E15 paired comparisons rather than
//! independent samples.

use treecast_core::replica::{
    default_budget, replica_seed, splitmix64, FaultSpec, ReplicaOutcome, ReplicaSource, TreeSpec,
    TREE_STREAM_TWEAK,
};
use treecast_core::{
    FrontierSource, KSourceBroadcast, SimulationConfig, StaticSource, TreeSource, Workload,
    WorkloadOutcome, WorkloadReport,
};
use treecast_trees::generators;

use crate::protocol::{GossipKnobs, QueueDiscipline};
use crate::runner::run_emulation;

/// One emulation cell: R replicas of an (n, k, trees, faults, knobs)
/// configuration with a shared round budget — the gossip twin of the
/// Monte Carlo layer's `RunSpec`, plus the protocol knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmulationSpec {
    /// Network size (= simulated peer count).
    pub n: usize,
    /// Tracked sources: the workload is `KSourceBroadcast` over `k`
    /// evenly spread tokens (`k = 1` is plain broadcast; `k = n` the
    /// tracked equivalent of gossip).
    pub k: usize,
    /// Tree source driving the per-round connectivity.
    pub trees: TreeSpec,
    /// Randomized fault mix.
    pub faults: FaultSpec,
    /// Protocol knobs (bandwidth, fan-out, batch, discipline).
    pub knobs: GossipKnobs,
    /// Round budget per replica; replicas still incomplete at the
    /// budget are *censored*, not averaged.
    pub round_budget: u64,
    /// Number of independent replicas.
    pub replicas: usize,
    /// Base seed; replica `r` derives `splitmix64(base ⊕ (r+1))`.
    pub base_seed: u64,
}

impl EmulationSpec {
    /// A cell with the replica layer's defaults: budget from
    /// [`default_budget`], 64 replicas, and the *same* base seed as the
    /// synchronous `RunSpec` default — that equality is what stream-pairs
    /// default emulated cells with their model twins (see the module
    /// docs).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `k` is not in `1..=n`.
    #[must_use]
    pub fn new(n: usize, k: usize, trees: TreeSpec, faults: FaultSpec, knobs: GossipKnobs) -> Self {
        assert!(n >= 1, "n must be positive");
        assert!(k >= 1 && k <= n, "k = {k} must be in 1..={n}");
        EmulationSpec {
            n,
            k,
            trees,
            faults,
            knobs,
            round_budget: default_budget(n, trees),
            replicas: 64,
            base_seed: 0xE14_5EED,
        }
    }

    /// Overrides the replica count.
    #[must_use]
    pub fn with_replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas;
        self
    }

    /// Overrides the round budget (the censoring horizon).
    #[must_use]
    pub fn with_budget(mut self, round_budget: u64) -> Self {
        self.round_budget = round_budget;
        self
    }

    /// Overrides the base seed.
    #[must_use]
    pub fn with_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// Overrides the protocol knobs.
    #[must_use]
    pub fn with_knobs(mut self, knobs: GossipKnobs) -> Self {
        self.knobs = knobs;
        self
    }

    /// The workload label (`k-source-broadcast(k=…)`).
    #[must_use]
    pub fn workload_label(&self) -> String {
        Workload::name(&KSourceBroadcast::evenly_spread(self.n, self.k))
    }

    /// Runs replica `index` to its full [`WorkloadReport`] — the
    /// fault-logged, replayable form behind [`ReplicaSource::run_replica`].
    ///
    /// # Panics
    ///
    /// Panics on an invalid spec — same contract as
    /// [`crate::run_emulation`].
    #[must_use]
    pub fn run_one(&self, index: usize) -> WorkloadReport {
        let seed = replica_seed(self.base_seed, index);
        let workload = KSourceBroadcast::evenly_spread(self.n, self.k);
        let mut faults = self.faults.model(seed);
        let config = SimulationConfig::for_n(self.n).with_max_rounds(self.round_budget);
        let tree_seed = splitmix64(seed ^ TREE_STREAM_TWEAK);
        let mut source: Box<dyn TreeSource> = match self.trees {
            TreeSpec::Path => Box::new(StaticSource::new(generators::path(self.n))),
            TreeSpec::Star => Box::new(StaticSource::new(generators::star(self.n))),
            // The frontier source's dense twin pre-draws the identical
            // tree stream the synchronous replicas see for this seed.
            TreeSpec::SeededUniform => {
                FrontierSource::seeded(self.n, tree_seed).dense_twin(self.round_budget)
            }
        };
        run_emulation(
            self.n,
            &mut source,
            &workload,
            &self.knobs,
            &mut faults,
            config,
        )
    }
}

impl ReplicaSource for EmulationSpec {
    fn n(&self) -> usize {
        self.n
    }

    fn k(&self) -> usize {
        self.k
    }

    fn replicas(&self) -> usize {
        self.replicas
    }

    fn round_budget(&self) -> u64 {
        self.round_budget
    }

    fn workload_label(&self) -> String {
        EmulationSpec::workload_label(self)
    }

    fn source_label(&self) -> String {
        if self.knobs.is_unconstrained() {
            format!("emulated({})", self.trees.label())
        } else {
            format!("emulated({}, {})", self.trees.label(), self.knobs.label())
        }
    }

    fn fault_label(&self) -> String {
        self.faults.label()
    }

    fn run_replica(&self, index: usize) -> ReplicaOutcome {
        let report = self.run_one(index);
        ReplicaOutcome {
            rounds: match report.outcome {
                WorkloadOutcome::Completed => report.completion_time,
                WorkloadOutcome::RoundLimit => None,
            },
        }
    }
}

/// The scenario dimensions an emulation sweep can vary — the protocol
/// knobs plus the per-mille loss rate, all through one grid interface.
/// Feed [`EmuSweepDim::cell`] to `treecast_montecarlo::sweep_cells` and
/// the critical-value readout applies unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmuSweepDim {
    /// [`GossipKnobs::bandwidth`]; grid value `0` = unconstrained.
    BandwidthCap,
    /// [`GossipKnobs::fanout`]; grid value `0` = unconstrained.
    AdvertFanout,
    /// [`GossipKnobs::batch`]; grid value `0` = unconstrained.
    BatchSize,
    /// [`GossipKnobs::discipline`]; `0` = FIFO, anything else =
    /// smallest-first.
    Discipline,
    /// Token-loss probability, per-mille (the fault dimension that pairs
    /// emulated sweeps with the Monte Carlo layer's critical sweeps).
    LossPermille,
}

impl EmuSweepDim {
    /// Column label for tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EmuSweepDim::BandwidthCap => "bandwidth cap",
            EmuSweepDim::AdvertFanout => "advert fan-out",
            EmuSweepDim::BatchSize => "batch size",
            EmuSweepDim::Discipline => "queue discipline",
            EmuSweepDim::LossPermille => "loss ‰",
        }
    }

    /// `base` with this dimension set to `value` (every other field
    /// shared) — the cell constructor a sweep grid maps over.
    #[must_use]
    pub fn cell(self, base: &EmulationSpec, value: u64) -> EmulationSpec {
        let cap = |v: u64| (v > 0).then_some(v as u32);
        let mut spec = base.clone();
        match self {
            EmuSweepDim::BandwidthCap => spec.knobs.bandwidth = cap(value),
            EmuSweepDim::AdvertFanout => spec.knobs.fanout = cap(value),
            EmuSweepDim::BatchSize => spec.knobs.batch = cap(value),
            EmuSweepDim::Discipline => {
                spec.knobs.discipline = if value == 0 {
                    QueueDiscipline::Fifo
                } else {
                    QueueDiscipline::SmallestFirst
                };
            }
            EmuSweepDim::LossPermille => spec.faults = FaultSpec::loss_permille(value as u32),
        }
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_cell(n: usize) -> EmulationSpec {
        EmulationSpec::new(
            n,
            1,
            TreeSpec::Path,
            FaultSpec::none(),
            GossipKnobs::unconstrained(),
        )
    }

    #[test]
    fn replicas_are_deterministic_per_index() {
        let spec = EmulationSpec::new(
            12,
            2,
            TreeSpec::SeededUniform,
            FaultSpec::loss_permille(150),
            GossipKnobs::unconstrained().with_bandwidth(3),
        )
        .with_replicas(4);
        for index in 0..4 {
            assert_eq!(spec.run_one(index), spec.run_one(index), "index {index}");
        }
        assert_ne!(
            spec.run_one(0).fault_log,
            spec.run_one(1).fault_log,
            "replicas draw independent fault streams"
        );
    }

    #[test]
    fn quiet_unconstrained_cells_complete_at_the_model_time() {
        let spec = quiet_cell(16).with_replicas(3);
        for index in 0..3 {
            assert_eq!(spec.run_replica(index).rounds, Some(15), "index {index}");
        }
    }

    #[test]
    fn labels_expose_trees_and_knobs() {
        let free = quiet_cell(8);
        assert_eq!(ReplicaSource::source_label(&free), "emulated(static(path))");
        assert_eq!(
            ReplicaSource::workload_label(&free),
            "k-source-broadcast(k=1)"
        );
        assert_eq!(ReplicaSource::fault_label(&free), "no-faults");
        let capped = free.with_knobs(GossipKnobs::unconstrained().with_bandwidth(2));
        assert_eq!(
            ReplicaSource::source_label(&capped),
            "emulated(static(path), bw=2)"
        );
    }

    #[test]
    fn sweep_dims_map_onto_knobs_and_faults() {
        let base = quiet_cell(8);
        assert_eq!(
            EmuSweepDim::BandwidthCap.cell(&base, 4).knobs.bandwidth,
            Some(4)
        );
        assert_eq!(
            EmuSweepDim::BandwidthCap.cell(&base, 0).knobs.bandwidth,
            None,
            "0 = unconstrained"
        );
        assert_eq!(
            EmuSweepDim::AdvertFanout.cell(&base, 2).knobs.fanout,
            Some(2)
        );
        assert_eq!(EmuSweepDim::BatchSize.cell(&base, 8).knobs.batch, Some(8));
        assert_eq!(
            EmuSweepDim::Discipline.cell(&base, 1).knobs.discipline,
            QueueDiscipline::SmallestFirst
        );
        assert_eq!(
            EmuSweepDim::LossPermille.cell(&base, 5).faults,
            FaultSpec::loss_permille(5)
        );
        assert_eq!(EmuSweepDim::LossPermille.label(), "loss ‰");
    }

    #[test]
    fn censored_replicas_report_no_rounds() {
        // Fanout 0 starves the protocol: every replica censors.
        let spec = quiet_cell(6)
            .with_knobs(GossipKnobs::unconstrained().with_fanout(0))
            .with_budget(12)
            .with_replicas(2);
        for index in 0..2 {
            assert_eq!(spec.run_replica(index).rounds, None);
        }
    }

    #[test]
    fn default_seed_matches_the_synchronous_replica_layer() {
        // The stream-pairing contract: same default base seed as
        // RunSpec::new (checked against the documented constant, since
        // montecarlo is not a dependency of this crate).
        assert_eq!(quiet_cell(4).base_seed, 0xE14_5EED);
    }
}
