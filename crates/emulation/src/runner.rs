//! The emulation runner: drives [`EmulationState`] rounds from a
//! [`TreeSource`] + [`FaultModel`] pair with the exact loop of the
//! synchronous [`run_workload_faulty`], so the two produce comparable —
//! and, with unconstrained knobs, *identical* — [`WorkloadReport`]s.
//!
//! Mirrored decisions, in loop order: the fault model is queried once
//! per executed round with 1-based round numbers; the faults are
//! [`RoundFaults::normalize`]d before use; the source's tree is
//! re-rooted when the faults demand it; the round executes
//! ([`EmulationState::gossip_round`] here, the masked matrix there);
//! the trace hook fires; the normalized faults are appended to the
//! fault log; completion is the tracked workload's predicate over the
//! end-of-round state and `broadcast_time` is the first round with any
//! *fully* disseminated token, both seeded at round 0 for the `n = 1`
//! degenerate case. Replaying a report's `fault_log` through
//! [`FaultSchedule::replay`] therefore reproduces an emulation run
//! bit-identically, exactly as it does a synchronous run.
//!
//! One honest divergence: [`TreeSource::next_tree`] takes the
//! synchronous product-graph state, which an emulation does not have.
//! The runner feeds every call a fresh round-0 [`BroadcastState`], so a
//! *state-adaptive* source would see a frozen snapshot. All sources the
//! replica layer uses (static trees, pre-generated sequences, seeded
//! streams) ignore the state argument entirely; adaptive adversaries
//! are a synchronous-engine concept.
//!
//! [`run_workload_faulty`]: treecast_core::scenario::run_workload_faulty
//! [`FaultSchedule::replay`]: treecast_core::scenario::FaultSchedule::replay

use treecast_core::scenario::{FaultModel, RoundFaults};
use treecast_core::workload::{SourceSet, Workload, WorkloadOutcome, WorkloadReport};
use treecast_core::{BroadcastState, SimulationConfig, TreeSource};
use treecast_trees::{NodeId, RootedTree};

use crate::protocol::{EmulationState, GossipKnobs};

/// Runs the gossip protocol over `source`'s trees under `faults` until
/// `workload` completes or `config.max_rounds` is hit — the emulation
/// twin of [`treecast_core::scenario::run_workload_faulty`], knob-capped
/// by `knobs`.
///
/// # Panics
///
/// Panics if `n == 0`, a fault names a node `>= n`, or the source
/// produces a tree of the wrong size.
pub fn run_emulation<S, W, F>(
    n: usize,
    source: &mut S,
    workload: &W,
    knobs: &GossipKnobs,
    faults: &mut F,
    config: SimulationConfig,
) -> WorkloadReport
where
    S: TreeSource + ?Sized,
    W: Workload + ?Sized,
    F: FaultModel + ?Sized,
{
    run_emulation_traced(n, source, workload, knobs, faults, config, |_, _, _| {})
}

/// [`run_emulation`] with a per-round hook: called after every executed
/// round with the normalized faults, the (re-rooted) round tree, and
/// the emulation state after the round — the round-for-round witness
/// the differential tests compare against the synchronous engine.
///
/// # Panics
///
/// Same contract as [`run_emulation`].
pub fn run_emulation_traced<S, W, F>(
    n: usize,
    source: &mut S,
    workload: &W,
    knobs: &GossipKnobs,
    faults: &mut F,
    config: SimulationConfig,
    mut on_round: impl FnMut(&RoundFaults, &RootedTree, &EmulationState),
) -> WorkloadReport
where
    S: TreeSource + ?Sized,
    W: Workload + ?Sized,
    F: FaultModel + ?Sized,
{
    let mut emu = EmulationState::new(n);
    // The tracked-source list: `None` tracks all n tokens (the
    // broadcast/gossip family), mirroring the synchronous runner's
    // TrackedTokens split.
    let sources: Option<Vec<NodeId>> = match workload.sources(n) {
        SourceSet::All => None,
        SourceSet::Nodes(list) => Some(list),
    };
    let progress_of = |emu: &EmulationState| {
        let (tokens, disseminated) = match &sources {
            None => (n, emu.disseminated_count()),
            Some(list) => (list.len(), emu.disseminated_among(list)),
        };
        treecast_core::workload::WorkloadProgress {
            n,
            round: emu.round(),
            tokens,
            disseminated,
        }
    };
    // The state handed to `next_tree` — see the module docs: the spec
    // sources ignore it, so a frozen round-0 snapshot is exact.
    let frozen = BroadcastState::new(n);

    let mut progress = progress_of(&emu);
    let mut completion_time = workload.is_complete(&progress).then_some(0);
    let mut broadcast_time = (emu.disseminated_count() >= 1).then_some(0);
    let mut fault_log: Vec<RoundFaults> = Vec::new();

    while completion_time.is_none() && emu.round() < config.max_rounds {
        let mut rf = faults.faults(emu.round() + 1, n);
        rf.normalize(n);
        let tree = source.next_tree(&frozen);
        let tree = match rf.root {
            Some(r) => tree.rerooted(r),
            None => tree,
        };
        emu.gossip_round(&tree, &rf, knobs);
        on_round(&rf, &tree, &emu);
        fault_log.push(rf);
        progress = progress_of(&emu);
        if workload.is_complete(&progress) {
            completion_time = Some(progress.round);
        }
        if broadcast_time.is_none() && emu.disseminated_count() >= 1 {
            broadcast_time = Some(emu.round());
        }
    }

    WorkloadReport {
        n,
        workload: workload.name(),
        source: source.name(),
        rounds: emu.round(),
        outcome: if completion_time.is_some() {
            WorkloadOutcome::Completed
        } else {
            WorkloadOutcome::RoundLimit
        },
        completion_time,
        broadcast_time,
        disseminated: progress.disseminated,
        tokens: progress.tokens,
        fault_log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treecast_core::scenario::{run_workload_faulty, FaultSchedule, NoFaults, SeededFaults};
    use treecast_core::workload::{Broadcast, Gossip, KSourceBroadcast};
    use treecast_core::{SequenceSource, StaticSource};
    use treecast_trees::generators;

    #[test]
    fn unconstrained_quiet_path_matches_the_synchronous_engine() {
        for n in [1usize, 2, 5, 9] {
            let cfg = SimulationConfig::for_n(n);
            let mut a = StaticSource::new(generators::path(n));
            let mut b = StaticSource::new(generators::path(n));
            let emulated = run_emulation(
                n,
                &mut a,
                &Broadcast,
                &GossipKnobs::unconstrained(),
                &mut NoFaults,
                cfg,
            );
            let model = run_workload_faulty(n, &mut b, &Broadcast, &mut NoFaults, cfg);
            assert_eq!(emulated, model, "n = {n}");
        }
    }

    #[test]
    fn unconstrained_faulty_star_sequence_matches_the_synchronous_engine() {
        // Rotating star centers under a seeded fault cocktail: the
        // unconstrained emulation must match the dense engine report for
        // report — fault log included.
        let n = 8;
        let trees: Vec<_> = (0..n).map(|c| generators::star_with_center(n, c)).collect();
        let cfg = SimulationConfig::gossip_for_n(n);
        let workload = Gossip;
        for seed in [1u64, 7, 0xFEED] {
            let mut a = SequenceSource::new(trees.clone());
            let mut b = SequenceSource::new(trees.clone());
            let mut fa = SeededFaults::new(seed)
                .with_token_loss(20)
                .with_dropout(10, 2)
                .with_root_changes(15);
            let mut fb = SeededFaults::new(seed)
                .with_token_loss(20)
                .with_dropout(10, 2)
                .with_root_changes(15);
            let emulated = run_emulation(
                n,
                &mut a,
                &workload,
                &GossipKnobs::unconstrained(),
                &mut fa,
                cfg,
            );
            let model = run_workload_faulty(n, &mut b, &workload, &mut fb, cfg);
            assert_eq!(emulated, model, "seed = {seed}");
        }
    }

    #[test]
    fn fault_log_replay_reproduces_an_emulation_run() {
        let n = 7;
        let cfg = SimulationConfig::for_n(n).with_max_rounds(48);
        let workload = KSourceBroadcast::evenly_spread(n, 2);
        let knobs = GossipKnobs::unconstrained().with_bandwidth(2);
        let mut source = StaticSource::new(generators::path(n));
        let mut faults = SeededFaults::new(99)
            .with_token_loss(15)
            .with_dropout(10, 2);
        let original = run_emulation(n, &mut source, &workload, &knobs, &mut faults, cfg);
        let mut replay_source = StaticSource::new(generators::path(n));
        let mut replay = FaultSchedule::replay(&original.fault_log);
        let replayed = run_emulation(n, &mut replay_source, &workload, &knobs, &mut replay, cfg);
        assert_eq!(original.completion_time, replayed.completion_time);
        assert_eq!(original.broadcast_time, replayed.broadcast_time);
        assert_eq!(original.fault_log, replayed.fault_log);
        assert_eq!(original.disseminated, replayed.disseminated);
    }

    #[test]
    fn bandwidth_cap_delays_the_star_but_not_forever() {
        // One-round star broadcast stretches to n−1 rounds when the
        // center can ship one payload per round.
        let n = 6;
        let cfg = SimulationConfig::for_n(n);
        let mut source = StaticSource::new(generators::star(n));
        let capped = run_emulation(
            n,
            &mut source,
            &Broadcast,
            &GossipKnobs::unconstrained().with_bandwidth(1),
            &mut NoFaults,
            cfg,
        );
        assert_eq!(capped.completion_time, Some((n - 1) as u64));
        let mut source = StaticSource::new(generators::star(n));
        let free = run_emulation(
            n,
            &mut source,
            &Broadcast,
            &GossipKnobs::unconstrained(),
            &mut NoFaults,
            cfg,
        );
        assert_eq!(free.completion_time, Some(1));
    }

    #[test]
    fn round_budget_censors_a_starved_run() {
        // Fanout 0 sends no adverts at all: nothing ever moves and the
        // runner must stop at the cap with a RoundLimit outcome.
        let n = 4;
        let cfg = SimulationConfig::for_n(n).with_max_rounds(10);
        let mut source = StaticSource::new(generators::path(n));
        let report = run_emulation(
            n,
            &mut source,
            &Broadcast,
            &GossipKnobs::unconstrained().with_fanout(0),
            &mut NoFaults,
            cfg,
        );
        assert_eq!(report.outcome, WorkloadOutcome::RoundLimit);
        assert_eq!(report.completion_time, None);
        assert_eq!(report.rounds, 10);
        assert_eq!(report.fault_log.len(), 10);
    }

    #[test]
    fn traced_hook_sees_every_round() {
        let n = 5;
        let mut rounds_seen = 0u64;
        let mut source = StaticSource::new(generators::path(n));
        let report = run_emulation_traced(
            n,
            &mut source,
            &Broadcast,
            &GossipKnobs::unconstrained(),
            &mut NoFaults,
            SimulationConfig::for_n(n),
            |rf, tree, emu| {
                rounds_seen += 1;
                assert!(rf.is_quiet());
                assert_eq!(tree.n(), n);
                assert_eq!(emu.round(), rounds_seen);
            },
        );
        assert_eq!(rounds_seen, report.rounds);
    }
}
