//! Nonsplit graphs: the machinery behind the *previous best* upper bound.
//!
//! A directed graph is **nonsplit** when every pair of nodes has a common
//! in-neighbor. Figure 1's `O(n log log n)` column combines two cited
//! results that this crate makes executable:
//!
//! * **\[CFN15\] composition lemma** — the product of any `n − 1` rooted
//!   trees (with self-loops) is nonsplit: [`product_of`] +
//!   [`cfn_product_is_nonsplit`], with the tightness witness
//!   ([`split_path_power`]) showing `n − 2` does not suffice.
//! * **\[FNW20\] dissemination** — sequences of nonsplit graphs broadcast in
//!   `O(log log n)` rounds: [`broadcast_time_nonsplit`] measured against
//!   [`treecast_core::bounds::fnw_reference`].
//!
//! # Examples
//!
//! ```
//! use rand::SeedableRng;
//! use treecast_nonsplit::{cfn_product_is_nonsplit, random_tree_sequence};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let trees = random_tree_sequence(8, 7, &mut rng); // n − 1 trees
//! assert!(cfn_product_is_nonsplit(&trees));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::Rng;

use treecast_bitmatrix::BoolMatrix;
use treecast_core::workload::{full_state_progress, SourceSet, TrackedTokens};
use treecast_core::{Broadcast, BroadcastState, Gossip, Workload};
use treecast_trees::{random, RootedTree};

/// The product `T₁∘…∘T_k` of a tree sequence, self-loops included
/// (Definition 2.1 iterated).
///
/// # Panics
///
/// Panics if `trees` is empty or sizes disagree.
pub fn product_of(trees: &[RootedTree]) -> BoolMatrix {
    assert!(
        !trees.is_empty(),
        "product of an empty sequence is undefined"
    );
    // Ping-pong two buffers through the allocation-free kernel: the only
    // per-round allocation left is the tree's own matrix. The swap parity
    // is safe for any sequence length because `compose_into` fully
    // overwrites its output (it clears `out` before composing), so the
    // stale contents of the swapped-in scratch can never leak into a
    // result — pinned by `product_parity_regression` below.
    let mut acc = trees[0].to_matrix(true);
    let mut scratch = BoolMatrix::zeros(acc.n());
    for t in &trees[1..] {
        acc.compose_into(&t.to_matrix(true), &mut scratch);
        std::mem::swap(&mut acc, &mut scratch);
    }
    acc
}

/// The Charron-Bost–Függer–Nowak lemma, executable: is the product of this
/// tree sequence nonsplit? (True whenever `trees.len() ≥ n − 1`.)
pub fn cfn_product_is_nonsplit(trees: &[RootedTree]) -> bool {
    product_of(trees).is_nonsplit()
}

/// A sequence of `k` uniform random rooted trees on `n` nodes.
pub fn random_tree_sequence<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Vec<RootedTree> {
    (0..k).map(|_| random::uniform(n, rng)).collect()
}

/// The tightness witness for the CFN lemma: the product of `n − 2` copies
/// of the path is **split** (nodes `0` and `n − 1` share no in-neighbor),
/// so `n − 1` in the lemma cannot be improved.
///
/// Returns the split product matrix.
///
/// # Panics
///
/// Panics if `n < 3`.
///
/// # Examples
///
/// ```
/// use treecast_nonsplit::split_path_power;
/// assert!(!split_path_power(6).is_nonsplit());
/// ```
pub fn split_path_power(n: usize) -> BoolMatrix {
    assert!(n >= 3, "need at least 3 nodes for a split power");
    let path = treecast_trees::generators::path(n);
    let seq: Vec<RootedTree> = vec![path; n - 2];
    let product = product_of(&seq);
    debug_assert!(!product.is_nonsplit());
    product
}

/// Generators for random and adversarial nonsplit round graphs.
pub mod generators {
    use super::*;

    /// A reflexive star-based nonsplit graph: one random hub points to
    /// everyone (making all pairs share the hub), plus a sprinkle of
    /// `extra` random edges.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn star_based<R: Rng + ?Sized>(n: usize, extra: usize, rng: &mut R) -> BoolMatrix {
        assert!(n > 0, "graph needs at least one node");
        let hub = rng.gen_range(0..n);
        let mut m = BoolMatrix::identity(n);
        for y in 0..n {
            m.set(hub, y, true);
        }
        for _ in 0..extra {
            m.set(rng.gen_range(0..n), rng.gen_range(0..n), true);
        }
        m
    }

    /// A *sparse* nonsplit graph: every unordered pair of nodes is
    /// assigned a random common in-neighbor, and nothing else (apart from
    /// self-loops). In-neighbors are spread to keep rows slim — the
    /// adversarially interesting end of the nonsplit spectrum.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn pairwise_min<R: Rng + ?Sized>(n: usize, rng: &mut R) -> BoolMatrix {
        assert!(n > 0, "graph needs at least one node");
        let mut m = BoolMatrix::identity(n);
        for a in 0..n {
            for b in (a + 1)..n {
                let z = rng.gen_range(0..n);
                m.set(z, a, true);
                m.set(z, b, true);
            }
        }
        debug_assert!(m.is_nonsplit());
        m
    }

    /// The nonsplit graph arising as a product of `n − 1` random rooted
    /// trees — the CFN construction itself.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn tree_product<R: Rng + ?Sized>(n: usize, rng: &mut R) -> BoolMatrix {
        if n == 1 {
            return BoolMatrix::identity(1);
        }
        product_of(&random_tree_sequence(n, n - 1, rng))
    }

    /// The deterministic **piecewise** `c`-nonsplit graph: `c + 1` hubs,
    /// hub `i` pointing at everything outside the residue class
    /// `P_i = {y : y ≡ i (mod c + 1)}`, everyone else carrying only a
    /// self-loop.
    ///
    /// Any `c` nodes meet at most `c` of the `c + 1` classes, so some hub
    /// covers them all — the graph is `c`-nonsplit
    /// ([`BoolMatrix::is_c_nonsplit`]). It is *tightly* so: for
    /// `n ≥ 2(c + 1)` a transversal `(c + 1)`-subset avoiding the hub
    /// nodes hits every class and shares no in-neighbor. This makes the
    /// family the natural knob for the companion paper's "tighter
    /// nonsplit" adversaries: raising `c` hands the processes strictly
    /// more shared coverage per round, and measured dissemination times
    /// fall accordingly (experiment `variants`).
    ///
    /// When `c + 1 > n` the construction degenerates to a single full hub
    /// (which is `c`-nonsplit for every `c`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `c < 2`.
    ///
    /// # Examples
    ///
    /// ```
    /// use treecast_nonsplit::generators::piecewise;
    /// let g = piecewise(12, 3);
    /// assert!(g.is_c_nonsplit(3));
    /// assert!(!g.is_c_nonsplit(4)); // tight at n ≥ 2(c + 1)
    /// ```
    pub fn piecewise(n: usize, c: usize) -> BoolMatrix {
        assert!(n > 0, "graph needs at least one node");
        assert!(c >= 2, "c-nonsplit needs c ≥ 2 (c = 2 is plain nonsplit)");
        let mut m = BoolMatrix::identity(n);
        let hubs = c + 1;
        if hubs > n {
            for y in 0..n {
                m.set(0, y, true);
            }
            return m;
        }
        for i in 0..hubs {
            for y in 0..n {
                if y % hubs != i {
                    m.set(i, y, true);
                }
            }
        }
        debug_assert!(m.is_c_nonsplit(c));
        m
    }

    /// The deterministic **grid** nonsplit graph — the sparsest classic
    /// construction, with out-degrees `Θ(√n)`.
    ///
    /// Nodes are laid on a `⌈√n⌉ × ⌈√n⌉` grid (last row possibly partial);
    /// node `z` points to every node sharing its row or column. Any two
    /// nodes `y₁, y₂` have the "corner" `(row(y₁), col(y₂))` (or a same-row
    /// fallback) as a common in-neighbor, so the graph is nonsplit while
    /// keeping every reach set near the `Θ(√n)` information-theoretic
    /// minimum — the adversarially *slowest* nonsplit round, which is what
    /// makes the FNW `log log n` growth visible.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use treecast_nonsplit::generators::grid;
    /// let g = grid(16);
    /// assert!(g.is_nonsplit());
    /// assert!(g.row_weights().iter().all(|&w| w <= 8)); // 2·√16 − 1 + loop
    /// ```
    pub fn grid(n: usize) -> BoolMatrix {
        assert!(n > 0, "graph needs at least one node");
        // analyze: allow(panic): (1..) always reaches s with s*s >= n.
        let side = (1..).find(|s| s * s >= n).expect("finite n");
        let mut m = BoolMatrix::identity(n);
        for z in 0..n {
            let (zr, zc) = (z / side, z % side);
            for y in 0..n {
                let (yr, yc) = (y / side, y % side);
                if yr == zr || yc == zc {
                    m.set(z, y, true);
                }
            }
        }
        debug_assert!(m.is_nonsplit());
        m
    }
}

/// Plays the deterministic sparse [`generators::grid`] graph every round —
/// the slowest nonsplit adversary in the crate.
#[derive(Debug, Clone, Copy, Default)]
pub struct GridNonsplit;

impl MatrixSource for GridNonsplit {
    fn next_matrix<R: Rng + ?Sized>(&mut self, state: &BroadcastState, _rng: &mut R) -> BoolMatrix {
        generators::grid(state.n())
    }
}

/// Produces the round-`t` nonsplit matrix given the current state.
pub trait MatrixSource {
    /// The next round's (nonsplit) graph.
    fn next_matrix<R: Rng + ?Sized>(&mut self, state: &BroadcastState, rng: &mut R) -> BoolMatrix;
}

/// Plays the piecewise `c`-nonsplit graph every round, with the node
/// roles reshuffled by a fresh random relabeling — the "tighter nonsplit"
/// adversary family of the companion paper (arXiv:2211.10151): every
/// `c`-subset of processes is served a common in-neighbor each round, and
/// larger `c` means strictly faster dissemination.
#[derive(Debug, Clone, Copy)]
pub struct PiecewiseNonsplit {
    /// Subset size every round graph must cover (`c ≥ 2`; `c = 2` is the
    /// classic nonsplit constraint).
    pub c: usize,
}

impl PiecewiseNonsplit {
    /// A `c`-nonsplit adversary.
    ///
    /// # Panics
    ///
    /// Panics if `c < 2`.
    pub fn new(c: usize) -> Self {
        assert!(c >= 2, "c-nonsplit needs c ≥ 2");
        PiecewiseNonsplit { c }
    }
}

impl MatrixSource for PiecewiseNonsplit {
    fn next_matrix<R: Rng + ?Sized>(&mut self, state: &BroadcastState, rng: &mut R) -> BoolMatrix {
        let n = state.n();
        let base = generators::piecewise(n, self.c);
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            perm.swap(i, rng.gen_range(0..=i));
        }
        base.permute(&perm)
    }
}

/// Plays a fresh sparse random nonsplit graph every round.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomNonsplit;

impl MatrixSource for RandomNonsplit {
    fn next_matrix<R: Rng + ?Sized>(&mut self, state: &BroadcastState, rng: &mut R) -> BoolMatrix {
        generators::pairwise_min(state.n(), rng)
    }
}

/// Greedy delaying adversary over nonsplit rounds: samples `pool` sparse
/// candidates and plays the one minimizing the largest reach set — the
/// nonsplit analogue of the tree adversaries' objectives.
#[derive(Debug, Clone, Copy)]
pub struct GreedyNonsplit {
    /// Candidates sampled per round.
    pub pool: usize,
}

impl Default for GreedyNonsplit {
    fn default() -> Self {
        GreedyNonsplit { pool: 8 }
    }
}

impl MatrixSource for GreedyNonsplit {
    fn next_matrix<R: Rng + ?Sized>(&mut self, state: &BroadcastState, rng: &mut R) -> BoolMatrix {
        let n = state.n();
        let mut best: Option<(usize, BoolMatrix)> = None;
        // One probe state reused across the pool: `clone_from` recycles its
        // flat buffers instead of reallocating per candidate.
        let mut after = state.clone();
        for _ in 0..self.pool.max(1) {
            let candidate = generators::pairwise_min(n, rng);
            after.clone_from(state);
            after.apply_matrix(&candidate);
            let max_reach = after.reach_weights().into_iter().max().unwrap_or(0);
            if best.as_ref().map(|(b, _)| max_reach < *b).unwrap_or(true) {
                best = Some((max_reach, candidate));
            }
        }
        // analyze: allow(panic): the loop above ran over a non-empty pool, so
        // `best` was set on its first iteration.
        best.expect("pool ≥ 1").1
    }
}

/// Rounds until `workload` completes under nonsplit round graphs drawn
/// from `source`, or `None` if `cap` rounds pass first.
///
/// This is the dissemination measurement generalized over the
/// [`Workload`] lattice: broadcast ([`treecast_core::Broadcast`]),
/// `k`-broadcast, gossip, and token-subset workloads all run through the
/// same loop. [`SourceSet::All`] workloads step a full [`BroadcastState`];
/// token-subset workloads additionally step a batched [`TrackedTokens`]
/// state whose `k` holder rows ride `BoolMatrix::compose_prefix_into`.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use treecast_core::{Gossip, KBroadcast};
/// use treecast_nonsplit::{workload_time_nonsplit, RandomNonsplit};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let k2 = workload_time_nonsplit(32, &KBroadcast::new(2), &mut RandomNonsplit, 200, &mut rng)
///     .unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let gossip =
///     workload_time_nonsplit(32, &Gossip, &mut RandomNonsplit, 200, &mut rng).unwrap();
/// assert!(k2 <= gossip, "the workload lattice orders completion times");
/// ```
pub fn workload_time_nonsplit<W, S, R>(
    n: usize,
    workload: &W,
    source: &mut S,
    cap: u64,
    rng: &mut R,
) -> Option<u64>
where
    W: Workload + ?Sized,
    S: MatrixSource,
    R: Rng + ?Sized,
{
    let mut state = BroadcastState::new(n);
    let mut tracked = match workload.sources(n) {
        SourceSet::All => None,
        SourceSet::Nodes(sources) => Some(TrackedTokens::new(n, &sources)),
    };
    loop {
        let progress = match &tracked {
            Some(t) => t.progress(),
            None => full_state_progress(&state),
        };
        if workload.is_complete(&progress) {
            return Some(progress.round);
        }
        if state.round() >= cap {
            return None;
        }
        let m = source.next_matrix(&state, rng);
        debug_assert!(m.is_nonsplit(), "source must produce nonsplit rounds");
        state.apply_matrix(&m);
        if let Some(t) = tracked.as_mut() {
            t.apply_matrix(&m);
        }
    }
}

/// Rounds until some node has reached everyone under a nonsplit-round
/// source, or `None` if `cap` rounds pass first.
///
/// The Függer–Nowak–Winkler bound predicts `O(log log n)`. Thin wrapper
/// over [`workload_time_nonsplit`] with the [`Broadcast`] workload.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use treecast_nonsplit::{broadcast_time_nonsplit, RandomNonsplit};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let t = broadcast_time_nonsplit(64, &mut RandomNonsplit, 100, &mut rng).unwrap();
/// assert!(t <= 16, "nonsplit dissemination is doubly logarithmic, got {t}");
/// ```
pub fn broadcast_time_nonsplit<S: MatrixSource, R: Rng + ?Sized>(
    n: usize,
    source: &mut S,
    cap: u64,
    rng: &mut R,
) -> Option<u64> {
    workload_time_nonsplit(n, &Broadcast, source, cap, rng)
}

/// Rounds until everyone has heard everyone (gossip) under nonsplit
/// rounds, or `None` at `cap`. Thin wrapper over
/// [`workload_time_nonsplit`] with the [`Gossip`] workload.
pub fn gossip_time_nonsplit<S: MatrixSource, R: Rng + ?Sized>(
    n: usize,
    source: &mut S,
    cap: u64,
    rng: &mut R,
) -> Option<u64> {
    workload_time_nonsplit(n, &Gossip, source, cap, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use treecast_trees::generators as treegen;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xBEEF)
    }

    #[test]
    fn cfn_lemma_holds_for_random_sequences() {
        let mut rng = rng();
        for n in [2usize, 3, 5, 8, 12, 20] {
            for _ in 0..10 {
                let trees = random_tree_sequence(n, n.saturating_sub(1).max(1), &mut rng);
                assert!(
                    cfn_product_is_nonsplit(&trees),
                    "CFN lemma violated at n = {n}"
                );
            }
        }
    }

    #[test]
    fn cfn_lemma_is_tight() {
        for n in [3usize, 5, 9, 17] {
            assert!(
                !split_path_power(n).is_nonsplit(),
                "n − 2 path powers must stay split at n = {n}"
            );
        }
    }

    #[test]
    fn product_of_structured_families_nonsplit() {
        // n − 1 products of mixed deterministic families.
        let n = 7;
        let trees: Vec<RootedTree> = vec![
            treegen::path(n),
            treegen::star(n),
            treegen::broom(n, 3),
            treegen::caterpillar(n, 2),
            treegen::spider(n, 2),
            treegen::complete_binary(n),
        ];
        assert_eq!(trees.len(), n - 1);
        assert!(cfn_product_is_nonsplit(&trees));
    }

    #[test]
    fn generators_produce_nonsplit() {
        let mut rng = rng();
        for n in [1usize, 2, 5, 16, 33] {
            assert!(generators::star_based(n, 5, &mut rng).is_nonsplit());
            assert!(generators::pairwise_min(n, &mut rng).is_nonsplit());
            assert!(generators::tree_product(n, &mut rng).is_nonsplit());
        }
    }

    #[test]
    fn grid_is_nonsplit_even_when_truncated() {
        // Perfect squares and awkward sizes alike.
        for n in [1usize, 2, 3, 5, 7, 10, 12, 16, 17, 24, 26, 50, 100, 101] {
            let g = generators::grid(n);
            assert!(g.is_nonsplit(), "grid({n}) split");
        }
    }

    #[test]
    fn grid_rows_are_sqrt_thin() {
        let n = 100;
        let g = generators::grid(n);
        let max_row = g.row_weights().into_iter().max().unwrap();
        assert!(max_row <= 19, "grid rows must be Θ(√n), got {max_row}");
    }

    #[test]
    fn grid_dissemination_shows_loglog_growth() {
        let mut rng = rng();
        let mut prev = 0;
        for n in [16usize, 256, 4096] {
            let t = broadcast_time_nonsplit(n, &mut GridNonsplit, 100, &mut rng)
                .expect("grid rounds broadcast");
            assert!(t >= prev, "dissemination must not shrink with n");
            assert!(t <= 10, "n = {n}: grid dissemination {t} too slow");
            prev = t;
        }
    }

    #[test]
    fn reflexive_nonsplit_products_stay_nonsplit() {
        let mut rng = rng();
        let n = 9;
        let a = generators::pairwise_min(n, &mut rng);
        let b = generators::pairwise_min(n, &mut rng);
        assert!(a.compose(&b).is_nonsplit());
    }

    #[test]
    fn dissemination_is_fast() {
        let mut rng = rng();
        for n in [8usize, 32, 128] {
            let t = broadcast_time_nonsplit(n, &mut RandomNonsplit, 200, &mut rng)
                .expect("random nonsplit rounds must broadcast quickly");
            // Extremely loose double-log sanity envelope.
            assert!(t <= 24, "n = {n}: took {t} rounds");
        }
    }

    #[test]
    fn greedy_delays_at_least_as_long_as_random() {
        let n = 32;
        let trials = 5;
        let mut rng = rng();
        let mut total_rand = 0;
        let mut total_greedy = 0;
        for _ in 0..trials {
            total_rand += broadcast_time_nonsplit(n, &mut RandomNonsplit, 500, &mut rng).unwrap();
            total_greedy +=
                broadcast_time_nonsplit(n, &mut GreedyNonsplit::default(), 500, &mut rng).unwrap();
        }
        assert!(
            total_greedy + trials >= total_rand,
            "greedy ({total_greedy}) should not be much faster than random ({total_rand})"
        );
    }

    #[test]
    fn gossip_takes_at_least_broadcast() {
        let mut rng = rng();
        let n = 16;
        let g = gossip_time_nonsplit(n, &mut RandomNonsplit, 500, &mut rng).unwrap();
        let mut rng2 = StdRng::seed_from_u64(0xBEEF);
        let b = broadcast_time_nonsplit(n, &mut RandomNonsplit, 500, &mut rng2).unwrap();
        assert!(g >= b, "gossip {g} earlier than broadcast {b} on same seed");
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn empty_product_panics() {
        product_of(&[]);
    }

    #[test]
    fn product_parity_regression() {
        // Audit of the acc/scratch ping-pong: after an even number of
        // swaps the returned buffer started life as the scratch matrix, so
        // a compose kernel that merely OR-ed into (instead of overwriting)
        // its output would corrupt even-length products only. Pin odd and
        // even sequence lengths of identical trees against a plain
        // allocating compose chain.
        let n = 6;
        for tree in [treegen::path(n), treegen::broom(n, 3), treegen::star(n)] {
            for len in 1..=2 * n {
                let seq: Vec<RootedTree> = vec![tree.clone(); len];
                let mut reference = tree.to_matrix(true);
                for t in &seq[1..] {
                    reference = reference.compose(&t.to_matrix(true));
                }
                assert_eq!(
                    product_of(&seq),
                    reference,
                    "len = {len} ({}) product diverged",
                    if len % 2 == 0 { "even" } else { "odd" }
                );
            }
        }
    }

    #[test]
    fn piecewise_is_tightly_c_nonsplit() {
        for c in 2..=4usize {
            for n in [2 * (c + 1), 3 * (c + 1) + 1, 20] {
                let g = generators::piecewise(n, c);
                assert!(g.is_c_nonsplit(c), "piecewise({n}, {c}) not {c}-nonsplit");
                assert!(
                    !g.is_c_nonsplit(c + 1),
                    "piecewise({n}, {c}) unexpectedly {}-nonsplit",
                    c + 1
                );
            }
        }
        // Degenerate small-n case: one full hub serves every subset size.
        let tiny = generators::piecewise(3, 4);
        assert!(tiny.is_c_nonsplit(3));
    }

    #[test]
    fn piecewise_source_produces_c_nonsplit_rounds() {
        let mut rng = rng();
        let state = BroadcastState::new(14);
        for c in [2usize, 3, 4] {
            let mut src = PiecewiseNonsplit::new(c);
            for _ in 0..5 {
                let m = src.next_matrix(&state, &mut rng);
                assert!(m.is_c_nonsplit(c), "c = {c}");
            }
        }
    }

    #[test]
    fn tighter_nonsplit_is_never_slower() {
        // Raising c can only help the processes: measure the piecewise
        // family end to end and require a (weakly) falling gossip time.
        let n = 24;
        let trials = 4;
        let mut times = Vec::new();
        for c in [2usize, 4, 8] {
            let mut total = 0u64;
            for seed in 0..trials {
                let mut rng = StdRng::seed_from_u64(seed);
                total +=
                    gossip_time_nonsplit(n, &mut PiecewiseNonsplit::new(c), 500, &mut rng).unwrap();
            }
            times.push(total);
        }
        assert!(
            times[0] + trials >= times[2],
            "c = 8 ({}) should not be slower than c = 2 ({}) beyond noise",
            times[2],
            times[0]
        );
    }

    #[test]
    fn workload_lattice_orders_completion_times() {
        use treecast_core::KBroadcast;
        let n = 16;
        let times: Vec<u64> = (1..=n)
            .step_by(5)
            .map(|k| {
                let mut rng = StdRng::seed_from_u64(7);
                workload_time_nonsplit(n, &KBroadcast::new(k), &mut RandomNonsplit, 500, &mut rng)
                    .expect("random nonsplit completes k-broadcast")
            })
            .collect();
        assert!(
            times.windows(2).all(|w| w[0] <= w[1]),
            "k-broadcast times must be monotone in k: {times:?}"
        );
        let mut rng = StdRng::seed_from_u64(7);
        let gossip = gossip_time_nonsplit(n, &mut RandomNonsplit, 500, &mut rng).unwrap();
        assert_eq!(*times.last().unwrap(), gossip);
    }

    #[test]
    fn tracked_subset_agrees_with_full_state_under_nonsplit_rounds() {
        use treecast_core::KSourceBroadcast;
        let n = 12;
        let workload = KSourceBroadcast::evenly_spread(n, 3);
        let mut rng = StdRng::seed_from_u64(99);
        let tracked =
            workload_time_nonsplit(n, &workload, &mut RandomNonsplit, 500, &mut rng).unwrap();
        // The same seed's gossip run upper-bounds the 3-source run.
        let mut rng = StdRng::seed_from_u64(99);
        let gossip = gossip_time_nonsplit(n, &mut RandomNonsplit, 500, &mut rng).unwrap();
        assert!(tracked <= gossip, "3 tokens ({tracked}) vs all ({gossip})");
    }
}
