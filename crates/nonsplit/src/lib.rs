//! Nonsplit graphs: the machinery behind the *previous best* upper bound.
//!
//! A directed graph is **nonsplit** when every pair of nodes has a common
//! in-neighbor. Figure 1's `O(n log log n)` column combines two cited
//! results that this crate makes executable:
//!
//! * **\[CFN15\] composition lemma** — the product of any `n − 1` rooted
//!   trees (with self-loops) is nonsplit: [`product_of`] +
//!   [`cfn_product_is_nonsplit`], with the tightness witness
//!   ([`split_path_power`]) showing `n − 2` does not suffice.
//! * **\[FNW20\] dissemination** — sequences of nonsplit graphs broadcast in
//!   `O(log log n)` rounds: [`broadcast_time_nonsplit`] measured against
//!   [`treecast_core::bounds::fnw_reference`].
//!
//! # Examples
//!
//! ```
//! use rand::SeedableRng;
//! use treecast_nonsplit::{cfn_product_is_nonsplit, random_tree_sequence};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let trees = random_tree_sequence(8, 7, &mut rng); // n − 1 trees
//! assert!(cfn_product_is_nonsplit(&trees));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::Rng;

use treecast_bitmatrix::BoolMatrix;
use treecast_core::BroadcastState;
use treecast_trees::{random, RootedTree};

/// The product `T₁∘…∘T_k` of a tree sequence, self-loops included
/// (Definition 2.1 iterated).
///
/// # Panics
///
/// Panics if `trees` is empty or sizes disagree.
pub fn product_of(trees: &[RootedTree]) -> BoolMatrix {
    assert!(
        !trees.is_empty(),
        "product of an empty sequence is undefined"
    );
    // Ping-pong two buffers through the allocation-free kernel: the only
    // per-round allocation left is the tree's own matrix.
    let mut acc = trees[0].to_matrix(true);
    let mut scratch = BoolMatrix::zeros(acc.n());
    for t in &trees[1..] {
        acc.compose_into(&t.to_matrix(true), &mut scratch);
        std::mem::swap(&mut acc, &mut scratch);
    }
    acc
}

/// The Charron-Bost–Függer–Nowak lemma, executable: is the product of this
/// tree sequence nonsplit? (True whenever `trees.len() ≥ n − 1`.)
pub fn cfn_product_is_nonsplit(trees: &[RootedTree]) -> bool {
    product_of(trees).is_nonsplit()
}

/// A sequence of `k` uniform random rooted trees on `n` nodes.
pub fn random_tree_sequence<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Vec<RootedTree> {
    (0..k).map(|_| random::uniform(n, rng)).collect()
}

/// The tightness witness for the CFN lemma: the product of `n − 2` copies
/// of the path is **split** (nodes `0` and `n − 1` share no in-neighbor),
/// so `n − 1` in the lemma cannot be improved.
///
/// Returns the split product matrix.
///
/// # Panics
///
/// Panics if `n < 3`.
///
/// # Examples
///
/// ```
/// use treecast_nonsplit::split_path_power;
/// assert!(!split_path_power(6).is_nonsplit());
/// ```
pub fn split_path_power(n: usize) -> BoolMatrix {
    assert!(n >= 3, "need at least 3 nodes for a split power");
    let path = treecast_trees::generators::path(n);
    let seq: Vec<RootedTree> = vec![path; n - 2];
    let product = product_of(&seq);
    debug_assert!(!product.is_nonsplit());
    product
}

/// Generators for random and adversarial nonsplit round graphs.
pub mod generators {
    use super::*;

    /// A reflexive star-based nonsplit graph: one random hub points to
    /// everyone (making all pairs share the hub), plus a sprinkle of
    /// `extra` random edges.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn star_based<R: Rng + ?Sized>(n: usize, extra: usize, rng: &mut R) -> BoolMatrix {
        assert!(n > 0, "graph needs at least one node");
        let hub = rng.gen_range(0..n);
        let mut m = BoolMatrix::identity(n);
        for y in 0..n {
            m.set(hub, y, true);
        }
        for _ in 0..extra {
            m.set(rng.gen_range(0..n), rng.gen_range(0..n), true);
        }
        m
    }

    /// A *sparse* nonsplit graph: every unordered pair of nodes is
    /// assigned a random common in-neighbor, and nothing else (apart from
    /// self-loops). In-neighbors are spread to keep rows slim — the
    /// adversarially interesting end of the nonsplit spectrum.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn pairwise_min<R: Rng + ?Sized>(n: usize, rng: &mut R) -> BoolMatrix {
        assert!(n > 0, "graph needs at least one node");
        let mut m = BoolMatrix::identity(n);
        for a in 0..n {
            for b in (a + 1)..n {
                let z = rng.gen_range(0..n);
                m.set(z, a, true);
                m.set(z, b, true);
            }
        }
        debug_assert!(m.is_nonsplit());
        m
    }

    /// The nonsplit graph arising as a product of `n − 1` random rooted
    /// trees — the CFN construction itself.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn tree_product<R: Rng + ?Sized>(n: usize, rng: &mut R) -> BoolMatrix {
        if n == 1 {
            return BoolMatrix::identity(1);
        }
        product_of(&random_tree_sequence(n, n - 1, rng))
    }

    /// The deterministic **grid** nonsplit graph — the sparsest classic
    /// construction, with out-degrees `Θ(√n)`.
    ///
    /// Nodes are laid on a `⌈√n⌉ × ⌈√n⌉` grid (last row possibly partial);
    /// node `z` points to every node sharing its row or column. Any two
    /// nodes `y₁, y₂` have the "corner" `(row(y₁), col(y₂))` (or a same-row
    /// fallback) as a common in-neighbor, so the graph is nonsplit while
    /// keeping every reach set near the `Θ(√n)` information-theoretic
    /// minimum — the adversarially *slowest* nonsplit round, which is what
    /// makes the FNW `log log n` growth visible.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use treecast_nonsplit::generators::grid;
    /// let g = grid(16);
    /// assert!(g.is_nonsplit());
    /// assert!(g.row_weights().iter().all(|&w| w <= 8)); // 2·√16 − 1 + loop
    /// ```
    pub fn grid(n: usize) -> BoolMatrix {
        assert!(n > 0, "graph needs at least one node");
        let side = (1..).find(|s| s * s >= n).expect("finite n");
        let mut m = BoolMatrix::identity(n);
        for z in 0..n {
            let (zr, zc) = (z / side, z % side);
            for y in 0..n {
                let (yr, yc) = (y / side, y % side);
                if yr == zr || yc == zc {
                    m.set(z, y, true);
                }
            }
        }
        debug_assert!(m.is_nonsplit());
        m
    }
}

/// Plays the deterministic sparse [`generators::grid`] graph every round —
/// the slowest nonsplit adversary in the crate.
#[derive(Debug, Clone, Copy, Default)]
pub struct GridNonsplit;

impl MatrixSource for GridNonsplit {
    fn next_matrix<R: Rng + ?Sized>(&mut self, state: &BroadcastState, _rng: &mut R) -> BoolMatrix {
        generators::grid(state.n())
    }
}

/// Produces the round-`t` nonsplit matrix given the current state.
pub trait MatrixSource {
    /// The next round's (nonsplit) graph.
    fn next_matrix<R: Rng + ?Sized>(&mut self, state: &BroadcastState, rng: &mut R) -> BoolMatrix;
}

/// Plays a fresh sparse random nonsplit graph every round.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomNonsplit;

impl MatrixSource for RandomNonsplit {
    fn next_matrix<R: Rng + ?Sized>(&mut self, state: &BroadcastState, rng: &mut R) -> BoolMatrix {
        generators::pairwise_min(state.n(), rng)
    }
}

/// Greedy delaying adversary over nonsplit rounds: samples `pool` sparse
/// candidates and plays the one minimizing the largest reach set — the
/// nonsplit analogue of the tree adversaries' objectives.
#[derive(Debug, Clone, Copy)]
pub struct GreedyNonsplit {
    /// Candidates sampled per round.
    pub pool: usize,
}

impl Default for GreedyNonsplit {
    fn default() -> Self {
        GreedyNonsplit { pool: 8 }
    }
}

impl MatrixSource for GreedyNonsplit {
    fn next_matrix<R: Rng + ?Sized>(&mut self, state: &BroadcastState, rng: &mut R) -> BoolMatrix {
        let n = state.n();
        let mut best: Option<(usize, BoolMatrix)> = None;
        // One probe state reused across the pool: `clone_from` recycles its
        // flat buffers instead of reallocating per candidate.
        let mut after = state.clone();
        for _ in 0..self.pool.max(1) {
            let candidate = generators::pairwise_min(n, rng);
            after.clone_from(state);
            after.apply_matrix(&candidate);
            let max_reach = after.reach_weights().into_iter().max().unwrap_or(0);
            if best.as_ref().map(|(b, _)| max_reach < *b).unwrap_or(true) {
                best = Some((max_reach, candidate));
            }
        }
        best.expect("pool ≥ 1").1
    }
}

/// Rounds until some node has reached everyone under a nonsplit-round
/// source, or `None` if `cap` rounds pass first.
///
/// The Függer–Nowak–Winkler bound predicts `O(log log n)`.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use treecast_nonsplit::{broadcast_time_nonsplit, RandomNonsplit};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let t = broadcast_time_nonsplit(64, &mut RandomNonsplit, 100, &mut rng).unwrap();
/// assert!(t <= 16, "nonsplit dissemination is doubly logarithmic, got {t}");
/// ```
pub fn broadcast_time_nonsplit<S: MatrixSource, R: Rng + ?Sized>(
    n: usize,
    source: &mut S,
    cap: u64,
    rng: &mut R,
) -> Option<u64> {
    let mut state = BroadcastState::new(n);
    while state.broadcast_witness().is_none() {
        if state.round() >= cap {
            return None;
        }
        let m = source.next_matrix(&state, rng);
        debug_assert!(m.is_nonsplit(), "source must produce nonsplit rounds");
        state.apply_matrix(&m);
    }
    Some(state.round())
}

/// Rounds until everyone has heard everyone (gossip) under nonsplit
/// rounds, or `None` at `cap`.
pub fn gossip_time_nonsplit<S: MatrixSource, R: Rng + ?Sized>(
    n: usize,
    source: &mut S,
    cap: u64,
    rng: &mut R,
) -> Option<u64> {
    let mut state = BroadcastState::new(n);
    while !state.is_gossip_complete() {
        if state.round() >= cap {
            return None;
        }
        let m = source.next_matrix(&state, rng);
        state.apply_matrix(&m);
    }
    Some(state.round())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use treecast_trees::generators as treegen;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xBEEF)
    }

    #[test]
    fn cfn_lemma_holds_for_random_sequences() {
        let mut rng = rng();
        for n in [2usize, 3, 5, 8, 12, 20] {
            for _ in 0..10 {
                let trees = random_tree_sequence(n, n.saturating_sub(1).max(1), &mut rng);
                assert!(
                    cfn_product_is_nonsplit(&trees),
                    "CFN lemma violated at n = {n}"
                );
            }
        }
    }

    #[test]
    fn cfn_lemma_is_tight() {
        for n in [3usize, 5, 9, 17] {
            assert!(
                !split_path_power(n).is_nonsplit(),
                "n − 2 path powers must stay split at n = {n}"
            );
        }
    }

    #[test]
    fn product_of_structured_families_nonsplit() {
        // n − 1 products of mixed deterministic families.
        let n = 7;
        let trees: Vec<RootedTree> = vec![
            treegen::path(n),
            treegen::star(n),
            treegen::broom(n, 3),
            treegen::caterpillar(n, 2),
            treegen::spider(n, 2),
            treegen::complete_binary(n),
        ];
        assert_eq!(trees.len(), n - 1);
        assert!(cfn_product_is_nonsplit(&trees));
    }

    #[test]
    fn generators_produce_nonsplit() {
        let mut rng = rng();
        for n in [1usize, 2, 5, 16, 33] {
            assert!(generators::star_based(n, 5, &mut rng).is_nonsplit());
            assert!(generators::pairwise_min(n, &mut rng).is_nonsplit());
            assert!(generators::tree_product(n, &mut rng).is_nonsplit());
        }
    }

    #[test]
    fn grid_is_nonsplit_even_when_truncated() {
        // Perfect squares and awkward sizes alike.
        for n in [1usize, 2, 3, 5, 7, 10, 12, 16, 17, 24, 26, 50, 100, 101] {
            let g = generators::grid(n);
            assert!(g.is_nonsplit(), "grid({n}) split");
        }
    }

    #[test]
    fn grid_rows_are_sqrt_thin() {
        let n = 100;
        let g = generators::grid(n);
        let max_row = g.row_weights().into_iter().max().unwrap();
        assert!(max_row <= 19, "grid rows must be Θ(√n), got {max_row}");
    }

    #[test]
    fn grid_dissemination_shows_loglog_growth() {
        let mut rng = rng();
        let mut prev = 0;
        for n in [16usize, 256, 4096] {
            let t = broadcast_time_nonsplit(n, &mut GridNonsplit, 100, &mut rng)
                .expect("grid rounds broadcast");
            assert!(t >= prev, "dissemination must not shrink with n");
            assert!(t <= 10, "n = {n}: grid dissemination {t} too slow");
            prev = t;
        }
    }

    #[test]
    fn reflexive_nonsplit_products_stay_nonsplit() {
        let mut rng = rng();
        let n = 9;
        let a = generators::pairwise_min(n, &mut rng);
        let b = generators::pairwise_min(n, &mut rng);
        assert!(a.compose(&b).is_nonsplit());
    }

    #[test]
    fn dissemination_is_fast() {
        let mut rng = rng();
        for n in [8usize, 32, 128] {
            let t = broadcast_time_nonsplit(n, &mut RandomNonsplit, 200, &mut rng)
                .expect("random nonsplit rounds must broadcast quickly");
            // Extremely loose double-log sanity envelope.
            assert!(t <= 24, "n = {n}: took {t} rounds");
        }
    }

    #[test]
    fn greedy_delays_at_least_as_long_as_random() {
        let n = 32;
        let trials = 5;
        let mut rng = rng();
        let mut total_rand = 0;
        let mut total_greedy = 0;
        for _ in 0..trials {
            total_rand += broadcast_time_nonsplit(n, &mut RandomNonsplit, 500, &mut rng).unwrap();
            total_greedy +=
                broadcast_time_nonsplit(n, &mut GreedyNonsplit::default(), 500, &mut rng).unwrap();
        }
        assert!(
            total_greedy + trials >= total_rand,
            "greedy ({total_greedy}) should not be much faster than random ({total_rand})"
        );
    }

    #[test]
    fn gossip_takes_at_least_broadcast() {
        let mut rng = rng();
        let n = 16;
        let g = gossip_time_nonsplit(n, &mut RandomNonsplit, 500, &mut rng).unwrap();
        let mut rng2 = StdRng::seed_from_u64(0xBEEF);
        let b = broadcast_time_nonsplit(n, &mut RandomNonsplit, 500, &mut rng2).unwrap();
        assert!(g >= b, "gossip {g} earlier than broadcast {b} on same seed");
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn empty_product_panics() {
        product_of(&[]);
    }
}
