//! Borrowed row views into the flat [`BoolMatrix`] storage.
//!
//! A [`crate::BoolMatrix`] keeps all of its bits in one contiguous
//! `Vec<u64>`; [`RowRef`] and [`RowMut`] are zero-copy windows onto one
//! row of it, presenting the same set-algebra API as an owned
//! [`BitSet`]. Everything that used to take or return `&BitSet` rows now
//! works on these views, so row-oriented consumers (the broadcast model,
//! the adversaries, the nonsplit machinery) never pay a copy to look at a
//! row.

use core::fmt;

use crate::bitset::{
    words_difference_len, words_disjoint, words_intersection_len, words_subset, BitSet, BitView,
    Iter, WORD_BITS,
};

/// An immutable, borrowed view of one matrix row (a reach set).
///
/// `RowRef` is `Copy` — it is a fat pointer into the matrix's flat word
/// buffer plus the universe size. It interoperates with [`BitSet`] through
/// the [`BitView`] trait: every binary operation on either type accepts
/// the other.
///
/// # Examples
///
/// ```
/// use treecast_bitmatrix::BoolMatrix;
///
/// let m = BoolMatrix::from_edges(5, [(1, 2), (1, 4)]);
/// let row = m.row(1);
/// assert_eq!(row.len(), 2);
/// assert_eq!(row.iter().collect::<Vec<_>>(), vec![2, 4]);
/// assert!(row.is_subset(m.row(1)));
/// ```
#[derive(Clone, Copy)]
pub struct RowRef<'a> {
    nbits: usize,
    words: &'a [u64],
}

impl<'a> RowRef<'a> {
    /// Wraps a masked word slice as a row view.
    #[inline]
    pub(crate) fn new(nbits: usize, words: &'a [u64]) -> Self {
        debug_assert_eq!(words.len(), crate::bitset::words_for(nbits));
        RowRef { nbits, words }
    }

    /// The size of the universe this row draws elements from.
    #[inline]
    pub fn universe_size(self) -> usize {
        self.nbits
    }

    /// The raw storage words, least-significant bit = element 0.
    #[inline]
    pub fn words(self) -> &'a [u64] {
        self.words
    }

    /// Number of elements in the row (popcount).
    #[inline]
    pub fn len(self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if the row has no elements.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Returns `true` if the row equals the whole universe.
    #[inline]
    pub fn is_full(self) -> bool {
        self.len() == self.nbits
    }

    /// Tests membership. Out-of-universe queries return `false`.
    #[inline]
    pub fn contains(self, elem: usize) -> bool {
        if elem >= self.nbits {
            return false;
        }
        self.words[elem / WORD_BITS] & (1u64 << (elem % WORD_BITS)) != 0
    }

    /// The smallest element, if any.
    pub fn min(self) -> Option<usize> {
        for (i, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(i * WORD_BITS + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Iterates over the elements in increasing order.
    #[inline]
    pub fn iter(self) -> Iter<'a> {
        Iter::over_words(self.words)
    }

    /// Copies the view into an owned [`BitSet`].
    pub fn to_bitset(self) -> BitSet {
        BitSet::from_words(self.nbits, self.words.to_vec())
    }

    /// Returns `true` if `self ⊆ other`.
    ///
    /// # Panics
    ///
    /// Panics if the universe sizes differ.
    #[inline]
    pub fn is_subset<V: BitView>(self, other: V) -> bool {
        self.check_same_universe(&other);
        words_subset(self.words, other.words())
    }

    /// Returns `true` if the sets share no element.
    ///
    /// # Panics
    ///
    /// Panics if the universe sizes differ.
    #[inline]
    pub fn is_disjoint<V: BitView>(self, other: V) -> bool {
        self.check_same_universe(&other);
        words_disjoint(self.words, other.words())
    }

    /// Returns `true` if the sets share at least one element.
    ///
    /// # Panics
    ///
    /// Panics if the universe sizes differ.
    #[inline]
    pub fn intersects<V: BitView>(self, other: V) -> bool {
        !self.is_disjoint(other)
    }

    /// Number of elements in `self ∩ other` without materializing it.
    ///
    /// # Panics
    ///
    /// Panics if the universe sizes differ.
    #[inline]
    pub fn intersection_len<V: BitView>(self, other: V) -> usize {
        self.check_same_universe(&other);
        words_intersection_len(self.words, other.words())
    }

    /// Number of elements in `self \ other` without materializing it.
    ///
    /// # Panics
    ///
    /// Panics if the universe sizes differ.
    #[inline]
    pub fn difference_len<V: BitView>(self, other: V) -> usize {
        self.check_same_universe(&other);
        words_difference_len(self.words, other.words())
    }

    #[inline]
    fn check_same_universe<V: BitView>(self, other: &V) {
        assert_eq!(
            self.nbits,
            other.universe_size(),
            "bitset universe mismatch: {} vs {}",
            self.nbits,
            other.universe_size()
        );
    }
}

impl BitView for RowRef<'_> {
    #[inline]
    fn universe_size(&self) -> usize {
        self.nbits
    }

    #[inline]
    fn words(&self) -> &[u64] {
        self.words
    }
}

impl<'a> IntoIterator for RowRef<'a> {
    type Item = usize;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl PartialEq for RowRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.nbits == other.nbits && self.words == other.words
    }
}

impl Eq for RowRef<'_> {}

impl PartialEq<BitSet> for RowRef<'_> {
    fn eq(&self, other: &BitSet) -> bool {
        self.nbits == other.universe_size() && self.words == BitView::words(other)
    }
}

impl PartialEq<RowRef<'_>> for BitSet {
    fn eq(&self, other: &RowRef<'_>) -> bool {
        other == self
    }
}

/// Renders the row as a bitstring, element 0 leftmost (same format as
/// [`BitSet`]).
impl fmt::Display for RowRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.nbits {
            f.write_str(if self.contains(i) { "1" } else { "0" })?;
        }
        Ok(())
    }
}

impl fmt::Debug for RowRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Row({}/{})", self, self.nbits)
    }
}

/// A mutable, borrowed view of one matrix row.
///
/// Supports the in-place mutations an owned [`BitSet`] row used to offer;
/// reading goes through [`RowMut::as_ref`] (or the [`BitView`] impl).
///
/// # Examples
///
/// ```
/// use treecast_bitmatrix::BoolMatrix;
///
/// let mut m = BoolMatrix::zeros(4);
/// let mut row = m.row_mut(2);
/// row.insert(0);
/// row.insert(3);
/// assert!(m.get(2, 0) && m.get(2, 3));
/// ```
pub struct RowMut<'a> {
    nbits: usize,
    words: &'a mut [u64],
}

impl<'a> RowMut<'a> {
    /// Wraps a masked word slice as a mutable row view.
    #[inline]
    pub(crate) fn new(nbits: usize, words: &'a mut [u64]) -> Self {
        debug_assert_eq!(words.len(), crate::bitset::words_for(nbits));
        RowMut { nbits, words }
    }

    /// The size of the universe this row draws elements from.
    #[inline]
    pub fn universe_size(&self) -> usize {
        self.nbits
    }

    /// Reborrows as an immutable view.
    #[inline]
    pub fn as_ref(&self) -> RowRef<'_> {
        RowRef::new(self.nbits, self.words)
    }

    /// Inserts an element. Returns `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `elem >= universe_size`.
    #[inline]
    pub fn insert(&mut self, elem: usize) -> bool {
        assert!(
            elem < self.nbits,
            "element {} out of universe of size {}",
            elem,
            self.nbits
        );
        let w = &mut self.words[elem / WORD_BITS];
        let mask = 1u64 << (elem % WORD_BITS);
        let fresh = *w & mask == 0;
        *w |= mask;
        fresh
    }

    /// Removes an element. Returns `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `elem >= universe_size`.
    #[inline]
    pub fn remove(&mut self, elem: usize) -> bool {
        assert!(
            elem < self.nbits,
            "element {} out of universe of size {}",
            elem,
            self.nbits
        );
        let w = &mut self.words[elem / WORD_BITS];
        let mask = 1u64 << (elem % WORD_BITS);
        let present = *w & mask != 0;
        *w &= !mask;
        present
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// In-place union: `row ← row ∪ other`.
    ///
    /// # Panics
    ///
    /// Panics if the universe sizes differ.
    #[inline]
    pub fn union_with<V: BitView>(&mut self, other: V) {
        self.check_same_universe(&other);
        for (a, b) in self.words.iter_mut().zip(other.words()) {
            *a |= b;
        }
    }

    /// In-place intersection: `row ← row ∩ other`.
    ///
    /// # Panics
    ///
    /// Panics if the universe sizes differ.
    #[inline]
    pub fn intersect_with<V: BitView>(&mut self, other: V) {
        self.check_same_universe(&other);
        for (a, b) in self.words.iter_mut().zip(other.words()) {
            *a &= b;
        }
    }

    /// In-place difference: `row ← row \ other`.
    ///
    /// # Panics
    ///
    /// Panics if the universe sizes differ.
    #[inline]
    pub fn difference_with<V: BitView>(&mut self, other: V) {
        self.check_same_universe(&other);
        for (a, b) in self.words.iter_mut().zip(other.words()) {
            *a &= !b;
        }
    }

    /// Overwrites the row with the contents of any same-universe view.
    ///
    /// # Panics
    ///
    /// Panics if the universe sizes differ.
    #[inline]
    pub fn copy_from<V: BitView>(&mut self, other: V) {
        self.check_same_universe(&other);
        self.words.copy_from_slice(other.words());
    }

    #[inline]
    fn check_same_universe<V: BitView>(&self, other: &V) {
        assert_eq!(
            self.nbits,
            other.universe_size(),
            "bitset universe mismatch: {} vs {}",
            self.nbits,
            other.universe_size()
        );
    }
}

impl BitView for RowMut<'_> {
    #[inline]
    fn universe_size(&self) -> usize {
        self.nbits
    }

    #[inline]
    fn words(&self) -> &[u64] {
        self.words
    }
}

impl fmt::Display for RowMut<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.as_ref(), f)
    }
}

impl fmt::Debug for RowMut<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Row({}/{})", self, self.nbits)
    }
}

#[cfg(test)]
mod tests {
    use crate::BoolMatrix;

    #[test]
    fn row_ref_reads_flat_storage() {
        let m = BoolMatrix::from_edges(70, [(3, 0), (3, 64), (3, 69)]);
        let r = m.row(3);
        assert_eq!(r.universe_size(), 70);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert!(!r.is_full());
        assert!(r.contains(64));
        assert!(!r.contains(1));
        assert!(!r.contains(700));
        assert_eq!(r.min(), Some(0));
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![0, 64, 69]);
        assert_eq!(r.to_bitset().iter().collect::<Vec<_>>(), vec![0, 64, 69]);
        assert_eq!(m.row(0).len(), 0);
        assert_eq!(m.row(0).min(), None);
    }

    #[test]
    fn row_ref_set_algebra_mixes_with_bitset() {
        let m = BoolMatrix::from_edges(6, [(0, 1), (0, 3), (1, 3), (1, 5)]);
        let a = m.row(0);
        let b = m.row(1);
        assert!(a.intersects(b));
        assert!(!a.is_disjoint(b));
        assert_eq!(a.intersection_len(b), 1);
        assert_eq!(a.difference_len(b), 1);
        let owned = a.to_bitset();
        assert!(a.is_subset(&owned));
        assert!(owned.is_subset(a));
        assert_eq!(a, owned);
        assert_eq!(owned, a);
    }

    #[test]
    fn row_mut_mutates_in_place() {
        let mut m = BoolMatrix::zeros(66);
        let mut row = m.row_mut(1);
        assert!(row.insert(65));
        assert!(!row.insert(65));
        assert!(row.remove(65));
        assert!(!row.remove(65));
        row.insert(0);
        row.insert(64);
        assert_eq!(row.as_ref().len(), 2);
        let other = crate::BitSet::from_indices(66, [2, 64]);
        row.union_with(&other);
        assert_eq!(row.as_ref().iter().collect::<Vec<_>>(), vec![0, 2, 64]);
        row.intersect_with(&other);
        assert_eq!(row.as_ref().iter().collect::<Vec<_>>(), vec![2, 64]);
        row.difference_with(&other);
        assert!(row.as_ref().is_empty());
        row.copy_from(&other);
        row.clear();
        assert_eq!(m.edge_count(), 0);
    }

    #[test]
    fn row_views_render_like_bitsets() {
        let m = BoolMatrix::from_edges(4, [(2, 0), (2, 3)]);
        assert_eq!(m.row(2).to_string(), "1001");
        assert_eq!(format!("{:?}", m.row(2)), "Row(1001/4)");
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn row_ref_checks_universe() {
        let a = BoolMatrix::zeros(4);
        let b = BoolMatrix::zeros(5);
        a.row(0).is_subset(b.row(0));
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn row_mut_insert_out_of_range_panics() {
        BoolMatrix::zeros(4).row_mut(0).insert(4);
    }
}
