//! Boolean vectors and adjacency matrices for dynamic-network broadcast
//! analysis.
//!
//! This crate is the lowest-level substrate of the `treecast` workspace, a
//! reproduction of *"Brief Announcement: Broadcasting Time in Dynamic Rooted
//! Trees is Linear"* (El-Hayek, Henzinger & Schmid, PODC 2022). The paper's
//! central idea is to study the broadcast problem through the **evolution of
//! boolean adjacency matrices** under the graph product
//!
//! ```text
//! (x, y) ∈ A∘B  ⇔  ∃z. (x, z) ∈ A ∧ (z, y) ∈ B      (Definition 2.1)
//! ```
//!
//! Three representations are provided:
//!
//! * [`BitSet`] — a dense set over `{0, …, n−1}`; reach sets and
//!   heard-from sets.
//! * [`BoolMatrix`] — an `n×n` matrix in one contiguous row-major
//!   `Vec<u64>` with the product ([`BoolMatrix::compose_into`] is the
//!   allocation-free, cache-tiled, optionally parallel kernel), transpose,
//!   weight profiles, and the broadcast/gossip/nonsplit predicates used
//!   throughout the evaluation. Rows are borrowed out as
//!   [`RowRef`]/[`RowMut`] views, interchangeable with [`BitSet`] through
//!   the [`BitView`] trait.
//! * [`PackedMatrix`] — an entire matrix in one `u64` for `n ≤ 8`, powering
//!   the exact state-space solver.
//! * [`HybridRow`] — a sparse-until-promoted row (sorted index list below a
//!   per-universe threshold, dense words above) for the frontier engine's
//!   million-node states.
//!
//! # Examples
//!
//! One round of a rooted star (center 0) broadcasts immediately, while a
//! path needs `n − 1` rounds:
//!
//! ```
//! use treecast_bitmatrix::BoolMatrix;
//!
//! let n = 4;
//! let mut star = BoolMatrix::identity(n);
//! for leaf in 1..n {
//!     star.set(0, leaf, true);
//! }
//! // One round of the star: node 0 has reached everyone.
//! assert!(star.has_full_row());
//! ```
//!
//! # Feature flags
//!
//! * `serde` — `Serialize`/`Deserialize` for [`BitSet`] and [`BoolMatrix`].
//! * `proptest` — exposes the `strategies` module for downstream property
//!   tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
mod hybrid;
mod matrix;
mod packed;
mod row;

#[cfg(feature = "proptest")]
pub mod strategies;

pub use bitset::{BitSet, BitView, Iter, ParseBitSetError};
pub use hybrid::{hybrid_threshold, HybridIter, HybridRow};
pub use matrix::{BoolMatrix, ComposePath, ParseMatrixError};
pub use packed::{PackedMatrix, PACKED_MAX_N};
pub use row::{RowMut, RowRef};
