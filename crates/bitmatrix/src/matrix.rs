//! Square boolean matrices viewed as directed-graph adjacency matrices.
//!
//! [`BoolMatrix`] implements the product of Definition 2.1 of the paper:
//! `(x, y) ∈ A∘B ⇔ ∃z. (x, z) ∈ A ∧ (z, y) ∈ B`, which is exactly the
//! boolean matrix product. All analysis of broadcast time reduces to
//! tracking how products of rooted-tree matrices evolve.

use core::fmt;
use core::ops::Mul;
use core::str::FromStr;
use std::collections::HashSet;

use crate::bitset::BitSet;

/// A square boolean matrix over `n` nodes, stored as one [`BitSet`] per row.
///
/// Row `x` is the *out-neighborhood* (reach set) of node `x`: entry
/// `(x, y)` is `true` iff there is an edge from `x` to `y`.
///
/// # Examples
///
/// The product graph of a 3-path applied twice — after two rounds the head
/// of the path has reached everyone:
///
/// ```
/// use treecast_bitmatrix::BoolMatrix;
///
/// // Path 0 → 1 → 2 with self-loops.
/// let mut path = BoolMatrix::identity(3);
/// path.set(0, 1, true);
/// path.set(1, 2, true);
///
/// let product = &(&path * &path) * &path; // composing more changes nothing new
/// assert_eq!(product.first_full_row(), Some(0));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BoolMatrix {
    n: usize,
    rows: Vec<BitSet>,
}

impl BoolMatrix {
    /// Creates the all-zeros matrix on `n` nodes.
    pub fn zeros(n: usize) -> Self {
        BoolMatrix {
            n,
            rows: vec![BitSet::new(n); n],
        }
    }

    /// Creates the identity matrix on `n` nodes (self-loops only).
    ///
    /// This is `G(0)` in the model: before any round, every node has heard
    /// only from itself.
    ///
    /// # Examples
    ///
    /// ```
    /// use treecast_bitmatrix::BoolMatrix;
    /// let id = BoolMatrix::identity(4);
    /// assert!(id.is_reflexive());
    /// assert_eq!(id.edge_count(), 4);
    /// ```
    pub fn identity(n: usize) -> Self {
        let mut m = BoolMatrix::zeros(n);
        for i in 0..n {
            m.rows[i].insert(i);
        }
        m
    }

    /// Creates the all-ones matrix on `n` nodes.
    pub fn ones(n: usize) -> Self {
        BoolMatrix {
            n,
            rows: vec![BitSet::full(n); n],
        }
    }

    /// Builds a matrix from explicit rows.
    ///
    /// # Panics
    ///
    /// Panics if any row's universe size differs from the number of rows.
    pub fn from_rows(rows: Vec<BitSet>) -> Self {
        let n = rows.len();
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.universe_size(),
                n,
                "row {} has universe {} but the matrix has {} rows",
                i,
                r.universe_size(),
                n
            );
        }
        BoolMatrix { n, rows }
    }

    /// Builds a matrix from an edge list.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= n`.
    ///
    /// # Examples
    ///
    /// ```
    /// use treecast_bitmatrix::BoolMatrix;
    /// let m = BoolMatrix::from_edges(3, [(0, 1), (1, 2)]);
    /// assert!(m.get(0, 1) && m.get(1, 2) && !m.get(2, 0));
    /// ```
    pub fn from_edges<I: IntoIterator<Item = (usize, usize)>>(n: usize, edges: I) -> Self {
        let mut m = BoolMatrix::zeros(n);
        for (x, y) in edges {
            m.set(x, y, true);
        }
        m
    }

    /// The number of nodes `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Reads entry `(x, y)`.
    ///
    /// Out-of-range queries return `false`.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> bool {
        x < self.n && self.rows[x].contains(y)
    }

    /// Writes entry `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `x >= n` or `y >= n`.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, value: bool) {
        assert!(x < self.n, "row {} out of range for n = {}", x, self.n);
        if value {
            self.rows[x].insert(y);
        } else {
            self.rows[x].remove(y);
        }
    }

    /// Borrows row `x` (the reach set of node `x`).
    ///
    /// # Panics
    ///
    /// Panics if `x >= n`.
    #[inline]
    pub fn row(&self, x: usize) -> &BitSet {
        &self.rows[x]
    }

    /// Mutably borrows row `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x >= n`.
    #[inline]
    pub fn row_mut(&mut self, x: usize) -> &mut BitSet {
        &mut self.rows[x]
    }

    /// Iterates over all rows in index order.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &BitSet> {
        self.rows.iter()
    }

    /// Materializes column `y` as a [`BitSet`] (the in-neighborhood of `y`).
    ///
    /// # Panics
    ///
    /// Panics if `y >= n`.
    pub fn column(&self, y: usize) -> BitSet {
        assert!(y < self.n, "column {} out of range for n = {}", y, self.n);
        let mut col = BitSet::new(self.n);
        for (x, row) in self.rows.iter().enumerate() {
            if row.contains(y) {
                col.insert(x);
            }
        }
        col
    }

    /// The transposed matrix.
    pub fn transpose(&self) -> BoolMatrix {
        let mut t = BoolMatrix::zeros(self.n);
        for (x, row) in self.rows.iter().enumerate() {
            for y in row {
                t.rows[y].insert(x);
            }
        }
        t
    }

    /// The product `self ∘ other` of Definition 2.1:
    /// `(x, y) ∈ A∘B ⇔ ∃z. (x, z) ∈ A ∧ (z, y) ∈ B`.
    ///
    /// Row formulation: `(A∘B).row(x) = ⋃_{z ∈ A.row(x)} B.row(z)`,
    /// computed with word-parallel unions in `O(n·e/64)` where `e` is the
    /// number of edges of `A`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    ///
    /// # Examples
    ///
    /// ```
    /// use treecast_bitmatrix::BoolMatrix;
    /// let a = BoolMatrix::from_edges(3, [(0, 1)]);
    /// let b = BoolMatrix::from_edges(3, [(1, 2)]);
    /// assert!(a.compose(&b).get(0, 2));
    /// assert!(!b.compose(&a).get(0, 2));
    /// ```
    pub fn compose(&self, other: &BoolMatrix) -> BoolMatrix {
        assert_eq!(
            self.n, other.n,
            "matrix dimension mismatch: {} vs {}",
            self.n, other.n
        );
        let mut out = BoolMatrix::zeros(self.n);
        for (x, row) in self.rows.iter().enumerate() {
            let out_row = &mut out.rows[x];
            for z in row {
                out_row.union_with(&other.rows[z]);
            }
        }
        out
    }

    /// In-place union: `self ← self ∪ other` (entry-wise OR).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn union_with(&mut self, other: &BoolMatrix) {
        assert_eq!(
            self.n, other.n,
            "matrix dimension mismatch: {} vs {}",
            self.n, other.n
        );
        for (a, b) in self.rows.iter_mut().zip(&other.rows) {
            a.union_with(b);
        }
    }

    /// Returns `true` if `self[x][y] ⇒ other[x][y]` for all entries.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn is_submatrix_of(&self, other: &BoolMatrix) -> bool {
        assert_eq!(
            self.n, other.n,
            "matrix dimension mismatch: {} vs {}",
            self.n, other.n
        );
        self.rows
            .iter()
            .zip(&other.rows)
            .all(|(a, b)| a.is_subset(b))
    }

    /// Returns `true` if every diagonal entry is set.
    pub fn is_reflexive(&self) -> bool {
        self.rows.iter().enumerate().all(|(i, r)| r.contains(i))
    }

    /// Sets every diagonal entry.
    pub fn add_self_loops(&mut self) {
        for (i, row) in self.rows.iter_mut().enumerate() {
            row.insert(i);
        }
    }

    /// Total number of edges (set entries), self-loops included.
    pub fn edge_count(&self) -> usize {
        self.rows.iter().map(BitSet::len).sum()
    }

    /// The weight (popcount) of each row — the paper's central quantity.
    pub fn row_weights(&self) -> Vec<usize> {
        self.rows.iter().map(BitSet::len).collect()
    }

    /// The weight of each column.
    pub fn col_weights(&self) -> Vec<usize> {
        let mut w = vec![0usize; self.n];
        for row in &self.rows {
            for y in row {
                w[y] += 1;
            }
        }
        w
    }

    /// The first node whose row is full, i.e. a broadcast witness
    /// (Definition 2.2), if one exists.
    ///
    /// # Examples
    ///
    /// ```
    /// use treecast_bitmatrix::BoolMatrix;
    /// assert_eq!(BoolMatrix::identity(1).first_full_row(), Some(0));
    /// assert_eq!(BoolMatrix::identity(2).first_full_row(), None);
    /// ```
    pub fn first_full_row(&self) -> Option<usize> {
        self.rows.iter().position(BitSet::is_full)
    }

    /// Returns `true` if some node has reached every node.
    #[inline]
    pub fn has_full_row(&self) -> bool {
        self.first_full_row().is_some()
    }

    /// All broadcast witnesses.
    pub fn full_rows(&self) -> Vec<usize> {
        (0..self.n).filter(|&x| self.rows[x].is_full()).collect()
    }

    /// Returns `true` if every entry is set — the gossip condition
    /// (everyone has heard from everyone).
    pub fn is_all_ones(&self) -> bool {
        self.rows.iter().all(BitSet::is_full)
    }

    /// Number of pairwise-distinct rows.
    ///
    /// The paper's matrix analysis tracks duplication among rows; a matrix
    /// with many duplicate rows is "compressible" and progresses faster.
    pub fn distinct_row_count(&self) -> usize {
        let mut seen: HashSet<&BitSet> = HashSet::with_capacity(self.n);
        for row in &self.rows {
            seen.insert(row);
        }
        seen.len()
    }

    /// Returns `true` if the graph is *nonsplit*: every pair of nodes has a
    /// common in-neighbor.
    ///
    /// Nonsplit graphs power the previous best `O(n log log n)` upper bound
    /// ([Függer, Nowak & Winkler 2020] combined with
    /// [Charron-Bost, Függer & Nowak 2015]).
    ///
    /// # Examples
    ///
    /// ```
    /// use treecast_bitmatrix::BoolMatrix;
    /// // A star centered at 0 (with loops) is nonsplit: 0 points at everyone.
    /// let mut star = BoolMatrix::identity(4);
    /// for leaf in 1..4 {
    ///     star.set(0, leaf, true);
    /// }
    /// assert!(star.is_nonsplit());
    /// // The identity alone is not (distinct nodes share no in-neighbor).
    /// assert!(!BoolMatrix::identity(2).is_nonsplit());
    /// ```
    pub fn is_nonsplit(&self) -> bool {
        let cols: Vec<BitSet> = (0..self.n).map(|y| self.column(y)).collect();
        for a in 0..self.n {
            for b in (a + 1)..self.n {
                if cols[a].is_disjoint(&cols[b]) {
                    return false;
                }
            }
        }
        true
    }

    /// Applies the node relabeling `perm` (a bijection on `[n]`), returning
    /// the matrix `P` with `P[perm[x]][perm[y]] = self[x][y]`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..n`.
    pub fn permute(&self, perm: &[usize]) -> BoolMatrix {
        assert_eq!(perm.len(), self.n, "permutation length must equal n");
        let mut seen = vec![false; self.n];
        for &p in perm {
            assert!(
                p < self.n && !seen[p],
                "perm is not a permutation of 0..{}",
                self.n
            );
            seen[p] = true;
        }
        let mut out = BoolMatrix::zeros(self.n);
        for (x, row) in self.rows.iter().enumerate() {
            for y in row {
                out.rows[perm[x]].insert(perm[y]);
            }
        }
        out
    }
}

impl Mul for &BoolMatrix {
    type Output = BoolMatrix;

    /// `a * b` is the graph product `a ∘ b` of Definition 2.1.
    fn mul(self, rhs: &BoolMatrix) -> BoolMatrix {
        self.compose(rhs)
    }
}

impl fmt::Debug for BoolMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BoolMatrix(n={})", self.n)?;
        fmt::Display::fmt(self, f)
    }
}

/// Renders the matrix as `n` lines of `n` bits, row 0 first.
impl fmt::Display for BoolMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                f.write_str("\n")?;
            }
            write!(f, "{row}")?;
        }
        Ok(())
    }
}

/// Error returned when parsing a [`BoolMatrix`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseMatrixError {
    /// A row contained a character other than `0`/`1`.
    BadCharacter(char),
    /// Row `row` has `got` entries where `expected` were required.
    RaggedRow {
        /// Index of the offending row.
        row: usize,
        /// Entries found in that row.
        got: usize,
        /// Entries required (the number of rows).
        expected: usize,
    },
}

impl fmt::Display for ParseMatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseMatrixError::BadCharacter(c) => {
                write!(f, "invalid matrix character {c:?}, expected '0' or '1'")
            }
            ParseMatrixError::RaggedRow { row, got, expected } => {
                write!(f, "row {row} has {got} entries, expected {expected}")
            }
        }
    }
}

impl std::error::Error for ParseMatrixError {}

impl FromStr for BoolMatrix {
    type Err = ParseMatrixError;

    /// Parses a matrix from newline-separated bitstrings.
    ///
    /// # Examples
    ///
    /// ```
    /// use treecast_bitmatrix::BoolMatrix;
    /// let m: BoolMatrix = "110\n010\n011".parse()?;
    /// assert!(m.is_reflexive());
    /// assert_eq!(m.edge_count(), 5);
    /// # Ok::<(), treecast_bitmatrix::ParseMatrixError>(())
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lines: Vec<&str> = s.lines().filter(|l| !l.trim().is_empty()).collect();
        let n = lines.len();
        let mut rows = Vec::with_capacity(n);
        for (i, line) in lines.iter().enumerate() {
            let line = line.trim();
            let len = line.chars().count();
            if len != n {
                return Err(ParseMatrixError::RaggedRow {
                    row: i,
                    got: len,
                    expected: n,
                });
            }
            let mut row = BitSet::new(n);
            for (j, c) in line.chars().enumerate() {
                match c {
                    '1' => {
                        row.insert(j);
                    }
                    '0' => {}
                    other => return Err(ParseMatrixError::BadCharacter(other)),
                }
            }
            rows.push(row);
        }
        Ok(BoolMatrix { n, rows })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive O(n³) reference product used to validate the bitset version.
    fn naive_compose(a: &BoolMatrix, b: &BoolMatrix) -> BoolMatrix {
        let n = a.n();
        let mut out = BoolMatrix::zeros(n);
        for x in 0..n {
            for y in 0..n {
                let mut any = false;
                for z in 0..n {
                    if a.get(x, z) && b.get(z, y) {
                        any = true;
                        break;
                    }
                }
                if any {
                    out.set(x, y, true);
                }
            }
        }
        out
    }

    #[test]
    fn identity_is_neutral() {
        let m: BoolMatrix = "0110\n1010\n0011\n1000".parse().unwrap();
        let id = BoolMatrix::identity(4);
        assert_eq!(m.compose(&id), m);
        assert_eq!(id.compose(&m), m);
    }

    #[test]
    fn compose_matches_naive_reference() {
        // Deterministic pseudo-random fill without pulling in rand here.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in [1usize, 2, 3, 5, 8, 17, 64, 65] {
            let mut a = BoolMatrix::zeros(n);
            let mut b = BoolMatrix::zeros(n);
            for x in 0..n {
                for y in 0..n {
                    if next() % 3 == 0 {
                        a.set(x, y, true);
                    }
                    if next() % 3 == 0 {
                        b.set(x, y, true);
                    }
                }
            }
            assert_eq!(a.compose(&b), naive_compose(&a, &b), "n = {n}");
        }
    }

    #[test]
    fn compose_is_associative_on_samples() {
        let a: BoolMatrix = "110\n011\n101".parse().unwrap();
        let b: BoolMatrix = "100\n110\n001".parse().unwrap();
        let c: BoolMatrix = "010\n001\n100".parse().unwrap();
        assert_eq!(a.compose(&b).compose(&c), a.compose(&b.compose(&c)));
    }

    #[test]
    fn mul_operator_is_compose() {
        let a = BoolMatrix::from_edges(3, [(0, 1)]);
        let b = BoolMatrix::from_edges(3, [(1, 2)]);
        assert_eq!(&a * &b, a.compose(&b));
    }

    #[test]
    fn transpose_involution() {
        let m: BoolMatrix = "0110\n1010\n0011\n1000".parse().unwrap();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn column_matches_transpose_row() {
        let m: BoolMatrix = "0110\n1010\n0011\n1000".parse().unwrap();
        let t = m.transpose();
        for y in 0..4 {
            assert_eq!(&m.column(y), t.row(y));
        }
    }

    #[test]
    fn weights() {
        let m: BoolMatrix = "110\n010\n011".parse().unwrap();
        assert_eq!(m.row_weights(), vec![2, 1, 2]);
        assert_eq!(m.col_weights(), vec![1, 3, 1]);
        assert_eq!(m.edge_count(), 5);
    }

    #[test]
    fn full_row_detection() {
        let mut m = BoolMatrix::identity(3);
        assert!(!m.has_full_row());
        m.set(1, 0, true);
        m.set(1, 2, true);
        assert_eq!(m.first_full_row(), Some(1));
        assert_eq!(m.full_rows(), vec![1]);
        assert!(!m.is_all_ones());
        assert!(BoolMatrix::ones(3).is_all_ones());
    }

    #[test]
    fn distinct_rows() {
        let m: BoolMatrix = "110\n110\n001".parse().unwrap();
        assert_eq!(m.distinct_row_count(), 2);
        assert_eq!(BoolMatrix::identity(4).distinct_row_count(), 4);
    }

    #[test]
    fn nonsplit_examples() {
        // All-ones is nonsplit.
        assert!(BoolMatrix::ones(3).is_nonsplit());
        // A single node is vacuously nonsplit.
        assert!(BoolMatrix::identity(1).is_nonsplit());
        // Identity on ≥2 nodes is split.
        assert!(!BoolMatrix::identity(2).is_nonsplit());
        // Star with loops: center reaches everyone, so any pair shares the
        // center as in-neighbor... but only pairs involving covered columns.
        let mut star = BoolMatrix::identity(5);
        for leaf in 1..5 {
            star.set(0, leaf, true);
        }
        assert!(star.is_nonsplit());
    }

    #[test]
    fn permute_relabels() {
        let m = BoolMatrix::from_edges(3, [(0, 1), (1, 2)]);
        let p = m.permute(&[2, 0, 1]); // 0→2, 1→0, 2→1
        assert!(p.get(2, 0), "edge (0,1) must become (2,0)");
        assert!(p.get(0, 1), "edge (1,2) must become (0,1)");
        assert_eq!(p.edge_count(), m.edge_count());
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn permute_rejects_non_bijection() {
        BoolMatrix::identity(3).permute(&[0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn compose_checks_dimensions() {
        let _ = BoolMatrix::identity(3).compose(&BoolMatrix::identity(4));
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(
            "01\n0".parse::<BoolMatrix>(),
            Err(ParseMatrixError::RaggedRow {
                row: 1,
                got: 1,
                expected: 2
            })
        ));
        assert!(matches!(
            "0a\n00".parse::<BoolMatrix>(),
            Err(ParseMatrixError::BadCharacter('a'))
        ));
    }

    #[test]
    fn display_roundtrip() {
        let m: BoolMatrix = "0110\n1010\n0011\n1000".parse().unwrap();
        let rendered = m.to_string();
        assert_eq!(rendered.parse::<BoolMatrix>().unwrap(), m);
    }

    #[test]
    fn submatrix_ordering() {
        let id = BoolMatrix::identity(3);
        let ones = BoolMatrix::ones(3);
        assert!(id.is_submatrix_of(&ones));
        assert!(!ones.is_submatrix_of(&id));
        assert!(id.is_submatrix_of(&id));
    }

    #[test]
    fn union_with_is_entrywise_or() {
        let mut a = BoolMatrix::from_edges(3, [(0, 1)]);
        let b = BoolMatrix::from_edges(3, [(1, 2)]);
        a.union_with(&b);
        assert!(a.get(0, 1) && a.get(1, 2));
        assert_eq!(a.edge_count(), 2);
    }
}
