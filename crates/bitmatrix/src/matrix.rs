//! Square boolean matrices viewed as directed-graph adjacency matrices.
//!
//! [`BoolMatrix`] implements the product of Definition 2.1 of the paper:
//! `(x, y) ∈ A∘B ⇔ ∃z. (x, z) ∈ A ∧ (z, y) ∈ B`, which is exactly the
//! boolean matrix product. All analysis of broadcast time reduces to
//! tracking how products of rooted-tree matrices evolve.
//!
//! # Storage layout
//!
//! The matrix is one contiguous `Vec<u64>` in row-major order with a
//! fixed stride of [`BoolMatrix::words_per_row`] words per row: entry
//! `(x, y)` lives at bit `y % 64` of word `x * words_per_row + y / 64`.
//! Bits past `n` in each row's last word are always zero (the same
//! tail-masking invariant [`BitSet`] keeps), so word-wise equality,
//! hashing and popcounts are exact. Rows are handed out as borrowed
//! [`RowRef`]/[`RowMut`] views — no per-row heap allocations anywhere.

use core::fmt;
use core::ops::Mul;
use core::str::FromStr;
use std::collections::HashSet;

use crate::bitset::{words_for, BitSet, BitView, WORD_BITS};
use crate::row::{RowMut, RowRef};

/// Smallest `n` for which the auto-selected kernel shards rows across
/// threads (only when more than one hardware thread is available).
///
/// Re-measured 2026-08: the `thread::scope` + 2-spawn overhead of the
/// row-sharded path is ~35 µs, while a dense tiled compose costs ~18 µs
/// at `n = 512` and ~41 µs at `n = 1024` — so even a perfect two-way
/// split cannot recoup the spawn cost below `n ≈ 1400`. The threshold
/// therefore sits at 2048 (~177 µs tiled), the first measured size
/// where sharding pays for itself. See `crates/bench/README.md`.
const PARALLEL_MIN_N: usize = 2048;

/// Kernel selector for [`BoolMatrix::compose_into_with`].
///
/// [`ComposePath::Auto`] (the default used by [`BoolMatrix::compose_into`])
/// picks the sparse path for tree-like inputs (≤ 2n edges), the parallel
/// path for large matrices on multicore hosts, and the tiled serial path
/// otherwise. The explicit variants exist for benchmarks and for the
/// kernel-equivalence test suite; results are identical on every path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComposePath {
    /// Choose a kernel from the left operand's density and the host's
    /// parallelism.
    Auto,
    /// Row-by-row bit iteration — optimal when the left operand is a tree
    /// round (O(e · n/64) for `e` edges).
    Sparse,
    /// Cache-tiled over column-word blocks with register accumulators.
    Tiled,
    /// The tiled kernel with rows sharded across `std::thread::scope`
    /// workers.
    Parallel,
}

/// A square boolean matrix over `n` nodes in flat word-packed storage.
///
/// Row `x` is the *out-neighborhood* (reach set) of node `x`: entry
/// `(x, y)` is `true` iff there is an edge from `x` to `y`.
///
/// # Examples
///
/// The product graph of a 3-path applied twice — after two rounds the head
/// of the path has reached everyone:
///
/// ```
/// use treecast_bitmatrix::BoolMatrix;
///
/// // Path 0 → 1 → 2 with self-loops.
/// let mut path = BoolMatrix::identity(3);
/// path.set(0, 1, true);
/// path.set(1, 2, true);
///
/// let product = &(&path * &path) * &path; // composing more changes nothing new
/// assert_eq!(product.first_full_row(), Some(0));
/// ```
#[derive(PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BoolMatrix {
    n: usize,
    /// Words per row; `words.len() == n * stride`.
    stride: usize,
    words: Vec<u64>,
}

impl Clone for BoolMatrix {
    fn clone(&self) -> Self {
        BoolMatrix {
            n: self.n,
            stride: self.stride,
            words: self.words.clone(),
        }
    }

    /// Reuses `self`'s existing buffer when the capacity suffices — the
    /// hot path for beam-search state probing.
    fn clone_from(&mut self, source: &Self) {
        self.n = source.n;
        self.stride = source.stride;
        self.words.clone_from(&source.words);
    }
}

impl BoolMatrix {
    /// Creates the all-zeros matrix on `n` nodes.
    pub fn zeros(n: usize) -> Self {
        let stride = words_for(n);
        BoolMatrix {
            n,
            stride,
            words: vec![0; n * stride],
        }
    }

    /// Creates the identity matrix on `n` nodes (self-loops only).
    ///
    /// This is `G(0)` in the model: before any round, every node has heard
    /// only from itself.
    ///
    /// # Examples
    ///
    /// ```
    /// use treecast_bitmatrix::BoolMatrix;
    /// let id = BoolMatrix::identity(4);
    /// assert!(id.is_reflexive());
    /// assert_eq!(id.edge_count(), 4);
    /// ```
    pub fn identity(n: usize) -> Self {
        let mut m = BoolMatrix::zeros(n);
        m.add_self_loops();
        m
    }

    /// Creates the all-ones matrix on `n` nodes.
    pub fn ones(n: usize) -> Self {
        let stride = words_for(n);
        let mut m = BoolMatrix {
            n,
            stride,
            words: vec![u64::MAX; n * stride],
        };
        m.mask_tails();
        m
    }

    /// Builds a matrix from explicit rows.
    ///
    /// # Panics
    ///
    /// Panics if any row's universe size differs from the number of rows.
    pub fn from_rows(rows: Vec<BitSet>) -> Self {
        let n = rows.len();
        let mut m = BoolMatrix::zeros(n);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.universe_size(),
                n,
                "row {} has universe {} but the matrix has {} rows",
                i,
                r.universe_size(),
                n
            );
            m.row_words_mut(i).copy_from_slice(BitView::words(r));
        }
        m
    }

    /// Builds a matrix from an edge list.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= n`.
    ///
    /// # Examples
    ///
    /// ```
    /// use treecast_bitmatrix::BoolMatrix;
    /// let m = BoolMatrix::from_edges(3, [(0, 1), (1, 2)]);
    /// assert!(m.get(0, 1) && m.get(1, 2) && !m.get(2, 0));
    /// ```
    pub fn from_edges<I: IntoIterator<Item = (usize, usize)>>(n: usize, edges: I) -> Self {
        let mut m = BoolMatrix::zeros(n);
        for (x, y) in edges {
            m.set(x, y, true);
        }
        m
    }

    /// The number of nodes `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The row stride of the flat storage, in `u64` words.
    #[inline]
    pub fn words_per_row(&self) -> usize {
        self.stride
    }

    /// The flat row-major storage (`n * words_per_row` words, tail bits of
    /// each row zero).
    #[inline]
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Heap bytes held by the flat storage (`n * words_per_row * 8`).
    ///
    /// This is the accounting unit of byte-budgeted caches (the server's
    /// sharded prefix-product cache charges each entry
    /// `heap_bytes() + O(1)`): deterministic, allocation-free, and
    /// identical for equal-`n` matrices regardless of contents.
    #[inline]
    pub fn heap_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }

    /// The word slice of row `x`.
    #[inline]
    fn row_words(&self, x: usize) -> &[u64] {
        &self.words[x * self.stride..(x + 1) * self.stride]
    }

    /// The mutable word slice of row `x`.
    #[inline]
    fn row_words_mut(&mut self, x: usize) -> &mut [u64] {
        &mut self.words[x * self.stride..(x + 1) * self.stride]
    }

    /// Zeroes any bits beyond `n` in each row's last word.
    fn mask_tails(&mut self) {
        let rem = self.n % WORD_BITS;
        if rem != 0 && self.stride > 0 {
            let mask = (1u64 << rem) - 1;
            let stride = self.stride;
            for row in self.words.chunks_exact_mut(stride) {
                row[stride - 1] &= mask;
            }
        }
    }

    /// Clears every entry, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Reads entry `(x, y)`.
    ///
    /// Out-of-range queries return `false`.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> bool {
        x < self.n
            && y < self.n
            && self.words[x * self.stride + y / WORD_BITS] & (1u64 << (y % WORD_BITS)) != 0
    }

    /// Writes entry `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `x >= n` or `y >= n`.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, value: bool) {
        assert!(x < self.n, "row {} out of range for n = {}", x, self.n);
        assert!(y < self.n, "column {} out of range for n = {}", y, self.n);
        let w = &mut self.words[x * self.stride + y / WORD_BITS];
        let mask = 1u64 << (y % WORD_BITS);
        if value {
            *w |= mask;
        } else {
            *w &= !mask;
        }
    }

    /// Borrows row `x` (the reach set of node `x`) as a zero-copy view.
    ///
    /// # Panics
    ///
    /// Panics if `x >= n`.
    #[inline]
    pub fn row(&self, x: usize) -> RowRef<'_> {
        assert!(x < self.n, "row {} out of range for n = {}", x, self.n);
        RowRef::new(self.n, self.row_words(x))
    }

    /// Mutably borrows row `x` as a zero-copy view.
    ///
    /// # Panics
    ///
    /// Panics if `x >= n`.
    #[inline]
    pub fn row_mut(&mut self, x: usize) -> RowMut<'_> {
        assert!(x < self.n, "row {} out of range for n = {}", x, self.n);
        let n = self.n;
        RowMut::new(n, self.row_words_mut(x))
    }

    /// Iterates over all rows in index order.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = RowRef<'_>> {
        self.words
            .chunks_exact(self.stride.max(1))
            .take(self.n)
            .map(|w| RowRef::new(self.n, w))
    }

    /// In-place row union: `row dst ← row dst ∪ row src`.
    ///
    /// This is the column-view round update primitive: applying a tree
    /// edge `parent → child` to a heard-from matrix is exactly one such
    /// union. A no-op when `dst == src`.
    ///
    /// # Panics
    ///
    /// Panics if `dst >= n` or `src >= n`.
    #[inline]
    pub fn union_rows(&mut self, dst: usize, src: usize) {
        assert!(dst < self.n, "row {} out of range for n = {}", dst, self.n);
        assert!(src < self.n, "row {} out of range for n = {}", src, self.n);
        if dst == src {
            return;
        }
        let stride = self.stride;
        let (d, s) = (dst * stride, src * stride);
        let (dst_row, src_row) = if dst < src {
            let (lo, hi) = self.words.split_at_mut(s);
            (&mut lo[d..d + stride], &hi[..stride])
        } else {
            let (lo, hi) = self.words.split_at_mut(d);
            (&mut hi[..stride], &lo[s..s + stride])
        };
        for (a, b) in dst_row.iter_mut().zip(src_row) {
            *a |= b;
        }
    }

    /// Materializes column `y` as a [`BitSet`] (the in-neighborhood of `y`).
    ///
    /// # Panics
    ///
    /// Panics if `y >= n`.
    pub fn column(&self, y: usize) -> BitSet {
        assert!(y < self.n, "column {} out of range for n = {}", y, self.n);
        let word = y / WORD_BITS;
        let mask = 1u64 << (y % WORD_BITS);
        let mut col = BitSet::new(self.n);
        for x in 0..self.n {
            if self.words[x * self.stride + word] & mask != 0 {
                col.insert(x);
            }
        }
        col
    }

    /// The transposed matrix.
    pub fn transpose(&self) -> BoolMatrix {
        let mut t = BoolMatrix::zeros(self.n);
        for x in 0..self.n {
            let x_word = x / WORD_BITS;
            let x_mask = 1u64 << (x % WORD_BITS);
            for y in self.row(x) {
                t.words[y * t.stride + x_word] |= x_mask;
            }
        }
        t
    }

    /// The product `self ∘ other` of Definition 2.1:
    /// `(x, y) ∈ A∘B ⇔ ∃z. (x, z) ∈ A ∧ (z, y) ∈ B`.
    ///
    /// Allocates a fresh output; hot paths should hold a scratch matrix
    /// and call [`BoolMatrix::compose_into`] instead.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    ///
    /// # Examples
    ///
    /// ```
    /// use treecast_bitmatrix::BoolMatrix;
    /// let a = BoolMatrix::from_edges(3, [(0, 1)]);
    /// let b = BoolMatrix::from_edges(3, [(1, 2)]);
    /// assert!(a.compose(&b).get(0, 2));
    /// assert!(!b.compose(&a).get(0, 2));
    /// ```
    pub fn compose(&self, other: &BoolMatrix) -> BoolMatrix {
        let mut out = BoolMatrix::zeros(self.n);
        self.compose_into(other, &mut out);
        out
    }

    /// Allocation-free product: computes `self ∘ other` into `out`,
    /// overwriting its previous contents and reusing its buffer.
    ///
    /// The kernel is chosen automatically ([`ComposePath::Auto`]): a
    /// sparse fast path when `self` has at most `2n` edges (every tree
    /// round qualifies), a row-sharded parallel path for large matrices on
    /// multicore hosts, and a cache-tiled serial path otherwise.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions of `self`, `other` and `out` differ.
    ///
    /// # Examples
    ///
    /// ```
    /// use treecast_bitmatrix::BoolMatrix;
    /// let a = BoolMatrix::from_edges(3, [(0, 1)]);
    /// let b = BoolMatrix::from_edges(3, [(1, 2)]);
    /// let mut out = BoolMatrix::zeros(3);
    /// a.compose_into(&b, &mut out); // no allocation: `out` is reused
    /// assert!(out.get(0, 2));
    /// ```
    pub fn compose_into(&self, other: &BoolMatrix, out: &mut BoolMatrix) {
        self.compose_into_with(other, out, ComposePath::Auto);
    }

    /// Batched multi-row product: computes rows `0..rows` of
    /// `self ∘ other` into the same rows of `out`, zeroing the rest.
    ///
    /// This is the round-application kernel for token-subset workloads
    /// (`treecast-core`'s `TrackedTokens`): a `k`-broadcast run keeps one
    /// holder row per token, so each round is a `k × n` row block composed
    /// with the round's `n × n` matrix — `k/n`-th of the work of a full
    /// product, running on the same sparse/tiled kernels as
    /// [`BoolMatrix::compose_into`] (tiled once the block densifies, which
    /// is the steady state of a dissemination run).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions of `self`, `other` and `out` differ, or if
    /// `rows > n`.
    pub fn compose_prefix_into(&self, rows: usize, other: &BoolMatrix, out: &mut BoolMatrix) {
        assert_eq!(
            self.n, other.n,
            "matrix dimension mismatch: {} vs {}",
            self.n, other.n
        );
        assert_eq!(
            self.n, out.n,
            "output matrix dimension mismatch: {} vs {}",
            out.n, self.n
        );
        assert!(
            rows <= self.n,
            "row block {} out of range for n = {}",
            rows,
            self.n
        );
        out.clear();
        if self.n == 0 || rows == 0 {
            return;
        }
        let block = &mut out.words[..rows * self.stride];
        // Density heuristic over the block only: a thin block of sparse
        // holder rows (early rounds) rides the sparse kernel, a saturated
        // one the tiled kernel.
        let block_edges: usize = self.words[..rows * self.stride]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum();
        if block_edges <= 2 * self.n {
            compose_rows_sparse(self, other, 0, block);
        } else {
            compose_rows_tiled(self, other, 0, block);
        }
    }

    /// [`BoolMatrix::compose_into`] with an explicit kernel choice.
    ///
    /// All paths produce identical results; see [`ComposePath`] for when
    /// each is profitable. Exposed for benchmarking and for the
    /// kernel-equivalence tests.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions of `self`, `other` and `out` differ.
    pub fn compose_into_with(&self, other: &BoolMatrix, out: &mut BoolMatrix, path: ComposePath) {
        assert_eq!(
            self.n, other.n,
            "matrix dimension mismatch: {} vs {}",
            self.n, other.n
        );
        assert_eq!(
            self.n, out.n,
            "output matrix dimension mismatch: {} vs {}",
            out.n, self.n
        );
        out.clear();
        if self.n == 0 {
            return;
        }
        let path = match path {
            ComposePath::Auto => {
                if self.has_at_most_edges(2 * self.n) {
                    ComposePath::Sparse
                } else if self.n >= PARALLEL_MIN_N && hardware_threads() > 1 {
                    ComposePath::Parallel
                } else {
                    ComposePath::Tiled
                }
            }
            explicit => explicit,
        };
        match path {
            ComposePath::Sparse => compose_rows_sparse(self, other, 0, &mut out.words),
            ComposePath::Tiled => compose_rows_tiled(self, other, 0, &mut out.words),
            ComposePath::Parallel => compose_parallel(self, other, &mut out.words),
            ComposePath::Auto => unreachable!("Auto resolved above"),
        }
    }

    /// The row-sharded parallel kernel with an *explicit* shard count,
    /// regardless of the host's parallelism: `shards` scoped workers
    /// (clamped to `[1, n]`; 1 degenerates to the serial tiled kernel).
    ///
    /// This is the determinism auditor's entry point: the row partition
    /// is a pure function of `(n, shards)` and every worker writes only
    /// its own disjoint row chunk, so the result must be bit-identical
    /// to the serial kernel for every shard count. `analyze
    /// --determinism` asserts exactly that across shard counts
    /// {1, 2, 4, 8}.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions of `self`, `other` and `out` differ.
    pub fn compose_into_sharded(&self, other: &BoolMatrix, out: &mut BoolMatrix, shards: usize) {
        assert_eq!(
            self.n, other.n,
            "matrix dimension mismatch: {} vs {}",
            self.n, other.n
        );
        assert_eq!(
            self.n, out.n,
            "output matrix dimension mismatch: {} vs {}",
            out.n, self.n
        );
        out.clear();
        if self.n == 0 {
            return;
        }
        compose_parallel_sharded(self, other, &mut out.words, shards);
    }

    /// Structural self-check: the shape and tail-mask invariants every
    /// public operation preserves. `stride` must match
    /// [`BoolMatrix::words_per_row`], the backing vector must hold
    /// exactly `n · stride` words, and no row may have bits set beyond
    /// column `n − 1` in its final (masked) word.
    ///
    /// Compiled to a no-op in release builds; debug builds (the tier-1
    /// test pass and the `analyze --determinism` audit) get the real
    /// checks. Violations panic with the broken invariant named.
    pub fn debug_validate(&self) {
        #[cfg(debug_assertions)]
        {
            assert_eq!(
                self.stride,
                words_for(self.n),
                "stride {} disagrees with words_for({})",
                self.stride,
                self.n
            );
            assert_eq!(
                self.words.len(),
                self.n * self.stride,
                "backing vector holds {} words, shape needs {}",
                self.words.len(),
                self.n * self.stride
            );
            let rem = self.n % WORD_BITS;
            if rem != 0 {
                let beyond = !((1u64 << rem) - 1);
                for x in 0..self.n {
                    let tail = self.row_words(x)[self.stride - 1];
                    assert_eq!(
                        tail & beyond,
                        0,
                        "row {x} has bits set beyond column {} in its tail word",
                        self.n - 1
                    );
                }
            }
        }
    }

    /// Returns `true` if the matrix has at most `limit` set entries,
    /// bailing out of the popcount scan as soon as the limit is exceeded.
    fn has_at_most_edges(&self, limit: usize) -> bool {
        let mut count = 0usize;
        for &w in &self.words {
            count += w.count_ones() as usize;
            if count > limit {
                return false;
            }
        }
        true
    }

    /// In-place union: `self ← self ∪ other` (entry-wise OR).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn union_with(&mut self, other: &BoolMatrix) {
        assert_eq!(
            self.n, other.n,
            "matrix dimension mismatch: {} vs {}",
            self.n, other.n
        );
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Returns `true` if `self[x][y] ⇒ other[x][y]` for all entries.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn is_submatrix_of(&self, other: &BoolMatrix) -> bool {
        assert_eq!(
            self.n, other.n,
            "matrix dimension mismatch: {} vs {}",
            self.n, other.n
        );
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Returns `true` if every diagonal entry is set.
    pub fn is_reflexive(&self) -> bool {
        (0..self.n)
            .all(|i| self.words[i * self.stride + i / WORD_BITS] & (1u64 << (i % WORD_BITS)) != 0)
    }

    /// Sets every diagonal entry.
    pub fn add_self_loops(&mut self) {
        for i in 0..self.n {
            self.words[i * self.stride + i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
        }
    }

    /// Total number of edges (set entries), self-loops included.
    pub fn edge_count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The weight (popcount) of each row — the paper's central quantity.
    pub fn row_weights(&self) -> Vec<usize> {
        self.rows().map(|r| r.len()).collect()
    }

    /// The weight of each column.
    pub fn col_weights(&self) -> Vec<usize> {
        let mut w = vec![0usize; self.n];
        for row in self.rows() {
            for y in row {
                w[y] += 1;
            }
        }
        w
    }

    /// The first node whose row is full, i.e. a broadcast witness
    /// (Definition 2.2), if one exists.
    ///
    /// # Examples
    ///
    /// ```
    /// use treecast_bitmatrix::BoolMatrix;
    /// assert_eq!(BoolMatrix::identity(1).first_full_row(), Some(0));
    /// assert_eq!(BoolMatrix::identity(2).first_full_row(), None);
    /// ```
    pub fn first_full_row(&self) -> Option<usize> {
        (0..self.n).find(|&x| self.row(x).is_full())
    }

    /// Returns `true` if some node has reached every node.
    #[inline]
    pub fn has_full_row(&self) -> bool {
        self.first_full_row().is_some()
    }

    /// All broadcast witnesses.
    pub fn full_rows(&self) -> Vec<usize> {
        (0..self.n).filter(|&x| self.row(x).is_full()).collect()
    }

    /// Returns `true` if every entry is set — the gossip condition
    /// (everyone has heard from everyone).
    ///
    /// Short-circuits at the first non-full row: this runs once per
    /// round in the gossip-measuring loops, where early rounds are far
    /// from complete.
    pub fn is_all_ones(&self) -> bool {
        self.rows().all(|r| r.is_full())
    }

    /// Number of pairwise-distinct rows.
    ///
    /// The paper's matrix analysis tracks duplication among rows; a matrix
    /// with many duplicate rows is "compressible" and progresses faster.
    pub fn distinct_row_count(&self) -> usize {
        let mut seen: HashSet<&[u64]> = HashSet::with_capacity(self.n);
        for x in 0..self.n {
            seen.insert(self.row_words(x));
        }
        seen.len()
    }

    /// Returns `true` if the graph is *nonsplit*: every pair of nodes has a
    /// common in-neighbor.
    ///
    /// Nonsplit graphs power the previous best `O(n log log n)` upper bound
    /// ([Függer, Nowak & Winkler 2020] combined with
    /// [Charron-Bost, Függer & Nowak 2015]).
    ///
    /// Computed over a single [`BoolMatrix::transpose`] (row `y` of the
    /// transpose is column `y` of `self`), with an immediate exit when any
    /// column is empty — an uncovered node splits from every other node.
    ///
    /// # Examples
    ///
    /// ```
    /// use treecast_bitmatrix::BoolMatrix;
    /// // A star centered at 0 (with loops) is nonsplit: 0 points at everyone.
    /// let mut star = BoolMatrix::identity(4);
    /// for leaf in 1..4 {
    ///     star.set(0, leaf, true);
    /// }
    /// assert!(star.is_nonsplit());
    /// // The identity alone is not (distinct nodes share no in-neighbor).
    /// assert!(!BoolMatrix::identity(2).is_nonsplit());
    /// ```
    pub fn is_nonsplit(&self) -> bool {
        if self.n <= 1 {
            return true;
        }
        let t = self.transpose();
        // An empty column is disjoint from every other column.
        if (0..self.n).any(|y| t.row(y).is_empty()) {
            return false;
        }
        for a in 0..self.n {
            let col_a = t.row(a);
            for b in (a + 1)..self.n {
                if col_a.is_disjoint(t.row(b)) {
                    return false;
                }
            }
        }
        true
    }

    /// Returns `true` if the graph is *c-nonsplit*: every set of `c`
    /// distinct nodes has a common in-neighbor. `c = 2` is the classic
    /// nonsplit property ([`BoolMatrix::is_nonsplit`]); larger `c` is a
    /// strictly stronger constraint on the adversary (a `c`-subset's
    /// common in-neighbor also serves every sub-pair), so `c`-nonsplit
    /// round sequences disseminate at least as fast as nonsplit ones.
    ///
    /// Equivalent formulation used here: the graph is `c`-nonsplit iff no
    /// `c`-subset *hits* (intersects) every out-neighborhood complement
    /// `[n] \ out(z)` — i.e. the minimum hitting set of those complements
    /// is larger than `c`. The search deduplicates and drops superset
    /// complements, then branches on the smallest unhit complement with
    /// depth cap `c`, which is fast on the structured round graphs the
    /// experiments play (a full row makes every `c` succeed instantly).
    ///
    /// # Examples
    ///
    /// ```
    /// use treecast_bitmatrix::BoolMatrix;
    /// // A hub pointing at everyone serves every subset size.
    /// let mut hub = BoolMatrix::identity(5);
    /// for y in 0..5 {
    ///     hub.set(0, y, true);
    /// }
    /// assert!(hub.is_c_nonsplit(2));
    /// assert!(hub.is_c_nonsplit(5));
    /// // The identity is not even 2-nonsplit.
    /// assert!(!BoolMatrix::identity(3).is_c_nonsplit(2));
    /// ```
    pub fn is_c_nonsplit(&self, c: usize) -> bool {
        if c == 0 || c > self.n {
            // No c-subsets of distinct nodes exist: vacuously true.
            return true;
        }
        // Complements of the out-neighborhoods; an empty complement is a
        // full row, whose owner is a common in-neighbor of every subset.
        let mut complements: Vec<BitSet> = Vec::with_capacity(self.n);
        for z in 0..self.n {
            let mut comp = BitSet::full(self.n);
            comp.difference_with(self.row(z));
            if comp.is_empty() {
                return true;
            }
            complements.push(comp);
        }
        // Drop duplicates and supersets: hitting a subset forces hitting
        // every superset.
        complements.sort_by_key(|s| s.len());
        let mut minimal: Vec<BitSet> = Vec::new();
        for comp in complements {
            if !minimal.iter().any(|kept| kept.is_subset(&comp)) {
                minimal.push(comp);
            }
        }
        !hitting_set_within(&minimal, &mut BitSet::new(self.n), c)
    }

    /// Applies the node relabeling `perm` (a bijection on `[n]`), returning
    /// the matrix `P` with `P[perm[x]][perm[y]] = self[x][y]`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..n`.
    pub fn permute(&self, perm: &[usize]) -> BoolMatrix {
        assert_eq!(perm.len(), self.n, "permutation length must equal n");
        let mut seen = vec![false; self.n];
        for &p in perm {
            assert!(
                p < self.n && !seen[p],
                "perm is not a permutation of 0..{}",
                self.n
            );
            seen[p] = true;
        }
        let mut out = BoolMatrix::zeros(self.n);
        for x in 0..self.n {
            let px = perm[x];
            for y in self.row(x) {
                let py = perm[y];
                out.words[px * out.stride + py / WORD_BITS] |= 1u64 << (py % WORD_BITS);
            }
        }
        out
    }
}

/// Returns `true` if some set of at most `budget` nodes intersects every
/// set in `sets`. `chosen` is the partial hitting set under construction
/// (borrowed as scratch; restored before returning).
///
/// Branches on the elements of the smallest unhit set — every hitting set
/// must contain one of them — so the recursion depth is at most `budget`
/// and the branching factor is bounded by the smallest complement.
fn hitting_set_within(sets: &[BitSet], chosen: &mut BitSet, budget: usize) -> bool {
    let unhit = sets
        .iter()
        .filter(|s| s.is_disjoint(&*chosen))
        .min_by_key(|s| s.len());
    let Some(target) = unhit else {
        return true; // everything already hit
    };
    if budget == 0 {
        return false;
    }
    for v in target.iter() {
        chosen.insert(v);
        if hitting_set_within(sets, chosen, budget - 1) {
            chosen.remove(v);
            return true;
        }
        chosen.remove(v);
    }
    false
}

/// The number of hardware threads, 1 if unknown.
fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Sparse kernel: for each output row, OR together `other`'s rows at the
/// set bits of `self`'s row. `out` holds rows `first_row ..` of the
/// product.
fn compose_rows_sparse(a: &BoolMatrix, b: &BoolMatrix, first_row: usize, out: &mut [u64]) {
    let stride = a.stride;
    for (local_x, out_row) in out.chunks_exact_mut(stride).enumerate() {
        let a_row = a.row_words(first_row + local_x);
        for (wi, &aw) in a_row.iter().enumerate() {
            let mut bits = aw;
            while bits != 0 {
                let z = wi * WORD_BITS + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                for (o, &w) in out_row.iter_mut().zip(b.row_words(z)) {
                    *o |= w;
                }
            }
        }
    }
}

/// Tiled kernel: walks the output in blocks of up to 16 column words,
/// accumulating each block in registers so every output
/// word is written exactly once and `other`'s per-tile working set stays
/// cache-resident. Each pass runs at a fixed power-of-two width
/// (16/8/4/2/1 words), so the inner OR loop unrolls and vectorizes at
/// every matrix size, not just multiples of the largest tile.
fn compose_rows_tiled(a: &BoolMatrix, b: &BoolMatrix, first_row: usize, out: &mut [u64]) {
    let stride = a.stride;
    let mut col_word = 0usize;
    while col_word < stride {
        let remaining = stride - col_word;
        let tile = if remaining >= 16 {
            tile_pass::<16>(a, b, first_row, col_word, out);
            16
        } else if remaining >= 8 {
            tile_pass::<8>(a, b, first_row, col_word, out);
            8
        } else if remaining >= 4 {
            tile_pass::<4>(a, b, first_row, col_word, out);
            4
        } else if remaining >= 2 {
            tile_pass::<2>(a, b, first_row, col_word, out);
            2
        } else {
            tile_pass::<1>(a, b, first_row, col_word, out);
            1
        };
        col_word += tile;
    }
}

/// One tile pass of fixed width `T` words over rows `first_row ..`.
///
/// The accumulator is a `[u64; T]` and every `other`-row segment is a
/// `&[u64; T]`, so the OR loop is branch-free straight-line SIMD code.
/// `saturated` is the tile's all-ones pattern (tail-masked in the final
/// column word): once the accumulator reaches it no further union can
/// change it, and the rest of the row's source bits are skipped — the
/// dominant saving on the dense, nearly-closed products that reflexive
/// round sequences converge to.
fn tile_pass<const T: usize>(
    a: &BoolMatrix,
    b: &BoolMatrix,
    first_row: usize,
    col_word: usize,
    out: &mut [u64],
) {
    let stride = a.stride;
    let saturated = tile_saturation_mask::<T>(a, col_word);
    for (local_x, out_row) in out.chunks_exact_mut(stride).enumerate() {
        let a_row = a.row_words(first_row + local_x);
        let mut acc = [0u64; T];
        'row: for (wi, &aw) in a_row.iter().enumerate() {
            let mut bits = aw;
            while bits != 0 {
                let z = wi * WORD_BITS + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let base = z * stride + col_word;
                // analyze: allow(panic): the slice is exactly T long by
                // construction; try_into cannot fail on the hot path.
                let seg: &[u64; T] = b.words[base..base + T]
                    .try_into()
                    .expect("tile segment has T words"); // analyze: allow(panic): see above
                for i in 0..T {
                    acc[i] |= seg[i];
                }
            }
            if aw != 0 {
                let mut missing = 0u64;
                for i in 0..T {
                    missing |= saturated[i] & !acc[i];
                }
                if missing == 0 {
                    break 'row;
                }
            }
        }
        out_row[col_word..col_word + T].copy_from_slice(&acc);
    }
}

/// The all-ones pattern of a `T`-word tile starting at `col_word`:
/// `u64::MAX` everywhere except the matrix's final column word, which
/// carries the tail mask.
fn tile_saturation_mask<const T: usize>(a: &BoolMatrix, col_word: usize) -> [u64; T] {
    let mut mask = [0u64; T];
    let rem = a.n % WORD_BITS;
    for (i, m) in mask.iter_mut().enumerate() {
        *m = if col_word + i == a.stride - 1 && rem != 0 {
            (1u64 << rem) - 1
        } else {
            u64::MAX
        };
    }
    mask
}

/// Parallel kernel: shards output rows into contiguous chunks, one
/// `std::thread::scope` worker per chunk, each running the tiled kernel
/// over its rows. The shard count follows the host's parallelism (at
/// least 2, so an explicit [`ComposePath::Parallel`] request exercises
/// real sharding even on a single-core host).
fn compose_parallel(a: &BoolMatrix, b: &BoolMatrix, out: &mut [u64]) {
    compose_parallel_sharded(a, b, out, hardware_threads().max(2));
}

/// The row-sharding body with an explicit worker count. One shard
/// degenerates to the serial tiled kernel (no scope, no spawn), which is
/// the reference the determinism audit compares the sharded runs to.
fn compose_parallel_sharded(a: &BoolMatrix, b: &BoolMatrix, out: &mut [u64], shards: usize) {
    let shards = shards.clamp(1, a.n);
    if shards == 1 {
        compose_rows_tiled(a, b, 0, out);
        return;
    }
    let rows_per_shard = a.n.div_ceil(shards);
    std::thread::scope(|scope| {
        for (i, chunk) in out.chunks_mut(rows_per_shard * a.stride).enumerate() {
            scope.spawn(move || compose_rows_tiled(a, b, i * rows_per_shard, chunk));
        }
    });
}

impl Mul for &BoolMatrix {
    type Output = BoolMatrix;

    /// `a * b` is the graph product `a ∘ b` of Definition 2.1.
    fn mul(self, rhs: &BoolMatrix) -> BoolMatrix {
        self.compose(rhs)
    }
}

impl fmt::Debug for BoolMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BoolMatrix(n={})", self.n)?;
        fmt::Display::fmt(self, f)
    }
}

/// Renders the matrix as `n` lines of `n` bits, row 0 first.
impl fmt::Display for BoolMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for x in 0..self.n {
            if x > 0 {
                f.write_str("\n")?;
            }
            write!(f, "{}", self.row(x))?;
        }
        Ok(())
    }
}

/// Error returned when parsing a [`BoolMatrix`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseMatrixError {
    /// A row contained a character other than `0`/`1`.
    BadCharacter(char),
    /// Row `row` has `got` entries where `expected` were required.
    RaggedRow {
        /// Index of the offending row.
        row: usize,
        /// Entries found in that row.
        got: usize,
        /// Entries required (the number of rows).
        expected: usize,
    },
}

impl fmt::Display for ParseMatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseMatrixError::BadCharacter(c) => {
                write!(f, "invalid matrix character {c:?}, expected '0' or '1'")
            }
            ParseMatrixError::RaggedRow { row, got, expected } => {
                write!(f, "row {row} has {got} entries, expected {expected}")
            }
        }
    }
}

impl std::error::Error for ParseMatrixError {}

impl FromStr for BoolMatrix {
    type Err = ParseMatrixError;

    /// Parses a matrix from newline-separated bitstrings.
    ///
    /// # Examples
    ///
    /// ```
    /// use treecast_bitmatrix::BoolMatrix;
    /// let m: BoolMatrix = "110\n010\n011".parse()?;
    /// assert!(m.is_reflexive());
    /// assert_eq!(m.edge_count(), 5);
    /// # Ok::<(), treecast_bitmatrix::ParseMatrixError>(())
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lines: Vec<&str> = s.lines().filter(|l| !l.trim().is_empty()).collect();
        let n = lines.len();
        let mut m = BoolMatrix::zeros(n);
        for (i, line) in lines.iter().enumerate() {
            let line = line.trim();
            let len = line.chars().count();
            if len != n {
                return Err(ParseMatrixError::RaggedRow {
                    row: i,
                    got: len,
                    expected: n,
                });
            }
            for (j, c) in line.chars().enumerate() {
                match c {
                    '1' => m.set(i, j, true),
                    '0' => {}
                    other => return Err(ParseMatrixError::BadCharacter(other)),
                }
            }
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive O(n³) reference product used to validate the bitset version.
    fn naive_compose(a: &BoolMatrix, b: &BoolMatrix) -> BoolMatrix {
        let n = a.n();
        let mut out = BoolMatrix::zeros(n);
        for x in 0..n {
            for y in 0..n {
                let mut any = false;
                for z in 0..n {
                    if a.get(x, z) && b.get(z, y) {
                        any = true;
                        break;
                    }
                }
                if any {
                    out.set(x, y, true);
                }
            }
        }
        out
    }

    #[test]
    fn identity_is_neutral() {
        let m: BoolMatrix = "0110\n1010\n0011\n1000".parse().unwrap();
        let id = BoolMatrix::identity(4);
        assert_eq!(m.compose(&id), m);
        assert_eq!(id.compose(&m), m);
    }

    #[test]
    fn compose_matches_naive_reference() {
        // Deterministic pseudo-random fill without pulling in rand here.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in [1usize, 2, 3, 5, 8, 17, 64, 65] {
            let mut a = BoolMatrix::zeros(n);
            let mut b = BoolMatrix::zeros(n);
            for x in 0..n {
                for y in 0..n {
                    if next() % 3 == 0 {
                        a.set(x, y, true);
                    }
                    if next() % 3 == 0 {
                        b.set(x, y, true);
                    }
                }
            }
            let expected = naive_compose(&a, &b);
            assert_eq!(a.compose(&b), expected, "n = {n}");
            // Every explicit kernel agrees with the reference.
            for path in [
                ComposePath::Sparse,
                ComposePath::Tiled,
                ComposePath::Parallel,
            ] {
                let mut out = BoolMatrix::ones(n); // stale contents must be overwritten
                a.compose_into_with(&b, &mut out, path);
                assert_eq!(out, expected, "n = {n}, path {path:?}");
            }
        }
    }

    #[test]
    fn compose_is_associative_on_samples() {
        let a: BoolMatrix = "110\n011\n101".parse().unwrap();
        let b: BoolMatrix = "100\n110\n001".parse().unwrap();
        let c: BoolMatrix = "010\n001\n100".parse().unwrap();
        assert_eq!(a.compose(&b).compose(&c), a.compose(&b.compose(&c)));
    }

    #[test]
    fn compose_into_reuses_buffer_across_sizes_of_work() {
        let a = BoolMatrix::from_edges(130, [(0, 1), (1, 129), (129, 64)]);
        let b = BoolMatrix::identity(130);
        let mut out = BoolMatrix::zeros(130);
        a.compose_into(&b, &mut out);
        assert_eq!(out, a);
        BoolMatrix::ones(130).compose_into(&a, &mut out);
        assert_eq!(out.row(0).len(), 3, "every row is the union of a's rows");
    }

    #[test]
    fn mul_operator_is_compose() {
        let a = BoolMatrix::from_edges(3, [(0, 1)]);
        let b = BoolMatrix::from_edges(3, [(1, 2)]);
        assert_eq!(&a * &b, a.compose(&b));
    }

    #[test]
    fn transpose_involution() {
        let m: BoolMatrix = "0110\n1010\n0011\n1000".parse().unwrap();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn column_matches_transpose_row() {
        let m: BoolMatrix = "0110\n1010\n0011\n1000".parse().unwrap();
        let t = m.transpose();
        for y in 0..4 {
            assert_eq!(m.column(y), t.row(y));
        }
    }

    #[test]
    fn weights() {
        let m: BoolMatrix = "110\n010\n011".parse().unwrap();
        assert_eq!(m.row_weights(), vec![2, 1, 2]);
        assert_eq!(m.col_weights(), vec![1, 3, 1]);
        assert_eq!(m.edge_count(), 5);
    }

    #[test]
    fn full_row_detection() {
        let mut m = BoolMatrix::identity(3);
        assert!(!m.has_full_row());
        m.set(1, 0, true);
        m.set(1, 2, true);
        assert_eq!(m.first_full_row(), Some(1));
        assert_eq!(m.full_rows(), vec![1]);
        assert!(!m.is_all_ones());
        assert!(BoolMatrix::ones(3).is_all_ones());
    }

    #[test]
    fn distinct_rows() {
        let m: BoolMatrix = "110\n110\n001".parse().unwrap();
        assert_eq!(m.distinct_row_count(), 2);
        assert_eq!(BoolMatrix::identity(4).distinct_row_count(), 4);
    }

    #[test]
    fn nonsplit_examples() {
        // All-ones is nonsplit.
        assert!(BoolMatrix::ones(3).is_nonsplit());
        // A single node is vacuously nonsplit.
        assert!(BoolMatrix::identity(1).is_nonsplit());
        // Identity on ≥2 nodes is split.
        assert!(!BoolMatrix::identity(2).is_nonsplit());
        // An uncovered node (empty column) splits instantly.
        let mut uncovered = BoolMatrix::ones(3);
        for x in 0..3 {
            uncovered.set(x, 2, false);
        }
        assert!(!uncovered.is_nonsplit());
        // Star with loops: center reaches everyone, so any pair shares the
        // center as in-neighbor... but only pairs involving covered columns.
        let mut star = BoolMatrix::identity(5);
        for leaf in 1..5 {
            star.set(0, leaf, true);
        }
        assert!(star.is_nonsplit());
    }

    #[test]
    fn compose_prefix_matches_full_product() {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in [1usize, 5, 64, 65, 130] {
            let mut a = BoolMatrix::zeros(n);
            let mut b = BoolMatrix::zeros(n);
            for x in 0..n {
                for y in 0..n {
                    if next() % 4 == 0 {
                        a.set(x, y, true);
                    }
                    if next() % 4 == 0 {
                        b.set(x, y, true);
                    }
                }
            }
            let full = a.compose(&b);
            for rows in [0usize, 1, 2, n / 2, n].into_iter().filter(|&r| r <= n) {
                let mut out = BoolMatrix::ones(n); // stale bits must vanish
                a.compose_prefix_into(rows, &b, &mut out);
                for x in 0..n {
                    let expected = if x < rows {
                        full.row(x).to_bitset()
                    } else {
                        BitSet::new(n)
                    };
                    assert_eq!(
                        out.row(x).to_bitset(),
                        expected,
                        "n = {n}, rows = {rows}, row {x}"
                    );
                }
            }
        }
    }

    #[test]
    fn compose_prefix_picks_both_kernels() {
        // A thin sparse block and a dense one must agree with the full
        // product regardless of which kernel the density heuristic picks.
        let n = 80;
        let mut sparse = BoolMatrix::identity(n);
        sparse.set(0, 7, true);
        let dense = BoolMatrix::ones(n);
        let b = BoolMatrix::from_edges(n, (0..n - 1).map(|i| (i, i + 1)));
        for a in [&sparse, &dense] {
            let mut out = BoolMatrix::zeros(n);
            a.compose_prefix_into(3, &b, &mut out);
            let full = a.compose(&b);
            for x in 0..3 {
                assert_eq!(out.row(x).to_bitset(), full.row(x).to_bitset());
            }
        }
    }

    #[test]
    #[should_panic(expected = "row block 4 out of range")]
    fn compose_prefix_rejects_oversized_block() {
        let id = BoolMatrix::identity(3);
        let mut out = BoolMatrix::zeros(3);
        id.compose_prefix_into(4, &id.clone(), &mut out);
    }

    #[test]
    fn c_nonsplit_agrees_with_pairwise_at_2() {
        let mut state = 0xDEAD_BEEF_CAFE_F00Du64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in [1usize, 2, 3, 6, 17] {
            for _ in 0..20 {
                let mut m = BoolMatrix::identity(n);
                for x in 0..n {
                    for y in 0..n {
                        if next() % 3 == 0 {
                            m.set(x, y, true);
                        }
                    }
                }
                assert_eq!(m.is_c_nonsplit(2), m.is_nonsplit(), "n = {n}\n{m}");
            }
        }
    }

    #[test]
    fn c_nonsplit_monotone_in_c() {
        // c-nonsplit implies c'-nonsplit for every c' ≤ c: a full-subset
        // witness also covers all its subsets.
        let mut hub = BoolMatrix::identity(6);
        for y in 0..6 {
            hub.set(2, y, true);
        }
        for c in 0..=7 {
            assert!(hub.is_c_nonsplit(c), "hub graph must be {c}-nonsplit");
        }
        // Three almost-full hubs, hub i missing only node 3 + i: every
        // pair avoids one of the three holes (2-nonsplit), but the
        // transversal triple {3, 4, 5} hits all of them (not 3-nonsplit).
        let mut hubs = BoolMatrix::identity(6);
        for i in 0..3 {
            for y in 0..6 {
                if y != 3 + i {
                    hubs.set(i, y, true);
                }
            }
        }
        assert!(hubs.is_c_nonsplit(2));
        assert!(!hubs.is_c_nonsplit(3), "{hubs}");
    }

    #[test]
    fn c_nonsplit_brute_force_cross_check() {
        // Exhaustive c-subset check against the hitting-set formulation.
        let mut state = 0x1234_5678_9ABC_DEFFu64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let n = 7;
        for _ in 0..15 {
            let mut m = BoolMatrix::identity(n);
            for x in 0..n {
                for y in 0..n {
                    if next() % 3 == 0 {
                        m.set(x, y, true);
                    }
                }
            }
            let t = m.transpose();
            for c in 2..=4usize {
                let mut brute = true;
                let mut subset = vec![0usize; c];
                // Enumerate all c-subsets of 0..n.
                fn rec(
                    t: &BoolMatrix,
                    subset: &mut Vec<usize>,
                    depth: usize,
                    start: usize,
                    ok: &mut bool,
                ) {
                    if depth == subset.len() {
                        let mut acc = t.row(subset[0]).to_bitset();
                        for &y in &subset[1..] {
                            acc.intersect_with(t.row(y));
                        }
                        if acc.is_empty() {
                            *ok = false;
                        }
                        return;
                    }
                    for y in start..t.n() {
                        if !*ok {
                            return;
                        }
                        subset[depth] = y;
                        rec(t, subset, depth + 1, y + 1, ok);
                    }
                }
                rec(&t, &mut subset, 0, 0, &mut brute);
                assert_eq!(m.is_c_nonsplit(c), brute, "c = {c}\n{m}");
            }
        }
    }

    #[test]
    fn permute_relabels() {
        let m = BoolMatrix::from_edges(3, [(0, 1), (1, 2)]);
        let p = m.permute(&[2, 0, 1]); // 0→2, 1→0, 2→1
        assert!(p.get(2, 0), "edge (0,1) must become (2,0)");
        assert!(p.get(0, 1), "edge (1,2) must become (0,1)");
        assert_eq!(p.edge_count(), m.edge_count());
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn permute_rejects_non_bijection() {
        BoolMatrix::identity(3).permute(&[0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn compose_checks_dimensions() {
        let _ = BoolMatrix::identity(3).compose(&BoolMatrix::identity(4));
    }

    #[test]
    #[should_panic(expected = "output matrix dimension mismatch")]
    fn compose_into_checks_output_dimension() {
        let id = BoolMatrix::identity(3);
        let mut out = BoolMatrix::zeros(4);
        id.compose_into(&id.clone(), &mut out);
    }

    #[test]
    #[should_panic(expected = "row 3 out of range")]
    fn set_rejects_out_of_range_row() {
        BoolMatrix::zeros(3).set(3, 0, true);
    }

    #[test]
    #[should_panic(expected = "column 3 out of range")]
    fn set_rejects_out_of_range_column() {
        BoolMatrix::zeros(3).set(0, 3, true);
    }

    #[test]
    fn get_out_of_range_is_false() {
        let m = BoolMatrix::ones(3);
        assert!(!m.get(3, 0));
        assert!(!m.get(0, 3));
    }

    #[test]
    fn union_rows_merges_in_place() {
        let mut m = BoolMatrix::from_edges(70, [(0, 5), (1, 64), (1, 69)]);
        m.union_rows(0, 1);
        assert_eq!(m.row(0).iter().collect::<Vec<_>>(), vec![5, 64, 69]);
        m.union_rows(2, 0);
        assert_eq!(m.row(2).len(), 3);
        m.union_rows(1, 1); // self-union is a no-op
        assert_eq!(m.row(1).len(), 2);
    }

    #[test]
    fn flat_layout_invariants() {
        let m = BoolMatrix::ones(67);
        assert_eq!(m.words_per_row(), 2);
        assert_eq!(m.as_words().len(), 67 * 2);
        for x in 0..67 {
            assert_eq!(
                m.as_words()[x * 2 + 1],
                0b111,
                "tail bits of row {x} must be masked"
            );
        }
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(
            "01\n0".parse::<BoolMatrix>(),
            Err(ParseMatrixError::RaggedRow {
                row: 1,
                got: 1,
                expected: 2
            })
        ));
        assert!(matches!(
            "0a\n00".parse::<BoolMatrix>(),
            Err(ParseMatrixError::BadCharacter('a'))
        ));
    }

    #[test]
    fn display_roundtrip() {
        let m: BoolMatrix = "0110\n1010\n0011\n1000".parse().unwrap();
        let rendered = m.to_string();
        assert_eq!(rendered.parse::<BoolMatrix>().unwrap(), m);
    }

    #[test]
    fn submatrix_ordering() {
        let id = BoolMatrix::identity(3);
        let ones = BoolMatrix::ones(3);
        assert!(id.is_submatrix_of(&ones));
        assert!(!ones.is_submatrix_of(&id));
        assert!(id.is_submatrix_of(&id));
    }

    #[test]
    fn union_with_is_entrywise_or() {
        let mut a = BoolMatrix::from_edges(3, [(0, 1)]);
        let b = BoolMatrix::from_edges(3, [(1, 2)]);
        a.union_with(&b);
        assert!(a.get(0, 1) && a.get(1, 2));
        assert_eq!(a.edge_count(), 2);
    }

    #[test]
    fn clone_from_reuses_and_matches() {
        let a = BoolMatrix::from_edges(5, [(0, 1), (4, 2)]);
        let mut b = BoolMatrix::ones(5);
        b.clone_from(&a);
        assert_eq!(a, b);
    }

    #[test]
    fn heap_bytes_is_content_independent_and_exact() {
        // 70 bits per row → stride 2 words; 70 rows → 140 words = 1120 B.
        let n = 70;
        assert_eq!(BoolMatrix::zeros(n).heap_bytes(), n * 2 * 8);
        assert_eq!(
            BoolMatrix::ones(n).heap_bytes(),
            BoolMatrix::zeros(n).heap_bytes(),
            "the byte budget must not depend on matrix contents"
        );
        assert_eq!(BoolMatrix::zeros(0).heap_bytes(), 0);
    }

    #[test]
    fn zero_node_matrix() {
        let m = BoolMatrix::zeros(0);
        assert_eq!(m.edge_count(), 0);
        assert!(m.is_all_ones());
        assert!(m.is_nonsplit());
        let mut out = BoolMatrix::zeros(0);
        m.compose_into(&m.clone(), &mut out);
        assert_eq!(out.n(), 0);
    }
}
