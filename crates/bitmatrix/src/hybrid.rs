//! Adaptive sparse/dense rows for frontier-style simulations.
//!
//! [`HybridRow`] stores a set over `{0, …, universe − 1}` as a sorted list
//! of `u32` indices while it is small, and transparently promotes itself to
//! a dense [`BitSet`] once it crosses a per-universe threshold. The layout
//! follows the hybrid bitset of `rustc_index::bit_set`: almost-empty rows
//! cost O(|row|) memory instead of O(universe/64), which is what makes a
//! million-node broadcast state affordable — early rounds of a broadcast
//! have tiny heard-from rows, and only rows that actually fill up pay for
//! dense words.
//!
//! Unlike the rustc hybrid, promotion here is one-way: broadcast state is
//! monotone (heard sets only grow, modulo rare fault-induced `forget`s), so
//! demoting back to sparse would be wasted work.

use crate::bitset::{BitSet, Iter};

/// Sparse-capacity threshold for a [`HybridRow`] over `universe` elements.
///
/// Rows stay in the sorted-list representation while they hold at most this
/// many elements, and promote to dense words on the insert that would
/// exceed it. The value scales with the universe (a sparse list of
/// `universe / 64` entries of 4 bytes costs no more than half the dense
/// words would) but is clamped to `[8, 256]` so small universes still get
/// a little slack and huge ones cap the O(threshold) shift cost of sorted
/// inserts.
///
/// # Examples
///
/// ```
/// use treecast_bitmatrix::hybrid_threshold;
/// assert_eq!(hybrid_threshold(100), 8);
/// assert_eq!(hybrid_threshold(6400), 100);
/// assert_eq!(hybrid_threshold(1_000_000), 256);
/// ```
#[inline]
pub const fn hybrid_threshold(universe: usize) -> usize {
    let scaled = universe / 64;
    if scaled < 8 {
        8
    } else if scaled > 256 {
        256
    } else {
        scaled
    }
}

#[derive(Clone, Debug)]
enum Repr {
    /// Sorted, duplicate-free element indices.
    Sparse(Vec<u32>),
    Dense(BitSet),
}

/// A set over `{0, …, universe − 1}` that is a sorted index list while
/// small and a dense [`BitSet`] once it grows past
/// [`hybrid_threshold`]`(universe)`.
///
/// The API mirrors the subset of [`BitSet`] the frontier engine needs:
/// `insert` / `remove` / `contains` / `iter` / `union_with`, plus an O(1)
/// cached [`len`](HybridRow::len). Iteration yields elements in increasing
/// order in both representations, so a `HybridRow` and the corresponding
/// `BitSet` are observationally identical.
///
/// # Examples
///
/// ```
/// use treecast_bitmatrix::{BitSet, HybridRow};
///
/// let mut row = HybridRow::new(1_000_000);
/// row.insert(3);
/// row.insert(999_999);
/// assert!(row.is_sparse());
/// assert_eq!(row.iter().collect::<Vec<_>>(), vec![3, 999_999]);
/// assert_eq!(row.to_bitset(), BitSet::from_indices(1_000_000, [3, 999_999]));
/// ```
#[derive(Clone, Debug)]
pub struct HybridRow {
    universe: usize,
    len: usize,
    repr: Repr,
}

impl HybridRow {
    /// Creates an empty row over `{0, …, universe − 1}`.
    ///
    /// The sparse list is pre-reserved to the promotion threshold, so a row
    /// that stays sparse never reallocates after construction — the
    /// property the counting-allocator test in
    /// `tests/hybrid_alloc.rs` pins down.
    pub fn new(universe: usize) -> Self {
        let cap = hybrid_threshold(universe).min(universe);
        HybridRow {
            universe,
            len: 0,
            repr: Repr::Sparse(Vec::with_capacity(cap)),
        }
    }

    /// Creates a row containing exactly one element.
    ///
    /// # Panics
    ///
    /// Panics if `elem >= universe`.
    pub fn singleton(universe: usize, elem: usize) -> Self {
        let mut row = HybridRow::new(universe);
        row.insert(elem);
        row
    }

    /// The size of the universe this row draws elements from.
    #[inline]
    pub fn universe_size(&self) -> usize {
        self.universe
    }

    /// Number of elements in the row, cached — O(1) in both
    /// representations.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the row contains no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns `true` if the row equals the whole universe.
    ///
    /// An empty universe is vacuously full.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len == self.universe
    }

    /// Returns `true` while the row is in the sorted-list representation.
    #[inline]
    pub fn is_sparse(&self) -> bool {
        matches!(self.repr, Repr::Sparse(_))
    }

    /// Returns `true` once the row has promoted to dense words.
    #[inline]
    pub fn is_dense(&self) -> bool {
        matches!(self.repr, Repr::Dense(_))
    }

    /// Tests membership: O(log threshold) sparse, O(1) dense.
    ///
    /// Out-of-universe queries return `false`, matching [`BitSet`].
    #[inline]
    pub fn contains(&self, elem: usize) -> bool {
        match &self.repr {
            Repr::Sparse(v) => elem < self.universe && v.binary_search(&(elem as u32)).is_ok(),
            Repr::Dense(b) => b.contains(elem),
        }
    }

    /// Inserts an element. Returns `true` if it was not already present.
    ///
    /// Promotes to dense when the insert would push the sparse list past
    /// [`hybrid_threshold`]`(universe)`.
    ///
    /// # Panics
    ///
    /// Panics if `elem >= universe`.
    pub fn insert(&mut self, elem: usize) -> bool {
        assert!(
            elem < self.universe,
            "element {} out of universe of size {}",
            elem,
            self.universe
        );
        let fresh = match &mut self.repr {
            Repr::Sparse(v) => match v.binary_search(&(elem as u32)) {
                Ok(_) => false,
                Err(pos) => {
                    if v.len() >= hybrid_threshold(self.universe) {
                        let mut dense = BitSet::new(self.universe);
                        for &e in v.iter() {
                            dense.insert(e as usize);
                        }
                        dense.insert(elem);
                        self.repr = Repr::Dense(dense);
                    } else {
                        v.insert(pos, elem as u32);
                    }
                    true
                }
            },
            Repr::Dense(b) => b.insert(elem),
        };
        if fresh {
            self.len += 1;
        }
        fresh
    }

    /// Removes an element. Returns `true` if it was present.
    ///
    /// A dense row stays dense — broadcast state is monotone except for
    /// rare fault-induced forgets, so demotion would churn for nothing.
    ///
    /// # Panics
    ///
    /// Panics if `elem >= universe`.
    pub fn remove(&mut self, elem: usize) -> bool {
        assert!(
            elem < self.universe,
            "element {} out of universe of size {}",
            elem,
            self.universe
        );
        let present = match &mut self.repr {
            Repr::Sparse(v) => match v.binary_search(&(elem as u32)) {
                Ok(pos) => {
                    v.remove(pos);
                    true
                }
                Err(_) => false,
            },
            Repr::Dense(b) => b.remove(elem),
        };
        if present {
            self.len -= 1;
        }
        present
    }

    /// Removes all elements, keeping the current representation and its
    /// storage.
    pub fn clear(&mut self) {
        match &mut self.repr {
            Repr::Sparse(v) => v.clear(),
            Repr::Dense(b) => b.clear(),
        }
        self.len = 0;
    }

    /// In-place union: `self ← self ∪ other`.
    ///
    /// Two dense rows union word-wise; any sparse operand falls back to
    /// element inserts (which may promote `self`).
    ///
    /// # Panics
    ///
    /// Panics if the universe sizes differ.
    pub fn union_with(&mut self, other: &HybridRow) {
        assert_eq!(
            self.universe, other.universe,
            "hybrid row universe mismatch: {} vs {}",
            self.universe, other.universe
        );
        match (&mut self.repr, &other.repr) {
            (Repr::Dense(a), Repr::Dense(b)) => {
                a.union_with(b);
                self.len = a.len();
            }
            (_, Repr::Sparse(v)) => {
                // Clone-free would need split borrows; `v` is other's, so
                // plain iteration is fine.
                for &e in v.iter() {
                    self.insert(e as usize);
                }
            }
            (_, Repr::Dense(b)) => {
                for e in b.iter() {
                    self.insert(e);
                }
            }
        }
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> HybridIter<'_> {
        match &self.repr {
            Repr::Sparse(v) => HybridIter::Sparse(v.iter()),
            Repr::Dense(b) => HybridIter::Dense(b.iter()),
        }
    }

    /// Materializes the row as a dense [`BitSet`] over the same universe.
    pub fn to_bitset(&self) -> BitSet {
        match &self.repr {
            Repr::Sparse(v) => BitSet::from_indices(self.universe, v.iter().map(|&e| e as usize)),
            Repr::Dense(b) => b.clone(),
        }
    }
}

impl PartialEq for HybridRow {
    /// Representation-independent equality: a sparse row equals a dense row
    /// holding the same elements of the same universe.
    fn eq(&self, other: &Self) -> bool {
        self.universe == other.universe && self.len == other.len && self.iter().eq(other.iter())
    }
}

impl Eq for HybridRow {}

impl Extend<usize> for HybridRow {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for e in iter {
            self.insert(e);
        }
    }
}

/// Iterator over the elements of a [`HybridRow`] in increasing order.
#[derive(Debug, Clone)]
pub enum HybridIter<'a> {
    /// Walking the sorted sparse list.
    Sparse(core::slice::Iter<'a, u32>),
    /// Walking dense words.
    Dense(Iter<'a>),
}

impl Iterator for HybridIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        match self {
            HybridIter::Sparse(it) => it.next().map(|&e| e as usize),
            HybridIter::Dense(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            HybridIter::Sparse(it) => it.size_hint(),
            HybridIter::Dense(it) => it.size_hint(),
        }
    }
}

impl ExactSizeIterator for HybridIter<'_> {}

impl<'a> IntoIterator for &'a HybridRow {
    type Item = usize;
    type IntoIter = HybridIter<'a>;

    fn into_iter(self) -> HybridIter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_sparse_up_to_threshold() {
        let n = 4096;
        let t = hybrid_threshold(n);
        let mut row = HybridRow::new(n);
        for i in 0..t {
            assert!(row.insert(i * 7));
            assert!(row.is_sparse(), "sparse through element {}", i + 1);
        }
        assert_eq!(row.len(), t);
        assert!(row.insert(t * 7));
        assert!(row.is_dense(), "insert {} past threshold promotes", t + 1);
        assert_eq!(row.len(), t + 1);
    }

    #[test]
    fn duplicate_insert_does_not_promote() {
        let n = 4096;
        let t = hybrid_threshold(n);
        let mut row = HybridRow::new(n);
        for i in 0..t {
            row.insert(i);
        }
        assert!(!row.insert(0), "duplicate reports already present");
        assert!(
            row.is_sparse(),
            "duplicate insert at capacity must not promote"
        );
    }

    #[test]
    fn promotion_preserves_contents() {
        let n = 1000;
        let t = hybrid_threshold(n);
        let elems: Vec<usize> = (0..=t).map(|i| (i * 37) % n).collect();
        let mut row = HybridRow::new(n);
        let mut reference = BitSet::new(n);
        for &e in &elems {
            assert_eq!(row.insert(e), reference.insert(e));
        }
        assert!(row.is_dense());
        assert_eq!(row.to_bitset(), reference);
        assert_eq!(row.len(), reference.len());
    }

    #[test]
    fn remove_in_both_representations() {
        let mut row = HybridRow::new(600);
        row.insert(5);
        assert!(row.remove(5));
        assert!(!row.remove(5));
        assert_eq!(row.len(), 0);
        row.extend(0..hybrid_threshold(600) + 1);
        assert!(row.is_dense());
        assert!(row.remove(0));
        assert!(row.is_dense(), "no demotion");
        assert_eq!(row.len(), hybrid_threshold(600));
    }

    #[test]
    fn is_full_small_universe() {
        let mut row = HybridRow::new(3);
        row.extend([0, 1, 2]);
        assert!(row.is_full());
        assert!(
            row.is_sparse(),
            "universe below the clamp floor never promotes"
        );
        assert!(HybridRow::new(0).is_full(), "empty universe vacuously full");
    }

    #[test]
    fn union_promotes_and_matches_bitset() {
        let n = 700;
        let t = hybrid_threshold(n);
        let mut a = HybridRow::new(n);
        a.extend((0..t).map(|i| i * 2));
        let mut b = HybridRow::new(n);
        b.extend((0..t).map(|i| i * 2 + 1));
        let mut expect = a.to_bitset();
        expect.union_with(&b.to_bitset());
        a.union_with(&b);
        assert!(a.is_dense());
        assert_eq!(a.to_bitset(), expect);
        assert_eq!(a.len(), expect.len());
    }

    #[test]
    fn equality_across_representations() {
        let n = 640;
        let t = hybrid_threshold(n);
        let mut sparse = HybridRow::new(n);
        sparse.extend([1, 2, 3]);
        let mut dense = HybridRow::new(n);
        dense.extend(0..=t);
        for e in (0..=t).filter(|&e| !(1..=3).contains(&e)) {
            dense.remove(e);
        }
        assert!(dense.is_dense() && sparse.is_sparse());
        assert_eq!(sparse, dense);
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn insert_out_of_range_panics() {
        HybridRow::new(8).insert(8);
    }

    #[test]
    fn contains_out_of_range_is_false() {
        let row = HybridRow::singleton(8, 7);
        assert!(!row.contains(8));
        assert!(!row.contains(usize::MAX));
    }
}
