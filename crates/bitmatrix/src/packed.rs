//! Whole-matrix-in-a-word representation for `n ≤ 8`.
//!
//! The exact solver ([`treecast-solver`]) explores millions of product-graph
//! states; packing an entire n×n boolean matrix into one `u64` makes states
//! hashable machine words and composition a handful of shifts and ORs.
//!
//! Bit layout: entry `(x, y)` lives at bit `x·n + y` (row-major, stride `n`),
//! so matrices over different `n` use disjoint prefixes of the word.
//!
//! [`treecast-solver`]: https://docs.rs/treecast-solver

use core::fmt;

use crate::matrix::BoolMatrix;

/// Maximum number of nodes a [`PackedMatrix`] supports (8 × 8 = 64 bits).
pub const PACKED_MAX_N: usize = 8;

/// An `n × n` boolean matrix packed into a single `u64`, for `n ≤ 8`.
///
/// # Examples
///
/// ```
/// use treecast_bitmatrix::PackedMatrix;
///
/// let mut path = PackedMatrix::identity(3);
/// path.set(0, 1, true);
/// path.set(1, 2, true);
/// let twice = path.compose(path);
/// assert!(twice.get(0, 2), "0 reaches 2 through 1 in two hops");
/// assert!(twice.row_full(0));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PackedMatrix {
    n: u8,
    bits: u64,
}

impl PackedMatrix {
    /// The all-zeros matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n > 8` or `n == 0`.
    pub fn zeros(n: usize) -> Self {
        assert!(
            (1..=PACKED_MAX_N).contains(&n),
            "PackedMatrix supports 1 ≤ n ≤ {PACKED_MAX_N}, got {n}"
        );
        PackedMatrix {
            n: n as u8,
            bits: 0,
        }
    }

    /// The identity matrix (self-loops only) — the model's `G(0)`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 8` or `n == 0`.
    pub fn identity(n: usize) -> Self {
        let mut m = PackedMatrix::zeros(n);
        for i in 0..n {
            m.set(i, i, true);
        }
        m
    }

    /// The all-ones matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n > 8` or `n == 0`.
    pub fn ones(n: usize) -> Self {
        let mut m = PackedMatrix::zeros(n);
        m.bits = if n * n == 64 {
            u64::MAX
        } else {
            (1u64 << (n * n)) - 1
        };
        m
    }

    /// Reconstructs a matrix from its raw bits.
    ///
    /// Bits beyond `n²` are cleared.
    ///
    /// # Panics
    ///
    /// Panics if `n > 8` or `n == 0`.
    pub fn from_bits(n: usize, bits: u64) -> Self {
        let mut m = PackedMatrix::zeros(n);
        m.bits = bits & Self::ones(n).bits;
        m
    }

    /// The raw packed bits (row-major, stride `n`).
    #[inline]
    pub fn bits(self) -> u64 {
        self.bits
    }

    /// The number of nodes.
    #[inline]
    pub fn n(self) -> usize {
        self.n as usize
    }

    /// Bitmask selecting row `x` within the packed word, already shifted
    /// down to the low `n` bits.
    #[inline]
    pub fn row_bits(self, x: usize) -> u64 {
        debug_assert!(x < self.n());
        (self.bits >> (x * self.n())) & self.row_mask()
    }

    #[inline]
    fn row_mask(self) -> u64 {
        (1u64 << self.n) - 1
    }

    /// Reads entry `(x, y)`.
    #[inline]
    pub fn get(self, x: usize, y: usize) -> bool {
        debug_assert!(x < self.n() && y < self.n());
        self.bits >> (x * self.n() + y) & 1 != 0
    }

    /// Writes entry `(x, y)`.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, value: bool) {
        debug_assert!(x < self.n() && y < self.n());
        let bit = 1u64 << (x * self.n() + y);
        if value {
            self.bits |= bit;
        } else {
            self.bits &= !bit;
        }
    }

    /// The product `self ∘ other` (Definition 2.1), row formulation.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn compose(self, other: PackedMatrix) -> PackedMatrix {
        assert_eq!(self.n, other.n, "packed matrix dimension mismatch");
        let n = self.n();
        let mut out = PackedMatrix::zeros(n);
        for x in 0..n {
            let mut srcs = self.row_bits(x);
            let mut acc = 0u64;
            while srcs != 0 {
                let z = srcs.trailing_zeros() as usize;
                srcs &= srcs - 1;
                acc |= other.row_bits(z);
            }
            out.bits |= acc << (x * n);
        }
        out
    }

    /// Entry-wise OR.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn union(self, other: PackedMatrix) -> PackedMatrix {
        assert_eq!(self.n, other.n, "packed matrix dimension mismatch");
        PackedMatrix {
            n: self.n,
            bits: self.bits | other.bits,
        }
    }

    /// Returns `true` if every entry of `self` is an entry of `other`.
    #[inline]
    pub fn is_submatrix_of(self, other: PackedMatrix) -> bool {
        self.n == other.n && self.bits & !other.bits == 0
    }

    /// Number of set entries.
    #[inline]
    pub fn edge_count(self) -> usize {
        self.bits.count_ones() as usize
    }

    /// Returns `true` if row `x` is all ones.
    #[inline]
    pub fn row_full(self, x: usize) -> bool {
        self.row_bits(x) == self.row_mask()
    }

    /// Returns `true` if some row is all ones — the broadcast condition.
    #[inline]
    pub fn has_full_row(self) -> bool {
        (0..self.n()).any(|x| self.row_full(x))
    }

    /// Returns `true` if every diagonal entry is set.
    pub fn is_reflexive(self) -> bool {
        (0..self.n()).all(|i| self.get(i, i))
    }

    /// Applies the relabeling `perm`, returning `P` with
    /// `P[perm[x]][perm[y]] = self[x][y]`.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `perm` has length `n`; a non-bijective `perm`
    /// produces garbage (callers in the solver precompute valid
    /// permutations).
    pub fn permute(self, perm: &[usize]) -> PackedMatrix {
        debug_assert_eq!(perm.len(), self.n());
        let n = self.n();
        let mut out = PackedMatrix::zeros(n);
        let mut bits = self.bits;
        while bits != 0 {
            let idx = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let (x, y) = (idx / n, idx % n);
            out.bits |= 1u64 << (perm[x] * n + perm[y]);
        }
        out
    }

    /// Widens into a heap-allocated [`BoolMatrix`].
    pub fn to_matrix(self) -> BoolMatrix {
        let n = self.n();
        let mut m = BoolMatrix::zeros(n);
        for x in 0..n {
            for y in 0..n {
                if self.get(x, y) {
                    m.set(x, y, true);
                }
            }
        }
        m
    }

    /// Narrows a [`BoolMatrix`] into packed form.
    ///
    /// # Panics
    ///
    /// Panics if `m.n() > 8` or `m.n() == 0`.
    pub fn from_matrix(m: &BoolMatrix) -> Self {
        let n = m.n();
        let mut out = PackedMatrix::zeros(n);
        for x in 0..n {
            for y in m.row(x) {
                out.set(x, y, true);
            }
        }
        out
    }
}

impl fmt::Debug for PackedMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PackedMatrix(n={}, bits={:#x})", self.n, self.bits)
    }
}

impl fmt::Display for PackedMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_matrix(), f)
    }
}

impl From<PackedMatrix> for BoolMatrix {
    fn from(p: PackedMatrix) -> BoolMatrix {
        p.to_matrix()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_ones() {
        for n in 1..=8 {
            let id = PackedMatrix::identity(n);
            assert!(id.is_reflexive());
            assert_eq!(id.edge_count(), n);
            let ones = PackedMatrix::ones(n);
            assert_eq!(ones.edge_count(), n * n);
            assert!(ones.has_full_row());
            assert_eq!(id.compose(ones), ones);
            assert_eq!(ones.compose(id), ones);
        }
    }

    #[test]
    #[should_panic(expected = "1 ≤ n ≤ 8")]
    fn rejects_large_n() {
        PackedMatrix::zeros(9);
    }

    #[test]
    #[should_panic(expected = "1 ≤ n ≤ 8")]
    fn rejects_zero_n() {
        PackedMatrix::zeros(0);
    }

    #[test]
    fn compose_agrees_with_boolmatrix() {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in 1..=8usize {
            for _ in 0..50 {
                let a = PackedMatrix::from_bits(n, next());
                let b = PackedMatrix::from_bits(n, next());
                let packed = a.compose(b);
                let wide = a.to_matrix().compose(&b.to_matrix());
                assert_eq!(packed.to_matrix(), wide, "n = {n}");
            }
        }
    }

    #[test]
    fn roundtrip_through_boolmatrix() {
        let mut m = PackedMatrix::identity(5);
        m.set(0, 4, true);
        m.set(3, 1, true);
        assert_eq!(PackedMatrix::from_matrix(&m.to_matrix()), m);
    }

    #[test]
    fn row_full_detection() {
        let mut m = PackedMatrix::identity(4);
        assert!(!m.has_full_row());
        for y in 0..4 {
            m.set(2, y, true);
        }
        assert!(m.row_full(2));
        assert!(m.has_full_row());
        assert!(!m.row_full(0));
    }

    #[test]
    fn permute_preserves_structure() {
        let mut m = PackedMatrix::zeros(4);
        m.set(0, 1, true);
        m.set(1, 2, true);
        let perm = [3, 2, 1, 0];
        let p = m.permute(&perm);
        assert!(p.get(3, 2));
        assert!(p.get(2, 1));
        assert_eq!(p.edge_count(), 2);
        // Permuting back with the inverse (same here: involution) restores.
        assert_eq!(p.permute(&perm), m);
    }

    #[test]
    fn from_bits_masks_overflow() {
        let m = PackedMatrix::from_bits(2, u64::MAX);
        assert_eq!(m.edge_count(), 4);
    }

    #[test]
    fn submatrix_ordering() {
        let id = PackedMatrix::identity(3);
        let ones = PackedMatrix::ones(3);
        assert!(id.is_submatrix_of(ones));
        assert!(!ones.is_submatrix_of(id));
    }

    #[test]
    fn n8_uses_all_64_bits() {
        let ones = PackedMatrix::ones(8);
        assert_eq!(ones.bits(), u64::MAX);
        assert!(ones.row_full(7));
    }
}
