//! Dense bitsets over a fixed universe `{0, 1, …, n−1}`.
//!
//! [`BitSet`] is the workhorse of the whole workspace: rows of adjacency
//! matrices, reach sets, and heard-from sets are all `BitSet`s. The
//! implementation packs bits into `u64` words and keeps the invariant that
//! all bits beyond the universe size are zero, so word-wise equality,
//! hashing, and popcounts are always exact.

use core::fmt;
use core::str::FromStr;

/// Number of bits in one storage word.
pub(crate) const WORD_BITS: usize = 64;

/// Returns the number of `u64` words needed to store `nbits` bits.
#[inline]
pub(crate) const fn words_for(nbits: usize) -> usize {
    nbits.div_ceil(WORD_BITS)
}

/// A read-only, word-packed view of a set of bits over a fixed universe.
///
/// Implemented by [`BitSet`] (owned storage), [`crate::RowRef`] /
/// [`crate::RowMut`] (borrowed matrix rows), and references to any of
/// these. All binary set operations on [`BitSet`] accept any `BitView`, so
/// owned sets and borrowed matrix rows mix freely:
///
/// ```
/// use treecast_bitmatrix::{BitSet, BoolMatrix};
///
/// let m = BoolMatrix::identity(4);
/// let mut acc = BitSet::full(4);
/// acc.intersect_with(m.row(2)); // RowRef works wherever a &BitSet did
/// assert_eq!(acc.iter().collect::<Vec<_>>(), vec![2]);
/// ```
///
/// # Invariant
///
/// `words().len() == universe_size().div_ceil(64)` and every bit at
/// position `>= universe_size()` is zero (masked tail words).
pub trait BitView {
    /// The size of the universe the bits are drawn from.
    fn universe_size(&self) -> usize;

    /// The packed storage words, least-significant bit = element 0.
    fn words(&self) -> &[u64];
}

impl BitView for BitSet {
    #[inline]
    fn universe_size(&self) -> usize {
        self.nbits
    }

    #[inline]
    fn words(&self) -> &[u64] {
        &self.words
    }
}

impl<V: BitView + ?Sized> BitView for &V {
    #[inline]
    fn universe_size(&self) -> usize {
        (**self).universe_size()
    }

    #[inline]
    fn words(&self) -> &[u64] {
        (**self).words()
    }
}

/// A dense set of `usize` elements drawn from a fixed universe
/// `{0, …, universe_size − 1}`.
///
/// Unlike `std::collections::HashSet<usize>`, a `BitSet` has O(n/64) union
/// and intersection, O(1) membership, and a canonical, hashable
/// representation — exactly what the product-graph evolution analysis of
/// El-Hayek, Henzinger & Schmid needs.
///
/// # Examples
///
/// ```
/// use treecast_bitmatrix::BitSet;
///
/// let mut reach = BitSet::new(8);
/// reach.insert(0);
/// reach.insert(3);
/// assert!(reach.contains(3));
/// assert_eq!(reach.len(), 2);
///
/// let mut other = BitSet::new(8);
/// other.insert(3);
/// other.insert(7);
/// reach.union_with(&other);
/// assert_eq!(reach.iter().collect::<Vec<_>>(), vec![0, 3, 7]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BitSet {
    nbits: usize,
    words: Vec<u64>,
}

impl BitSet {
    /// Creates an empty set over the universe `{0, …, nbits − 1}`.
    ///
    /// # Examples
    ///
    /// ```
    /// use treecast_bitmatrix::BitSet;
    /// let s = BitSet::new(10);
    /// assert!(s.is_empty());
    /// assert_eq!(s.universe_size(), 10);
    /// ```
    pub fn new(nbits: usize) -> Self {
        BitSet {
            nbits,
            words: vec![0; words_for(nbits)],
        }
    }

    /// Creates a set containing the whole universe.
    ///
    /// # Examples
    ///
    /// ```
    /// use treecast_bitmatrix::BitSet;
    /// let s = BitSet::full(5);
    /// assert!(s.is_full());
    /// assert_eq!(s.len(), 5);
    /// ```
    pub fn full(nbits: usize) -> Self {
        let mut s = BitSet {
            nbits,
            words: vec![u64::MAX; words_for(nbits)],
        };
        s.mask_tail();
        s
    }

    /// Creates a set containing exactly one element.
    ///
    /// # Panics
    ///
    /// Panics if `elem >= nbits`.
    ///
    /// # Examples
    ///
    /// ```
    /// use treecast_bitmatrix::BitSet;
    /// let s = BitSet::singleton(6, 4);
    /// assert_eq!(s.iter().collect::<Vec<_>>(), vec![4]);
    /// ```
    pub fn singleton(nbits: usize, elem: usize) -> Self {
        let mut s = BitSet::new(nbits);
        s.insert(elem);
        s
    }

    /// Creates a set over `{0, …, nbits − 1}` from an iterator of elements.
    ///
    /// # Panics
    ///
    /// Panics if any element is `>= nbits`.
    ///
    /// # Examples
    ///
    /// ```
    /// use treecast_bitmatrix::BitSet;
    /// let s = BitSet::from_indices(9, [1, 4, 8]);
    /// assert_eq!(s.len(), 3);
    /// ```
    pub fn from_indices<I: IntoIterator<Item = usize>>(nbits: usize, elems: I) -> Self {
        let mut s = BitSet::new(nbits);
        for e in elems {
            s.insert(e);
        }
        s
    }

    /// Reconstructs a set from raw words, masking any bits past `nbits`.
    ///
    /// # Panics
    ///
    /// Panics if `words.len()` differs from the storage size implied by
    /// `nbits`.
    pub fn from_words(nbits: usize, words: Vec<u64>) -> Self {
        assert_eq!(
            words.len(),
            words_for(nbits),
            "word count {} does not match universe size {}",
            words.len(),
            nbits
        );
        let mut s = BitSet { nbits, words };
        s.mask_tail();
        s
    }

    /// The size of the universe this set draws elements from.
    #[inline]
    pub fn universe_size(&self) -> usize {
        self.nbits
    }

    /// The raw storage words, least-significant bit = element 0.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Heap bytes held by the storage words — the byte-budget accounting
    /// companion of [`BoolMatrix::heap_bytes`](crate::BoolMatrix::heap_bytes).
    #[inline]
    pub fn heap_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }

    /// Number of elements in the set (popcount).
    ///
    /// # Examples
    ///
    /// ```
    /// use treecast_bitmatrix::BitSet;
    /// assert_eq!(BitSet::from_indices(70, [0, 69]).len(), 2);
    /// ```
    #[inline]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if the set contains no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Returns `true` if the set equals the whole universe.
    ///
    /// An empty universe is vacuously full.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len() == self.nbits
    }

    /// Tests membership.
    ///
    /// Out-of-universe queries return `false` rather than panicking, so
    /// membership tests compose smoothly with data from differently sized
    /// universes.
    #[inline]
    pub fn contains(&self, elem: usize) -> bool {
        if elem >= self.nbits {
            return false;
        }
        self.words[elem / WORD_BITS] & (1u64 << (elem % WORD_BITS)) != 0
    }

    /// Inserts an element. Returns `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `elem >= universe_size`.
    #[inline]
    pub fn insert(&mut self, elem: usize) -> bool {
        assert!(
            elem < self.nbits,
            "element {} out of universe of size {}",
            elem,
            self.nbits
        );
        let w = &mut self.words[elem / WORD_BITS];
        let mask = 1u64 << (elem % WORD_BITS);
        let fresh = *w & mask == 0;
        *w |= mask;
        fresh
    }

    /// Removes an element. Returns `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `elem >= universe_size`.
    #[inline]
    pub fn remove(&mut self, elem: usize) -> bool {
        assert!(
            elem < self.nbits,
            "element {} out of universe of size {}",
            elem,
            self.nbits
        );
        let w = &mut self.words[elem / WORD_BITS];
        let mask = 1u64 << (elem % WORD_BITS);
        let present = *w & mask != 0;
        *w &= !mask;
        present
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Overwrites `self` with the contents of any same-universe view —
    /// the borrowing-friendly replacement for `clone_from` now that matrix
    /// rows are handed out as [`crate::RowRef`] views.
    ///
    /// # Panics
    ///
    /// Panics if the universe sizes differ.
    #[inline]
    pub fn copy_from<V: BitView>(&mut self, other: V) {
        self.check_same_universe(&other);
        self.words.copy_from_slice(other.words());
    }

    /// In-place union: `self ← self ∪ other`.
    ///
    /// # Panics
    ///
    /// Panics if the universe sizes differ.
    #[inline]
    pub fn union_with<V: BitView>(&mut self, other: V) {
        self.check_same_universe(&other);
        for (a, b) in self.words.iter_mut().zip(other.words()) {
            *a |= b;
        }
    }

    /// In-place intersection: `self ← self ∩ other`.
    ///
    /// # Panics
    ///
    /// Panics if the universe sizes differ.
    #[inline]
    pub fn intersect_with<V: BitView>(&mut self, other: V) {
        self.check_same_universe(&other);
        for (a, b) in self.words.iter_mut().zip(other.words()) {
            *a &= b;
        }
    }

    /// In-place difference: `self ← self \ other`.
    ///
    /// # Panics
    ///
    /// Panics if the universe sizes differ.
    #[inline]
    pub fn difference_with<V: BitView>(&mut self, other: V) {
        self.check_same_universe(&other);
        for (a, b) in self.words.iter_mut().zip(other.words()) {
            *a &= !b;
        }
    }

    /// In-place symmetric difference: `self ← self △ other`.
    ///
    /// # Panics
    ///
    /// Panics if the universe sizes differ.
    #[inline]
    pub fn symmetric_difference_with<V: BitView>(&mut self, other: V) {
        self.check_same_universe(&other);
        for (a, b) in self.words.iter_mut().zip(other.words()) {
            *a ^= b;
        }
    }

    /// Complements the set within its universe.
    ///
    /// # Examples
    ///
    /// ```
    /// use treecast_bitmatrix::BitSet;
    /// let mut s = BitSet::from_indices(4, [0, 2]);
    /// s.complement();
    /// assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 3]);
    /// ```
    pub fn complement(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// Returns `true` if `self ⊆ other`.
    ///
    /// # Panics
    ///
    /// Panics if the universe sizes differ.
    #[inline]
    pub fn is_subset<V: BitView>(&self, other: V) -> bool {
        self.check_same_universe(&other);
        words_subset(&self.words, other.words())
    }

    /// Returns `true` if `self ⊇ other`.
    ///
    /// # Panics
    ///
    /// Panics if the universe sizes differ.
    #[inline]
    pub fn is_superset<V: BitView>(&self, other: V) -> bool {
        self.check_same_universe(&other);
        words_subset(other.words(), &self.words)
    }

    /// Returns `true` if the sets share no element.
    ///
    /// # Panics
    ///
    /// Panics if the universe sizes differ.
    #[inline]
    pub fn is_disjoint<V: BitView>(&self, other: V) -> bool {
        self.check_same_universe(&other);
        words_disjoint(&self.words, other.words())
    }

    /// Returns `true` if the sets share at least one element.
    ///
    /// # Panics
    ///
    /// Panics if the universe sizes differ.
    #[inline]
    pub fn intersects<V: BitView>(&self, other: V) -> bool {
        !self.is_disjoint(other)
    }

    /// Number of elements in `self ∩ other` without materializing it.
    ///
    /// # Panics
    ///
    /// Panics if the universe sizes differ.
    #[inline]
    pub fn intersection_len<V: BitView>(&self, other: V) -> usize {
        self.check_same_universe(&other);
        words_intersection_len(&self.words, other.words())
    }

    /// Number of elements in `self \ other` without materializing it.
    ///
    /// This is the per-round "how many new edges appeared" primitive used
    /// by the strict-progress certificate.
    ///
    /// # Panics
    ///
    /// Panics if the universe sizes differ.
    #[inline]
    pub fn difference_len<V: BitView>(&self, other: V) -> usize {
        self.check_same_universe(&other);
        words_difference_len(&self.words, other.words())
    }

    /// The smallest element, if any.
    ///
    /// # Examples
    ///
    /// ```
    /// use treecast_bitmatrix::BitSet;
    /// assert_eq!(BitSet::from_indices(100, [70, 99]).min(), Some(70));
    /// assert_eq!(BitSet::new(3).min(), None);
    /// ```
    pub fn min(&self) -> Option<usize> {
        for (i, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(i * WORD_BITS + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// The largest element, if any.
    pub fn max(&self) -> Option<usize> {
        for (i, &w) in self.words.iter().enumerate().rev() {
            if w != 0 {
                return Some(i * WORD_BITS + (WORD_BITS - 1 - w.leading_zeros() as usize));
            }
        }
        None
    }

    /// Iterates over the elements in increasing order.
    ///
    /// # Examples
    ///
    /// ```
    /// use treecast_bitmatrix::BitSet;
    /// let s = BitSet::from_indices(130, [0, 64, 129]);
    /// assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 64, 129]);
    /// ```
    pub fn iter(&self) -> Iter<'_> {
        Iter::over_words(&self.words)
    }

    /// Grows or shrinks the universe to `nbits`, dropping elements that no
    /// longer fit.
    pub fn resize_universe(&mut self, nbits: usize) {
        self.nbits = nbits;
        self.words.resize(words_for(nbits), 0);
        self.mask_tail();
    }

    #[inline]
    fn check_same_universe<V: BitView>(&self, other: &V) {
        assert_eq!(
            self.nbits,
            other.universe_size(),
            "bitset universe mismatch: {} vs {}",
            self.nbits,
            other.universe_size()
        );
    }

    /// Zeroes any bits beyond `nbits` in the last word.
    #[inline]
    fn mask_tail(&mut self) {
        let rem = self.nbits % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

/// `a ⊆ b` on equally sized masked word slices.
#[inline]
pub(crate) fn words_subset(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).all(|(x, y)| x & !y == 0)
}

/// `a ∩ b = ∅` on equally sized masked word slices.
#[inline]
pub(crate) fn words_disjoint(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).all(|(x, y)| x & y == 0)
}

/// `|a ∩ b|` on equally sized masked word slices.
#[inline]
pub(crate) fn words_intersection_len(a: &[u64], b: &[u64]) -> usize {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x & y).count_ones() as usize)
        .sum()
}

/// `|a \ b|` on equally sized masked word slices.
#[inline]
pub(crate) fn words_difference_len(a: &[u64], b: &[u64]) -> usize {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x & !y).count_ones() as usize)
        .sum()
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitSet({}/{})", self, self.nbits)
    }
}

/// Renders the set as a bitstring, element 0 leftmost: `{0,2} ⊆ [4]` is
/// `"1010"`.
impl fmt::Display for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.nbits {
            f.write_str(if self.contains(i) { "1" } else { "0" })?;
        }
        Ok(())
    }
}

/// Error returned when parsing a [`BitSet`] from a bitstring fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBitSetError {
    offending: char,
}

impl fmt::Display for ParseBitSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid bitstring character {:?}, expected '0' or '1'",
            self.offending
        )
    }
}

impl std::error::Error for ParseBitSetError {}

impl FromStr for BitSet {
    type Err = ParseBitSetError;

    /// Parses a bitstring like `"01101"`, element 0 leftmost.
    ///
    /// # Examples
    ///
    /// ```
    /// use treecast_bitmatrix::BitSet;
    /// let s: BitSet = "01101".parse()?;
    /// assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 2, 4]);
    /// # Ok::<(), treecast_bitmatrix::ParseBitSetError>(())
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut set = BitSet::new(s.chars().count());
        for (i, c) in s.chars().enumerate() {
            match c {
                '1' => {
                    set.insert(i);
                }
                '0' => {}
                other => return Err(ParseBitSetError { offending: other }),
            }
        }
        Ok(set)
    }
}

impl Extend<usize> for BitSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for e in iter {
            self.insert(e);
        }
    }
}

/// Iterator over the elements of a word-packed set in increasing order.
///
/// Produced by [`BitSet::iter`] and [`crate::RowRef::iter`]: it walks any
/// borrowed word slice, so owned sets and matrix-row views share it.
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl<'a> Iter<'a> {
    /// Iterates the set bits of a masked word slice.
    #[inline]
    pub(crate) fn over_words(words: &'a [u64]) -> Self {
        Iter {
            words,
            word_idx: 0,
            current: words.first().copied().unwrap_or(0),
        }
    }
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * WORD_BITS + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.current.count_ones() as usize
            + self.words[(self.word_idx + 1).min(self.words.len())..]
                .iter()
                .map(|w| w.count_ones() as usize)
                .sum::<usize>();
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for Iter<'_> {}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

macro_rules! binop {
    ($trait_:ident, $method:ident, $assign_trait:ident, $assign_method:ident, $with:ident) => {
        impl core::ops::$trait_ for &BitSet {
            type Output = BitSet;
            fn $method(self, rhs: &BitSet) -> BitSet {
                let mut out = self.clone();
                out.$with(rhs);
                out
            }
        }

        impl core::ops::$assign_trait<&BitSet> for BitSet {
            fn $assign_method(&mut self, rhs: &BitSet) {
                self.$with(rhs);
            }
        }
    };
}

binop!(BitOr, bitor, BitOrAssign, bitor_assign, union_with);
binop!(BitAnd, bitand, BitAndAssign, bitand_assign, intersect_with);
binop!(
    BitXor,
    bitxor,
    BitXorAssign,
    bitxor_assign,
    symmetric_difference_with
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_empty() {
        let s = BitSet::new(100);
        assert!(s.is_empty());
        assert!(!s.is_full());
        assert_eq!(s.len(), 0);
        assert_eq!(s.universe_size(), 100);
    }

    #[test]
    fn zero_universe() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert!(s.is_full(), "empty universe is vacuously full");
        assert_eq!(s.iter().count(), 0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut s = BitSet::new(65);
        assert!(s.insert(64));
        assert!(!s.insert(64), "second insert reports already present");
        assert!(s.contains(64));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert!(!s.contains(64));
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn insert_out_of_range_panics() {
        BitSet::new(8).insert(8);
    }

    #[test]
    fn contains_out_of_range_is_false() {
        let s = BitSet::full(8);
        assert!(!s.contains(8));
        assert!(!s.contains(1000));
    }

    #[test]
    fn full_has_clean_tail() {
        let s = BitSet::full(67);
        assert_eq!(s.len(), 67);
        assert_eq!(s.words().len(), 2);
        assert_eq!(s.words()[1], 0b111, "tail bits beyond 67 must be zero");
    }

    #[test]
    fn complement_respects_tail() {
        let mut s = BitSet::new(67);
        s.complement();
        assert!(s.is_full());
        s.complement();
        assert!(s.is_empty());
    }

    #[test]
    fn set_algebra() {
        let a = BitSet::from_indices(10, [1, 3, 5, 7]);
        let b = BitSet::from_indices(10, [3, 4, 5]);
        assert_eq!((&a | &b).iter().collect::<Vec<_>>(), vec![1, 3, 4, 5, 7]);
        assert_eq!((&a & &b).iter().collect::<Vec<_>>(), vec![3, 5]);
        assert_eq!((&a ^ &b).iter().collect::<Vec<_>>(), vec![1, 4, 7]);
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 7]);
    }

    #[test]
    fn subset_relations() {
        let small = BitSet::from_indices(6, [1, 2]);
        let big = BitSet::from_indices(6, [0, 1, 2, 4]);
        assert!(small.is_subset(&big));
        assert!(big.is_superset(&small));
        assert!(!big.is_subset(&small));
        assert!(small.is_subset(&small));
    }

    #[test]
    fn disjointness() {
        let a = BitSet::from_indices(8, [0, 2]);
        let b = BitSet::from_indices(8, [1, 3]);
        assert!(a.is_disjoint(&b));
        assert!(!a.intersects(&b));
        let c = BitSet::from_indices(8, [2]);
        assert!(a.intersects(&c));
        assert_eq!(a.intersection_len(&c), 1);
        assert_eq!(a.difference_len(&c), 1);
    }

    #[test]
    fn min_max() {
        let s = BitSet::from_indices(200, [63, 64, 128, 199]);
        assert_eq!(s.min(), Some(63));
        assert_eq!(s.max(), Some(199));
    }

    #[test]
    fn iter_crosses_word_boundaries() {
        let elems = vec![0, 1, 63, 64, 65, 127, 128];
        let s = BitSet::from_indices(129, elems.clone());
        assert_eq!(s.iter().collect::<Vec<_>>(), elems);
        assert_eq!(s.iter().len(), elems.len());
    }

    #[test]
    fn display_and_parse_roundtrip() {
        let s = BitSet::from_indices(5, [1, 2, 4]);
        assert_eq!(s.to_string(), "01101");
        let parsed: BitSet = "01101".parse().unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn parse_rejects_garbage() {
        let err = "01x1".parse::<BitSet>().unwrap_err();
        assert!(err.to_string().contains('x'));
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn mixed_universe_panics() {
        let mut a = BitSet::new(4);
        let b = BitSet::new(5);
        a.union_with(&b);
    }

    #[test]
    fn resize_universe_drops_overflow() {
        let mut s = BitSet::from_indices(10, [0, 9]);
        s.resize_universe(5);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0]);
        s.resize_universe(12);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0]);
        assert_eq!(s.universe_size(), 12);
    }

    #[test]
    fn extend_inserts() {
        let mut s = BitSet::new(6);
        s.extend([5, 0, 5]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn heap_bytes_matches_the_word_count() {
        assert_eq!(BitSet::new(70).heap_bytes(), 2 * 8);
        assert_eq!(BitSet::full(70).heap_bytes(), BitSet::new(70).heap_bytes());
        assert_eq!(BitSet::new(0).heap_bytes(), 0);
    }

    #[test]
    fn from_words_masks_tail() {
        let s = BitSet::from_words(4, vec![u64::MAX]);
        assert_eq!(s.len(), 4);
    }

    #[test]
    #[should_panic(expected = "word count")]
    fn from_words_checks_len() {
        BitSet::from_words(4, vec![0, 0]);
    }
}
