//! Proptest strategies for [`BitSet`], [`BoolMatrix`] and [`PackedMatrix`].
//!
//! Available behind the `proptest` feature so that downstream crates (and
//! this workspace's own test suites) can generate structured random
//! matrices without re-deriving generators.

use proptest::prelude::*;

use crate::{BitSet, BoolMatrix, PackedMatrix};

/// Strategy producing an arbitrary [`BitSet`] over a universe of size `n`.
pub fn bitset(n: usize) -> impl Strategy<Value = BitSet> {
    proptest::collection::vec(proptest::bool::ANY, n).prop_map(move |bits| {
        BitSet::from_indices(
            n,
            bits.iter().enumerate().filter(|(_, b)| **b).map(|(i, _)| i),
        )
    })
}

/// Strategy producing an arbitrary [`BoolMatrix`] on `n` nodes.
pub fn matrix(n: usize) -> impl Strategy<Value = BoolMatrix> {
    proptest::collection::vec(bitset(n), n).prop_map(BoolMatrix::from_rows)
}

/// Strategy producing a *reflexive* [`BoolMatrix`] on `n` nodes — the shape
/// of every product graph in the model (self-loops are never lost).
pub fn reflexive_matrix(n: usize) -> impl Strategy<Value = BoolMatrix> {
    matrix(n).prop_map(|mut m| {
        m.add_self_loops();
        m
    })
}

/// Strategy producing an arbitrary [`PackedMatrix`] on `n ≤ 8` nodes.
///
/// # Panics
///
/// Panics if `n == 0` or `n > 8`.
pub fn packed_matrix(n: usize) -> impl Strategy<Value = PackedMatrix> {
    proptest::num::u64::ANY.prop_map(move |bits| PackedMatrix::from_bits(n, bits))
}

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #[test]
        fn bitset_strategy_respects_universe(s in bitset(17)) {
            prop_assert_eq!(s.universe_size(), 17);
            prop_assert!(s.iter().all(|e| e < 17));
        }

        #[test]
        fn reflexive_strategy_is_reflexive(m in reflexive_matrix(9)) {
            prop_assert!(m.is_reflexive());
        }

        #[test]
        fn packed_strategy_masks(m in packed_matrix(3)) {
            prop_assert!(m.bits() < (1 << 9));
        }
    }
}
