//! Property tests for [`HybridRow`]: the sparse↔dense promotion happens
//! exactly at the per-universe threshold, and every observable operation
//! (insert, remove, contains, len, union, iteration) agrees with a dense
//! [`BitSet`] mirror regardless of which representation the row is in.

use proptest::prelude::*;
use treecast_bitmatrix::{hybrid_threshold, BitSet, HybridRow};

/// Universes around the clamp floor (threshold 8), in the scaling regime,
/// and word-boundary-straddling sizes.
const UNIVERSES: [usize; 5] = [64, 513, 1024, 4096, 10_000];

/// Deterministic stream of distinct elements of `{0, …, n − 1}` derived
/// from a sampled seed: a multiplicative step with a stride coprime to `n`
/// walks the whole universe without repeats.
fn distinct_elems(n: usize, seed: u64, count: usize) -> Vec<usize> {
    assert!(count <= n);
    fn gcd(mut a: usize, mut b: usize) -> usize {
        while b != 0 {
            (a, b) = (b, a % b);
        }
        a
    }
    let mut stride = 1 + (seed as usize % n.max(2));
    while gcd(stride, n) != 1 {
        stride += 1;
    }
    let start = seed as usize % n;
    (0..count).map(|i| (start + i * stride) % n).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Exactly `threshold` elements keep the row sparse; one more promotes
    /// it. Contents are unchanged by the promotion on either side of the
    /// boundary (element counts threshold − 1, threshold, threshold + 1).
    #[test]
    fn promotion_happens_exactly_at_threshold(seed in proptest::num::u64::ANY) {
        for n in UNIVERSES {
            let t = hybrid_threshold(n);
            prop_assert!(t + 1 <= n, "universes chosen above the clamp floor");
            for count in [t - 1, t, t + 1] {
                let elems = distinct_elems(n, seed, count);
                let mut row = HybridRow::new(n);
                for &e in &elems {
                    row.insert(e);
                }
                prop_assert_eq!(row.len(), count);
                prop_assert!(
                    row.is_dense() == (count > t),
                    "universe {}: {} elements (threshold {}) in wrong repr",
                    n, count, t
                );
                let expect = BitSet::from_indices(n, elems.iter().copied());
                prop_assert_eq!(row.to_bitset(), expect);
            }
        }
    }

    /// A random interleaving of inserts and removes leaves the row
    /// observationally equal to a `BitSet` mirror: same membership, same
    /// length, same ascending iteration order.
    #[test]
    fn insert_remove_mirror_bitset(
        seed in proptest::num::u64::ANY,
        ops in proptest::collection::vec(proptest::num::u64::ANY, 200),
    ) {
        for n in UNIVERSES {
            let mut row = HybridRow::new(n);
            let mut mirror = BitSet::new(n);
            for (i, &raw) in ops.iter().enumerate() {
                let mixed = raw ^ seed.rotate_left(i as u32);
                let elem = (mixed >> 1) as usize % n;
                let is_insert = mixed & 1 == 0;
                if is_insert {
                    prop_assert_eq!(row.insert(elem), mirror.insert(elem));
                } else {
                    prop_assert_eq!(row.remove(elem), mirror.remove(elem));
                }
            }
            prop_assert_eq!(row.len(), mirror.len());
            prop_assert_eq!(row.is_empty(), mirror.is_empty());
            prop_assert_eq!(row.iter().collect::<Vec<_>>(),
                            mirror.iter().collect::<Vec<_>>());
            for probe in distinct_elems(n, seed, 32.min(n)) {
                prop_assert_eq!(row.contains(probe), mirror.contains(probe));
            }
        }
    }

    /// `HybridRow::union_with` equals `BitSet::union_with` for every
    /// combination of sparse/dense operands, including unions that trigger
    /// promotion mid-way.
    #[test]
    fn union_equivalence_all_repr_pairs(
        seed in proptest::num::u64::ANY,
        left_frac in 0usize..=100,
        right_frac in 0usize..=100,
    ) {
        for n in UNIVERSES {
            let t = hybrid_threshold(n);
            // Sizes sweep across the threshold so all four repr pairs occur.
            let left_count = (left_frac * 2 * t / 100).min(n);
            let right_count = (right_frac * 2 * t / 100).min(n);
            let left = distinct_elems(n, seed, left_count);
            let right = distinct_elems(n, seed.rotate_left(21) ^ 0xBEEF, right_count);

            let mut a = HybridRow::new(n);
            a.extend(left.iter().copied());
            let mut b = HybridRow::new(n);
            b.extend(right.iter().copied());

            let mut expect = BitSet::from_indices(n, left.iter().copied());
            expect.union_with(&BitSet::from_indices(n, right.iter().copied()));

            a.union_with(&b);
            prop_assert_eq!(a.len(), expect.len());
            prop_assert_eq!(a.to_bitset(), expect);
            prop_assert_eq!(a.iter().collect::<Vec<_>>(),
                            expect.iter().collect::<Vec<_>>());
            // The right operand is untouched.
            prop_assert_eq!(b.to_bitset(),
                            BitSet::from_indices(n, right.iter().copied()));
        }
    }

    /// Iteration is ascending and duplicate-free in both representations.
    #[test]
    fn iteration_is_sorted_and_exact_size(seed in proptest::num::u64::ANY) {
        for n in UNIVERSES {
            let t = hybrid_threshold(n);
            for count in [t / 2, 2 * t] {
                let count = count.min(n);
                let mut row = HybridRow::new(n);
                row.extend(distinct_elems(n, seed, count));
                let collected: Vec<_> = row.iter().collect();
                prop_assert_eq!(collected.len(), row.len());
                prop_assert!(row.iter().len() == row.len(), "ExactSizeIterator");
                prop_assert!(collected.windows(2).all(|w| w[0] < w[1]),
                             "ascending, duplicate-free");
            }
        }
    }
}
