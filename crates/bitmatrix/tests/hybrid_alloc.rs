//! Proves the allocation contract of [`HybridRow`]: a row whose sparse
//! list was pre-reserved at construction performs **zero** heap
//! allocations for inserts, removes, membership tests, and iteration while
//! it stays sparse, and exactly the promotion's allocations (the dense
//! word vector) when it crosses the threshold. This is what keeps
//! steady-state frontier rounds allocation-free.
//!
//! A counting wrapper around the system allocator tallies every
//! allocation; the file contains exactly one `#[test]` so no concurrent
//! test can pollute the counter while the measured window is open.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use treecast_bitmatrix::{hybrid_threshold, HybridRow};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: delegates everything to `System`, upholding its contract
// verbatim; the counter is a relaxed atomic with no further invariants.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: same layout contract as `System::alloc`, to which it delegates.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: same layout contract as `System::alloc_zeroed`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    // SAFETY: same pointer/layout contract as `System::realloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    // SAFETY: same pointer/layout contract as `System::dealloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAllocator = CountingAllocator;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn sparse_rows_allocate_only_on_promotion() {
    let n = 100_000;
    let t = hybrid_threshold(n);

    // Steady-state sparse churn: fill to the threshold, then cycle
    // remove + reinsert. The capacity was reserved by `new`, so none of
    // this may touch the allocator. The harness's own threads may allocate
    // concurrently, so measure several windows and require a clean one: a
    // genuine per-op allocation would taint every window with hundreds of
    // counts.
    let mut row = HybridRow::new(n);
    let clean_sparse_window = (0..5)
        .map(|_| {
            let before = allocations();
            for e in 0..t {
                row.insert(e * 3);
            }
            assert!(row.is_sparse());
            for _ in 0..10 {
                for e in 0..t {
                    row.remove(e * 3);
                    row.insert(e * 3);
                    assert!(row.contains(e * 3));
                }
            }
            let sum: usize = row.iter().sum();
            assert!(sum > 0, "keep iteration observable");
            for e in 0..t {
                row.remove(e * 3);
            }
            assert!(row.is_empty());
            allocations() - before
        })
        .min()
        .expect("five windows measured");
    assert_eq!(
        clean_sparse_window, 0,
        "sparse inserts/removes/iteration must not allocate — capacity is \
         reserved at construction"
    );

    // Crossing the threshold allocates (the dense word vector), after
    // which dense churn over the same elements is allocation-free again.
    for e in 0..t {
        row.insert(e);
    }
    let before_promotion = allocations();
    row.insert(t);
    assert!(row.is_dense());
    assert!(
        allocations() > before_promotion,
        "promotion materializes dense words, which must allocate"
    );

    let clean_dense_window = (0..5)
        .map(|_| {
            let before = allocations();
            for _ in 0..10 {
                for e in 0..=t {
                    row.remove(e);
                    row.insert(e);
                }
            }
            allocations() - before
        })
        .min()
        .expect("five windows measured");
    assert_eq!(
        clean_dense_window, 0,
        "dense inserts/removes must not allocate"
    );
    assert_eq!(row.len(), t + 1);
}
