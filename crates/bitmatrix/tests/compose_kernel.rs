//! Property tests for the `compose_into` kernel paths.
//!
//! Every explicit kernel (sparse, tiled, parallel) plus the auto selector
//! must agree with the naive O(n³) reference product across word-boundary
//! sizes (n ∈ {1, 63, 64, 65, 129}) and densities, and iterated
//! self-composition must reach an idempotent fixpoint.

use proptest::prelude::*;
use treecast_bitmatrix::strategies;
use treecast_bitmatrix::{BoolMatrix, ComposePath};

/// Word-boundary-straddling sizes: single word, word-1, word, word+1 and
/// a two-words-plus-one size.
const SIZES: [usize; 5] = [1, 63, 64, 65, 129];

/// Naive O(n³) reference product.
fn naive_compose(a: &BoolMatrix, b: &BoolMatrix) -> BoolMatrix {
    let n = a.n();
    let mut out = BoolMatrix::zeros(n);
    for x in 0..n {
        for y in 0..n {
            if (0..n).any(|z| a.get(x, z) && b.get(z, y)) {
                out.set(x, y, true);
            }
        }
    }
    out
}

/// A deterministic matrix with roughly `density_pct`% of entries set,
/// derived from a proptest-sampled seed via xorshift.
fn seeded_matrix(n: usize, seed: u64, density_pct: u64) -> BoolMatrix {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut m = BoolMatrix::zeros(n);
    for x in 0..n {
        for y in 0..n {
            if next() % 100 < density_pct {
                m.set(x, y, true);
            }
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All kernel paths equal the naive reference on every boundary size.
    #[test]
    fn kernels_match_naive_reference(seed in proptest::num::u64::ANY, density in 0u64..=100) {
        for n in SIZES {
            let a = seeded_matrix(n, seed, density);
            let b = seeded_matrix(n, seed.rotate_left(17) ^ 0xD1CE, density);
            let expected = naive_compose(&a, &b);
            for path in [
                ComposePath::Auto,
                ComposePath::Sparse,
                ComposePath::Tiled,
                ComposePath::Parallel,
            ] {
                // Start from stale garbage to prove the kernel overwrites.
                let mut out = BoolMatrix::ones(n);
                a.compose_into_with(&b, &mut out, path);
                out.debug_validate();
                prop_assert!(
                    out == expected,
                    "kernel {:?} diverged at n = {} (density {}%)",
                    path,
                    n,
                    density
                );
            }
        }
    }

    /// The sparse fast path on genuinely tree-shaped left operands (a
    /// self-looped path has 2n − 1 ≤ 2n edges, so Auto takes it) matches
    /// the reference.
    #[test]
    fn sparse_regime_matches_reference(seed in proptest::num::u64::ANY) {
        for n in SIZES {
            let mut path_round = BoolMatrix::identity(n);
            for y in 1..n {
                path_round.set(y - 1, y, true);
            }
            let b = seeded_matrix(n, seed, 20);
            let expected = naive_compose(&path_round, &b);
            let mut out = BoolMatrix::zeros(n);
            path_round.compose_into(&b, &mut out);
            out.debug_validate();
            prop_assert!(out == expected, "sparse regime diverged at n = {}", n);
        }
    }

    /// Iterated self-composition of a reflexive matrix reaches a fixpoint
    /// with `P ∘ P = P` (the transitive closure; all-ones once the graph
    /// is strongly connected), on every kernel path.
    #[test]
    fn reflexive_self_composition_reaches_idempotent_fixpoint(
        m in strategies::reflexive_matrix(65),
    ) {
        let n = m.n();
        let mut p = m.clone();
        let mut next = BoolMatrix::zeros(n);
        // Reflexivity makes squaring monotone, so the closure needs at
        // most ⌈log₂ n⌉ squarings; 8 covers n = 65 with slack.
        for _ in 0..8 {
            p.compose_into(&p, &mut next);
            if next == p {
                break;
            }
            std::mem::swap(&mut p, &mut next);
        }
        for path in [ComposePath::Sparse, ComposePath::Tiled, ComposePath::Parallel] {
            let mut square = BoolMatrix::zeros(n);
            p.compose_into_with(&p, &mut square, path);
            prop_assert!(square == p, "fixpoint not idempotent on {:?}", path);
        }
        // A reflexive fixpoint with a full row is all-ones on that row's
        // strongly-reachable set; when some row is full, composing further
        // can never unset it.
        if p.is_all_ones() {
            let mut again = BoolMatrix::zeros(n);
            p.compose_into(&p, &mut again);
            prop_assert!(again.is_all_ones());
        }
    }
}
