//! Exact worst-case broadcast time `t*(T_n)` for small `n`.
//!
//! The paper proves `⌈(3n−1)/2⌉ − 2 ≤ t*(T_n) ≤ ⌈(1+√2)n − 1⌉` but computes
//! no exact values; this crate closes that loop experimentally by solving
//! the adversary's optimization exactly for small sizes (`n ≤ 6` in
//! seconds, `n = 7` in about two hours on one release-mode core — see the
//! bench crate):
//!
//! * [`solve`] / [`solve_with`] — iterative layered search over the
//!   edge-count-graded state DAG: thread-sharded forward discovery
//!   followed by backward value propagation, with isomorphism reduction
//!   ([`CanonMode`]) and dominance pruning.
//! * [`SuccessorGen`] — the expansion primitive: streams the distinct
//!   ⊆-minimal successors of a state with an early witness cut, in time
//!   proportional to the successors rather than the `n^(n−1)` trees.
//! * [`SolveResult`] carries an optimal adversary tree sequence, which
//!   [`verify_schedule`] replays through the public simulation engine as an
//!   end-to-end consistency check.
//!
//! # Examples
//!
//! ```
//! use treecast_core::bounds;
//! use treecast_solver::{solve, verify_schedule};
//!
//! let result = solve(4)?;
//! // Theorem 3.1 sandwich holds for the exact optimum…
//! assert!(bounds::lower_bound(4) <= result.t_star);
//! assert!(result.t_star <= bounds::upper_bound(4));
//! // …and the optimal schedule replays to the same value.
//! assert_eq!(verify_schedule(4, &result.schedule), result.t_star);
//! # Ok::<(), treecast_solver::SolveError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod canon;
mod pool;
mod search;
pub mod state;

pub use canon::{canonicalize, permute, CanonMode};
pub use pool::{GenStats, Successor, SuccessorGen, TreePool};
pub use search::{
    solve, solve_with, verify_schedule, SolveError, SolveOptions, SolveResult, SolveStats,
};
