//! The exact search: `t*(T_n)` as a longest path over product-graph states.
//!
//! Because every round tree carries self-loops, states grow monotonically
//! (`S ⊆ S∘T`), and the paper's strict-progress observation means every
//! pre-broadcast round adds at least one edge — so the reachable state
//! space is a DAG **graded by edge count** and the recursion
//!
//! ```text
//! L(S) = 0                          if S has a broadcast witness
//! L(S) = 1 + max_{T ∈ T_n} L(S∘T)  otherwise
//! ```
//!
//! terminates with `t*(T_n) = L(I)`. The engine exploits the grading
//! directly instead of recursing: an **iterative layered search**.
//!
//! 1. **Forward discovery** walks popcount layers upward from the start
//!    state. Each layer's states are sharded across threads
//!    (`std::thread::scope`, mirroring the tournament runner); every
//!    worker expands its shard with a [`SuccessorGen`] — distinct
//!    ⊆-minimal successors streamed with an early witness cut — and
//!    canonicalizes them ([`CanonMode`]). The merge deduplicates against a
//!    compact open-addressing `u64 → u32` table and records each state's
//!    successor keys, so no state is ever expanded twice.
//! 2. **Backward value propagation** then sweeps the layers in decreasing
//!    popcount. All successors of a state sit in strictly higher layers,
//!    so `L(S) = 1 + max L(succ)` is a pure table lookup (an empty
//!    successor list means every round tree broadcasts immediately:
//!    `L(S) = 1`).
//!
//! No recursion anywhere (the old descent risked stack overflow at depth
//! `~2.5n`), results are bit-identical for any thread count (merges run in
//! shard order), and the table is sized for tens of millions of states.

use treecast_core::{simulate, SequenceSource, SimulationConfig};
use treecast_trees::{generators, RootedTree};

use crate::canon::{canonicalize, CanonMode};
use crate::pool::SuccessorGen;
use crate::state::{apply_tree, has_witness, identity_state, transition_edges};

/// Configuration for [`solve_with`].
#[derive(Debug, Clone, Copy)]
pub struct SolveOptions {
    /// Isomorphism-reduction policy (default [`CanonMode::Exact`]).
    pub canon: CanonMode,
    /// Abort if the state table exceeds this many states.
    pub max_states: usize,
    /// Skip extracting an optimal schedule (saves the final descent).
    pub skip_schedule: bool,
    /// Worker threads for layer expansion and valuation
    /// (0 = all available).
    pub threads: usize,
    /// Abort if a single popcount layer exceeds this many states — an
    /// early-warning guard that trips mid-run, long before
    /// [`SolveOptions::max_states`] would. (It bounds the widest layer's
    /// state list, not total memory: the successor-key arrays retained
    /// across *all* layers for the backward pass are the larger share of
    /// the working set.)
    pub layer_budget: usize,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            canon: CanonMode::Exact,
            max_states: 50_000_000,
            skip_schedule: false,
            threads: 0,
            layer_budget: usize::MAX,
        }
    }
}

/// Failure modes of the exact solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// `n` outside the supported `1..=8`.
    UnsupportedN {
        /// The requested size.
        n: usize,
    },
    /// The state table outgrew [`SolveOptions::max_states`].
    StateLimit {
        /// The configured limit.
        limit: usize,
    },
    /// One popcount layer outgrew [`SolveOptions::layer_budget`].
    LayerLimit {
        /// The offending layer (its edge count).
        layer: usize,
        /// Number of states in that layer.
        size: usize,
        /// The configured budget.
        budget: usize,
    },
}

impl core::fmt::Display for SolveError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            SolveError::UnsupportedN { n } => {
                write!(f, "exact solving supports 1 ≤ n ≤ 8, got {n}")
            }
            SolveError::StateLimit { limit } => {
                write!(
                    f,
                    "state limit {limit} exceeded; raise SolveOptions::max_states"
                )
            }
            SolveError::LayerLimit {
                layer,
                size,
                budget,
            } => {
                write!(
                    f,
                    "layer {layer} holds {size} states, over the budget {budget}; \
                     raise SolveOptions::layer_budget"
                )
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// Search statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Distinct (canonical) states in the table — recomputed *after*
    /// schedule extraction, which may value additional states.
    pub states_explored: usize,
    /// Successor keys that were already present in the table.
    pub memo_hits: u64,
    /// Successors discarded by dominance pruning (`S₁ ⊆ S₂ ⇒
    /// L(S₁) ≥ L(S₂)`, so only ⊆-minimal successors are kept).
    pub dominated_pruned: u64,
    /// Raw successor evaluations — realizable successor vectors emitted by
    /// the generator, before cross-root deduplication (the old recursive
    /// solver counted one per *tree* here; the generator never enumerates
    /// duplicate trees).
    pub transitions: u64,
    /// Expansion branches cut because a partial successor already carried
    /// a broadcast witness.
    pub witness_cuts: u64,
}

impl SolveStats {
    /// Accumulates another stats record into this one
    /// (`states_explored` is a table size, not a counter — left as-is).
    fn absorb(&mut self, other: &SolveStats) {
        self.memo_hits += other.memo_hits;
        self.dominated_pruned += other.dominated_pruned;
        self.transitions += other.transitions;
        self.witness_cuts += other.witness_cuts;
    }
}

/// The result of an exact solve.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// Number of processes.
    pub n: usize,
    /// The exact worst-case broadcast time `t*(T_n)`.
    pub t_star: u64,
    /// An optimal adversary schedule achieving `t_star` (empty when
    /// [`SolveOptions::skip_schedule`] was set or `t_star == 0`).
    pub schedule: Vec<RootedTree>,
    /// Search statistics.
    pub stats: SolveStats,
}

/// Computes the exact `t*(T_n)` with default options.
///
/// # Errors
///
/// Returns [`SolveError::UnsupportedN`] for `n == 0` or `n > 8`, or
/// [`SolveError::StateLimit`] if the state space outgrows the default cap.
///
/// # Examples
///
/// ```
/// use treecast_solver::solve;
/// // Two processes: one round of either tree broadcasts.
/// assert_eq!(solve(2)?.t_star, 1);
/// // Three processes: the optimum sits exactly on the ZSS lower bound.
/// let r3 = solve(3)?;
/// assert_eq!(r3.t_star, treecast_core::bounds::lower_bound(3));
/// # Ok::<(), treecast_solver::SolveError>(())
/// ```
pub fn solve(n: usize) -> Result<SolveResult, SolveError> {
    solve_with(n, SolveOptions::default())
}

/// Computes the exact `t*(T_n)` with explicit options.
///
/// # Errors
///
/// See [`solve`].
pub fn solve_with(n: usize, options: SolveOptions) -> Result<SolveResult, SolveError> {
    if !(1..=8).contains(&n) {
        return Err(SolveError::UnsupportedN { n });
    }
    let mut engine = Engine::new(n, options);
    let t_star = u64::from(engine.value_of(identity_state(n))?);

    let schedule = if options.skip_schedule || t_star == 0 {
        Vec::new()
    } else {
        extract_schedule(n, t_star, &mut engine)?
    };

    // After extraction, not before: a cache-splitting canonicalization
    // ([`CanonMode::Fast`]) can force extraction to value extra states,
    // and those must not be silently dropped from the reported stats.
    let mut stats = engine.stats;
    stats.states_explored = engine.table.len();

    Ok(SolveResult {
        n,
        t_star,
        schedule,
        stats,
    })
}

/// Sentinel for "discovered but not yet valued" table entries.
const UNVALUED: u32 = u32::MAX;

/// Compact open-addressing `u64 → u32` map (linear probing, power-of-two
/// capacity, key 0 reserved as the empty slot — packed states always
/// contain their diagonal self-loops, so no reachable state is 0).
///
/// A `HashMap<u64, u32>` spends most of its time hashing (SipHash) and
/// chasing its bucket layout; at tens of millions of states this flat
/// table is both several times faster and half the memory.
struct StateTable {
    keys: Vec<u64>,
    vals: Vec<u32>,
    len: usize,
    mask: usize,
}

impl StateTable {
    fn new() -> Self {
        let cap = 1 << 16;
        StateTable {
            keys: vec![0; cap],
            vals: vec![0; cap],
            len: 0,
            mask: cap - 1,
        }
    }

    /// Slot holding `key`, or the empty slot where it would go.
    #[inline]
    fn slot_of(&self, key: u64) -> usize {
        debug_assert_ne!(key, 0, "key 0 is the empty-slot sentinel");
        let mut i = crate::canon::mix(key) as usize & self.mask;
        loop {
            let k = self.keys[i];
            if k == key || k == 0 {
                return i;
            }
            i = (i + 1) & self.mask;
        }
    }

    #[inline]
    fn get(&self, key: u64) -> Option<u32> {
        let i = self.slot_of(key);
        if self.keys[i] == key {
            Some(self.vals[i])
        } else {
            None
        }
    }

    /// Single-probe insert of `key` as unvalued, refusing to grow the
    /// table past `max_keys`.
    fn insert_new(&mut self, key: u64, max_keys: usize) -> InsertOutcome {
        if (self.len + 1) * 5 > (self.mask + 1) * 3 {
            self.grow();
        }
        let i = self.slot_of(key);
        if self.keys[i] == key {
            return InsertOutcome::Present;
        }
        if self.len >= max_keys {
            return InsertOutcome::Full;
        }
        self.keys[i] = key;
        self.vals[i] = UNVALUED;
        self.len += 1;
        InsertOutcome::Inserted
    }

    /// Overwrites the value of an existing key.
    fn set(&mut self, key: u64, val: u32) {
        let i = self.slot_of(key);
        debug_assert_eq!(self.keys[i], key, "set of a key never inserted");
        self.vals[i] = val;
    }

    fn len(&self) -> usize {
        self.len
    }

    fn grow(&mut self) {
        let new_cap = (self.mask + 1) * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![0; new_cap]);
        let old_vals = std::mem::replace(&mut self.vals, vec![0; new_cap]);
        self.mask = new_cap - 1;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != 0 {
                let i = self.slot_of(k);
                self.keys[i] = k;
                self.vals[i] = v;
            }
        }
    }
}

/// What [`StateTable::insert_new`] did with a key.
#[derive(PartialEq, Eq)]
enum InsertOutcome {
    /// Newly added (as [`UNVALUED`]).
    Inserted,
    /// Already in the table — value untouched.
    Present,
    /// New, but the table already holds `max_keys` entries.
    Full,
}

/// One popcount layer of the graded state DAG: its states plus, per state,
/// the canonical keys of its kept successors (flat, offset-indexed).
#[derive(Default)]
struct Layer {
    states: Vec<u64>,
    succ_off: Vec<usize>,
    succ_keys: Vec<u64>,
}

/// Per-worker expansion output, merged in shard order for determinism.
struct WorkerOut {
    /// Canonical successor keys, concatenated per state.
    keys: Vec<u64>,
    /// Number of keys per state of the shard.
    counts: Vec<u32>,
    stats: SolveStats,
}

/// The layered solver: state table plus accumulated statistics.
struct Engine {
    n: usize,
    options: SolveOptions,
    threads: usize,
    table: StateTable,
    stats: SolveStats,
}

impl Engine {
    fn new(n: usize, options: SolveOptions) -> Self {
        let threads = if options.threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            options.threads
        };
        Engine {
            n,
            options,
            threads,
            table: StateTable::new(),
            stats: SolveStats::default(),
        }
    }

    /// `L(raw_state)`, running the layered passes if it is not yet valued.
    ///
    /// Every state the passes discover is valued, so later calls for any
    /// state in the explored cone are pure lookups — which is also what
    /// makes this safe to call again during schedule extraction.
    fn value_of(&mut self, raw_state: u64) -> Result<u32, SolveError> {
        if has_witness(raw_state, self.n) {
            return Ok(0);
        }
        let key = canonicalize(raw_state, self.n, self.options.canon);
        if let Some(v) = self.table.get(key) {
            debug_assert_ne!(v, UNVALUED, "lookup raced a running pass");
            return Ok(v);
        }
        self.run_layers(key)?;
        // analyze: allow(panic): run_layers promises the seed is valued; a
        // miss here is a graded-DAG ordering bug, not a recoverable state.
        Ok(self
            .table
            .get(key)
            .expect("layered passes value their seed")) // analyze: allow(panic): see above
    }

    /// Forward discovery + backward value propagation from `seed_key`.
    fn run_layers(&mut self, seed_key: u64) -> Result<(), SolveError> {
        let n = self.n;
        let max_pc = n * n;
        let seed_pc = seed_key.count_ones() as usize;
        let mut layers: Vec<Layer> = (0..=max_pc).map(|_| Layer::default()).collect();
        self.insert_discovered(seed_key)?;
        layers[seed_pc].states.push(seed_key);

        // Forward: expand each layer once, recording successor keys.
        for pc in seed_pc..=max_pc {
            if layers[pc].states.is_empty() {
                continue;
            }
            if layers[pc].states.len() > self.options.layer_budget {
                return Err(SolveError::LayerLimit {
                    layer: pc,
                    size: layers[pc].states.len(),
                    budget: self.options.layer_budget,
                });
            }
            let states = std::mem::take(&mut layers[pc].states);
            let outputs = self.expand_layer(&states);

            let mut succ_off = Vec::with_capacity(states.len() + 1);
            let mut succ_keys = Vec::new();
            succ_off.push(0usize);
            for out in outputs {
                self.stats.absorb(&out.stats);
                let mut cursor = 0usize;
                for &count in &out.counts {
                    for &key in &out.keys[cursor..cursor + count as usize] {
                        // The grading the backward pass relies on: strict
                        // progress (Section 2) makes every successor
                        // strictly heavier.
                        assert!(
                            key.count_ones() as usize > pc,
                            "strict progress violated: successor in layer ≤ {pc}"
                        );
                        if self.insert_discovered(key)? {
                            layers[key.count_ones() as usize].states.push(key);
                        } else {
                            self.stats.memo_hits += 1;
                        }
                        succ_keys.push(key);
                    }
                    cursor += count as usize;
                    succ_off.push(succ_keys.len());
                }
            }
            let layer = &mut layers[pc];
            layer.states = states;
            layer.succ_off = succ_off;
            layer.succ_keys = succ_keys;
        }

        // Backward: all successors live in strictly higher layers, so each
        // layer's values are pure lookups once its successors are done.
        for pc in (seed_pc..=max_pc).rev() {
            if layers[pc].states.is_empty() {
                continue;
            }
            let values = value_layer(&self.table, &layers[pc], self.threads);
            for (&state, value) in layers[pc].states.iter().zip(values) {
                self.table.set(state, value);
            }
        }
        Ok(())
    }

    /// Table insert with the `max_states` guard; `true` if newly added.
    /// Already-valued states from earlier passes are left untouched.
    fn insert_discovered(&mut self, key: u64) -> Result<bool, SolveError> {
        match self.table.insert_new(key, self.options.max_states) {
            InsertOutcome::Inserted => Ok(true),
            InsertOutcome::Present => Ok(false),
            InsertOutcome::Full => Err(SolveError::StateLimit {
                limit: self.options.max_states,
            }),
        }
    }

    /// Expands one layer's states, sharded across `self.threads`.
    fn expand_layer(&self, states: &[u64]) -> Vec<WorkerOut> {
        let n = self.n;
        let canon = self.options.canon;
        let threads = self.threads.clamp(1, states.len().max(1));
        if threads == 1 {
            return vec![expand_chunk(n, canon, states)];
        }
        let chunk = states.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = states
                .chunks(chunk)
                .map(|shard| scope.spawn(move || expand_chunk(n, canon, shard)))
                .collect();
            handles
                .into_iter()
                // analyze: allow(panic): re-raise a worker panic on the
                // coordinating thread instead of returning a partial layer.
                .map(|h| h.join().expect("solver expansion worker panicked"))
                .collect()
        })
    }
}

/// Expands a shard of states with a thread-local generator.
fn expand_chunk(n: usize, canon: CanonMode, states: &[u64]) -> WorkerOut {
    let mut gen = SuccessorGen::new(n);
    let mut keys = Vec::new();
    let mut counts = Vec::with_capacity(states.len());
    let mut stats = SolveStats::default();
    let mut scratch: Vec<u64> = Vec::new();
    for &state in states {
        let succs = gen.minimal_successors(state);
        scratch.clear();
        scratch.extend(succs.iter().map(|s| canonicalize(s.state, n, canon)));
        stats.transitions += gen.stats.emitted;
        stats.witness_cuts += gen.stats.witness_cuts;
        stats.dominated_pruned += gen.stats.dominated;
        scratch.sort_unstable();
        scratch.dedup();
        counts.push(scratch.len() as u32);
        keys.extend_from_slice(&scratch);
    }
    WorkerOut {
        keys,
        counts,
        stats,
    }
}

/// Values one layer (`1 + max` over recorded successor keys), sharded.
fn value_layer(table: &StateTable, layer: &Layer, threads: usize) -> Vec<u32> {
    let len = layer.states.len();
    let threads = threads.clamp(1, len.max(1));
    let value_range = |lo: usize, hi: usize| -> Vec<u32> {
        (lo..hi)
            .map(|i| {
                let succ = &layer.succ_keys[layer.succ_off[i]..layer.succ_off[i + 1]];
                let mut best = 0u32;
                for &key in succ {
                    // analyze: allow(panic): graded-DAG order guarantees it
                    let v = table.get(key).expect("graded DAG: successor valued first");
                    debug_assert_ne!(v, UNVALUED);
                    best = best.max(v);
                }
                // Empty successor list: every round tree broadcasts
                // immediately, so L = 1.
                best + 1
            })
            .collect()
    };
    if threads == 1 {
        return value_range(0, len);
    }
    let chunk = len.div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(len);
                let value_range = &value_range;
                scope.spawn(move || value_range(lo, hi))
            })
            .collect();
        let mut out = Vec::with_capacity(len);
        for h in handles {
            // analyze: allow(panic): re-raise a worker panic, as in expansion.
            out.extend(h.join().expect("solver valuation worker panicked"));
        }
        out
    })
}

/// Re-derives an optimal schedule by greedy descent through the table.
fn extract_schedule(
    n: usize,
    t_star: u64,
    engine: &mut Engine,
) -> Result<Vec<RootedTree>, SolveError> {
    let mut gen = SuccessorGen::new(n);
    let mut schedule = Vec::with_capacity(t_star as usize);
    // Descend through RAW states (canonicalizing here would break the
    // replayability of the tree chain); only value lookups go through
    // canonical keys, which is sound because L is orbit-invariant.
    let mut state = identity_state(n);
    let mut remaining = t_star;
    while remaining > 0 {
        let succs = gen.minimal_successors(state).to_vec();
        engine.stats.transitions += gen.stats.emitted;
        engine.stats.witness_cuts += gen.stats.witness_cuts;
        engine.stats.dominated_pruned += gen.stats.dominated;
        if succs.is_empty() {
            // Every round tree broadcasts from here (L = 1): any tree is
            // optimal for the final round.
            assert_eq!(remaining, 1, "empty successor set before the last round");
            let tree = generators::star(n);
            state = apply_tree(state, n, &transition_edges(&tree));
            schedule.push(tree);
            break;
        }
        let mut advanced = false;
        for &s in &succs {
            // A table hit for Exact/None canonicalization; Fast may split
            // the orbit of a raw successor, in which case `value_of` runs
            // a sub-pass that values the missing cone.
            let value = engine.value_of(s.state)?;
            if u64::from(value) == remaining - 1 {
                schedule.push(gen.tree_for(state, s));
                state = s.state;
                remaining -= 1;
                advanced = true;
                break;
            }
        }
        assert!(
            advanced,
            "no successor matched the memoized depth; table inconsistent"
        );
    }
    debug_assert!(has_witness(state, n));
    Ok(schedule)
}

/// Replays a schedule through the public simulation engine and returns the
/// measured broadcast time — an end-to-end check that solver and model
/// agree.
///
/// # Panics
///
/// Panics if the schedule never broadcasts within `8n + 16` rounds.
pub fn verify_schedule(n: usize, schedule: &[RootedTree]) -> u64 {
    let mut source =
        SequenceSource::new(schedule.to_vec()).with_label(format!("solver-optimal(n={n})"));
    let report = simulate(n, &mut source, SimulationConfig::for_n(n));
    report.broadcast_time_or_panic()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::TreePool;
    use std::collections::HashMap as Map;
    use treecast_bitmatrix::BoolMatrix;
    use treecast_core::bounds;
    use treecast_trees::enumerate;

    /// Entirely independent brute-force reference: BoolMatrix states, no
    /// packing, no canonicalization, no pruning.
    fn brute_t_star(n: usize) -> u64 {
        let trees: Vec<BoolMatrix> = {
            let mut v = Vec::new();
            enumerate::for_each_rooted_tree(n, |t| v.push(t.to_matrix(true)));
            v
        };
        fn rec(s: &BoolMatrix, trees: &[BoolMatrix], memo: &mut Map<String, u64>) -> u64 {
            if s.has_full_row() {
                return 0;
            }
            let key = s.to_string();
            if let Some(&v) = memo.get(&key) {
                return v;
            }
            let mut best = 0;
            for t in trees {
                let next = s.compose(t);
                best = best.max(rec(&next, trees, memo));
            }
            memo.insert(key, best + 1);
            best + 1
        }
        rec(&BoolMatrix::identity(n), &trees, &mut Map::new())
    }

    /// The old recursive solver, kept verbatim as a reference: memoized
    /// descent over the streamed tree pool with dominance pruning.
    fn recursive_t_star(n: usize, canon: CanonMode) -> u64 {
        let pool = TreePool::new(n);
        fn longest(
            state: u64,
            n: usize,
            pool: &TreePool,
            canon: CanonMode,
            memo: &mut Map<u64, u32>,
        ) -> u32 {
            if has_witness(state, n) {
                return 0;
            }
            let key = canonicalize(state, n, canon);
            if let Some(&v) = memo.get(&key) {
                return v;
            }
            let mut best = 0u32;
            for (succ, _) in pool.minimal_successors_streaming(key) {
                best = best.max(longest(succ, n, pool, canon, memo));
            }
            memo.insert(key, best + 1);
            best + 1
        }
        u64::from(longest(identity_state(n), n, &pool, canon, &mut Map::new()))
    }

    #[test]
    fn tiny_cases_match_brute_force() {
        for n in 1..=4 {
            let exact = solve(n).unwrap();
            assert_eq!(exact.t_star, brute_t_star(n), "n = {n}");
        }
    }

    #[test]
    #[ignore = "release-tier: brute force at n = 5 is minutes in debug"]
    fn brute_force_cross_check_n5() {
        assert_eq!(solve(5).unwrap().t_star, brute_t_star(5));
    }

    #[test]
    fn layered_matches_recursive_reference() {
        for n in 2..=5 {
            assert_eq!(
                solve(n).unwrap().t_star,
                recursive_t_star(n, CanonMode::Exact),
                "n = {n}"
            );
        }
    }

    #[test]
    #[ignore = "release-tier: the recursive reference takes ~30 s at n = 6"]
    fn layered_matches_recursive_reference_n6() {
        assert_eq!(
            solve(6).unwrap().t_star,
            recursive_t_star(6, CanonMode::Exact)
        );
    }

    #[test]
    #[ignore = "opt-in (TREECAST_N7=1): n = 7 is ~2 h of release-mode compute"]
    fn solve_n7_within_sandwich() {
        if std::env::var("TREECAST_N7").is_err() {
            eprintln!("solve_n7_within_sandwich: set TREECAST_N7=1 to run");
            return;
        }
        let r = solve_with(
            7,
            SolveOptions {
                skip_schedule: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(bounds::sandwich_holds(7, r.t_star), "t* = {}", r.t_star);
        assert_eq!(Some(r.t_star), bounds::known_t_star(7));
    }

    #[test]
    fn n2_and_known_structure() {
        let r = solve(2).unwrap();
        assert_eq!(r.t_star, 1);
        assert_eq!(r.schedule.len(), 1);
    }

    #[test]
    fn all_canon_modes_agree() {
        for n in 2..=5 {
            let exact = solve_with(
                n,
                SolveOptions {
                    canon: CanonMode::Exact,
                    skip_schedule: true,
                    ..Default::default()
                },
            )
            .unwrap()
            .t_star;
            let fast = solve_with(
                n,
                SolveOptions {
                    canon: CanonMode::Fast,
                    skip_schedule: true,
                    ..Default::default()
                },
            )
            .unwrap()
            .t_star;
            let none = solve_with(
                n,
                SolveOptions {
                    canon: CanonMode::None,
                    skip_schedule: true,
                    ..Default::default()
                },
            )
            .unwrap()
            .t_star;
            assert_eq!(exact, fast, "n = {n}");
            assert_eq!(exact, none, "n = {n}");
        }
    }

    #[test]
    fn t_star_respects_theorem_sandwich() {
        for n in 1..=5u64 {
            let r = solve(n as usize).unwrap();
            assert!(
                r.t_star <= bounds::upper_bound(n),
                "n = {n}: t* = {} above upper bound {}",
                r.t_star,
                bounds::upper_bound(n)
            );
            assert!(
                r.t_star >= bounds::lower_bound(n),
                "n = {n}: t* = {} below lower bound {}",
                r.t_star,
                bounds::lower_bound(n)
            );
        }
    }

    #[test]
    fn schedule_replays_to_t_star() {
        for n in 2..=5 {
            let r = solve(n).unwrap();
            assert_eq!(r.schedule.len() as u64, r.t_star);
            let measured = verify_schedule(n, &r.schedule);
            assert_eq!(measured, r.t_star, "n = {n}");
        }
    }

    #[test]
    fn unsupported_sizes_error() {
        assert!(matches!(solve(0), Err(SolveError::UnsupportedN { n: 0 })));
        assert!(matches!(solve(9), Err(SolveError::UnsupportedN { n: 9 })));
    }

    #[test]
    fn state_limit_triggers() {
        let r = solve_with(
            5,
            SolveOptions {
                max_states: 3,
                ..Default::default()
            },
        );
        assert!(matches!(r, Err(SolveError::StateLimit { limit: 3 })));
    }

    #[test]
    fn layer_budget_triggers() {
        let r = solve_with(
            5,
            SolveOptions {
                layer_budget: 2,
                ..Default::default()
            },
        );
        match r {
            Err(SolveError::LayerLimit { size, budget, .. }) => {
                assert!(size > budget);
                assert_eq!(budget, 2);
            }
            other => panic!("expected LayerLimit, got {other:?}"),
        }
    }

    #[test]
    fn stats_are_populated() {
        let r = solve(4).unwrap();
        assert!(r.stats.states_explored > 0);
        assert!(r.stats.transitions > 0);
        assert!(r.stats.witness_cuts > 0);
    }

    #[test]
    fn states_explored_includes_extraction_work() {
        // Regression for the pre-layered bug: `states_explored` was
        // snapshotted before `extract_schedule` ran, silently dropping
        // states valued during extraction. The count must now be taken
        // after extraction, so a run with a schedule can never report
        // fewer states than the same run without one.
        for canon in [CanonMode::Exact, CanonMode::Fast, CanonMode::None] {
            let skip = solve_with(
                5,
                SolveOptions {
                    canon,
                    skip_schedule: true,
                    ..Default::default()
                },
            )
            .unwrap();
            let sched = solve_with(
                5,
                SolveOptions {
                    canon,
                    skip_schedule: false,
                    ..Default::default()
                },
            )
            .unwrap();
            assert!(sched.stats.states_explored >= skip.stats.states_explored);
            assert!(skip.stats.states_explored > 0);
            // Orbit-exact and raw canonicalization make extraction pure
            // lookups, so the counts must match exactly there.
            if !matches!(canon, CanonMode::Fast) {
                assert_eq!(
                    sched.stats.states_explored, skip.stats.states_explored,
                    "{canon:?}"
                );
            }
        }
    }

    #[test]
    fn thread_counts_agree_bit_for_bit() {
        for n in [3usize, 4] {
            let base = solve_with(
                n,
                SolveOptions {
                    threads: 1,
                    ..Default::default()
                },
            )
            .unwrap();
            for threads in [2usize, 3, 8] {
                let sharded = solve_with(
                    n,
                    SolveOptions {
                        threads,
                        ..Default::default()
                    },
                )
                .unwrap();
                assert_eq!(base.t_star, sharded.t_star, "n = {n}, threads = {threads}");
                assert_eq!(base.stats, sharded.stats, "n = {n}, threads = {threads}");
                assert_eq!(
                    base.schedule, sharded.schedule,
                    "n = {n}, threads = {threads}"
                );
            }
        }
    }

    #[test]
    fn solver_runs_on_a_small_stack() {
        // The old recursive descent was ~2.5n frames deep with big frames;
        // the layered engine must complete — schedule extraction included —
        // on a deliberately tiny stack.
        let handle = std::thread::Builder::new()
            .stack_size(128 * 1024)
            .spawn(|| {
                let r = solve(5).unwrap();
                assert_eq!(r.t_star, bounds::lower_bound(5));
                assert_eq!(verify_schedule(5, &r.schedule), r.t_star);
            })
            .expect("spawn small-stack thread");
        handle.join().expect("small-stack solve must not overflow");
    }

    #[test]
    #[ignore = "release-tier: n = 6 takes ~a minute in debug"]
    fn deepest_known_chain_on_a_small_stack() {
        // Path-heavy optimal schedules at n = 6 (t* = 7) drove the old
        // recursion to its deepest point; replay that worst case on a
        // small stack, with extraction.
        let handle = std::thread::Builder::new()
            .stack_size(256 * 1024)
            .spawn(|| {
                let r = solve(6).unwrap();
                assert_eq!(r.t_star, bounds::lower_bound(6));
                assert_eq!(verify_schedule(6, &r.schedule), r.t_star);
            })
            .expect("spawn small-stack thread");
        handle.join().expect("small-stack solve must not overflow");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(10))]

            /// Layer-parallel and single-thread solves agree on value,
            /// statistics and schedule for every mode.
            #[test]
            fn sharded_solves_match_single_thread(
                n in 2usize..=4,
                threads in 2usize..=6,
                canon_pick in 0usize..3,
            ) {
                let canon = [CanonMode::Exact, CanonMode::Fast, CanonMode::None][canon_pick];
                let single = solve_with(
                    n,
                    SolveOptions { canon, threads: 1, ..Default::default() },
                )
                .unwrap();
                let sharded = solve_with(
                    n,
                    SolveOptions { canon, threads, ..Default::default() },
                )
                .unwrap();
                prop_assert_eq!(single.t_star, sharded.t_star);
                prop_assert_eq!(single.stats, sharded.stats);
                prop_assert_eq!(single.schedule, sharded.schedule);
            }
        }
    }
}
