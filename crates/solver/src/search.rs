//! The exact search: `t*(T_n)` as a longest path over product-graph states.
//!
//! Because every round tree carries self-loops, states grow monotonically
//! (`S ⊆ S∘T`), and the paper's strict-progress observation means every
//! pre-broadcast round adds at least one edge — so the reachable state
//! space is a DAG graded by edge count and the recursion
//!
//! ```text
//! L(S) = 0                          if S has a broadcast witness
//! L(S) = 1 + max_{T ∈ T_n} L(S∘T)  otherwise
//! ```
//!
//! terminates with `t*(T_n) = L(I)`. Three accelerations keep it tractable:
//!
//! 1. **Memoization on canonical orbit representatives** ([`CanonMode`]) —
//!    `t*` is invariant under process relabeling.
//! 2. **Successor dedup** — thousands of trees collapse to few distinct
//!    successor states.
//! 3. **Dominance pruning** — if `S₁ ⊆ S₂` then `L(S₁) ≥ L(S₂)` (more
//!    edges never slow broadcast), so only ⊆-minimal successors are
//!    recursed.

use std::collections::HashMap;

use treecast_core::{simulate, SequenceSource, SimulationConfig};
use treecast_trees::RootedTree;

use crate::canon::{canonicalize, CanonMode};
use crate::pool::TreePool;
use crate::state::{apply_tree, has_witness, identity_state};

/// Configuration for [`solve_with`].
#[derive(Debug, Clone, Copy)]
pub struct SolveOptions {
    /// Isomorphism-reduction policy (default [`CanonMode::Exact`]).
    pub canon: CanonMode,
    /// Abort if the memo table exceeds this many states.
    pub max_states: usize,
    /// Skip extracting an optimal schedule (saves a second descent).
    pub skip_schedule: bool,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            canon: CanonMode::Exact,
            max_states: 50_000_000,
            skip_schedule: false,
        }
    }
}

/// Failure modes of the exact solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// `n` outside the supported `1..=8`.
    UnsupportedN {
        /// The requested size.
        n: usize,
    },
    /// The memo table outgrew [`SolveOptions::max_states`].
    StateLimit {
        /// The configured limit.
        limit: usize,
    },
}

impl core::fmt::Display for SolveError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            SolveError::UnsupportedN { n } => {
                write!(f, "exact solving supports 1 ≤ n ≤ 8, got {n}")
            }
            SolveError::StateLimit { limit } => {
                write!(
                    f,
                    "state limit {limit} exceeded; raise SolveOptions::max_states"
                )
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// Search statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Distinct (canonical) states memoized.
    pub states_explored: usize,
    /// Memo-table hits.
    pub memo_hits: u64,
    /// Successors skipped by dominance pruning.
    pub dominated_pruned: u64,
    /// Raw successor evaluations (tree applications).
    pub transitions: u64,
}

/// The result of an exact solve.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// Number of processes.
    pub n: usize,
    /// The exact worst-case broadcast time `t*(T_n)`.
    pub t_star: u64,
    /// An optimal adversary schedule achieving `t_star` (empty when
    /// [`SolveOptions::skip_schedule`] was set or `t_star == 0`).
    pub schedule: Vec<RootedTree>,
    /// Search statistics.
    pub stats: SolveStats,
}

/// Computes the exact `t*(T_n)` with default options.
///
/// # Errors
///
/// Returns [`SolveError::UnsupportedN`] for `n == 0` or `n > 8`, or
/// [`SolveError::StateLimit`] if the state space outgrows the default cap.
///
/// # Examples
///
/// ```
/// use treecast_solver::solve;
/// // Two processes: one round of either tree broadcasts.
/// assert_eq!(solve(2)?.t_star, 1);
/// // Three processes: the adversary can stretch to 3 rounds.
/// let r3 = solve(3)?;
/// assert!(r3.t_star >= treecast_core::bounds::lower_bound(3));
/// # Ok::<(), treecast_solver::SolveError>(())
/// ```
pub fn solve(n: usize) -> Result<SolveResult, SolveError> {
    solve_with(n, SolveOptions::default())
}

/// Computes the exact `t*(T_n)` with explicit options.
///
/// # Errors
///
/// See [`solve`].
pub fn solve_with(n: usize, options: SolveOptions) -> Result<SolveResult, SolveError> {
    if !(1..=8).contains(&n) {
        return Err(SolveError::UnsupportedN { n });
    }
    let pool = TreePool::new(n);
    let mut memo: HashMap<u64, u32> = HashMap::new();
    let mut stats = SolveStats::default();
    let start = identity_state(n);
    let t_star = longest(start, n, &pool, options, &mut memo, &mut stats)? as u64;
    stats.states_explored = memo.len();

    let schedule = if options.skip_schedule || t_star == 0 {
        Vec::new()
    } else {
        extract_schedule(n, t_star, &pool, options, &mut memo, &mut stats)?
    };

    Ok(SolveResult {
        n,
        t_star,
        schedule,
        stats,
    })
}

/// `L(state)` with memoization.
fn longest(
    state: u64,
    n: usize,
    pool: &TreePool,
    options: SolveOptions,
    memo: &mut HashMap<u64, u32>,
    stats: &mut SolveStats,
) -> Result<u32, SolveError> {
    if has_witness(state, n) {
        return Ok(0);
    }
    let key = canonicalize(state, n, options.canon);
    if let Some(&v) = memo.get(&key) {
        stats.memo_hits += 1;
        return Ok(v);
    }
    if memo.len() >= options.max_states {
        return Err(SolveError::StateLimit {
            limit: options.max_states,
        });
    }

    let successors = minimal_successors(key, n, pool, stats);
    let mut best = 0u32;
    for (succ, _tree_idx) in successors {
        let l = longest(succ, n, pool, options, memo, stats)?;
        if l > best {
            best = l;
        }
    }
    let value = best + 1;
    memo.insert(key, value);
    Ok(value)
}

/// Unique, ⊆-minimal successor states of `state`, each with one tree index
/// that produces it.
fn minimal_successors(
    state: u64,
    n: usize,
    pool: &TreePool,
    stats: &mut SolveStats,
) -> Vec<(u64, usize)> {
    // Dedup raw successors.
    let mut seen: HashMap<u64, usize> = HashMap::new();
    for (i, edges) in pool.iter_edges().enumerate() {
        let succ = apply_tree(state, n, edges);
        stats.transitions += 1;
        seen.entry(succ).or_insert(i);
    }
    // Keep ⊆-minimal states: sort by popcount ascending; a state is kept
    // iff no kept state is a subset of it.
    let mut ordered: Vec<(u64, usize)> = seen.into_iter().collect();
    ordered.sort_unstable_by_key(|&(s, _)| (s.count_ones(), s));
    let mut minimal: Vec<(u64, usize)> = Vec::new();
    'outer: for (s, i) in ordered {
        for &(kept, _) in &minimal {
            if kept & !s == 0 {
                // kept ⊆ s: s is dominated (broadcasts no later).
                stats.dominated_pruned += 1;
                continue 'outer;
            }
        }
        minimal.push((s, i));
    }
    minimal
}

/// Re-derives an optimal schedule by greedy descent through the memo.
fn extract_schedule(
    n: usize,
    t_star: u64,
    pool: &TreePool,
    options: SolveOptions,
    memo: &mut HashMap<u64, u32>,
    stats: &mut SolveStats,
) -> Result<Vec<RootedTree>, SolveError> {
    let mut schedule = Vec::with_capacity(t_star as usize);
    let mut state = identity_state(n);
    let mut remaining = t_star;
    while remaining > 0 {
        // Expand the RAW state (canonicalizing here would break the
        // replayability of the tree chain); only memo lookups go through
        // canonical keys, which is sound because L is orbit-invariant.
        let successors = minimal_successors(state, n, pool, stats);
        let mut advanced = false;
        for (succ, tree_idx) in successors {
            let l = if has_witness(succ, n) {
                0
            } else {
                match memo.get(&canonicalize(succ, n, options.canon)) {
                    Some(&v) => v,
                    None => longest(succ, n, pool, options, memo, stats)?,
                }
            };
            if u64::from(l) == remaining - 1 {
                schedule.push(pool.tree(tree_idx));
                state = succ;
                remaining -= 1;
                advanced = true;
                break;
            }
        }
        assert!(
            advanced,
            "no successor matched the memoized depth; memo inconsistent"
        );
    }
    debug_assert!(has_witness(state, n));
    Ok(schedule)
}

/// Replays a schedule through the public simulation engine and returns the
/// measured broadcast time — an end-to-end check that solver and model
/// agree.
///
/// # Panics
///
/// Panics if the schedule never broadcasts within `8n + 16` rounds.
pub fn verify_schedule(n: usize, schedule: &[RootedTree]) -> u64 {
    let mut source =
        SequenceSource::new(schedule.to_vec()).with_label(format!("solver-optimal(n={n})"));
    let report = simulate(n, &mut source, SimulationConfig::for_n(n));
    report.broadcast_time_or_panic()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap as Map;
    use treecast_bitmatrix::BoolMatrix;
    use treecast_core::bounds;
    use treecast_trees::enumerate;

    /// Entirely independent brute-force reference: BoolMatrix states, no
    /// packing, no canonicalization, no pruning.
    fn brute_t_star(n: usize) -> u64 {
        let trees: Vec<BoolMatrix> = {
            let mut v = Vec::new();
            enumerate::for_each_rooted_tree(n, |t| v.push(t.to_matrix(true)));
            v
        };
        fn rec(s: &BoolMatrix, trees: &[BoolMatrix], memo: &mut Map<String, u64>) -> u64 {
            if s.has_full_row() {
                return 0;
            }
            let key = s.to_string();
            if let Some(&v) = memo.get(&key) {
                return v;
            }
            let mut best = 0;
            for t in trees {
                let next = s.compose(t);
                best = best.max(rec(&next, trees, memo));
            }
            memo.insert(key, best + 1);
            best + 1
        }
        rec(&BoolMatrix::identity(n), &trees, &mut Map::new())
    }

    #[test]
    fn tiny_cases_match_brute_force() {
        for n in 1..=4 {
            let exact = solve(n).unwrap();
            assert_eq!(exact.t_star, brute_t_star(n), "n = {n}");
        }
    }

    #[test]
    fn n2_and_known_structure() {
        let r = solve(2).unwrap();
        assert_eq!(r.t_star, 1);
        assert_eq!(r.schedule.len(), 1);
    }

    #[test]
    fn all_canon_modes_agree() {
        for n in 2..=4 {
            let exact = solve_with(
                n,
                SolveOptions {
                    canon: CanonMode::Exact,
                    ..Default::default()
                },
            )
            .unwrap()
            .t_star;
            let fast = solve_with(
                n,
                SolveOptions {
                    canon: CanonMode::Fast,
                    ..Default::default()
                },
            )
            .unwrap()
            .t_star;
            let none = solve_with(
                n,
                SolveOptions {
                    canon: CanonMode::None,
                    ..Default::default()
                },
            )
            .unwrap()
            .t_star;
            assert_eq!(exact, fast, "n = {n}");
            assert_eq!(exact, none, "n = {n}");
        }
    }

    #[test]
    fn t_star_respects_theorem_sandwich() {
        for n in 1..=5u64 {
            let r = solve(n as usize).unwrap();
            assert!(
                r.t_star <= bounds::upper_bound(n),
                "n = {n}: t* = {} above upper bound {}",
                r.t_star,
                bounds::upper_bound(n)
            );
            assert!(
                r.t_star >= bounds::lower_bound(n),
                "n = {n}: t* = {} below lower bound {}",
                r.t_star,
                bounds::lower_bound(n)
            );
        }
    }

    #[test]
    fn schedule_replays_to_t_star() {
        for n in 2..=5 {
            let r = solve(n).unwrap();
            assert_eq!(r.schedule.len() as u64, r.t_star);
            let measured = verify_schedule(n, &r.schedule);
            assert_eq!(measured, r.t_star, "n = {n}");
        }
    }

    #[test]
    fn unsupported_sizes_error() {
        assert!(matches!(solve(0), Err(SolveError::UnsupportedN { n: 0 })));
        assert!(matches!(solve(9), Err(SolveError::UnsupportedN { n: 9 })));
    }

    #[test]
    fn state_limit_triggers() {
        let r = solve_with(
            5,
            SolveOptions {
                max_states: 3,
                ..Default::default()
            },
        );
        assert!(matches!(r, Err(SolveError::StateLimit { limit: 3 })));
    }

    #[test]
    fn stats_are_populated() {
        let r = solve(4).unwrap();
        assert!(r.stats.states_explored > 0);
        assert!(r.stats.transitions > 0);
    }
}
