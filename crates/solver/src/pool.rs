//! The enumerated adversary pool `T_n` and the solver's successor
//! generator.
//!
//! Two ways to expand a state live here:
//!
//! * [`TreePool`] — all `n^(n−1)` labeled rooted trees as flattened
//!   reverse-BFS `(child, parent)` pair lists (2 bytes per edge), streamed
//!   one tree at a time. This is the original, brute-force expansion path;
//!   it is kept as the *reference* implementation
//!   ([`TreePool::minimal_successors_streaming`]) and for consumers that
//!   genuinely need the trees themselves.
//! * [`SuccessorGen`] — the layered engine's incremental generator. It
//!   never materializes trees at all: it streams candidate successor
//!   **row vectors** (one new heard-row per node) with an early witness
//!   cut, and keeps only the vectors realizable by some rooted tree.
//!   Per state this costs time proportional to the number of *distinct*
//!   successors instead of the number of trees — the difference between
//!   `n^(n−1)` tree applications and a few hundred vector probes once
//!   states fill up.
//!
//! # Why vector enumeration is exact
//!
//! One synchronous round along a tree `T` rooted at `r` rewrites every
//! heard-row as `heard'[c] = heard[c] ∪ heard[parent(c)]` (old rows on the
//! right), and leaves `heard'[r] = heard[r]`. So the successor state is
//! fully described by the vector of new rows, the candidate values of row
//! `c` are `V_c = { heard[c] ∪ heard[p] : p ≠ c }`, and a vector
//! `(v_c)_{c≠r}` is a successor **iff** some arborescence rooted at `r`
//! picks for every `c` a parent from the exact-match set
//! `A_c = { p : heard[c] ∪ heard[p] = v_c }`. Such an arborescence exists
//! iff every node can reach `r` in the digraph `{ c → p : p ∈ A_c }`
//! (breadth-first from `r` along reversed edges constructs one), which is
//! a cheap bitmask fixpoint. Distinct vectors are distinct states, so the
//! enumeration is duplication-free by construction (up to the choice of
//! root, deduplicated afterwards).

use treecast_trees::{enumerate, RootedTree};

use crate::state::{has_witness, row_mask, state_rows, transition_edges};

/// Every rooted tree on `n ≤ 8` nodes, as packed transition edge lists.
#[derive(Debug, Clone)]
pub struct TreePool {
    n: usize,
    count: usize,
    /// Concatenated `(child, parent)` pairs; tree `i` owns the slice
    /// `[i·(n−1), (i+1)·(n−1))`.
    pairs: Vec<(u8, u8)>,
}

impl TreePool {
    /// Enumerates and packs the full pool for `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > 8` (see
    /// [`treecast_trees::enumerate::MAX_ENUM_N`]).
    pub fn new(n: usize) -> Self {
        let mut pairs = Vec::new();
        let mut count = 0usize;
        enumerate::for_each_rooted_tree(n, |t| {
            pairs.extend(transition_edges(t));
            count += 1;
        });
        TreePool { n, count, pairs }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of trees (`n^(n−1)`).
    pub fn len(&self) -> usize {
        self.count
    }

    /// Returns `true` if the pool is empty (never, for valid `n`).
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The reverse-BFS transition edges of tree `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`. The explicit assert matters: for `n = 1`
    /// the stride is 0 and the slice expression alone would accept *any*
    /// index, silently returning the empty tree.
    #[inline]
    pub fn edges(&self, i: usize) -> &[(u8, u8)] {
        assert!(
            i < self.count,
            "tree index {i} out of range for pool of {} trees",
            self.count
        );
        let stride = self.n - 1;
        &self.pairs[i * stride..(i + 1) * stride]
    }

    /// Reconstructs tree `i` as a full [`RootedTree`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()` (checked explicitly, see [`TreePool::edges`]).
    pub fn tree(&self, i: usize) -> RootedTree {
        let mut parent = vec![None; self.n];
        for &(c, p) in self.edges(i) {
            parent[c as usize] = Some(p as usize);
        }
        // analyze: allow(panic): pool entries were validated trees when they were interned
        RootedTree::from_parents(parent).expect("pool entries are valid trees")
    }

    /// Iterates over all transition edge lists.
    pub fn iter_edges(&self) -> impl Iterator<Item = &[(u8, u8)]> {
        let stride = self.n - 1;
        if stride == 0 {
            // n = 1: one tree, no edges.
            EitherIter::Single(std::iter::once(&self.pairs[..]))
        } else {
            EitherIter::Chunks(self.pairs.chunks_exact(stride))
        }
    }

    /// Reference expansion: unique, ⊆-minimal successor states of `state`,
    /// each with the index of one tree that produces it — by brute-force
    /// application of every tree in the pool.
    ///
    /// This is the original recursive solver's expansion, kept as the
    /// ground truth that [`SuccessorGen::minimal_successors`] is tested
    /// against (and unlike the generator it retains *witness* successors).
    pub fn minimal_successors_streaming(&self, state: u64) -> Vec<(u64, usize)> {
        let n = self.n;
        let mut seen: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for (i, edges) in self.iter_edges().enumerate() {
            let succ = crate::state::apply_tree(state, n, edges);
            seen.entry(succ).or_insert(i);
        }
        let mut ordered: Vec<(u64, usize)> = seen.into_iter().collect();
        ordered.sort_unstable_by_key(|&(s, _)| (s.count_ones(), s));
        let mut minimal: Vec<(u64, usize)> = Vec::new();
        'outer: for (s, i) in ordered {
            for &(kept, _) in &minimal {
                if kept & !s == 0 {
                    continue 'outer;
                }
            }
            minimal.push((s, i));
        }
        minimal
    }
}

/// Tiny either-iterator so `iter_edges` handles the `n = 1` edge case
/// without boxing.
enum EitherIter<'a> {
    Single(std::iter::Once<&'a [(u8, u8)]>),
    Chunks(std::slice::ChunksExact<'a, (u8, u8)>),
}

impl<'a> Iterator for EitherIter<'a> {
    type Item = &'a [(u8, u8)];

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            EitherIter::Single(it) => it.next(),
            EitherIter::Chunks(it) => it.next(),
        }
    }
}

/// One distinct, ⊆-minimal, non-witness successor of a state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Successor {
    /// The packed column-view successor state.
    pub state: u64,
    /// The root of one tree realizing it (see
    /// [`SuccessorGen::parents_for`] to recover full parent pointers).
    pub root: u8,
}

/// Per-expansion counters reported by [`SuccessorGen`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GenStats {
    /// Realizable candidate vectors emitted (raw successor evaluations).
    pub emitted: u64,
    /// Branches cut because a partial vector already carried a broadcast
    /// witness (every completion would too).
    pub witness_cuts: u64,
    /// Emitted successors discarded by the final ⊆-dominance filter.
    pub dominated: u64,
}

/// The layered engine's incremental successor generator.
///
/// Reusable across states (scratch buffers are retained); create one per
/// worker thread. See the module docs for the algorithm.
#[derive(Debug, Clone)]
pub struct SuccessorGen {
    n: usize,
    /// Heard-rows of the state being expanded.
    rows: [u64; 8],
    /// Distinct candidate row values per node, with the bitmask of parents
    /// producing each value exactly: `vals[c][k]` ↔ `pmask[c][k]`.
    vals: [[u64; 8]; 8],
    pmask: [[u8; 8]; 8],
    vlen: [usize; 8],
    /// Nodes to assign (all but the current root), in index order.
    order: [u8; 8],
    /// `pinned[d]` = bitmask of `order[..d]` — the nodes already assigned
    /// at DFS depth `d` (prefix function of `order`, rebuilt per root).
    pinned: [u8; 9],
    /// Chosen value index per node during the vector DFS.
    choice: [usize; 8],
    /// Emitted `(state, root)` candidates, filtered in place.
    found: Vec<Successor>,
    /// Counters for the most recent [`Self::minimal_successors`] call.
    pub stats: GenStats,
}

impl SuccessorGen {
    /// Creates a generator for `n ≤ 8` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > 8`.
    pub fn new(n: usize) -> Self {
        assert!((1..=8).contains(&n), "SuccessorGen supports 1 ≤ n ≤ 8");
        SuccessorGen {
            n,
            rows: [0; 8],
            vals: [[0; 8]; 8],
            pmask: [[0; 8]; 8],
            vlen: [0; 8],
            order: [0; 8],
            pinned: [0; 9],
            choice: [0; 8],
            found: Vec::new(),
            stats: GenStats::default(),
        }
    }

    /// Expands `state`: all distinct, ⊆-minimal, **non-witness** successor
    /// states under every tree in `T_n`, sorted by `(popcount, state)`.
    ///
    /// An empty result means every successor carries a broadcast witness
    /// (so `L(state) = 1`); the pool is never empty, so "no successors at
    /// all" cannot be the cause. Witness successors are deliberately
    /// excluded: they contribute `L = 0` to the adversary's max and are
    /// therefore only relevant through the all-witness case.
    ///
    /// # Panics
    ///
    /// Debug-panics if `state` already has a witness (callers check first).
    pub fn minimal_successors(&mut self, state: u64) -> &[Successor] {
        let n = self.n;
        debug_assert!(
            !has_witness(state, n),
            "expanding a state that already broadcasts"
        );
        self.stats = GenStats::default();
        self.found.clear();
        self.prepare(state);
        for root in 0..n as u8 {
            let mut m = 0;
            for c in 0..n as u8 {
                if c != root {
                    self.order[m] = c;
                    self.pinned[m + 1] = self.pinned[m] | (1 << c);
                    m += 1;
                }
            }
            self.vector_dfs(state, root, 0, m);
        }
        self.finish();
        &self.found
    }

    /// Computes rows and per-node candidate value groups for `state`.
    fn prepare(&mut self, state: u64) {
        let n = self.n;
        self.rows = state_rows(state, n);
        for c in 0..n {
            let mut len = 0;
            for p in 0..n {
                if p == c {
                    continue;
                }
                let v = self.rows[c] | self.rows[p];
                match self.vals[c][..len].iter().position(|&w| w == v) {
                    Some(k) => self.pmask[c][k] |= 1 << p,
                    None => {
                        self.vals[c][len] = v;
                        self.pmask[c][len] = 1 << p;
                        len += 1;
                    }
                }
            }
            self.vlen[c] = len;
        }
    }

    /// Depth-first product over candidate rows for `order[i..m]`, with the
    /// witness cut and incremental realizability pruning.
    fn vector_dfs(&mut self, acc: u64, root: u8, i: usize, m: usize) {
        let n = self.n;
        if i == m {
            // Realizability was established when the last node was
            // assigned (same `assigned = m` fixpoint), so this vector is
            // a genuine successor.
            self.stats.emitted += 1;
            self.found.push(Successor { state: acc, root });
            return;
        }
        let c = self.order[i] as usize;
        for k in 0..self.vlen[c] {
            // Row c was still at its old value in `acc` (each node is
            // assigned exactly once), and every candidate contains it.
            let acc2 = acc | (self.vals[c][k] << (c * n));
            if has_witness(acc2, n) {
                self.stats.witness_cuts += 1;
                continue;
            }
            self.choice[i] = k;
            if !self.realizable(root, i + 1) {
                continue;
            }
            self.vector_dfs(acc2, root, i + 1, m);
        }
    }

    /// Returns `true` if, with `order[..assigned]` pinned to their chosen
    /// values and the rest unconstrained, an arborescence rooted at `root`
    /// can still pick exact-match parents for every node.
    ///
    /// Fixpoint over `reach` = nodes that can reach the root: unassigned
    /// nodes may pick any parent, so they (plus the root) seed the set; an
    /// assigned node joins once its exact parent mask meets the set.
    fn realizable(&self, root: u8, assigned: usize) -> bool {
        let n = self.n;
        let all = ((1u32 << n) - 1) as u8;
        let mut reach = (all & !self.pinned[assigned]) | (1 << root);
        loop {
            let mut grown = reach;
            for (j, &c) in self.order[..assigned].iter().enumerate() {
                if grown & (1 << c) == 0 && self.pmask[c as usize][self.choice[j]] & reach != 0 {
                    grown |= 1 << c;
                }
            }
            if grown == reach {
                return reach == all;
            }
            reach = grown;
        }
    }

    /// Sorts, deduplicates across roots, and keeps ⊆-minimal states.
    fn finish(&mut self) {
        self.found
            .sort_unstable_by_key(|s| (s.state.count_ones(), s.state));
        self.found.dedup_by_key(|s| s.state);
        let mut kept = 0usize;
        for i in 0..self.found.len() {
            let s = self.found[i].state;
            let pc = s.count_ones();
            let mut dominated = false;
            for k in &self.found[..kept] {
                // Sorted by popcount: equal-weight states are distinct and
                // can't dominate, so stop at the candidate's own weight.
                if k.state.count_ones() >= pc {
                    break;
                }
                if k.state & !s == 0 {
                    dominated = true;
                    break;
                }
            }
            if dominated {
                self.stats.dominated += 1;
            } else {
                self.found.swap(kept, i);
                kept += 1;
            }
        }
        // Keepers are encountered and compacted in ascending sort order,
        // so the kept prefix is still sorted by `(popcount, state)`.
        self.found.truncate(kept);
    }

    /// Recovers full parent pointers for a successor of `base_state`
    /// (`parents[root] == root`), by breadth-first search from the root
    /// over exact-match parent sets.
    ///
    /// # Panics
    ///
    /// Panics if `succ` is not a successor of `base_state` — i.e. was not
    /// produced by [`Self::minimal_successors`] on that exact state.
    pub fn parents_for(&self, base_state: u64, succ: Successor) -> [u8; 8] {
        let n = self.n;
        let rows = state_rows(base_state, n);
        let succ_rows = state_rows(succ.state, n);
        let mask = row_mask(n);
        let root = succ.root as usize;
        assert_eq!(
            rows[root], succ_rows[root],
            "root row must be unchanged in a successor"
        );
        let mut parents = [0u8; 8];
        parents[root] = succ.root;
        let mut placed: u8 = 1 << root;
        let all = ((1u32 << n) - 1) as u8;
        while placed != all {
            let before = placed;
            for c in 0..n {
                if placed & (1 << c) != 0 {
                    continue;
                }
                for p in 0..n {
                    if p != c
                        && placed & (1 << p) != 0
                        && (rows[c] | rows[p]) & mask == succ_rows[c]
                    {
                        parents[c] = p as u8;
                        placed |= 1 << c;
                        break;
                    }
                }
            }
            assert_ne!(
                before, placed,
                "successor {:#x} not realizable from {base_state:#x}",
                succ.state
            );
        }
        parents
    }

    /// Builds the [`RootedTree`] recovered by [`Self::parents_for`].
    ///
    /// # Panics
    ///
    /// See [`Self::parents_for`].
    pub fn tree_for(&self, base_state: u64, succ: Successor) -> RootedTree {
        let parents = self.parents_for(base_state, succ);
        let vec: Vec<Option<usize>> = (0..self.n)
            .map(|c| {
                if c == succ.root as usize {
                    None
                } else {
                    Some(parents[c] as usize)
                }
            })
            .collect();
        // analyze: allow(panic): the recovered parent vector mirrors an interned, validated tree
        RootedTree::from_parents(vec).expect("recovered parents form a tree")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{apply_tree, identity_state};
    use treecast_trees::enumerate::count_rooted_trees;

    #[test]
    fn pool_sizes_match_cayley() {
        for n in 1..=6 {
            let pool = TreePool::new(n);
            assert_eq!(pool.len() as u128, count_rooted_trees(n), "n = {n}");
            assert!(!pool.is_empty());
        }
    }

    #[test]
    fn reconstructed_trees_are_valid_and_distinct() {
        let pool = TreePool::new(4);
        let mut seen = std::collections::HashSet::new();
        for i in 0..pool.len() {
            let t = pool.tree(i);
            assert_eq!(t.n(), 4);
            seen.insert(t.parents().to_vec());
        }
        assert_eq!(seen.len(), 64);
    }

    #[test]
    fn edges_are_reverse_bfs() {
        let pool = TreePool::new(5);
        for i in 0..pool.len() {
            let edges = pool.edges(i);
            assert_eq!(edges.len(), 4);
            // Reverse BFS: when (child, parent) is applied, the parent's
            // row must still be old, i.e. no earlier pair updated it.
            for (pos, &(_, p)) in edges.iter().enumerate() {
                for &(c2, _) in &edges[..pos] {
                    assert_ne!(c2, p, "parent row updated before use in tree {i}");
                }
            }
        }
    }

    #[test]
    fn single_node_pool() {
        let pool = TreePool::new(1);
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.iter_edges().count(), 1);
        assert!(pool.edges(0).is_empty());
        assert_eq!(pool.tree(0).n(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn edges_rejects_out_of_range_index() {
        let pool = TreePool::new(4);
        let _ = pool.edges(pool.len());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn edges_rejects_out_of_range_even_without_stride() {
        // The regression this guards: for n = 1 the stride is 0, so the
        // raw slice `pairs[i*0..(i+1)*0]` never bounds-checks and any
        // index used to silently return the (valid-looking) empty tree.
        let pool = TreePool::new(1);
        let _ = pool.edges(1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn tree_rejects_out_of_range_index() {
        let pool = TreePool::new(1);
        let _ = pool.tree(7);
    }

    #[test]
    fn iter_edges_matches_indexed_access() {
        let pool = TreePool::new(4);
        for (i, e) in pool.iter_edges().enumerate() {
            assert_eq!(e, pool.edges(i));
        }
        assert_eq!(pool.iter_edges().count(), pool.len());
    }

    /// Random-ish non-witness states: identity advanced by a few pool
    /// trees, skipping any that broadcast.
    fn sample_states(n: usize, limit: usize) -> Vec<u64> {
        let pool = TreePool::new(n);
        let mut states = vec![identity_state(n)];
        let mut frontier = vec![identity_state(n)];
        let mut step = 7usize;
        while states.len() < limit && !frontier.is_empty() {
            let mut next = Vec::new();
            for &s in &frontier {
                for i in (0..pool.len()).step_by(step.max(1)) {
                    let t = apply_tree(s, n, pool.edges(i));
                    if !has_witness(t, n) && !states.contains(&t) {
                        states.push(t);
                        next.push(t);
                        if states.len() >= limit {
                            return states;
                        }
                    }
                }
            }
            step = step.saturating_add(3);
            frontier = next;
        }
        states
    }

    #[test]
    fn generator_matches_streaming_reference() {
        for n in 2..=5 {
            let pool = TreePool::new(n);
            let mut gen = SuccessorGen::new(n);
            for state in sample_states(n, 40) {
                let fast: Vec<u64> = gen
                    .minimal_successors(state)
                    .iter()
                    .map(|s| s.state)
                    .collect();
                // The reference keeps witness successors; the generator
                // drops them — compare the non-witness minimal sets. A
                // witness successor can never dominate a non-witness one
                // (fewer edges ⇒ no witness), so filtering afterwards is
                // equivalent.
                let mut slow: Vec<u64> = pool
                    .minimal_successors_streaming(state)
                    .into_iter()
                    .map(|(s, _)| s)
                    .filter(|&s| !has_witness(s, n))
                    .collect();
                slow.sort_unstable_by_key(|&s| (s.count_ones(), s));
                assert_eq!(fast, slow, "n = {n}, state = {state:#x}");
            }
        }
    }

    #[test]
    fn generator_successors_replay_through_their_trees() {
        for n in 2..=5 {
            let mut gen = SuccessorGen::new(n);
            for state in sample_states(n, 25) {
                let succs: Vec<Successor> = gen.minimal_successors(state).to_vec();
                for s in succs {
                    let tree = gen.tree_for(state, s);
                    let replayed = apply_tree(state, n, &transition_edges(&tree));
                    assert_eq!(
                        replayed, s.state,
                        "n = {n}: recovered tree does not reproduce the successor"
                    );
                }
            }
        }
    }

    #[test]
    fn generator_strict_progress() {
        // Every emitted successor must strictly grow the edge count — the
        // layered engine's popcount grading depends on it.
        for n in 2..=5 {
            let mut gen = SuccessorGen::new(n);
            for state in sample_states(n, 30) {
                for s in gen.minimal_successors(state) {
                    assert!(s.state.count_ones() > state.count_ones());
                    assert!(!has_witness(s.state, n));
                }
            }
        }
    }

    #[test]
    fn generator_counts_work() {
        let mut gen = SuccessorGen::new(4);
        let count = gen.minimal_successors(identity_state(4)).len();
        assert!(count > 0);
        assert!(gen.stats.emitted >= count as u64);
    }
}
