//! The enumerated adversary pool `T_n`, in transition-ready form.
//!
//! All `n^(n−1)` labeled rooted trees are stored as flattened reverse-BFS
//! `(child, parent)` pair lists — 2 bytes per edge — so even `n = 8`
//! (2,097,152 trees) fits comfortably in memory and each state expansion
//! streams through the pool cache-friendly.

use treecast_trees::{enumerate, RootedTree};

use crate::state::transition_edges;

/// Every rooted tree on `n ≤ 8` nodes, as packed transition edge lists.
#[derive(Debug, Clone)]
pub struct TreePool {
    n: usize,
    count: usize,
    /// Concatenated `(child, parent)` pairs; tree `i` owns the slice
    /// `[i·(n−1), (i+1)·(n−1))`.
    pairs: Vec<(u8, u8)>,
}

impl TreePool {
    /// Enumerates and packs the full pool for `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > 8` (see
    /// [`treecast_trees::enumerate::MAX_ENUM_N`]).
    pub fn new(n: usize) -> Self {
        let mut pairs = Vec::new();
        let mut count = 0usize;
        enumerate::for_each_rooted_tree(n, |t| {
            pairs.extend(transition_edges(t));
            count += 1;
        });
        TreePool { n, count, pairs }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of trees (`n^(n−1)`).
    pub fn len(&self) -> usize {
        self.count
    }

    /// Returns `true` if the pool is empty (never, for valid `n`).
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The reverse-BFS transition edges of tree `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn edges(&self, i: usize) -> &[(u8, u8)] {
        let stride = self.n - 1;
        &self.pairs[i * stride..(i + 1) * stride]
    }

    /// Reconstructs tree `i` as a full [`RootedTree`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn tree(&self, i: usize) -> RootedTree {
        let mut parent = vec![None; self.n];
        for &(c, p) in self.edges(i) {
            parent[c as usize] = Some(p as usize);
        }
        RootedTree::from_parents(parent).expect("pool entries are valid trees")
    }

    /// Iterates over all transition edge lists.
    pub fn iter_edges(&self) -> impl Iterator<Item = &[(u8, u8)]> {
        let stride = self.n - 1;
        if stride == 0 {
            // n = 1: one tree, no edges.
            EitherIter::Single(std::iter::once(&self.pairs[..]))
        } else {
            EitherIter::Chunks(self.pairs.chunks_exact(stride))
        }
    }
}

/// Tiny either-iterator so `iter_edges` handles the `n = 1` edge case
/// without boxing.
enum EitherIter<'a> {
    Single(std::iter::Once<&'a [(u8, u8)]>),
    Chunks(std::slice::ChunksExact<'a, (u8, u8)>),
}

impl<'a> Iterator for EitherIter<'a> {
    type Item = &'a [(u8, u8)];

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            EitherIter::Single(it) => it.next(),
            EitherIter::Chunks(it) => it.next(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treecast_trees::enumerate::count_rooted_trees;

    #[test]
    fn pool_sizes_match_cayley() {
        for n in 1..=6 {
            let pool = TreePool::new(n);
            assert_eq!(pool.len() as u128, count_rooted_trees(n), "n = {n}");
            assert!(!pool.is_empty());
        }
    }

    #[test]
    fn reconstructed_trees_are_valid_and_distinct() {
        let pool = TreePool::new(4);
        let mut seen = std::collections::HashSet::new();
        for i in 0..pool.len() {
            let t = pool.tree(i);
            assert_eq!(t.n(), 4);
            seen.insert(t.parents().to_vec());
        }
        assert_eq!(seen.len(), 64);
    }

    #[test]
    fn edges_are_reverse_bfs() {
        let pool = TreePool::new(5);
        for i in 0..pool.len() {
            let edges = pool.edges(i);
            assert_eq!(edges.len(), 4);
            // Reverse BFS: when (child, parent) is applied, the parent's
            // row must still be old, i.e. no earlier pair updated it.
            for (pos, &(_, p)) in edges.iter().enumerate() {
                for &(c2, _) in &edges[..pos] {
                    assert_ne!(c2, p, "parent row updated before use in tree {i}");
                }
            }
        }
    }

    #[test]
    fn single_node_pool() {
        let pool = TreePool::new(1);
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.iter_edges().count(), 1);
        assert!(pool.edges(0).is_empty());
        assert_eq!(pool.tree(0).n(), 1);
    }

    #[test]
    fn iter_edges_matches_indexed_access() {
        let pool = TreePool::new(4);
        for (i, e) in pool.iter_edges().enumerate() {
            assert_eq!(e, pool.edges(i));
        }
        assert_eq!(pool.iter_edges().count(), pool.len());
    }
}
