//! Packed product-graph states and the round transition.
//!
//! The solver stores the product graph `G(t)` in **column view** packed
//! into a single `u64` (n ≤ 8): bit `y·n + x` means `x ∈ heard[y]`, i.e.
//! `(x, y) ∈ G(t)`. Applying a rooted tree costs one shift+OR per edge,
//! and the broadcast test is an AND-fold over rows.

use treecast_bitmatrix::PackedMatrix;
use treecast_core::BroadcastState;
use treecast_trees::RootedTree;

/// The identity state `G(0)`: every node has heard only from itself.
#[inline]
pub fn identity_state(n: usize) -> u64 {
    debug_assert!((1..=8).contains(&n));
    let mut s = 0u64;
    for v in 0..n {
        s |= 1u64 << (v * n + v);
    }
    s
}

/// Mask selecting one row (`n` low bits).
#[inline]
pub fn row_mask(n: usize) -> u64 {
    (1u64 << n) - 1
}

/// Tree edges as `(child, parent)` pairs in **reverse BFS order** (children
/// before parents), precomputed so the transition can update in place while
/// still reading old parent rows.
pub fn transition_edges(tree: &RootedTree) -> Vec<(u8, u8)> {
    let order = tree.bfs_order();
    order
        .iter()
        .rev()
        .filter_map(|&y| tree.parent(y).map(|p| (y as u8, p as u8)))
        .collect()
}

/// Applies one synchronous round along a tree given as reverse-BFS
/// `(child, parent)` pairs: `heard[y] ∪= heard[parent(y)]`.
#[inline]
pub fn apply_tree(state: u64, n: usize, edges: &[(u8, u8)]) -> u64 {
    let mask = row_mask(n);
    let mut s = state;
    for &(y, p) in edges {
        let prow = (s >> (p as usize * n)) & mask;
        s |= prow << (y as usize * n);
    }
    s
}

/// Returns `true` if some node has been heard by everyone: the AND of all
/// heard-rows is nonempty (Definition 2.2).
#[inline]
pub fn has_witness(state: u64, n: usize) -> bool {
    let mask = row_mask(n);
    let mut acc = mask;
    for y in 0..n {
        acc &= state >> (y * n);
        if acc & mask == 0 {
            return false;
        }
    }
    true
}

/// Number of edges of the product graph.
#[inline]
pub fn edge_count(state: u64) -> u32 {
    state.count_ones()
}

/// Unpacks the `n` heard-rows of a packed state (rows `n..8` are zero).
#[inline]
pub fn state_rows(state: u64, n: usize) -> [u64; 8] {
    let mask = row_mask(n);
    let mut rows = [0u64; 8];
    for (y, row) in rows.iter_mut().enumerate().take(n) {
        *row = (state >> (y * n)) & mask;
    }
    rows
}

/// Converts a packed column-view state into a [`BroadcastState`] at the
/// given round (for interop with the simulation engine).
pub fn to_broadcast_state(state: u64, n: usize, round: u64) -> BroadcastState {
    // Packed rows are heard-sets; BroadcastState::from_product_matrix wants
    // the row view, i.e. the transpose of what we store.
    let heard = PackedMatrix::from_bits(n, state).to_matrix();
    BroadcastState::from_product_matrix(&heard.transpose(), round)
}

/// Converts a [`BroadcastState`] into the packed column view.
///
/// # Panics
///
/// Panics if `state.n() > 8`.
pub fn from_broadcast_state(state: &BroadcastState) -> u64 {
    PackedMatrix::from_matrix(&state.heard_matrix()).bits()
}

#[cfg(test)]
mod tests {
    use super::*;
    use treecast_trees::generators;

    #[test]
    fn identity_state_bits() {
        assert_eq!(identity_state(1), 1);
        assert_eq!(identity_state(2), 0b1001);
        for n in 1..=8 {
            assert_eq!(edge_count(identity_state(n)), n as u32);
            assert_eq!(has_witness(identity_state(n), n), n == 1);
        }
    }

    #[test]
    fn apply_matches_core_model() {
        let trees = [
            generators::path(5),
            generators::star(5),
            generators::broom(5, 2),
            generators::caterpillar(5, 3),
            generators::spider(5, 2),
        ];
        let mut packed = identity_state(5);
        let mut model = BroadcastState::new(5);
        for (i, t) in trees.iter().enumerate() {
            packed = apply_tree(packed, 5, &transition_edges(t));
            model.apply(t);
            assert_eq!(
                packed,
                from_broadcast_state(&model),
                "diverged after round {}",
                i + 1
            );
            assert_eq!(
                has_witness(packed, 5),
                model.broadcast_witness().is_some(),
                "witness detection diverged after round {}",
                i + 1
            );
        }
    }

    #[test]
    fn star_gives_witness_in_one() {
        let n = 6;
        let s = apply_tree(
            identity_state(n),
            n,
            &transition_edges(&generators::star(n)),
        );
        assert!(has_witness(s, n));
    }

    #[test]
    fn path_needs_n_minus_1() {
        let n = 6;
        let edges = transition_edges(&generators::path(n));
        let mut s = identity_state(n);
        for round in 1..n {
            assert!(!has_witness(s, n), "too early before round {round}");
            s = apply_tree(s, n, &edges);
        }
        assert!(has_witness(s, n));
    }

    #[test]
    fn state_rows_roundtrip() {
        for n in 1..=8 {
            let s = identity_state(n);
            let rows = state_rows(s, n);
            for (y, &row) in rows.iter().enumerate() {
                if y < n {
                    assert_eq!(row, 1 << y, "n = {n}, row {y}");
                } else {
                    assert_eq!(row, 0);
                }
            }
            let repacked = rows
                .iter()
                .enumerate()
                .fold(0u64, |acc, (y, &row)| acc | (row << (y * n)));
            assert_eq!(repacked, s);
        }
    }

    #[test]
    fn roundtrip_broadcast_state() {
        let n = 4;
        let mut model = BroadcastState::new(n);
        model.apply(&generators::broom(n, 2));
        let packed = from_broadcast_state(&model);
        let back = to_broadcast_state(packed, n, model.round());
        assert_eq!(back, model);
    }

    #[test]
    fn n8_transition_is_safe() {
        // Exercise the full-width case for shift safety.
        let n = 8;
        let edges = transition_edges(&generators::path(n));
        let mut s = identity_state(n);
        for _ in 0..n {
            s = apply_tree(s, n, &edges);
        }
        assert!(has_witness(s, n));
    }
}
