//! Isomorphism reduction: canonical forms of packed states under node
//! relabeling.
//!
//! `t*` is invariant under relabeling the processes (the adversary pool
//! `T_n` is symmetric), so the memo table can key on a canonical
//! representative of each state's isomorphism orbit. Exact canonicalization
//! is graph canonization — expensive in general — but product-graph states
//! quickly develop distinguishing structure, so a signature refinement
//! (degree profile plus one Weisfeiler–Leman round) shrinks the candidate
//! permutation set to the automorphism-ish classes, over which we take an
//! exact minimum.

use crate::state::state_rows;

/// Canonicalization policy for the solver's memo table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CanonMode {
    /// Exact orbit representative: minimum over all signature-compatible
    /// permutations (signature classes make this exact — see module docs).
    #[default]
    Exact,
    /// One deterministic signature-sorting permutation only: cheaper, still
    /// sound (representatives are orbit members), but may split orbits.
    Fast,
    /// No canonicalization: memo on raw states.
    None,
}

/// Computes the canonical representative of `state`'s isomorphism orbit.
///
/// With [`CanonMode::Exact`], two states have equal output **iff** they are
/// related by a node relabeling (the representative is the minimum over all
/// signature-class-respecting permutations, which is constant on orbits and
/// always a member of the orbit — though not necessarily the global
/// min-over-`n!` value). With [`CanonMode::Fast`] equal output implies
/// isomorphic but not conversely. With [`CanonMode::None`] the state is
/// returned unchanged.
pub fn canonicalize(state: u64, n: usize, mode: CanonMode) -> u64 {
    match mode {
        CanonMode::None => state,
        CanonMode::Fast => {
            let sigs = signatures(state, n);
            let order = sig_order(&sigs, n);
            // perm maps old node -> new position.
            let mut perm = [0u8; 8];
            for (pos, &v) in order[..n].iter().enumerate() {
                perm[v as usize] = pos as u8;
            }
            permute_packed(state, n, &perm)
        }
        CanonMode::Exact => {
            let sigs = signatures(state, n);
            let order = sig_order(&sigs, n);
            // Class boundaries over the sorted order: `class_end[i]` is
            // one past the last member of the class starting at i (only
            // meaningful at class starts).
            let mut asn = ClassAssign {
                state,
                n,
                order,
                class_end: [0; 8],
                perm: [0; 8],
                best: u64::MAX,
            };
            let mut start = 0;
            while start < n {
                let mut end = start + 1;
                while end < n && sigs[order[end] as usize] == sigs[order[start] as usize] {
                    end += 1;
                }
                asn.class_end[start] = end as u8;
                start = end;
            }
            asn.assign(0);
            asn.best
        }
    }
}

/// Scratch for the exact-mode minimum over class-respecting permutations —
/// everything lives in fixed arrays, the solver calls this hundreds of
/// millions of times.
struct ClassAssign {
    state: u64,
    n: usize,
    /// Nodes sorted by signature.
    order: [u8; 8],
    /// One-past-the-end of the class starting at each class start.
    class_end: [u8; 8],
    /// old node -> new position, filled class by class.
    perm: [u8; 8],
    best: u64,
}

impl ClassAssign {
    /// Assigns positions to the class starting at `start` in every order
    /// (Heap's algorithm), recursing into the next class.
    fn assign(&mut self, start: usize) {
        if start == self.n {
            let candidate = permute_packed(self.state, self.n, &self.perm);
            if candidate < self.best {
                self.best = candidate;
            }
            return;
        }
        let end = self.class_end[start] as usize;
        let k = end - start;
        let mut members = [0u8; 8];
        members[..k].copy_from_slice(&self.order[start..end]);
        let mut c = [0usize; 8];
        let emit = |m: &[u8], this: &mut Self| {
            for (offset, &v) in m[..k].iter().enumerate() {
                this.perm[v as usize] = (start + offset) as u8;
            }
            this.assign(end);
        };
        emit(&members, self);
        let mut i = 0;
        while i < k {
            if c[i] < i {
                if i % 2 == 0 {
                    members.swap(0, i);
                } else {
                    members.swap(c[i], i);
                }
                emit(&members, self);
                c[i] += 1;
                i = 0;
            } else {
                c[i] = 0;
                i += 1;
            }
        }
    }
}

/// Node indices `0..n` sorted by signature (insertion sort, `n ≤ 8`).
#[inline]
fn sig_order(sigs: &[u64; 8], n: usize) -> [u8; 8] {
    let mut order = [0u8; 8];
    for (v, slot) in order.iter_mut().enumerate().take(n) {
        *slot = v as u8;
    }
    for i in 1..n {
        let mut j = i;
        while j > 0 && sigs[order[j - 1] as usize] > sigs[order[j] as usize] {
            order.swap(j - 1, j);
            j -= 1;
        }
    }
    order
}

/// Applies the relabeling `perm` (old node `v` becomes `perm[v]`) to a
/// packed column-view state.
pub fn permute(state: u64, n: usize, perm: &[usize]) -> u64 {
    debug_assert_eq!(perm.len(), n);
    let mut packed = [0u8; 8];
    for (v, &p) in perm.iter().enumerate() {
        packed[v] = p as u8;
    }
    permute_packed(state, n, &packed)
}

/// Allocation-free core of [`permute`].
#[inline]
fn permute_packed(state: u64, n: usize, perm: &[u8; 8]) -> u64 {
    let mut out = 0u64;
    let mut bits = state;
    while bits != 0 {
        let idx = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        let (y, x) = (idx / n, idx % n);
        out |= 1u64 << (perm[y] as usize * n + perm[x] as usize);
    }
    out
}

/// Per-node isomorphism-invariant signatures: heard-weight, reach-weight,
/// and a hash of the sorted heard-neighborhood weight profile (one
/// Weisfeiler–Leman refinement round).
fn signatures(state: u64, n: usize) -> [u64; 8] {
    let rows = state_rows(state, n);
    let mut heard_w = [0u64; 8];
    let mut reach_w = [0u64; 8];
    for &row in rows.iter().take(n) {
        let mut bits = row;
        while bits != 0 {
            let x = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            reach_w[x] += 1;
        }
    }
    for y in 0..n {
        heard_w[y] = u64::from(rows[y].count_ones());
    }
    let mut sigs = [0u64; 8];
    for (y, sig) in sigs.iter_mut().enumerate().take(n) {
        // Multiset of (heard, reach) pairs of the nodes y has heard
        // from, order-independent via a commutative fold of per-element
        // hashes.
        let mut acc: u64 = 0;
        let mut bits = rows[y];
        while bits != 0 {
            let x = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let h = mix(heard_w[x] << 32 | reach_w[x]);
            acc = acc.wrapping_add(h);
        }
        // Lexicographically dominant: own weights first.
        *sig = mix(heard_w[y] << 48 | reach_w[y] << 32).wrapping_add(acc);
    }
    sigs
}

/// A fixed 64-bit mixer (splitmix64 finalizer) — deterministic across runs
/// and platforms, which the canonical form requires. Also the hash of the
/// solver's open-addressing state table.
#[inline]
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{apply_tree, identity_state, transition_edges};
    use treecast_trees::random;

    fn all_perms(n: usize) -> Vec<Vec<usize>> {
        fn rec(n: usize, cur: &mut Vec<usize>, used: &mut Vec<bool>, out: &mut Vec<Vec<usize>>) {
            if cur.len() == n {
                out.push(cur.clone());
                return;
            }
            for v in 0..n {
                if !used[v] {
                    used[v] = true;
                    cur.push(v);
                    rec(n, cur, used, out);
                    cur.pop();
                    used[v] = false;
                }
            }
        }
        let mut out = Vec::new();
        rec(n, &mut Vec::new(), &mut vec![false; n], &mut out);
        out
    }

    /// Brute-force canonical form: min over all n! permutations.
    fn canonical_brute(state: u64, n: usize) -> u64 {
        all_perms(n)
            .iter()
            .map(|p| permute(state, n, p))
            .min()
            .expect("at least one permutation")
    }

    /// A pseudo-random reachable state: identity advanced by a few random
    /// trees.
    fn random_state(n: usize, seed: u64, rounds: usize) -> u64 {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = identity_state(n);
        for _ in 0..rounds {
            let t = random::uniform(n, &mut rng);
            s = apply_tree(s, n, &transition_edges(&t));
        }
        s
    }

    #[test]
    fn exact_is_complete_and_sound() {
        // The canonical form need not equal the global min over all n!
        // permutations (class ordering follows signature hashes), but it
        // must be (a) a member of the orbit and (b) constant on the orbit
        // and (c) distinct across different orbits. (a)+(b) are checked
        // directly; (c) follows from (a): equal representatives ⇒
        // isomorphic inputs.
        for n in 2..=5 {
            for seed in 0..30u64 {
                for rounds in 0..4 {
                    let s = random_state(n, seed * 7 + rounds as u64, rounds);
                    let canon = canonicalize(s, n, CanonMode::Exact);
                    // (a) member of the orbit:
                    assert_eq!(
                        canonical_brute(canon, n),
                        canonical_brute(s, n),
                        "representative left the orbit: n = {n}, state = {s:#x}"
                    );
                    // (b) constant on the orbit:
                    for perm in all_perms(n) {
                        let permuted = permute(s, n, &perm);
                        assert_eq!(
                            canonicalize(permuted, n, CanonMode::Exact),
                            canon,
                            "orbit invariance broken: n = {n}, state = {s:#x}, perm = {perm:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn exact_is_isomorphism_invariant() {
        let n = 6;
        for seed in 0..20u64 {
            let s = random_state(n, seed, 3);
            for perm in [
                vec![1, 0, 2, 3, 4, 5],
                vec![5, 4, 3, 2, 1, 0],
                vec![2, 3, 4, 5, 0, 1],
            ] {
                let t = permute(s, n, &perm);
                assert_eq!(
                    canonicalize(s, n, CanonMode::Exact),
                    canonicalize(t, n, CanonMode::Exact),
                    "seed = {seed}, perm = {perm:?}"
                );
            }
        }
    }

    #[test]
    fn fast_is_sound_member_of_orbit() {
        let n = 5;
        for seed in 0..20u64 {
            let s = random_state(n, seed, 2);
            let fast = canonicalize(s, n, CanonMode::Fast);
            // fast must be a permutation of s: equal canonical forms.
            assert_eq!(canonical_brute(fast, n), canonical_brute(s, n));
        }
    }

    #[test]
    fn permute_identity_is_identity() {
        let n = 4;
        let s = random_state(n, 3, 2);
        assert_eq!(permute(s, n, &[0, 1, 2, 3]), s);
    }

    #[test]
    fn identity_state_is_fixed_point() {
        for n in 1..=8 {
            let id = identity_state(n);
            assert_eq!(canonicalize(id, n, CanonMode::Exact), id);
        }
    }

    #[test]
    fn none_mode_is_noop() {
        let s = random_state(5, 11, 2);
        assert_eq!(canonicalize(s, 5, CanonMode::None), s);
    }
}
