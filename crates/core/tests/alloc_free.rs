//! Proves the zero-allocation contract of the flat-bitmatrix hot paths:
//! steady-state `BoolMatrix::compose_into` and
//! `BroadcastState::apply_matrix` perform no heap allocation per call.
//!
//! A counting wrapper around the system allocator tallies every
//! allocation; the file contains exactly one `#[test]` so no concurrent
//! test can pollute the counter while the measured window is open.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use treecast_bitmatrix::{BoolMatrix, ComposePath};
use treecast_core::BroadcastState;

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: delegates everything to `System`, upholding its contract
// verbatim; the counter is a relaxed atomic with no further invariants.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: same layout contract as `System::alloc`, to which it delegates.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: same layout contract as `System::alloc_zeroed`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    // SAFETY: same pointer/layout contract as `System::realloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    // SAFETY: same pointer/layout contract as `System::dealloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAllocator = CountingAllocator;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_compose_and_apply_matrix_do_not_allocate() {
    let n = 257; // straddles a word boundary, stride 5 → 4-word + 1-word tiles
    let mut rng_state = 0x5EEDu64;
    let mut next = move || {
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        rng_state
    };
    let mut a = BoolMatrix::identity(n);
    let mut b = BoolMatrix::identity(n);
    for x in 0..n {
        for y in 0..n {
            if next() % 10 == 0 {
                a.set(x, y, true);
            }
            if next() % 10 == 0 {
                b.set(x, y, true);
            }
        }
    }
    let mut out = BoolMatrix::zeros(n);
    let sparse = BoolMatrix::from_edges(n, (1..n).map(|y| (y - 1, y)));

    // compose_into with a caller-provided buffer: zero allocations on any
    // serial kernel path, from the very first call. The harness's own
    // threads may allocate concurrently, so measure several windows and
    // require a clean one: a genuine per-call allocation would taint
    // every window with at least 40 counts.
    let clean_compose_window = (0..5)
        .map(|_| {
            let before = allocations();
            for _ in 0..10 {
                a.compose_into(&b, &mut out); // auto (tiled here: a is dense)
                sparse.compose_into(&b, &mut out); // auto -> sparse fast path
                a.compose_into_with(&b, &mut out, ComposePath::Sparse);
                a.compose_into_with(&b, &mut out, ComposePath::Tiled);
            }
            allocations() - before
        })
        .min()
        .expect("five windows measured");
    assert_eq!(
        clean_compose_window, 0,
        "compose_into must not allocate — buffers are caller-provided"
    );

    // apply_matrix: the first call allocates the scratch double-buffer,
    // every later call reuses it. `b` is reflexive, so it is a legitimate
    // information-preserving round.
    let round = &b;
    let mut state = BroadcastState::new(n);
    state.apply_matrix(round); // warm-up: scratch buffer is created here
    let clean_apply_window = (0..5)
        .map(|_| {
            let before = allocations();
            for _ in 0..10 {
                state.apply_matrix(round);
            }
            allocations() - before
        })
        .min()
        .expect("five windows measured");
    assert_eq!(
        clean_apply_window, 0,
        "steady-state apply_matrix must reuse its scratch buffer"
    );

    // Keep the results observable so the loops cannot be optimized away.
    assert!(out.edge_count() > 0);
    assert!(state.edge_count() > 0);
}
