//! The replica-source surface: the contract between anything that can
//! run seeded independent replicas of a dissemination cell and the
//! Monte Carlo estimation layer that aggregates them.
//!
//! PR 9's `treecast-montecarlo` hardwired its replica pool to the two
//! synchronous engines; the emulation layer (`treecast-emulation`) runs
//! the same cells through an asynchronous gossip protocol and must feed
//! the same estimators, sweeps and critical-value readout. This module
//! is the seam: a [`ReplicaSource`] is anything that (a) describes a
//! cell — size, tracked tokens, labels, censoring budget — and (b) runs
//! replica `index` to a [`ReplicaOutcome`], deterministically per index.
//! The shared vocabulary lives here too: [`TreeSpec`] (the tree stream a
//! replica runs against), [`FaultSpec`] (the per-mille fault mix),
//! [`splitmix64`]/[`replica_seed`] (the workspace's standard seed
//! derivation) and [`default_budget`]. Because every implementor derives
//! per-replica seeds through the same [`replica_seed`] +
//! [`TREE_STREAM_TWEAK`] chain, replica `r` of a synchronous-engine cell
//! and replica `r` of its emulated twin see the *identical* tree and
//! fault streams — emulated-vs-model completion ratios are paired
//! comparisons, not independent samples.

use crate::scenario::{rate_label, FaultModel, RoundFaults, SeededFaults};

/// The tree source a replica runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeSpec {
    /// The static path — the paper's Θ(n)-diameter worst case. The same
    /// tree every round and every replica; all randomness comes from the
    /// fault model.
    Path,
    /// The static star rooted at its center — the one-round broadcast
    /// topology.
    Star,
    /// A fresh uniform random arborescence every round, seeded per
    /// replica (replica `r` draws an independent tree stream).
    SeededUniform,
}

impl TreeSpec {
    /// Human-readable label for tables and reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TreeSpec::Path => "static(path)",
            TreeSpec::Star => "static(star)",
            TreeSpec::SeededUniform => "seeded-uniform",
        }
    }
}

/// The randomized fault mix of a cell, applied through
/// [`SeededFaults`] plus an optional deterministic root rotation.
///
/// Rates are stored in per-mille; the percent constructors are exact
/// wrappers (`p%` ≡ `10p‰`), mirroring [`SeededFaults`] so that every
/// percent-era cell keeps its fault stream and label bit-identical.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSpec {
    /// Per-round per-node token-loss probability, per-mille (0..=1000).
    pub loss_permille: u32,
    /// Per-round per-node dropout probability, per-mille (0..=1000).
    pub dropout_permille: u32,
    /// Rounds a dropped-out node stays offline (≥ 1 when dropout is on).
    pub dropout_rounds: u64,
    /// Re-root the round at a deterministic rotating node every
    /// `period` rounds; `None` keeps the source's roots.
    pub rotation_period: Option<u64>,
}

impl FaultSpec {
    /// The fault-free mix.
    #[must_use]
    pub fn none() -> Self {
        FaultSpec::default()
    }

    /// Token loss at `percent`% (exactly `10·percent`‰).
    #[must_use]
    pub fn loss(percent: u32) -> Self {
        FaultSpec::loss_permille(10 * percent)
    }

    /// Token loss at `permille`‰ — the sub-percent resolution the
    /// n ≥ 1024 critical sweeps need.
    #[must_use]
    pub fn loss_permille(permille: u32) -> Self {
        FaultSpec {
            loss_permille: permille,
            ..FaultSpec::default()
        }
    }

    /// Dropout at `percent`% for `rounds` rounds per event.
    #[must_use]
    pub fn dropout(percent: u32, rounds: u64) -> Self {
        FaultSpec::dropout_permille(10 * percent, rounds)
    }

    /// Dropout at `permille`‰ for `rounds` rounds per event.
    #[must_use]
    pub fn dropout_permille(permille: u32, rounds: u64) -> Self {
        FaultSpec {
            dropout_permille: permille,
            dropout_rounds: rounds,
            ..FaultSpec::default()
        }
    }

    /// Deterministic root rotation with the given period.
    #[must_use]
    pub fn rotation(period: u64) -> Self {
        FaultSpec {
            rotation_period: Some(period),
            ..FaultSpec::default()
        }
    }

    /// `true` when no fault class is enabled.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.loss_permille == 0 && self.dropout_permille == 0 && self.rotation_period.is_none()
    }

    /// Human-readable label for tables and reports. Whole-percent rates
    /// keep the historical `%` form (`loss=10%`); sub-percent rates are
    /// labeled in per-mille (`loss=5‰`).
    #[must_use]
    pub fn label(&self) -> String {
        if self.is_quiet() {
            return "no-faults".into();
        }
        let mut parts = Vec::new();
        if self.loss_permille > 0 {
            parts.push(format!("loss={}", rate_label(self.loss_permille)));
        }
        if self.dropout_permille > 0 {
            parts.push(format!(
                "drop={}x{}",
                rate_label(self.dropout_permille),
                self.dropout_rounds.max(1)
            ));
        }
        if let Some(period) = self.rotation_period {
            parts.push(format!("rotate={period}"));
        }
        parts.join(",")
    }

    /// Builds the per-replica fault model for `seed`: the seeded
    /// loss/dropout stream composed with the deterministic root rotation.
    #[must_use]
    pub fn model(&self, seed: u64) -> impl FaultModel {
        let mut seeded = SeededFaults::new(seed);
        if self.loss_permille > 0 {
            seeded = seeded.with_token_loss_permille(self.loss_permille);
        }
        if self.dropout_permille > 0 {
            seeded =
                seeded.with_dropout_permille(self.dropout_permille, self.dropout_rounds.max(1));
        }
        SpecFaults {
            seeded,
            rotation_period: self.rotation_period,
        }
    }
}

/// [`SeededFaults`] composed with the deterministic root rotation —
/// the loss/dropout stream stays seeded while the root walks the node
/// ring with a fixed period (matching [`crate::RotatingRoot`]).
struct SpecFaults {
    seeded: SeededFaults,
    rotation_period: Option<u64>,
}

impl FaultModel for SpecFaults {
    fn faults(&mut self, round: u64, n: usize) -> RoundFaults {
        let mut rf = self.seeded.faults(round, n);
        if let Some(period) = self.rotation_period {
            rf.root = Some((((round - 1) / period) % n as u64) as usize);
        }
        rf
    }

    fn name(&self) -> String {
        match self.rotation_period {
            Some(period) => format!("{}+rotate({period})", self.seeded.name()),
            None => self.seeded.name(),
        }
    }
}

/// The default censoring budget for a cell: a generous multiple of the
/// fault-free completion regime — 8(n−1) rounds for the static sources
/// (path diameter territory) and `64·⌈log₂ n⌉` for per-round uniform
/// trees (the O(log n) gossip regime), floored at 64 rounds.
#[must_use]
pub fn default_budget(n: usize, trees: TreeSpec) -> u64 {
    let base = match trees {
        TreeSpec::Path | TreeSpec::Star => 8 * (n as u64).saturating_sub(1),
        TreeSpec::SeededUniform => 64 * (usize::BITS - n.leading_zeros()) as u64,
    };
    base.max(64)
}

/// One replica's outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicaOutcome {
    /// Completion round, when the workload finished within budget.
    pub rounds: Option<u64>,
}

/// SplitMix64 — the workspace's standard seed-derivation mix.
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The derived seed of replica `index` under `base_seed`.
#[must_use]
pub fn replica_seed(base_seed: u64, index: usize) -> u64 {
    splitmix64(base_seed ^ (index as u64 + 1))
}

/// Fixed tweak separating a replica's tree-stream seed from its
/// fault-stream seed. Every [`ReplicaSource`] implementor derives the
/// tree stream as `splitmix64(replica_seed ⊕ TREE_STREAM_TWEAK)` so that
/// synchronous and emulated replicas of the same cell are stream-paired.
pub const TREE_STREAM_TWEAK: u64 = 0x0007_4EE0_0000_0001;

/// Anything that can run seeded independent replicas of one
/// dissemination cell.
///
/// The Monte Carlo layer fans `replicas()` calls of
/// [`ReplicaSource::run_replica`] out over a worker pool and folds the
/// outcomes (in replica-index order) into its censoring-aware
/// statistics; the labels become the estimate's table row. Implementors
/// must make `run_replica` a pure function of `(self, index)` — that is
/// what makes every downstream statistic bit-identical for any thread
/// count, the property `analyze --determinism` audits.
pub trait ReplicaSource: Sync {
    /// Network size of the cell.
    fn n(&self) -> usize;

    /// Tracked token count of the cell.
    fn k(&self) -> usize;

    /// Number of independent replicas the cell fans out.
    fn replicas(&self) -> usize;

    /// Round budget per replica (the censoring horizon).
    fn round_budget(&self) -> u64;

    /// Workload label for tables and reports.
    fn workload_label(&self) -> String;

    /// Tree-source label for tables and reports.
    fn source_label(&self) -> String;

    /// Fault-mix label for tables and reports.
    fn fault_label(&self) -> String;

    /// Runs replica `index` to its outcome. Must be deterministic per
    /// `(self, index)` and independent of call order.
    fn run_replica(&self, index: usize) -> ReplicaOutcome;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_seeds_are_distinct_and_stable() {
        let a = replica_seed(7, 0);
        let b = replica_seed(7, 1);
        assert_ne!(a, b);
        assert_eq!(a, replica_seed(7, 0), "pure function of (base, index)");
    }

    #[test]
    fn fault_spec_percent_constructors_are_permille_wrappers() {
        assert_eq!(FaultSpec::loss(10), FaultSpec::loss_permille(100));
        assert_eq!(FaultSpec::dropout(5, 2), FaultSpec::dropout_permille(50, 2));
        assert!(FaultSpec::none().is_quiet());
        assert!(!FaultSpec::loss_permille(1).is_quiet());
    }

    #[test]
    fn labels_keep_percent_form_and_expose_permille() {
        assert_eq!(FaultSpec::none().label(), "no-faults");
        assert_eq!(FaultSpec::loss(10).label(), "loss=10%");
        assert_eq!(FaultSpec::loss_permille(5).label(), "loss=5‰");
        assert_eq!(FaultSpec::dropout(5, 2).label(), "drop=5%x2");
        assert_eq!(FaultSpec::rotation(3).label(), "rotate=3");
    }

    #[test]
    fn spec_models_match_plain_seeded_faults() {
        // A FaultSpec-built model must replay the identical stream as the
        // directly-built SeededFaults it wraps.
        let mut via_spec = FaultSpec::dropout_permille(150, 2).model(0xABCD);
        let mut direct = SeededFaults::new(0xABCD).with_dropout_permille(150, 2);
        for round in 1..=32 {
            assert_eq!(via_spec.faults(round, 12), direct.faults(round, 12));
        }
    }

    #[test]
    fn default_budgets_scale_with_the_regime() {
        assert_eq!(default_budget(1024, TreeSpec::Path), 8 * 1023);
        assert_eq!(default_budget(1024, TreeSpec::SeededUniform), 64 * 11);
        assert_eq!(default_budget(2, TreeSpec::SeededUniform), 128);
    }
}
