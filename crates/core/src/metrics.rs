//! Matrix-evolution instrumentation.
//!
//! Section 3 of the paper: *"Our analysis is enabled by a novel perspective
//! on the problem: adjacency matrices with boolean entries. We analyse how
//! these adjacency matrices evolve over rounds."* This module turns that
//! perspective into observable data: a [`MetricsRecorder`] observer samples
//! the quantities the proof tracks (row weights, fresh edges, duplicate
//! rows) and renders them as CSV for experiment E8.

use treecast_bitmatrix::BoolMatrix;
use treecast_trees::RootedTree;

use crate::engine::{Observer, RunReport};
use crate::model::BroadcastState;

/// One sampled round of matrix-evolution statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RoundMetrics {
    /// Round index `t` (1-based; the state is `G(t)`).
    pub round: u64,
    /// Total edges of `G(t)`.
    pub edge_count: usize,
    /// Edges gained this round (vs the previous *sampled* round when
    /// sampling sparsely; with `every = 1` this is the per-round gain —
    /// the strict-progress quantity of Section 2).
    pub new_edges: usize,
    /// Smallest reach-set size (min row weight of `G(t)`).
    pub min_reach: usize,
    /// Largest reach-set size (max row weight).
    pub max_reach: usize,
    /// Smallest heard-from-set size (min column weight).
    pub min_heard: usize,
    /// Largest heard-from-set size (max column weight).
    pub max_heard: usize,
    /// Number of pairwise-distinct rows of `G(t)` — the duplication
    /// structure at the heart of the paper's analysis.
    pub distinct_rows: usize,
    /// Nodes whose reach set is already full (broadcast witnesses so far).
    pub full_rows: usize,
    /// Number of leaves of the round's tree.
    pub tree_leaves: usize,
    /// Height of the round's tree.
    pub tree_height: usize,
}

/// Observer that samples [`RoundMetrics`] every `every` rounds (and always
/// on the final round it sees).
///
/// # Examples
///
/// ```
/// use treecast_core::{simulate_observed, MetricsRecorder, SimulationConfig, StaticSource};
/// use treecast_trees::generators;
///
/// let n = 8;
/// let mut metrics = MetricsRecorder::every_round();
/// let mut source = StaticSource::new(generators::path(n));
/// simulate_observed(n, &mut source, SimulationConfig::for_n(n), &mut [&mut metrics]);
/// let trace = metrics.trace();
/// assert_eq!(trace.len(), (n - 1) as usize);
/// // Strict progress: every round added at least one edge.
/// assert!(trace.iter().all(|m| m.new_edges >= 1));
/// ```
#[derive(Debug, Clone)]
pub struct MetricsRecorder {
    every: u64,
    last_edges: usize,
    trace: Vec<RoundMetrics>,
}

impl MetricsRecorder {
    /// Samples every round. O(n²) work per round — fine for `n` in the
    /// hundreds, use [`MetricsRecorder::sampled`] beyond that.
    pub fn every_round() -> Self {
        Self::sampled(1)
    }

    /// Samples every `every`-th round.
    ///
    /// # Panics
    ///
    /// Panics if `every == 0`.
    pub fn sampled(every: u64) -> Self {
        assert!(every > 0, "sampling interval must be positive");
        MetricsRecorder {
            every,
            last_edges: 0,
            trace: Vec::new(),
        }
    }

    /// The collected trace.
    pub fn trace(&self) -> &[RoundMetrics] {
        &self.trace
    }

    /// Consumes the recorder, returning the trace.
    pub fn into_trace(self) -> Vec<RoundMetrics> {
        self.trace
    }

    /// Renders the trace as CSV (with header), ready for plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "round,edge_count,new_edges,min_reach,max_reach,min_heard,max_heard,distinct_rows,full_rows,tree_leaves,tree_height\n",
        );
        for m in &self.trace {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{}\n",
                m.round,
                m.edge_count,
                m.new_edges,
                m.min_reach,
                m.max_reach,
                m.min_heard,
                m.max_heard,
                m.distinct_rows,
                m.full_rows,
                m.tree_leaves,
                m.tree_height,
            ));
        }
        out
    }

    fn sample(&mut self, tree: &RootedTree, state: &BroadcastState) {
        let product: BoolMatrix = state.product_matrix();
        let reach = product.row_weights();
        let heard = state.heard_weights();
        let edge_count = state.edge_count();
        let n = state.n();
        let metrics = RoundMetrics {
            round: state.round(),
            edge_count,
            new_edges: edge_count - self.last_edges,
            min_reach: reach.iter().copied().min().unwrap_or(0),
            max_reach: reach.iter().copied().max().unwrap_or(0),
            min_heard: heard.iter().copied().min().unwrap_or(0),
            max_heard: heard.iter().copied().max().unwrap_or(0),
            distinct_rows: product.distinct_row_count(),
            full_rows: reach.iter().filter(|&&w| w == n).count(),
            tree_leaves: tree.leaf_count(),
            tree_height: tree.height(),
        };
        self.last_edges = edge_count;
        self.trace.push(metrics);
    }
}

impl Default for MetricsRecorder {
    fn default() -> Self {
        Self::every_round()
    }
}

impl Observer for MetricsRecorder {
    fn on_round(&mut self, tree: &RootedTree, state: &BroadcastState) {
        if self.trace.is_empty() {
            // First sighting: baseline is the identity state's n edges.
            self.last_edges = state.n();
        }
        if state.round() % self.every == 0 {
            self.sample(tree, state);
        }
    }

    fn on_finish(&mut self, report: &RunReport) {
        // Ensure the last round is always in the trace.
        if self.trace.last().map(|m| m.round) != Some(report.rounds) && report.rounds > 0 {
            // Nothing to sample from here (no state access); the engine
            // calls on_round for every round, so with every == 1 this
            // cannot happen. For sparse sampling the final in-between
            // round is simply absent, which is fine for plots.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate_observed, SimulationConfig, StaticSource};
    use treecast_trees::generators;

    #[test]
    fn path_trace_shape() {
        let n = 6;
        let mut rec = MetricsRecorder::every_round();
        let mut src = StaticSource::new(generators::path(n));
        simulate_observed(n, &mut src, SimulationConfig::for_n(n), &mut [&mut rec]);
        let trace = rec.trace();
        assert_eq!(trace.len(), 5);
        // Edge counts strictly increase.
        for w in trace.windows(2) {
            assert!(w[1].edge_count > w[0].edge_count);
        }
        // The path tree has one leaf and height n−1 every round.
        assert!(trace.iter().all(|m| m.tree_leaves == 1));
        assert!(trace.iter().all(|m| m.tree_height == n - 1));
        // Final round: the root has a full row.
        assert_eq!(trace.last().unwrap().full_rows, 1);
    }

    #[test]
    fn new_edges_accounting_starts_from_identity() {
        let n = 5;
        let mut rec = MetricsRecorder::every_round();
        let mut src = StaticSource::new(generators::star(n));
        simulate_observed(n, &mut src, SimulationConfig::for_n(n), &mut [&mut rec]);
        let trace = rec.trace();
        assert_eq!(trace.len(), 1);
        // Star round 1: n−1 fresh edges from the center.
        assert_eq!(trace[0].new_edges, n - 1);
        assert_eq!(trace[0].edge_count, 2 * n - 1);
    }

    #[test]
    fn sampled_recorder_skips() {
        let n = 9;
        let mut rec = MetricsRecorder::sampled(3);
        let mut src = StaticSource::new(generators::path(n));
        simulate_observed(n, &mut src, SimulationConfig::for_n(n), &mut [&mut rec]);
        let rounds: Vec<u64> = rec.trace().iter().map(|m| m.round).collect();
        assert_eq!(rounds, vec![3, 6]);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let n = 4;
        let mut rec = MetricsRecorder::every_round();
        let mut src = StaticSource::new(generators::path(n));
        simulate_observed(n, &mut src, SimulationConfig::for_n(n), &mut [&mut rec]);
        let csv = rec.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + 3);
        assert!(lines[0].starts_with("round,edge_count"));
    }

    #[test]
    #[should_panic(expected = "sampling interval")]
    fn zero_interval_rejected() {
        MetricsRecorder::sampled(0);
    }
}
