//! The broadcast model of Section 2 of the paper, made executable.
//!
//! * **Definition 2.1** (product graph): `(x, y) ∈ A∘B ⇔ ∃z. (x, z) ∈ A ∧
//!   (z, y) ∈ B` — implemented by [`treecast_bitmatrix::BoolMatrix::compose`].
//! * **Definition 2.2** (broadcast time): the first round `t` where some
//!   node has an out-edge to every node in `G(t) = G₁∘…∘G_t`.
//! * **Definition 2.3** (adversary): rounds are chosen to maximize that
//!   time; adversaries live in `treecast-adversary` and the exact maximum
//!   is computed by `treecast-solver`.
//!
//! [`BroadcastState`] tracks `G(t)` incrementally in *column view*: for
//! each node `y` it stores the **heard-from set** `heard[y] = {x : (x, y) ∈
//! G(t)}`. Applying a round tree `T` (with self-loops) is then a single
//! union per node, because `y`'s in-neighbors in `T` are exactly `{y,
//! parent(y)}`:
//!
//! ```text
//! heard'[y] = heard[y] ∪ heard[parent(y)]     (root: unchanged)
//! ```
//!
//! which costs `O(n²/64)` machine words per round instead of the `O(n³/64)`
//! of a full matrix product.

use treecast_bitmatrix::{BitSet, BoolMatrix, RowRef};
use treecast_trees::{NodeId, RootedTree};

/// The evolving product graph `G(t)` of a broadcast run, in column view.
///
/// The heard-from sets live in one flat [`BoolMatrix`] (row `y` = heard
/// set of `y`), so cloning a state is a single buffer copy and round
/// application is pure word-level work. A scratch matrix is kept between
/// [`BroadcastState::apply_matrix`] calls, making steady-state round
/// application allocation-free.
///
/// # Examples
///
/// Running the static path — the Section 2 example achieving `n − 1`:
///
/// ```
/// use treecast_core::BroadcastState;
/// use treecast_trees::generators;
///
/// let n = 5;
/// let path = generators::path(n);
/// let mut state = BroadcastState::new(n);
/// let mut rounds = 0;
/// while state.broadcast_witness().is_none() {
///     state.apply(&path);
///     rounds += 1;
/// }
/// assert_eq!(rounds, (n - 1) as u64);
/// assert_eq!(state.broadcast_witness(), Some(0)); // the path's root
/// ```
pub struct BroadcastState {
    n: usize,
    round: u64,
    /// Row `y` = the set of nodes whose information `y` carries.
    heard: BoolMatrix,
    /// Reusable double buffer for [`BroadcastState::apply_matrix`]; not
    /// part of the state's value (ignored by `Eq`, dropped by `Clone`).
    scratch: Option<BoolMatrix>,
}

impl Clone for BroadcastState {
    fn clone(&self) -> Self {
        BroadcastState {
            n: self.n,
            round: self.round,
            heard: self.heard.clone(),
            scratch: None,
        }
    }

    /// Reuses `self`'s buffers — the beam-search probe path clones
    /// thousands of states per generation through this.
    fn clone_from(&mut self, source: &Self) {
        if self.n != source.n {
            // A differently sized scratch would poison the next
            // apply_matrix call; drop it and let it be re-allocated lazily.
            self.scratch = None;
        }
        self.n = source.n;
        self.round = source.round;
        self.heard.clone_from(&source.heard);
    }
}

impl PartialEq for BroadcastState {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.round == other.round && self.heard == other.heard
    }
}

impl Eq for BroadcastState {}

impl BroadcastState {
    /// The initial state `G(0) = I`: every node has heard only from
    /// itself.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "the model needs at least one process");
        BroadcastState {
            n,
            round: 0,
            heard: BoolMatrix::identity(n),
            scratch: None,
        }
    }

    /// Reconstructs a state from an explicit product-graph matrix (row `x`
    /// = reach set of `x`), marking it as reached at `round`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is not reflexive — product graphs of self-looped
    /// rounds always contain the diagonal.
    pub fn from_product_matrix(m: &BoolMatrix, round: u64) -> Self {
        assert!(
            m.is_reflexive(),
            "a product graph of self-looped rounds must be reflexive"
        );
        BroadcastState {
            n: m.n(),
            round,
            heard: m.transpose(),
            scratch: None,
        }
    }

    /// Number of processes.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Rounds applied so far (the `t` of `G(t)`).
    #[inline]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The heard-from set of `y`: all `x` with `(x, y) ∈ G(t)`, as a
    /// zero-copy view into the state's flat storage.
    ///
    /// # Panics
    ///
    /// Panics if `y >= n`.
    #[inline]
    pub fn heard_set(&self, y: NodeId) -> RowRef<'_> {
        self.heard.row(y)
    }

    /// The reach set of `x`: all `y` with `(x, y) ∈ G(t)` (row `x` of the
    /// product graph). Materialized on demand in `O(n²/64)`.
    ///
    /// # Panics
    ///
    /// Panics if `x >= n`.
    pub fn reach_set(&self, x: NodeId) -> BitSet {
        assert!(x < self.n, "node {} out of range for n = {}", x, self.n);
        self.heard.column(x)
    }

    /// The size of each node's reach set (row weights of `G(t)`) — the
    /// quantity the paper's matrix analysis tracks round by round.
    pub fn reach_weights(&self) -> Vec<usize> {
        self.heard.col_weights()
    }

    /// The size of each node's heard-from set (column weights of `G(t)`).
    pub fn heard_weights(&self) -> Vec<usize> {
        self.heard.row_weights()
    }

    /// Total number of edges of `G(t)` (self-loops included).
    pub fn edge_count(&self) -> usize {
        self.heard.edge_count()
    }

    /// All broadcast witnesses: nodes `x` present in **every** heard-from
    /// set, i.e. `⋂_y heard[y]`.
    pub fn broadcast_witnesses(&self) -> BitSet {
        let mut acc = BitSet::full(self.n);
        for h in self.heard.rows() {
            acc.intersect_with(h);
        }
        acc
    }

    /// The smallest broadcast witness, if broadcast has been achieved
    /// (Definition 2.2).
    pub fn broadcast_witness(&self) -> Option<NodeId> {
        // Cheaper than materializing the intersection when far from done:
        // bail at the first empty meet.
        let mut acc = self.heard.row(0).to_bitset();
        for y in 1..self.n {
            acc.intersect_with(self.heard.row(y));
            if acc.is_empty() {
                return None;
            }
        }
        acc.min()
    }

    /// Returns `true` if every node has heard from every node — the gossip
    /// condition (the all-to-all extension of Section 5).
    pub fn is_gossip_complete(&self) -> bool {
        self.heard.is_all_ones()
    }

    /// Number of *disseminated tokens*: nodes whose information has
    /// reached everyone (full rows of `G(t)`, i.e. broadcast witnesses).
    ///
    /// This is the progress measure of the workload lattice
    /// ([`crate::Workload`]): broadcast waits for 1, `k`-broadcast for
    /// `k`, gossip for `n`. Bails out at the first empty intersection, so
    /// the pre-broadcast rounds of a run pay the same early-exit cost as
    /// [`BroadcastState::broadcast_witness`].
    pub fn disseminated_count(&self) -> usize {
        let mut acc = self.heard.row(0).to_bitset();
        for y in 1..self.n {
            acc.intersect_with(self.heard.row(y));
            if acc.is_empty() {
                return 0;
            }
        }
        acc.len()
    }

    /// Applies one synchronous round along `tree` (with implicit
    /// self-loops): `G(t+1) = G(t) ∘ (tree + I)`.
    ///
    /// # Panics
    ///
    /// Panics if `tree.n() != self.n()`.
    pub fn apply(&mut self, tree: &RootedTree) {
        assert_eq!(
            tree.n(),
            self.n,
            "round tree has {} nodes but the state has {}",
            tree.n(),
            self.n
        );
        // Reverse BFS: every node is updated before its parent, so each
        // union reads the parent's *old* row — the synchronous semantics —
        // without cloning the state.
        let order = tree.bfs_order();
        for &y in order.iter().rev() {
            if let Some(p) = tree.parent(y) {
                self.heard.union_rows(y, p);
            }
        }
        self.round += 1;
    }

    /// Applies one synchronous round along an arbitrary directed graph
    /// `m` (self-loops are **not** implied; pass a reflexive matrix to
    /// preserve information).
    ///
    /// Used by the nonsplit-graph experiments, where rounds are not trees.
    /// Double-buffered: the state keeps a scratch matrix between calls, so
    /// steady-state round application performs no heap allocation (the
    /// scratch is allocated once, on the first call).
    ///
    /// # Panics
    ///
    /// Panics if `m.n() != self.n()`.
    pub fn apply_matrix(&mut self, m: &BoolMatrix) {
        assert_eq!(
            m.n(),
            self.n,
            "round matrix has {} nodes but the state has {}",
            m.n(),
            self.n
        );
        let mut next = self
            .scratch
            .take()
            .unwrap_or_else(|| BoolMatrix::zeros(self.n));
        next.clear();
        // heard'[y] = ⋃_{z : (z, y) ∈ m} heard[z]; iterating m row-major
        // visits every edge (z, y) once — no transpose needed.
        for z in 0..self.n {
            let carried = self.heard.row(z);
            for y in m.row(z) {
                next.row_mut(y).union_with(carried);
            }
        }
        std::mem::swap(&mut self.heard, &mut next);
        self.scratch = Some(next);
        self.round += 1;
    }

    /// Token-loss fault: node `y` forgets everything it has heard except
    /// its own token (`heard[y] := {y}`).
    ///
    /// This deliberately breaks the monotone-growth invariant of the
    /// fault-free model — it is the scenario layer's primitive
    /// ([`crate::scenario`]), not part of the paper's Definition 2.1
    /// semantics. The round counter is unchanged (a loss happens *within*
    /// a round).
    ///
    /// # Panics
    ///
    /// Panics if `y >= n`.
    pub fn forget(&mut self, y: NodeId) {
        assert!(y < self.n, "node {} out of range for n = {}", y, self.n);
        let mut row = self.heard.row_mut(y);
        row.clear();
        row.insert(y);
    }

    /// The product graph `G(t)` as a matrix (row `x` = reach set of `x`).
    pub fn product_matrix(&self) -> BoolMatrix {
        self.heard.transpose()
    }

    /// The transpose of the product graph (row `y` = heard-from set of
    /// `y`) without recomputation.
    pub fn heard_matrix(&self) -> BoolMatrix {
        self.heard.clone()
    }
}

impl core::fmt::Debug for BroadcastState {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "BroadcastState(n={}, round={}, edges={})",
            self.n,
            self.round,
            self.edge_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treecast_trees::generators;

    #[test]
    fn initial_state_is_identity() {
        let s = BroadcastState::new(4);
        assert_eq!(s.round(), 0);
        assert_eq!(s.edge_count(), 4);
        assert_eq!(s.product_matrix(), BoolMatrix::identity(4));
        assert!(s.broadcast_witness().is_none());
        assert!(!s.is_gossip_complete());
    }

    #[test]
    fn single_node_broadcasts_at_zero() {
        let s = BroadcastState::new(1);
        assert_eq!(s.broadcast_witness(), Some(0));
        assert!(s.is_gossip_complete());
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn rejects_zero_processes() {
        BroadcastState::new(0);
    }

    #[test]
    fn apply_matches_matrix_product() {
        // Column-view update must equal G(t−1) ∘ (T + I) for assorted trees.
        let trees = [
            generators::path(6),
            generators::star(6),
            generators::broom(6, 3),
            generators::caterpillar(6, 2),
            generators::spider(6, 2),
        ];
        let mut state = BroadcastState::new(6);
        let mut reference = BoolMatrix::identity(6);
        for (i, t) in trees.iter().enumerate() {
            state.apply(t);
            reference = reference.compose(&t.to_matrix(true));
            assert_eq!(
                state.product_matrix(),
                reference,
                "divergence after round {}",
                i + 1
            );
        }
    }

    #[test]
    fn star_broadcasts_in_one_round() {
        let mut s = BroadcastState::new(7);
        s.apply(&generators::star(7));
        assert_eq!(s.broadcast_witness(), Some(0));
        assert!(!s.is_gossip_complete());
    }

    #[test]
    fn path_broadcasts_in_n_minus_1() {
        let n = 6;
        let path = generators::path(n);
        let mut s = BroadcastState::new(n);
        for _ in 0..n - 2 {
            s.apply(&path);
            assert!(
                s.broadcast_witness().is_none(),
                "too early at {}",
                s.round()
            );
        }
        s.apply(&path);
        assert_eq!(s.broadcast_witness(), Some(0));
    }

    #[test]
    fn gossip_on_static_path_counts_both_directions() {
        // On a static path only the root can reach down, so gossip never
        // completes; witness that gossip stays incomplete while broadcast
        // happens.
        let n = 4;
        let path = generators::path(n);
        let mut s = BroadcastState::new(n);
        for _ in 0..4 * n {
            s.apply(&path);
        }
        assert_eq!(s.broadcast_witness(), Some(0));
        assert!(!s.is_gossip_complete());
    }

    #[test]
    fn alternating_stars_reach_gossip() {
        let n = 5;
        let mut s = BroadcastState::new(n);
        for c in 0..n {
            s.apply(&generators::star_with_center(n, c));
        }
        // After a star on every center, everyone heard everyone:
        // center c learns all in its round, then later centers rebroadcast.
        assert!(s.is_gossip_complete());
    }

    #[test]
    fn reach_and_heard_are_transposes() {
        let mut s = BroadcastState::new(6);
        s.apply(&generators::broom(6, 2));
        s.apply(&generators::path(6));
        let product = s.product_matrix();
        for x in 0..6 {
            assert_eq!(s.reach_set(x), product.row(x));
        }
        assert_eq!(s.heard_matrix(), product.transpose());
        let rw = s.reach_weights();
        let pw = product.row_weights();
        assert_eq!(rw, pw);
        assert_eq!(s.heard_weights(), product.col_weights());
    }

    #[test]
    fn clone_from_across_sizes_resets_scratch() {
        // A stale scratch from a differently sized state must not poison
        // the next apply_matrix call.
        let mut s = BroadcastState::new(8);
        s.apply_matrix(&BoolMatrix::identity(8)); // allocates an 8-node scratch
        s.clone_from(&BroadcastState::new(4));
        s.apply_matrix(&BoolMatrix::identity(4));
        assert_eq!(s.n(), 4);
        assert_eq!(s.edge_count(), 4);
        // Same-size clone_from keeps the scratch and stays correct.
        let mut t = BroadcastState::new(4);
        t.apply_matrix(&BoolMatrix::identity(4));
        t.clone_from(&s);
        t.apply_matrix(&BoolMatrix::ones(4));
        assert!(t.is_gossip_complete());
    }

    #[test]
    fn apply_matrix_agrees_with_apply_on_trees() {
        let t = generators::caterpillar(7, 3);
        let mut a = BroadcastState::new(7);
        let mut b = BroadcastState::new(7);
        a.apply(&t);
        b.apply_matrix(&t.to_matrix(true));
        assert_eq!(a, b);
    }

    #[test]
    fn from_product_matrix_roundtrip() {
        let mut s = BroadcastState::new(5);
        s.apply(&generators::star(5));
        s.apply(&generators::path(5));
        let rebuilt = BroadcastState::from_product_matrix(&s.product_matrix(), s.round());
        assert_eq!(rebuilt, s);
    }

    #[test]
    fn monotone_growth() {
        let mut s = BroadcastState::new(8);
        let mut prev_edges = s.edge_count();
        for t in [
            generators::path(8),
            generators::star(8),
            generators::broom(8, 4),
        ] {
            let before = s.product_matrix();
            s.apply(&t);
            let after = s.product_matrix();
            assert!(before.is_submatrix_of(&after), "monotonicity violated");
            assert!(s.edge_count() >= prev_edges);
            prev_edges = s.edge_count();
        }
    }

    #[test]
    fn forget_resets_one_heard_row() {
        let n = 5;
        let mut s = BroadcastState::new(n);
        s.apply(&generators::star(n));
        assert!(s.broadcast_witness().is_some());
        for y in 1..n {
            s.forget(y);
        }
        // Everyone except the center is back to knowing only themselves.
        assert!(s.broadcast_witness().is_none());
        assert_eq!(s.edge_count(), n);
        // Forgetting preserves the node's own token.
        for y in 0..n {
            assert!(s.heard_set(y).contains(y));
        }
    }

    #[test]
    fn witnesses_accumulate() {
        let n = 4;
        let mut s = BroadcastState::new(n);
        s.apply(&generators::star(n));
        let w = s.broadcast_witnesses();
        assert!(w.contains(0));
        assert_eq!(w.len(), 1);
    }
}
