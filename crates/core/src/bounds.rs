//! Every bound in the paper's Figure 1, as exact integer formulas.
//!
//! The theorem-grade bounds (the ZSS lower bound and the El-Hayek–Henzinger–
//! Schmid upper bound) are computed in exact integer arithmetic — no
//! floating point, so certificate checks can never be thrown off by
//! rounding. The asymptotic reference curves (`n log n`, `2n log log n +
//! O(n)`, `k·n`) carry unspecified constants in the paper; we expose the
//! natural constants and document that only the *shape* is comparable.

/// `⌈(3n−1)/2⌉ − 2` — the Zeiner–Schwarz–Schmid lower bound on `t*(T_n)`
/// (left side of Theorem 3.1), clamped at 0 for tiny `n`.
///
/// # Examples
///
/// ```
/// use treecast_core::bounds::lower_bound;
/// assert_eq!(lower_bound(2), 1);
/// assert_eq!(lower_bound(3), 2);
/// assert_eq!(lower_bound(10), 13);
/// ```
pub fn lower_bound(n: u64) -> u64 {
    if n == 0 {
        return 0;
    }
    ((3 * n - 1).div_ceil(2)).saturating_sub(2)
}

/// `⌈(1+√2)·n − 1⌉` — the paper's new upper bound on `t*(T_n)` (right side
/// of Theorem 3.1), computed exactly as `(n − 1) + ⌈√2·n⌉`.
///
/// The identity holds because `√2·n` is irrational for every `n ≥ 1`, so
/// the integer part `n − 1` moves out of the ceiling losslessly.
///
/// # Examples
///
/// ```
/// use treecast_core::bounds::upper_bound;
/// assert_eq!(upper_bound(1), 2);
/// assert_eq!(upper_bound(10), 24);   // 9 + ⌈14.142…⌉
/// assert_eq!(upper_bound(100), 241); // 99 + ⌈141.42…⌉ = 99 + 142
/// ```
pub fn upper_bound(n: u64) -> u64 {
    if n == 0 {
        return 0;
    }
    (n - 1) + ceil_sqrt2_times(n)
}

/// `⌈√2·n⌉` computed exactly: the smallest `m` with `m² ≥ 2n²`.
///
/// # Examples
///
/// ```
/// use treecast_core::bounds::ceil_sqrt2_times;
/// assert_eq!(ceil_sqrt2_times(1), 2);
/// assert_eq!(ceil_sqrt2_times(5), 8);   // 7.07…
/// assert_eq!(ceil_sqrt2_times(100), 142);
/// ```
pub fn ceil_sqrt2_times(n: u64) -> u64 {
    if n == 0 {
        return 0;
    }
    let target = 2u128 * (n as u128) * (n as u128);
    let mut m = isqrt_u128(target);
    while (m as u128) * (m as u128) < target {
        m += 1;
    }
    m
}

/// Floor integer square root.
fn isqrt_u128(v: u128) -> u64 {
    if v == 0 {
        return 0;
    }
    let mut x = (v as f64).sqrt() as u128;
    // Newton touch-up to kill float error at the boundaries.
    while x * x > v {
        x -= 1;
    }
    while (x + 1) * (x + 1) <= v {
        x += 1;
    }
    x as u64
}

/// `n²` — the trivial upper bound of Section 2 (at least one new edge per
/// round).
pub fn upper_trivial(n: u64) -> u64 {
    n * n
}

/// `n·⌈log₂ n⌉` — the Charron-Bost–Schiper / Charron-Bost–Függer–Nowak
/// upper bound (first column of Figure 1). The paper writes `n log n`
/// without a base; base 2 is the natural reading for halving arguments.
pub fn upper_n_log_n(n: u64) -> u64 {
    n * ceil_log2(n)
}

/// `2n·⌈log₂ log₂ n⌉ + 2n` — the Függer–Nowak–Winkler bound
/// `2n log log n + O(n)` with the O(n) constant taken as `2n`
/// (shape-comparison curve, not a certified bound).
pub fn upper_n_loglog_n(n: u64) -> u64 {
    2 * n * ceil_log2(ceil_log2(n).max(1)) + 2 * n
}

/// `k·n` — the Zeiner–Schwarz–Schmid `O(kn)` reference curve for
/// adversaries restricted to trees with `k` leaves per round.
pub fn upper_k_leaves(k: u64, n: u64) -> u64 {
    k * n
}

/// `k·n` — the `O(kn)` reference curve for adversaries restricted to trees
/// with `k` inner nodes per round.
pub fn upper_k_inner(k: u64, n: u64) -> u64 {
    k * n
}

/// `n − 1` — broadcast time of the static path (Section 2).
pub fn path_time(n: u64) -> u64 {
    n.saturating_sub(1)
}

/// `⌈log₂ n⌉` (0 for `n ≤ 1`).
pub fn ceil_log2(n: u64) -> u64 {
    if n <= 1 {
        0
    } else {
        64 - (n - 1).leading_zeros() as u64
    }
}

/// The floating-point FNW reference curve `2n·log₂log₂ n + c·n`, for
/// plotting against measured nonsplit dissemination times.
pub fn fnw_reference(n: u64, c: f64) -> f64 {
    if n < 4 {
        return c * n as f64;
    }
    let loglog = (n as f64).log2().log2();
    2.0 * n as f64 * loglog + c * n as f64
}

/// Lower bound on the `k`-broadcast time under the rooted-tree adversary
/// (the companion paper's variant, formalized here as "`k` distinct nodes
/// have each completed a broadcast"; `k = 1` is Definition 2.2).
///
/// Requiring `k` disseminated tokens subsumes requiring one, so the ZSS
/// broadcast lower bound applies verbatim for every `k ≥ 1` — and by
/// [`tree_k_broadcast_diverges`] no *finite* worst-case upper bound exists
/// once `k ≥ 2`, so the interesting half of the companion sandwich lives
/// on restricted (`c`-nonsplit) adversaries.
///
/// # Examples
///
/// ```
/// use treecast_core::bounds::{k_broadcast_lower, lower_bound};
/// assert_eq!(k_broadcast_lower(10, 1), lower_bound(10));
/// assert_eq!(k_broadcast_lower(10, 5), lower_bound(10));
/// ```
pub fn k_broadcast_lower(n: u64, k: u64) -> u64 {
    if k == 0 {
        return 0;
    }
    lower_bound(n)
}

/// Returns `true` if the worst-case `k`-broadcast time under the
/// **unrestricted** rooted-tree adversary is infinite.
///
/// For `k ≥ 2` (hence also gossip, the `k = n` case) the static path is an
/// explicit diverging witness: after `n − 1` path rounds the heard-from
/// sets are nested (`heard[y] = {0..y}`), every further path round has
/// `heard[parent(y)] ⊆ heard[y]`, and the product graph never gains
/// another edge — exactly one node ever broadcasts. The engine test
/// `static_path_diverges_for_k_at_least_2` replays this witness; the `E10
/// variants` experiment reports such runs as `>cap`, which is the
/// *consistent* outcome, not a failure.
///
/// # Examples
///
/// ```
/// use treecast_core::bounds::tree_k_broadcast_diverges;
/// assert!(!tree_k_broadcast_diverges(1));
/// assert!(tree_k_broadcast_diverges(2));
/// ```
pub fn tree_k_broadcast_diverges(k: u64) -> bool {
    k >= 2
}

/// `true` iff `lower_bound(n) ≤ t ≤ upper_bound(n)` — the Theorem 3.1
/// sandwich, which every *optimal* adversary's broadcast time must satisfy
/// (achievable adversaries need only the right half).
pub fn sandwich_holds(n: u64, t: u64) -> bool {
    lower_bound(n) <= t && t <= upper_bound(n)
}

/// The exact `t*(T_n)` values established by the `treecast-solver` crate's
/// layered search (experiment E7), where the solver has reached; `None`
/// beyond the exact frontier.
///
/// Every known value coincides with [`lower_bound`] — the experimental
/// evidence that the ZSS lower bound is tight and the open gap of
/// Theorem 3.1 sits entirely on the upper side.
///
/// # Examples
///
/// ```
/// use treecast_core::bounds::{known_t_star, lower_bound};
/// assert_eq!(known_t_star(6), Some(7));
/// assert_eq!(known_t_star(7), Some(lower_bound(7)));
/// assert_eq!(known_t_star(8), None);
/// ```
pub fn known_t_star(n: u64) -> Option<u64> {
    match n {
        1 => Some(0),
        2 => Some(1),
        3 => Some(2),
        4 => Some(4),
        5 => Some(5),
        6 => Some(7),
        7 => Some(8),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_bound_table() {
        // Hand-checked values of ⌈(3n−1)/2⌉ − 2.
        let expected = [
            (1, 0), // ⌈2/2⌉ − 2 < 0 → clamp
            (2, 1),
            (3, 2),
            (4, 4), // ⌈11/2⌉ = 6, −2
            (5, 5), // ⌈14/2⌉ = 7, −2
            (6, 7), // ⌈17/2⌉ = 9, −2
            (7, 8),
            (10, 13),
            (100, 148),
        ];
        for (n, want) in expected {
            assert_eq!(lower_bound(n), want, "n = {n}");
        }
    }

    #[test]
    fn upper_bound_matches_float_reference() {
        for n in 1..=10_000u64 {
            let float = ((1.0 + 2f64.sqrt()) * n as f64 - 1.0).ceil() as u64;
            assert_eq!(upper_bound(n), float, "n = {n}");
        }
    }

    #[test]
    fn upper_bound_spot_values() {
        assert_eq!(upper_bound(2), 4); // ⌈3.828…⌉
        assert_eq!(upper_bound(3), 7); // ⌈6.242…⌉
        assert_eq!(upper_bound(4), 9); // ⌈8.656…⌉
        assert_eq!(upper_bound(1000), 2414); // ⌈2414.21…⌉ − integer part split: 999 + 1415
    }

    #[test]
    fn ceil_sqrt2_is_exact_at_scale() {
        // Near-overflow scale still exact.
        for n in [1u64, 2, 3, 10, 1_000_000, 4_000_000_000] {
            let m = ceil_sqrt2_times(n);
            let m = m as u128;
            let t = 2 * (n as u128) * (n as u128);
            assert!(m * m >= t);
            assert!((m - 1) * (m - 1) < t);
        }
    }

    #[test]
    fn sandwich_is_consistent() {
        for n in 1..500 {
            assert!(
                lower_bound(n) <= upper_bound(n),
                "bounds crossed at n = {n}"
            );
            assert!(sandwich_holds(n, lower_bound(n)));
            assert!(sandwich_holds(n, upper_bound(n)));
            assert!(!sandwich_holds(n, upper_bound(n) + 1));
        }
    }

    #[test]
    fn figure1_ordering_for_large_n() {
        // For large n the columns of Figure 1 must order:
        // (1+√2)n < 2n loglog n + 2n < n log n < n².
        // The middle comparison carries our chosen constants, so it only
        // separates once log n clearly dominates 2 loglog n + 2.
        for n in [64u64, 256, 1024, 65_536, 1 << 20, 1 << 30] {
            assert!(upper_bound(n) < upper_n_loglog_n(n), "n = {n}");
            assert!(upper_n_log_n(n) < upper_trivial(n), "n = {n}");
        }
        for n in [1u64 << 20, 1 << 30] {
            assert!(upper_n_loglog_n(n) < upper_n_log_n(n), "n = {n}");
        }
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
    }

    #[test]
    fn path_time_is_n_minus_1() {
        assert_eq!(path_time(1), 0);
        assert_eq!(path_time(10), 9);
    }

    #[test]
    fn fnw_reference_monotone() {
        let mut prev = 0.0;
        for n in 4..2000u64 {
            let v = fnw_reference(n, 2.0);
            assert!(v > prev);
            prev = v;
        }
    }

    #[test]
    fn known_exact_values_sit_on_the_lower_bound() {
        let mut solved = 0;
        for n in 1..=16u64 {
            if let Some(t) = known_t_star(n) {
                assert_eq!(t, lower_bound(n), "n = {n}");
                assert!(sandwich_holds(n, t), "n = {n}");
                solved += 1;
            }
        }
        assert_eq!(solved, 7, "exact frontier is n = 7");
        assert_eq!(known_t_star(0), None);
    }

    #[test]
    fn k_broadcast_bounds_are_consistent() {
        for n in 1..64u64 {
            for k in 1..=n {
                assert_eq!(k_broadcast_lower(n, k), lower_bound(n));
            }
        }
        assert_eq!(k_broadcast_lower(10, 0), 0);
        assert!(!tree_k_broadcast_diverges(0));
        assert!(!tree_k_broadcast_diverges(1));
        for k in 2..10 {
            assert!(tree_k_broadcast_diverges(k));
        }
    }

    #[test]
    fn restricted_curves() {
        assert_eq!(upper_k_leaves(3, 100), 300);
        assert_eq!(upper_k_inner(5, 10), 50);
    }
}
