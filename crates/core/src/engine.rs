//! The simulation engine: run a tree source (adversary) against the model
//! until broadcast, gossip, or a round limit.

use treecast_trees::{NodeId, RootedTree};

use crate::model::BroadcastState;
use crate::workload::{full_state_progress, Broadcast, Gossip, Workload};

/// Produces the round-`t` tree, possibly as a function of the current
/// product-graph state — this is Definition 2.3's adversary interface.
///
/// Implementations live in `treecast-adversary`; [`SequenceSource`] and
/// [`StaticSource`] are provided here because the engine, solver and
/// nonsplit crates all need to replay fixed schedules.
pub trait TreeSource {
    /// The tree for the next round, given the state *before* the round.
    fn next_tree(&mut self, state: &BroadcastState) -> RootedTree;

    /// Human-readable name used in reports and experiment tables.
    fn name(&self) -> String {
        "anonymous".to_string()
    }
}

impl<T: TreeSource + ?Sized> TreeSource for &mut T {
    fn next_tree(&mut self, state: &BroadcastState) -> RootedTree {
        (**self).next_tree(state)
    }

    fn name(&self) -> String {
        (**self).name()
    }
}

impl<T: TreeSource + ?Sized> TreeSource for Box<T> {
    fn next_tree(&mut self, state: &BroadcastState) -> RootedTree {
        (**self).next_tree(state)
    }

    fn name(&self) -> String {
        (**self).name()
    }
}

/// Repeats one fixed tree every round (e.g. the static path of Section 2).
#[derive(Debug, Clone)]
pub struct StaticSource {
    tree: RootedTree,
    label: String,
}

impl StaticSource {
    /// A source that plays `tree` forever.
    pub fn new(tree: RootedTree) -> Self {
        let label = format!("static({})", summarize(&tree));
        StaticSource { tree, label }
    }

    /// Overrides the report label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

pub(crate) fn summarize(tree: &RootedTree) -> &'static str {
    if tree.is_path() {
        "path"
    } else if tree.is_star() {
        "star"
    } else {
        "tree"
    }
}

impl TreeSource for StaticSource {
    fn next_tree(&mut self, _state: &BroadcastState) -> RootedTree {
        self.tree.clone()
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

/// Plays a fixed schedule of trees, then repeats the last one.
///
/// Used to replay optimal sequences extracted by the exact solver and
/// beam-searched schedules.
#[derive(Debug, Clone)]
pub struct SequenceSource {
    trees: Vec<RootedTree>,
    next: usize,
    label: String,
}

impl SequenceSource {
    /// A source that plays `trees` in order; after the schedule runs out it
    /// keeps repeating the final tree.
    ///
    /// # Panics
    ///
    /// Panics if `trees` is empty.
    pub fn new(trees: Vec<RootedTree>) -> Self {
        assert!(!trees.is_empty(), "schedule needs at least one tree");
        SequenceSource {
            label: format!("sequence(len={})", trees.len()),
            trees,
            next: 0,
        }
    }

    /// Overrides the report label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// The full schedule.
    pub fn trees(&self) -> &[RootedTree] {
        &self.trees
    }
}

impl TreeSource for SequenceSource {
    fn next_tree(&mut self, _state: &BroadcastState) -> RootedTree {
        let idx = self.next.min(self.trees.len() - 1);
        self.next += 1;
        self.trees[idx].clone()
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

/// Hooks invoked by [`simulate_observed`] as the run progresses.
///
/// All methods have empty defaults; implement only what you need. The
/// metrics recorder and the runtime certificates are observers.
pub trait Observer {
    /// Called after round `t` has been applied; `tree` is the round's tree
    /// and `state` the state *after* the round.
    fn on_round(&mut self, tree: &RootedTree, state: &BroadcastState) {
        let _ = (tree, state);
    }

    /// Called once with the finished report.
    fn on_finish(&mut self, report: &RunReport) {
        let _ = report;
    }
}

/// What the simulation should wait for.
///
/// These are the two built-in members of the [`Workload`] lattice kept on
/// the classic engine interface; `k`-broadcast and token-subset workloads
/// run through [`crate::run_workload`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StopCondition {
    /// Stop at the first broadcast witness (Definition 2.2's `t*`).
    Broadcast,
    /// Keep going until everyone has heard from everyone (gossip); the
    /// broadcast time is still recorded on the way.
    Gossip,
}

impl StopCondition {
    /// The equivalent workload's termination predicate.
    fn workload(self) -> &'static dyn Workload {
        match self {
            StopCondition::Broadcast => &Broadcast,
            StopCondition::Gossip => &Gossip,
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct SimulationConfig {
    /// When to stop (broadcast by default).
    pub until: StopCondition,
    /// Hard safety cap on rounds; the run reports
    /// [`RunOutcome::RoundLimit`] if it is hit. Defaults to `8n + 16` via
    /// [`SimulationConfig::for_n`].
    pub max_rounds: u64,
}

impl SimulationConfig {
    /// The default configuration for an `n`-process run: stop at
    /// broadcast, cap at `8n + 16` rounds (comfortably above the paper's
    /// `⌈(1+√2)n−1⌉` theorem bound, so hitting it indicates a bug).
    pub fn for_n(n: usize) -> Self {
        SimulationConfig {
            until: StopCondition::Broadcast,
            max_rounds: 8 * n as u64 + 16,
        }
    }

    /// Same but running on to gossip completion.
    pub fn gossip_for_n(n: usize) -> Self {
        SimulationConfig {
            until: StopCondition::Gossip,
            ..Self::for_n(n)
        }
    }

    /// Replaces the round cap.
    pub fn with_max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }
}

/// Why a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RunOutcome {
    /// A broadcast witness appeared (and that was the stop condition).
    Broadcast {
        /// The smallest witnessing node.
        witness: NodeId,
    },
    /// Gossip completed.
    Gossip,
    /// The round cap was hit first.
    RoundLimit,
}

/// Summary of a finished run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Number of processes.
    pub n: usize,
    /// Name of the tree source that drove the run.
    pub source: String,
    /// Rounds executed.
    pub rounds: u64,
    /// Why the run stopped.
    pub outcome: RunOutcome,
    /// First round with a broadcast witness, if one appeared.
    pub broadcast_time: Option<u64>,
    /// First round with gossip complete, if reached.
    pub gossip_time: Option<u64>,
    /// Edges of `G(t)` at the end.
    pub final_edge_count: usize,
}

impl RunReport {
    /// The broadcast time, panicking with a helpful message if the run
    /// never broadcast (useful in experiments that expect completion).
    ///
    /// # Panics
    ///
    /// Panics if broadcast was not achieved.
    pub fn broadcast_time_or_panic(&self) -> u64 {
        self.broadcast_time.unwrap_or_else(|| {
            // analyze: allow(panic): documented panicking accessor (the _or_panic suffix is the contract)
            panic!(
                "source {:?} did not broadcast within {} rounds at n = {}",
                self.source, self.rounds, self.n
            )
        })
    }
}

/// Runs `source` against a fresh `n`-process state. Convenience wrapper
/// around [`simulate_observed`] with no observers.
///
/// # Examples
///
/// ```
/// use treecast_core::{simulate, SimulationConfig, StaticSource};
/// use treecast_trees::generators;
///
/// let n = 6;
/// let mut source = StaticSource::new(generators::path(n));
/// let report = simulate(n, &mut source, SimulationConfig::for_n(n));
/// assert_eq!(report.broadcast_time, Some(5));
/// ```
pub fn simulate<S: TreeSource + ?Sized>(
    n: usize,
    source: &mut S,
    config: SimulationConfig,
) -> RunReport {
    simulate_observed(n, source, config, &mut [])
}

/// Runs `source` against a fresh `n`-process state, feeding every round to
/// the observers.
///
/// # Panics
///
/// Panics if `n == 0` or the source produces a tree of the wrong size.
pub fn simulate_observed<S: TreeSource + ?Sized>(
    n: usize,
    source: &mut S,
    config: SimulationConfig,
    observers: &mut [&mut dyn Observer],
) -> RunReport {
    // The stop decision runs through the workload lattice: one
    // disseminated-token count per round feeds both milestone recorders
    // and the configured workload's termination predicate.
    let workload = config.until.workload();
    let mut state = BroadcastState::new(n);
    let mut progress = full_state_progress(&state);
    let mut broadcast_time = (progress.disseminated >= 1).then_some(0);
    let mut gossip_time = (progress.disseminated >= progress.tokens).then_some(0);

    while !workload.is_complete(&progress) && state.round() < config.max_rounds {
        let tree = source.next_tree(&state);
        state.apply(&tree);
        for obs in observers.iter_mut() {
            obs.on_round(&tree, &state);
        }
        progress = full_state_progress(&state);
        if broadcast_time.is_none() && progress.disseminated >= 1 {
            broadcast_time = Some(state.round());
        }
        if gossip_time.is_none() && progress.disseminated >= progress.tokens {
            gossip_time = Some(state.round());
        }
    }

    let outcome = if workload.is_complete(&progress) {
        match config.until {
            StopCondition::Broadcast => RunOutcome::Broadcast {
                witness: state
                    .broadcast_witness()
                    // analyze: allow(panic): the Broadcast stop condition fired, so a witness row exists
                    .expect("stop condition implies a witness"),
            },
            StopCondition::Gossip => RunOutcome::Gossip,
        }
    } else {
        RunOutcome::RoundLimit
    };

    let report = RunReport {
        n,
        source: source.name(),
        rounds: state.round(),
        outcome,
        broadcast_time,
        gossip_time,
        final_edge_count: state.edge_count(),
    };
    for obs in observers.iter_mut() {
        obs.on_finish(&report);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use treecast_trees::generators;

    #[test]
    fn static_path_takes_n_minus_1() {
        for n in 2..10 {
            let mut source = StaticSource::new(generators::path(n));
            let report = simulate(n, &mut source, SimulationConfig::for_n(n));
            assert_eq!(report.broadcast_time, Some((n - 1) as u64), "n = {n}");
            assert!(matches!(
                report.outcome,
                RunOutcome::Broadcast { witness: 0 }
            ));
        }
    }

    #[test]
    fn static_star_takes_1() {
        let mut source = StaticSource::new(generators::star(9));
        let report = simulate(9, &mut source, SimulationConfig::for_n(9));
        assert_eq!(report.broadcast_time, Some(1));
    }

    #[test]
    fn single_process_is_instant() {
        let mut source = StaticSource::new(generators::star(1));
        let report = simulate(1, &mut source, SimulationConfig::for_n(1));
        assert_eq!(report.broadcast_time, Some(0));
        assert_eq!(report.rounds, 0);
    }

    #[test]
    fn gossip_on_static_path_hits_round_limit() {
        let n = 4;
        let mut source = StaticSource::new(generators::path(n));
        let report = simulate(n, &mut source, SimulationConfig::gossip_for_n(n));
        assert_eq!(report.outcome, RunOutcome::RoundLimit);
        assert_eq!(report.broadcast_time, Some((n - 1) as u64));
        assert_eq!(report.gossip_time, None);
    }

    #[test]
    fn sequence_source_replays_then_repeats() {
        let n = 4;
        // One star round broadcasts instantly; schedule paths first.
        let schedule = vec![
            generators::path(n),
            generators::path(n),
            generators::star(n),
        ];
        let mut source = SequenceSource::new(schedule);
        let report = simulate(n, &mut source, SimulationConfig::for_n(n));
        assert_eq!(report.broadcast_time, Some(3));
    }

    #[test]
    fn sequence_source_exposes_schedule() {
        let s = SequenceSource::new(vec![generators::path(3)]);
        assert_eq!(s.trees().len(), 1);
        assert!(s.name().contains("sequence"));
    }

    #[test]
    fn observer_sees_every_round() {
        struct Counter {
            rounds: u64,
            finishes: u64,
        }
        impl Observer for Counter {
            fn on_round(&mut self, _t: &RootedTree, _s: &BroadcastState) {
                self.rounds += 1;
            }
            fn on_finish(&mut self, report: &RunReport) {
                self.finishes += 1;
                assert_eq!(report.rounds, self.rounds);
            }
        }
        let n = 5;
        let mut counter = Counter {
            rounds: 0,
            finishes: 0,
        };
        let mut source = StaticSource::new(generators::path(n));
        simulate_observed(
            n,
            &mut source,
            SimulationConfig::for_n(n),
            &mut [&mut counter],
        );
        assert_eq!(counter.rounds, (n - 1) as u64);
        assert_eq!(counter.finishes, 1);
    }

    #[test]
    fn labels_flow_into_reports() {
        let n = 3;
        let mut source = StaticSource::new(generators::path(n)).with_label("my-path");
        let report = simulate(n, &mut source, SimulationConfig::for_n(n));
        assert_eq!(report.source, "my-path");
    }
}
