//! The fault/scenario layer over [`run_workload`]: token loss, dynamic
//! root reassignment, and node dropout/rejoin.
//!
//! The paper's model gives the adversary the round topology but guarantees
//! perfect memory, a fixed root role per tree, and full participation.
//! Schwarz, Zeiner & Schmid (arXiv:1701.06800) show dissemination bounds
//! shift qualitatively once such guarantees weaken — this module makes the
//! weakened scenarios executable on top of the [`Workload`] lattice:
//!
//! * **token loss** — at the end of a round, a faulty node forgets every
//!   token it has heard except its own ([`BroadcastState::forget`] /
//!   `TrackedTokens::forget`);
//! * **dynamic root reassignment** — the adversary commits to a round
//!   tree, then the fault layer re-roots it at another node
//!   (`RootedTree::rerooted`), flipping the edges on the root path while
//!   keeping the topology;
//! * **dropout/rejoin** — an offline node neither sends nor receives for
//!   the round (its incident tree edges are dropped; it keeps its memory
//!   and self-loop) and rejoins when the model stops listing it.
//!
//! Faults come from a [`FaultModel`] — deterministic schedules
//! ([`FaultSchedule`], [`RotatingRoot`]) or a seeded random generator
//! ([`SeededFaults`]). Whatever the model, [`run_workload_faulty`] records
//! the faults it actually applied into [`WorkloadReport::fault_log`], and
//! replaying that log through [`FaultSchedule::replay`] reproduces the run
//! bit-identically — every scenario result stays a replayable witness.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use treecast_bitmatrix::BoolMatrix;
use treecast_trees::{NodeId, RootedTree};

use crate::engine::{SimulationConfig, TreeSource};
use crate::model::BroadcastState;
use crate::workload::{
    full_state_progress, SourceSet, TrackedTokens, Workload, WorkloadOutcome, WorkloadProgress,
    WorkloadReport,
};

#[cfg(doc)]
use crate::workload::run_workload;

/// The faults applied in one round. Produced by a [`FaultModel`],
/// normalized (sorted, deduplicated, bounds-checked) and recorded verbatim
/// into [`WorkloadReport::fault_log`] by the runner.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RoundFaults {
    /// Nodes that forget all foreign tokens at the end of the round.
    pub losses: Vec<NodeId>,
    /// Re-root the round's tree at this node before applying it.
    pub root: Option<NodeId>,
    /// Nodes offline for this round: their incident tree edges are
    /// dropped (memory and self-loop are kept).
    pub offline: Vec<NodeId>,
}

impl RoundFaults {
    /// A fault-free round.
    pub fn quiet() -> Self {
        RoundFaults::default()
    }

    /// `true` when the round carries no fault at all.
    pub fn is_quiet(&self) -> bool {
        self.losses.is_empty() && self.root.is_none() && self.offline.is_empty()
    }

    /// Sorts and deduplicates the node lists and bounds-checks everything
    /// against `n`. Public so every runner — the dense and frontier
    /// engines here, the gossip emulation in `treecast-emulation` —
    /// normalizes identically before recording the round into a fault
    /// log.
    ///
    /// # Panics
    ///
    /// Panics if any named node is `>= n`.
    pub fn normalize(&mut self, n: usize) {
        self.losses.sort_unstable();
        self.losses.dedup();
        self.offline.sort_unstable();
        self.offline.dedup();
        for &v in self.losses.iter().chain(self.offline.iter()) {
            assert!(v < n, "fault names node {v}, out of range for n = {n}");
        }
        if let Some(r) = self.root {
            assert!(r < n, "fault root {r} out of range for n = {n}");
        }
    }
}

/// Produces the faults of each round, in round order.
///
/// The runner calls [`FaultModel::faults`] exactly once per executed
/// round with rounds numbered from 1, so stateful models (seeded RNGs,
/// dropout windows) are deterministic per run.
pub trait FaultModel {
    /// The faults to apply in round `round` (1-based) of an `n`-process
    /// run.
    fn faults(&mut self, round: u64, n: usize) -> RoundFaults;

    /// Name used in reports.
    fn name(&self) -> String;
}

/// The fault-free model: [`run_workload_faulty`] under [`NoFaults`] is
/// round-for-round identical to plain [`run_workload`].
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultModel for NoFaults {
    fn faults(&mut self, _round: u64, _n: usize) -> RoundFaults {
        RoundFaults::quiet()
    }

    fn name(&self) -> String {
        "no-faults".into()
    }
}

/// An explicit per-round fault schedule; rounds beyond the end are quiet.
///
/// This is both the hand-written scenario construct and the replay vehicle:
/// [`FaultSchedule::replay`] of a recorded
/// [`WorkloadReport::fault_log`] drives a bit-identical rerun.
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    rounds: Vec<RoundFaults>,
}

impl FaultSchedule {
    /// A schedule applying `rounds[t - 1]` in round `t`.
    pub fn new(rounds: Vec<RoundFaults>) -> Self {
        FaultSchedule { rounds }
    }

    /// A schedule replaying a recorded fault log.
    pub fn replay(log: &[RoundFaults]) -> Self {
        FaultSchedule {
            rounds: log.to_vec(),
        }
    }

    /// The scheduled rounds.
    pub fn rounds(&self) -> &[RoundFaults] {
        &self.rounds
    }
}

impl FaultModel for FaultSchedule {
    fn faults(&mut self, round: u64, _n: usize) -> RoundFaults {
        self.rounds
            .get((round - 1) as usize)
            .cloned()
            .unwrap_or_default()
    }

    fn name(&self) -> String {
        format!("schedule(len={})", self.rounds.len())
    }
}

/// Deterministic dynamic-root scenario: every `period` rounds the root
/// role moves to the next node (round `t` re-roots at
/// `((t − 1) / period) mod n`).
#[derive(Debug, Clone, Copy)]
pub struct RotatingRoot {
    period: u64,
}

impl RotatingRoot {
    /// Rotation with the given period (in rounds).
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn new(period: u64) -> Self {
        assert!(period >= 1, "rotation period must be positive");
        RotatingRoot { period }
    }
}

impl FaultModel for RotatingRoot {
    fn faults(&mut self, round: u64, n: usize) -> RoundFaults {
        RoundFaults {
            root: Some((((round - 1) / self.period) % n as u64) as NodeId),
            ..RoundFaults::quiet()
        }
    }

    fn name(&self) -> String {
        format!("rotating-root(period={})", self.period)
    }
}

/// Seeded random fault generator: per round, every node forgets with
/// probability `loss_permille`/1000, goes offline for `dropout_rounds`
/// rounds with probability `dropout_permille`/1000, and the round is
/// re-rooted at a uniform node with probability `root_permille`/1000.
/// The percent builders ([`SeededFaults::with_token_loss`] etc.) are
/// exact wrappers over the per-mille ones (`p%` ≡ `10p‰`), which is what
/// lets the Monte Carlo sweeps resolve sub-percent transitions without
/// disturbing any percent-configured stream.
///
/// Fully deterministic given the seed and the round sequence — the runner
/// queries rounds in order, so a rerun with the same configuration
/// replays the identical fault sequence (and so does
/// [`FaultSchedule::replay`] of the recorded log, without the model).
///
/// # Offline-loss semantics
///
/// Token loss is sampled for **every** node each round, including nodes
/// that are offline that round: dropout is a *connectivity* fault (the
/// node's tree edges are dropped) while loss is a *memory* fault (the
/// node's foreign tokens are wiped), and the two streams are
/// independent. A [`RoundFaults`] produced here may therefore name the
/// same node in both `losses` and `offline`, and the runners apply both
/// — the node neither sends nor receives and ends the round holding only
/// its own token. Suppressing the draw instead would silently shift
/// every later sample in the stream; the independent-sampling semantics
/// is pinned by regression tests.
///
/// # Fixed n
///
/// The dropout windows are per-node state, so one model instance must be
/// driven at a single network size: [`SeededFaults::faults`] panics if
/// `n` changes between calls (it used to silently truncate the windows).
#[derive(Debug, Clone)]
pub struct SeededFaults {
    rng: StdRng,
    seed: u64,
    loss_permille: u32,
    dropout_permille: u32,
    dropout_rounds: u64,
    root_permille: u32,
    /// Per node, the first round it is back online (0 = online now).
    offline_until: Vec<u64>,
}

impl SeededFaults {
    /// A quiet model with the given seed; enable fault classes with the
    /// builder methods.
    pub fn new(seed: u64) -> Self {
        SeededFaults {
            rng: StdRng::seed_from_u64(seed),
            seed,
            loss_permille: 0,
            dropout_permille: 0,
            dropout_rounds: 1,
            root_permille: 0,
            offline_until: Vec::new(),
        }
    }

    /// Every node forgets with probability `percent`/100 per round.
    ///
    /// Exact wrapper over [`SeededFaults::with_token_loss_permille`]
    /// (`percent`% ≡ `10·percent`‰, draw-for-draw).
    ///
    /// # Panics
    ///
    /// Panics if `percent > 100`.
    pub fn with_token_loss(self, percent: u32) -> Self {
        assert!(percent <= 100, "loss percent must be ≤ 100");
        self.with_token_loss_permille(10 * percent)
    }

    /// Every node forgets with probability `permille`/1000 per round.
    ///
    /// # Panics
    ///
    /// Panics if `permille > 1000`.
    pub fn with_token_loss_permille(mut self, permille: u32) -> Self {
        assert!(permille <= 1000, "loss permille must be ≤ 1000");
        self.loss_permille = permille;
        self
    }

    /// Every online node drops out with probability `percent`/100 per
    /// round, staying offline for `rounds` rounds before rejoining.
    ///
    /// Exact wrapper over [`SeededFaults::with_dropout_permille`]
    /// (`percent`% ≡ `10·percent`‰, draw-for-draw).
    ///
    /// # Panics
    ///
    /// Panics if `percent > 100` or `rounds == 0`.
    pub fn with_dropout(self, percent: u32, rounds: u64) -> Self {
        assert!(percent <= 100, "dropout percent must be ≤ 100");
        self.with_dropout_permille(10 * percent, rounds)
    }

    /// Every online node drops out with probability `permille`/1000 per
    /// round, staying offline for `rounds` rounds before rejoining.
    ///
    /// # Panics
    ///
    /// Panics if `permille > 1000` or `rounds == 0`.
    pub fn with_dropout_permille(mut self, permille: u32, rounds: u64) -> Self {
        assert!(permille <= 1000, "dropout permille must be ≤ 1000");
        assert!(rounds >= 1, "dropout must last at least one round");
        self.dropout_permille = permille;
        self.dropout_rounds = rounds;
        self
    }

    /// The round is re-rooted at a uniform random node with probability
    /// `percent`/100.
    ///
    /// Exact wrapper over [`SeededFaults::with_root_changes_permille`]
    /// (`percent`% ≡ `10·percent`‰, draw-for-draw).
    ///
    /// # Panics
    ///
    /// Panics if `percent > 100`.
    pub fn with_root_changes(self, percent: u32) -> Self {
        assert!(percent <= 100, "root-change percent must be ≤ 100");
        self.with_root_changes_permille(10 * percent)
    }

    /// The round is re-rooted at a uniform random node with probability
    /// `permille`/1000.
    ///
    /// # Panics
    ///
    /// Panics if `permille > 1000`.
    pub fn with_root_changes_permille(mut self, permille: u32) -> Self {
        assert!(permille <= 1000, "root-change permille must be ≤ 1000");
        self.root_permille = permille;
        self
    }

    /// One Bernoulli draw at `permille`/1000.
    ///
    /// Exactly one RNG word is consumed for any non-zero rate, and rates
    /// that are whole percents keep drawing through `gen_ratio(p, 100)`
    /// — the historical stream — so every percent-configured model (and
    /// every recorded baseline/replay) stays bit-identical; only true
    /// sub-percent rates take the finer `gen_ratio(p, 1000)` draw.
    fn chance(&mut self, permille: u32) -> bool {
        if permille == 0 {
            false
        } else if permille % 10 == 0 {
            self.rng.gen_ratio(permille / 10, 100)
        } else {
            self.rng.gen_ratio(permille, 1000)
        }
    }
}

/// `5%` for whole percents, `5‰` otherwise — keeps every historical
/// percent-era label byte-identical while sub-percent rates stay
/// visible. Crate-visible so [`crate::replica::FaultSpec`] labels rates
/// identically.
pub(crate) fn rate_label(permille: u32) -> String {
    if permille % 10 == 0 {
        format!("{}%", permille / 10)
    } else {
        format!("{permille}‰")
    }
}

impl FaultModel for SeededFaults {
    /// # Panics
    ///
    /// Panics if `n` differs from the `n` of an earlier call on the same
    /// instance — the dropout windows are per-node state, and silently
    /// truncating (the old behavior) would drop live offline windows.
    fn faults(&mut self, round: u64, n: usize) -> RoundFaults {
        assert!(
            self.offline_until.is_empty() || self.offline_until.len() == n,
            "SeededFaults was driven at n = {} and cannot switch to n = {n}: \
             the dropout windows are per-node state",
            self.offline_until.len()
        );
        self.offline_until.resize(n, 0);
        let mut faults = RoundFaults::quiet();
        for v in 0..n {
            if self.offline_until[v] > round {
                faults.offline.push(v);
            } else if self.chance(self.dropout_permille) {
                self.offline_until[v] = round + self.dropout_rounds;
                faults.offline.push(v);
            }
            // Sampled for offline nodes too — see the struct docs: loss is
            // a memory fault, independent of the connectivity fault.
            if self.chance(self.loss_permille) {
                faults.losses.push(v);
            }
        }
        if self.chance(self.root_permille) {
            faults.root = Some(self.rng.gen_range(0..n));
        }
        faults
    }

    fn name(&self) -> String {
        format!(
            "seeded(seed={}, loss={}, drop={}x{}, root={})",
            self.seed,
            rate_label(self.loss_permille),
            rate_label(self.dropout_permille),
            self.dropout_rounds,
            rate_label(self.root_permille)
        )
    }
}

/// Runs `source` against `workload` under `faults` — the fault-layer
/// generalization of [`run_workload`].
///
/// Per round: the fault model is queried, the source's tree is re-rooted
/// if demanded, edges incident to offline nodes are dropped (self-loops
/// stay, so nobody loses memory by being offline), the masked round is
/// applied, and finally the round's loss victims forget their foreign
/// tokens. The faults actually applied land in
/// [`WorkloadReport::fault_log`] — [`FaultSchedule::replay`] of that log
/// reproduces the run bit-identically (given the same deterministic
/// `source`).
///
/// Token loss makes progress non-monotone, so unlike the fault-free
/// engine a scenario run can *regress*; the run still stops at the first
/// round whose end state satisfies the workload (or at the cap).
///
/// # Examples
///
/// ```
/// use treecast_core::scenario::{run_workload_faulty, NoFaults};
/// use treecast_core::{run_workload, Broadcast, SimulationConfig, StaticSource};
/// use treecast_trees::generators;
///
/// let n = 6;
/// let cfg = SimulationConfig::for_n(n);
/// let mut a = StaticSource::new(generators::path(n));
/// let mut b = StaticSource::new(generators::path(n));
/// let faulty = run_workload_faulty(n, &mut a, &Broadcast, &mut NoFaults, cfg);
/// let plain = run_workload(n, &mut b, &Broadcast, cfg);
/// assert_eq!(faulty.completion_time, plain.completion_time);
/// assert!(faulty.fault_log.iter().all(|f| f.is_quiet()));
/// ```
///
/// # Panics
///
/// Panics if `n == 0`, a fault names a node `>= n`, or the tree source
/// produces a tree of the wrong size.
pub fn run_workload_faulty<S, W, F>(
    n: usize,
    source: &mut S,
    workload: &W,
    faults: &mut F,
    config: SimulationConfig,
) -> WorkloadReport
where
    S: TreeSource + ?Sized,
    W: Workload + ?Sized,
    F: FaultModel + ?Sized,
{
    run_workload_faulty_traced(n, source, workload, faults, config, |_, _, _| {})
}

/// [`run_workload_faulty`] with a per-round hook: called after every
/// executed round with the faults applied, the (re-rooted, pre-masking)
/// tree, and the state after the round — the round-for-round witness the
/// differential tests compare against the fault-free engine.
pub fn run_workload_faulty_traced<S, W, F>(
    n: usize,
    source: &mut S,
    workload: &W,
    faults: &mut F,
    config: SimulationConfig,
    mut on_round: impl FnMut(&RoundFaults, &RootedTree, &BroadcastState),
) -> WorkloadReport
where
    S: TreeSource + ?Sized,
    W: Workload + ?Sized,
    F: FaultModel + ?Sized,
{
    let mut state = BroadcastState::new(n);
    let mut tracked = match workload.sources(n) {
        SourceSet::All => None,
        SourceSet::Nodes(sources) => Some(TrackedTokens::new(n, &sources)),
    };
    let progress_of = |state: &BroadcastState, tracked: &Option<TrackedTokens>| match tracked {
        Some(t) => t.progress(),
        None => full_state_progress(state),
    };
    let full_disseminated = |progress: &WorkloadProgress,
                             tracked: &Option<TrackedTokens>,
                             state: &BroadcastState| match tracked {
        None => progress.disseminated,
        Some(_) => state.disseminated_count(),
    };

    let mut progress = progress_of(&state, &tracked);
    let mut completion_time = workload.is_complete(&progress).then_some(0);
    let mut broadcast_time = (full_disseminated(&progress, &tracked, &state) >= 1).then_some(0);
    let mut fault_log: Vec<RoundFaults> = Vec::new();
    let mut round_matrix = BoolMatrix::zeros(n);

    while completion_time.is_none() && state.round() < config.max_rounds {
        let mut rf = faults.faults(state.round() + 1, n);
        rf.normalize(n);
        let tree = source.next_tree(&state);
        let tree = match rf.root {
            Some(r) => tree.rerooted(r),
            None => tree,
        };
        if rf.is_quiet() {
            // Quiet rounds take the engine's cheap tree-apply stepping
            // (reverse-BFS row unions — no matrix to build), which is what
            // lets `run_workload` delegate here at zero per-round cost.
            state.apply(&tree);
            if let Some(t) = tracked.as_mut() {
                t.apply(&tree);
            }
        } else {
            round_matrix.clear();
            round_matrix.add_self_loops();
            let is_offline = |v: NodeId| rf.offline.binary_search(&v).is_ok();
            for y in 0..n {
                if let Some(p) = tree.parent(y) {
                    if !is_offline(p) && !is_offline(y) {
                        round_matrix.set(p, y, true);
                    }
                }
            }
            state.apply_matrix(&round_matrix);
            if let Some(t) = tracked.as_mut() {
                t.apply_matrix(&round_matrix);
            }
            for &y in &rf.losses {
                state.forget(y);
                if let Some(t) = tracked.as_mut() {
                    t.forget(y);
                }
            }
        }
        on_round(&rf, &tree, &state);
        fault_log.push(rf);
        progress = progress_of(&state, &tracked);
        if workload.is_complete(&progress) {
            completion_time = Some(progress.round);
        }
        if broadcast_time.is_none() && full_disseminated(&progress, &tracked, &state) >= 1 {
            broadcast_time = Some(state.round());
        }
    }

    WorkloadReport {
        n,
        workload: workload.name(),
        source: source.name(),
        rounds: state.round(),
        outcome: if completion_time.is_some() {
            WorkloadOutcome::Completed
        } else {
            WorkloadOutcome::RoundLimit
        },
        completion_time,
        broadcast_time,
        disseminated: progress.disseminated,
        tokens: progress.tokens,
        fault_log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SequenceSource, StaticSource};
    use crate::workload::{run_workload, Broadcast, Gossip, KSourceBroadcast};
    use treecast_trees::generators;

    #[test]
    fn no_faults_matches_run_workload() {
        for n in [2usize, 5, 9] {
            let cfg = SimulationConfig::for_n(n);
            let mut a = StaticSource::new(generators::path(n));
            let mut b = StaticSource::new(generators::path(n));
            let faulty = run_workload_faulty(n, &mut a, &Broadcast, &mut NoFaults, cfg);
            let plain = run_workload(n, &mut b, &Broadcast, cfg);
            assert_eq!(faulty.completion_time, plain.completion_time, "n = {n}");
            assert_eq!(faulty.broadcast_time, plain.broadcast_time, "n = {n}");
            assert_eq!(faulty.rounds, plain.rounds, "n = {n}");
            assert_eq!(faulty.fault_log.len() as u64, faulty.rounds);
        }
    }

    #[test]
    fn token_loss_delays_the_static_path() {
        // Losing the far end of the path every round stalls it: node n−1
        // forgets each round, so the root token never sticks there.
        let n = 5;
        let mut schedule: Vec<RoundFaults> = Vec::new();
        for _ in 0..3 * n {
            schedule.push(RoundFaults {
                losses: vec![n - 1],
                ..RoundFaults::quiet()
            });
        }
        let mut src = StaticSource::new(generators::path(n));
        let report = run_workload_faulty(
            n,
            &mut src,
            &Broadcast,
            &mut FaultSchedule::new(schedule),
            SimulationConfig::for_n(n).with_max_rounds(3 * n as u64),
        );
        assert_eq!(report.outcome, WorkloadOutcome::RoundLimit);
        assert_eq!(report.completion_time, None);
    }

    #[test]
    fn offline_root_freezes_the_round() {
        // With the root of a star offline, the round is all self-loops:
        // nothing moves.
        let n = 6;
        let mut schedule = FaultSchedule::new(vec![RoundFaults {
            offline: vec![0],
            ..RoundFaults::quiet()
        }]);
        let mut src = StaticSource::new(generators::star(n));
        let report = run_workload_faulty(
            n,
            &mut src,
            &Broadcast,
            &mut schedule,
            SimulationConfig::for_n(n),
        );
        // Round 1 is frozen, round 2 completes the star broadcast.
        assert_eq!(report.completion_time, Some(2));
    }

    #[test]
    fn rotating_root_changes_the_static_path() {
        // Re-rooting the static path makes it complete from a different
        // witness; the run must still finish within the cap and log a root
        // change every round.
        let n = 6;
        let mut src = StaticSource::new(generators::path(n));
        let report = run_workload_faulty(
            n,
            &mut src,
            &Broadcast,
            &mut RotatingRoot::new(2),
            SimulationConfig::for_n(n),
        );
        assert!(report.completion_time.is_some());
        assert!(report.fault_log.iter().all(|f| f.root.is_some()));
    }

    #[test]
    fn seeded_faults_replay_bit_identically() {
        let n = 7;
        let cfg = SimulationConfig::for_n(n).with_max_rounds(4 * n as u64);
        let schedule: Vec<_> = (0..n).map(|c| generators::star_with_center(n, c)).collect();
        let mut model = SeededFaults::new(0xFA017)
            .with_token_loss(20)
            .with_dropout(15, 2)
            .with_root_changes(30);
        let mut src = SequenceSource::new(schedule.clone());
        let original = run_workload_faulty(n, &mut src, &Gossip, &mut model, cfg);

        let mut replay = FaultSchedule::replay(&original.fault_log);
        let mut src = SequenceSource::new(schedule);
        let rerun = run_workload_faulty(n, &mut src, &Gossip, &mut replay, cfg);
        assert_eq!(rerun.completion_time, original.completion_time);
        assert_eq!(rerun.broadcast_time, original.broadcast_time);
        assert_eq!(rerun.rounds, original.rounds);
        assert_eq!(rerun.disseminated, original.disseminated);
        assert_eq!(rerun.fault_log, original.fault_log);
    }

    #[test]
    fn tracked_workloads_take_faults_too() {
        let n = 6;
        let workload = KSourceBroadcast::evenly_spread(n, 2);
        let schedule: Vec<_> = (0..n).map(|c| generators::star_with_center(n, c)).collect();
        let mut src = SequenceSource::new(schedule);
        let mut model = SeededFaults::new(7).with_token_loss(25);
        let report = run_workload_faulty(
            n,
            &mut src,
            &workload,
            &mut model,
            SimulationConfig::for_n(n),
        );
        assert_eq!(report.tokens, 2);
        assert_eq!(report.fault_log.len() as u64, report.rounds);
    }

    #[test]
    fn fault_normalization_sorts_and_dedups() {
        let mut rf = RoundFaults {
            losses: vec![3, 1, 3],
            root: Some(2),
            offline: vec![4, 4, 0],
        };
        rf.normalize(5);
        assert_eq!(rf.losses, vec![1, 3]);
        assert_eq!(rf.offline, vec![0, 4]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fault_on_unknown_node_rejected() {
        let n = 4;
        let mut schedule = FaultSchedule::new(vec![RoundFaults {
            losses: vec![n],
            ..RoundFaults::quiet()
        }]);
        let mut src = StaticSource::new(generators::path(n));
        run_workload_faulty(
            n,
            &mut src,
            &Broadcast,
            &mut schedule,
            SimulationConfig::for_n(n),
        );
    }

    #[test]
    fn model_names_mention_configuration() {
        assert_eq!(NoFaults.name(), "no-faults");
        assert!(FaultSchedule::new(vec![]).name().contains("len=0"));
        assert!(RotatingRoot::new(3).name().contains("period=3"));
        let s = SeededFaults::new(9).with_token_loss(5).name();
        assert!(s.contains("loss=5%"), "{s}");
        let s = SeededFaults::new(9).with_token_loss_permille(7).name();
        assert!(s.contains("loss=7‰"), "{s}");
    }

    #[test]
    fn percent_and_permille_streams_are_bit_identical() {
        // The percent builders are exact wrappers: p% and 10p‰ must draw
        // the identical fault stream (this is what keeps every recorded
        // percent-era baseline and replay valid).
        let n = 9;
        let mut percent = SeededFaults::new(0xBEEF)
            .with_token_loss(7)
            .with_dropout(15, 2)
            .with_root_changes(30);
        let mut permille = SeededFaults::new(0xBEEF)
            .with_token_loss_permille(70)
            .with_dropout_permille(150, 2)
            .with_root_changes_permille(300);
        for round in 1..=64 {
            assert_eq!(
                percent.faults(round, n),
                permille.faults(round, n),
                "round {round}"
            );
        }
    }

    #[test]
    fn permille_resolves_sub_percent_rates() {
        // 5‰ must fire sometimes (it is not floored to zero) but stay
        // well under a 2% empirical rate over a long deterministic run.
        let n = 100;
        let rounds = 200;
        let mut model = SeededFaults::new(0x5EED).with_token_loss_permille(5);
        let events: usize = (1..=rounds).map(|r| model.faults(r, n).losses.len()).sum();
        let draws = rounds as usize * n;
        assert!(events > 0, "5‰ over {draws} draws fired zero times");
        assert!(
            events * 50 < draws,
            "5‰ fired {events}/{draws} times — above 2%"
        );
    }

    #[test]
    fn offline_nodes_still_sample_loss() {
        // Loss is a memory fault, independent of dropout: a round may
        // name the same node in both lists, and the combined run still
        // replays bit-identically from its log.
        let n = 8;
        let cfg = SimulationConfig::for_n(n).with_max_rounds(6 * n as u64);
        let schedule: Vec<_> = (0..n).map(|c| generators::star_with_center(n, c)).collect();
        let mut model = SeededFaults::new(0x0FF1)
            .with_token_loss(50)
            .with_dropout(50, 3);
        let mut src = SequenceSource::new(schedule.clone());
        let original = run_workload_faulty(n, &mut src, &Gossip, &mut model, cfg);
        let overlap = original.fault_log.iter().any(|rf| {
            rf.losses
                .iter()
                .any(|v| rf.offline.binary_search(v).is_ok())
        });
        assert!(
            overlap,
            "expected some round to lose a token on an offline node: {:?}",
            original.fault_log
        );

        let mut replay = FaultSchedule::replay(&original.fault_log);
        let mut src = SequenceSource::new(schedule);
        let rerun = run_workload_faulty(n, &mut src, &Gossip, &mut replay, cfg);
        assert_eq!(rerun.fault_log, original.fault_log);
        assert_eq!(rerun.completion_time, original.completion_time);
        assert_eq!(rerun.disseminated, original.disseminated);
    }

    #[test]
    #[should_panic(expected = "cannot switch to n")]
    fn seeded_faults_reject_changing_n() {
        let mut model = SeededFaults::new(1).with_dropout(10, 2);
        let _ = model.faults(1, 8);
        let _ = model.faults(2, 4);
    }

    #[test]
    #[should_panic(expected = "loss permille must be ≤ 1000")]
    fn permille_rates_are_bounded() {
        let _ = SeededFaults::new(1).with_token_loss_permille(1001);
    }
}
