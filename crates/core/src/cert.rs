//! Runtime certificates: executable versions of the paper's structural
//! facts, checked on live runs.
//!
//! * **Monotonicity** — self-loops mean no information is ever lost:
//!   `G(t−1) ⊆ G(t)` entry-wise.
//! * **Strict progress** — Section 2: *"in each round, it is easy to see
//!   that at least one new edge appears in the product graph"* (before
//!   broadcast), which gives the trivial `n²` bound.
//! * **Theorem 3.1 sandwich** — any measured broadcast time must respect
//!   `t ≤ ⌈(1+√2)n − 1⌉`; for provably optimal adversaries it must also
//!   reach `⌈(3n−1)/2⌉ − 2`.
//!
//! Attach a [`CertObserver`] to a simulation and interrogate it afterwards,
//! or let property tests assert [`CertObserver::violations`] is empty.

use treecast_trees::RootedTree;

use crate::bounds;
use crate::engine::{Observer, RunReport};
use crate::model::BroadcastState;

/// A broken invariant detected during a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// An entry of the product graph disappeared between rounds.
    MonotonicityBroken {
        /// Round after which the entry vanished.
        round: u64,
    },
    /// A pre-broadcast round added no new edge.
    NoProgress {
        /// The stagnant round.
        round: u64,
    },
    /// The run's tree had the wrong number of nodes.
    WrongTreeSize {
        /// The offending round.
        round: u64,
        /// Nodes in the offending tree.
        got: usize,
        /// Processes in the run.
        expected: usize,
    },
    /// Broadcast happened later than the paper's upper bound allows.
    UpperBoundExceeded {
        /// Measured broadcast time.
        measured: u64,
        /// The bound `⌈(1+√2)n − 1⌉`.
        bound: u64,
    },
}

impl core::fmt::Display for Violation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            Violation::MonotonicityBroken { round } => {
                write!(f, "product graph lost an edge after round {round}")
            }
            Violation::NoProgress { round } => {
                write!(f, "round {round} added no edge before broadcast")
            }
            Violation::WrongTreeSize {
                round,
                got,
                expected,
            } => write!(f, "round {round} tree has {got} nodes, expected {expected}"),
            Violation::UpperBoundExceeded { measured, bound } => write!(
                f,
                "broadcast took {measured} rounds, above the theorem bound {bound}"
            ),
        }
    }
}

/// Observer that checks monotonicity, strict progress, and the Theorem 3.1
/// upper bound on every run it watches.
///
/// Full subset checks cost `O(n²/64)` per round; cheap mode
/// ([`CertObserver::edges_only`]) tracks only edge counts, which already
/// implies strict progress and catches gross monotonicity breaks.
///
/// # Examples
///
/// ```
/// use treecast_core::{simulate_observed, CertObserver, SimulationConfig, StaticSource};
/// use treecast_trees::generators;
///
/// let n = 7;
/// let mut cert = CertObserver::full();
/// let mut source = StaticSource::new(generators::path(n));
/// simulate_observed(n, &mut source, SimulationConfig::for_n(n), &mut [&mut cert]);
/// assert!(cert.is_clean(), "violations: {:?}", cert.violations());
/// ```
#[derive(Debug, Clone)]
pub struct CertObserver {
    full_checks: bool,
    prev_state: Option<BroadcastState>,
    prev_edges: usize,
    had_witness: bool,
    violations: Vec<Violation>,
}

impl CertObserver {
    /// Full per-round subset checks plus edge accounting.
    pub fn full() -> Self {
        CertObserver {
            full_checks: true,
            prev_state: None,
            prev_edges: 0,
            had_witness: false,
            violations: Vec::new(),
        }
    }

    /// Edge-count-only mode for large runs.
    pub fn edges_only() -> Self {
        CertObserver {
            full_checks: false,
            ..Self::full()
        }
    }

    /// All violations recorded so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Returns `true` if no violation was recorded.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl Observer for CertObserver {
    fn on_round(&mut self, tree: &RootedTree, state: &BroadcastState) {
        let round = state.round();
        if tree.n() != state.n() {
            self.violations.push(Violation::WrongTreeSize {
                round,
                got: tree.n(),
                expected: state.n(),
            });
        }
        let first_round = self.prev_state.is_none() && self.prev_edges == 0;
        let prev_edges = if first_round {
            state.n()
        } else {
            self.prev_edges
        };

        let edges = state.edge_count();
        if edges < prev_edges {
            self.violations
                .push(Violation::MonotonicityBroken { round });
        }
        // Strict progress applies to rounds that start without a witness.
        if !self.had_witness && edges == prev_edges {
            self.violations.push(Violation::NoProgress { round });
        }
        if self.full_checks {
            if let Some(prev) = &self.prev_state {
                for y in 0..state.n() {
                    if !prev.heard_set(y).is_subset(state.heard_set(y)) {
                        self.violations
                            .push(Violation::MonotonicityBroken { round });
                        break;
                    }
                }
            }
            self.prev_state = Some(state.clone());
        }
        self.prev_edges = edges;
        self.had_witness = state.broadcast_witness().is_some();
    }

    fn on_finish(&mut self, report: &RunReport) {
        if let Some(t) = report.broadcast_time {
            let bound = bounds::upper_bound(report.n as u64);
            if t > bound {
                self.violations
                    .push(Violation::UpperBoundExceeded { measured: t, bound });
            }
        }
    }
}

/// Verdict of checking a measured broadcast time against Theorem 3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TheoremVerdict {
    /// Number of processes.
    pub n: u64,
    /// The measured broadcast time.
    pub measured: u64,
    /// `measured ≤ ⌈(1+√2)n − 1⌉` — must hold for *every* adversary.
    pub within_upper: bool,
    /// `measured ≥ ⌈(3n−1)/2⌉ − 2` — expected only of (near-)optimal
    /// adversaries; `false` just means the strategy is weak.
    pub reaches_lower: bool,
}

/// Checks a measured broadcast time against both sides of Theorem 3.1.
///
/// # Examples
///
/// ```
/// use treecast_core::cert::check_theorem;
/// let v = check_theorem(10, 14);
/// assert!(v.within_upper && v.reaches_lower);
/// let weak = check_theorem(10, 9); // static path: n − 1
/// assert!(weak.within_upper && !weak.reaches_lower);
/// ```
pub fn check_theorem(n: u64, measured: u64) -> TheoremVerdict {
    TheoremVerdict {
        n,
        measured,
        within_upper: measured <= bounds::upper_bound(n),
        reaches_lower: measured >= bounds::lower_bound(n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate_observed, SimulationConfig, StaticSource};
    use treecast_trees::generators;

    #[test]
    fn clean_run_has_no_violations() {
        for n in [2usize, 5, 9, 17] {
            let mut cert = CertObserver::full();
            let mut src = StaticSource::new(generators::path(n));
            simulate_observed(n, &mut src, SimulationConfig::for_n(n), &mut [&mut cert]);
            assert!(cert.is_clean(), "n = {n}: {:?}", cert.violations());
        }
    }

    #[test]
    fn cheap_mode_also_clean() {
        let n = 33;
        let mut cert = CertObserver::edges_only();
        let mut src = StaticSource::new(generators::broom(n, 5));
        simulate_observed(n, &mut src, SimulationConfig::for_n(n), &mut [&mut cert]);
        assert!(cert.is_clean());
    }

    #[test]
    fn detects_upper_bound_breach() {
        // Fabricate a report that claims to exceed the theorem bound.
        let mut cert = CertObserver::full();
        let report = RunReport {
            n: 4,
            source: "fake".into(),
            rounds: 100,
            outcome: crate::engine::RunOutcome::Broadcast { witness: 0 },
            broadcast_time: Some(100),
            gossip_time: None,
            final_edge_count: 16,
        };
        cert.on_finish(&report);
        assert!(matches!(
            cert.violations()[0],
            Violation::UpperBoundExceeded { measured: 100, .. }
        ));
    }

    #[test]
    fn theorem_check_examples() {
        // n = 4: LB 4, UB 9.
        assert!(check_theorem(4, 4).reaches_lower);
        assert!(check_theorem(4, 4).within_upper);
        assert!(!check_theorem(4, 3).reaches_lower);
        assert!(!check_theorem(4, 10).within_upper);
    }

    #[test]
    fn violation_display_messages() {
        let v = Violation::NoProgress { round: 3 };
        assert!(v.to_string().contains("round 3"));
        let v = Violation::WrongTreeSize {
            round: 1,
            got: 2,
            expected: 5,
        };
        assert!(v.to_string().contains("expected 5"));
    }

    #[test]
    fn strict_progress_past_witness_is_allowed() {
        // After broadcast is achieved (witness exists), a stagnant round
        // must NOT be flagged: run to gossip on a tree that stalls.
        let n = 3;
        let mut cert = CertObserver::full();
        let mut src = StaticSource::new(generators::path(n));
        let config = SimulationConfig::gossip_for_n(n).with_max_rounds(10);
        simulate_observed(n, &mut src, config, &mut [&mut cert]);
        // The static path stalls after the root's row fills; no NoProgress
        // may be reported for those later rounds.
        assert!(
            cert.violations()
                .iter()
                .all(|v| !matches!(v, Violation::NoProgress { .. })),
            "{:?}",
            cert.violations()
        );
    }
}
