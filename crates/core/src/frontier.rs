//! The frontier-sparse simulation engine: million-node broadcast runs in
//! O(newly informed) work per round.
//!
//! The dense engine ([`crate::run_workload`]) carries the full `n × n`
//! product graph — O(n²) bits of state and O(n²/64) word work per round,
//! which caps experiments near n ≈ 10⁴. But the model is **monotone**:
//! along a round tree, node `y` hears token `x` exactly when its parent
//! already holds `x`, and (absent faults) holder sets only grow. So a
//! token's run is fully described by its holder set plus the per-round
//! *frontier* of newly informed nodes, and a round only needs to examine
//!
//! * last round's fault-**deferred** candidates,
//! * the children (in this round's tree) of last round's frontier, and
//! * the nodes whose parent changed since last round (the **delta** the
//!   tree source reports).
//!
//! Everything else provably cannot change this round (see
//! `apply_round`). On a static tree the delta is empty and a round costs
//! O(frontier) — the paper's static path runs a million rounds at O(1)
//! each, where the dense engine would pay O(n²/64) per round.
//!
//! Holder sets are [`HybridRow`]s: a sorted index list while small, dense
//! words once promoted, so early rounds of a million-node run cost bytes,
//! not 125 KB per token.
//!
//! # Exactness and scale
//!
//! The engine tracks an explicit token set. With [`SourceSet::All`]
//! workloads (broadcast, k-broadcast, gossip) that is all `n` tokens —
//! *exactly* the dense semantics, which is what the differential suite
//! (`tests/frontier_differential.rs`) pins round-for-round against the
//! dense oracle for n ≤ 1024, faults included. All-token tracking is
//! inherently Ω(n²) in the worst case, so at n = 10⁶ the experiments use
//! [`SourceSet::Nodes`] workloads ([`crate::KSourceBroadcast`]): the root
//! token for broadcast (provably the dense answer on root-stable
//! sources), a spread sample of k tokens for gossip-style sweeps.
//!
//! One observable difference at the report level:
//! [`WorkloadReport::broadcast_time`] of a *tracked* (`SourceSet::Nodes`)
//! run is the first round a **tracked** token disseminated, while the
//! dense runner reports the first round *any* of the `n` tokens did. The
//! two agree on every `SourceSet::All` workload.

use rand::rngs::StdRng;
use rand::SeedableRng;
use treecast_bitmatrix::{BitSet, HybridRow};
use treecast_trees::{random, NodeId, RootedTree};

use crate::engine::{summarize, SequenceSource, SimulationConfig, StaticSource, TreeSource};
use crate::scenario::{FaultModel, NoFaults, RoundFaults};
use crate::workload::{SourceSet, Workload, WorkloadOutcome, WorkloadProgress, WorkloadReport};

/// How this round's tree differs from the previous round's, as reported
/// by [`FrontierSource::next_round`].
///
/// The delta is what lets the frontier engine skip the O(n) "which edges
/// moved" scan: a node can only become newly reachable through its parent
/// edge, so the candidate set of a round is deferred ∪ frontier-children
/// ∪ delta.
#[derive(Debug, Clone, Copy)]
pub enum RoundDelta<'a> {
    /// The effective tree is identical to the previous round's — no
    /// parent changed.
    Unchanged,
    /// Only the listed nodes may have a different parent than last round
    /// (e.g. the nodes on a re-rooting path). May name nodes whose parent
    /// did not actually change; extra candidates are harmless.
    Changed(&'a [NodeId]),
    /// Arbitrarily different tree: every node is a candidate. Always
    /// sound, costs O(n) for the round.
    All,
}

/// Per-token frontier state: the holder set plus the worklists that make
/// the next round O(candidates).
#[derive(Debug, Clone)]
struct TokenFrontier {
    /// The node whose token this is (it never forgets it).
    source: NodeId,
    /// Nodes currently holding the token.
    holders: HybridRow,
    /// Nodes that became holders in the last applied round.
    frontier: Vec<NodeId>,
    /// Candidates blocked by faults (offline endpoint) or token loss in
    /// an earlier round; re-examined every round until resolved.
    deferred: Vec<NodeId>,
    /// Cached `holders.is_full()`.
    full: bool,
}

/// The frontier-sparse dissemination state: one [`HybridRow`] holder set
/// and a newly-informed worklist per tracked token.
///
/// Observationally equivalent to the dense engine's state on the tracked
/// tokens — [`TrackedTokens`](crate::TrackedTokens) for
/// [`SourceSet::Nodes`], the full [`BroadcastState`](crate::BroadcastState)
/// (token `x` ↔ column `x`) when all `n` tokens are tracked — but a round
/// costs O(candidates) instead of O(n²/64).
///
/// # Examples
///
/// ```
/// use treecast_core::frontier::{FrontierState, RoundDelta};
/// use treecast_trees::generators;
///
/// let n = 5;
/// let mut state = FrontierState::new(n, &[0]);
/// let path = generators::path(n);
/// for round in 1..n {
///     state.apply_round(&path, RoundDelta::Unchanged, &[]);
///     assert_eq!(state.holders(0).len(), round + 1);
/// }
/// assert_eq!(state.disseminated_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct FrontierState {
    n: usize,
    round: u64,
    tokens: Vec<TokenFrontier>,
    /// Tokens currently held by everyone (kept incrementally).
    disseminated: usize,
    /// Per-round candidate dedup bits, cleared via `touched` so clearing
    /// costs O(candidates), not O(n/64).
    seen: BitSet,
    /// Scratch: nodes accepted this round (the next frontier).
    fresh: Vec<NodeId>,
    /// Scratch: nodes whose `seen` bit is set.
    touched: Vec<NodeId>,
    /// Scratch: the round's candidate list.
    pending: Vec<NodeId>,
}

impl FrontierState {
    /// A fresh state tracking one token per source: token `i` is held
    /// only by `sources[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `sources` is empty, or any source is `>= n`.
    pub fn new(n: usize, sources: &[NodeId]) -> Self {
        assert!(n > 0, "the model needs at least one process");
        assert!(!sources.is_empty(), "need at least one source");
        let mut tokens = Vec::with_capacity(sources.len());
        let mut disseminated = 0;
        for &s in sources {
            assert!(s < n, "source {s} out of range for n = {n}");
            let holders = HybridRow::singleton(n, s);
            let full = holders.is_full();
            if full {
                disseminated += 1;
            }
            tokens.push(TokenFrontier {
                source: s,
                holders,
                frontier: vec![s],
                deferred: Vec::new(),
                full,
            });
        }
        FrontierState {
            n,
            round: 0,
            tokens,
            disseminated,
            seen: BitSet::new(n),
            fresh: Vec::new(),
            touched: Vec::new(),
            pending: Vec::new(),
        }
    }

    /// Number of processes.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Rounds applied so far.
    #[inline]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Number of tracked tokens.
    #[inline]
    pub fn token_count(&self) -> usize {
        self.tokens.len()
    }

    /// The holder set of token `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= token_count()`.
    pub fn holders(&self, i: usize) -> &HybridRow {
        &self.tokens[i].holders
    }

    /// Tokens currently held by every node (maintained incrementally;
    /// equal to recounting the full holder sets).
    #[inline]
    pub fn disseminated_count(&self) -> usize {
        self.disseminated
    }

    /// The progress summary the workload predicates consume.
    pub fn progress(&self) -> WorkloadProgress {
        WorkloadProgress {
            n: self.n,
            round: self.round,
            tokens: self.tokens.len(),
            disseminated: self.disseminated,
        }
    }

    /// Checks the structural invariants that hold between rounds; a noop
    /// in release builds.
    ///
    /// Per token: the source always holds its own token (even `forget`
    /// preserves this), frontier nodes are holders — or parked in
    /// `deferred`, when a `forget` since the last round evicted them
    /// from the holder set but not from the frontier list — deferred
    /// nodes are in-range non-holders awaiting re-delivery, and the
    /// cached `full` flag matches the holder set. Globally: `disseminated` equals the
    /// recount of full tokens, and the `seen` dedup bits are all clear
    /// (they are scrubbed via `touched` at the end of every round — the
    /// other scratch vectors are recycled lazily and may hold stale
    /// contents, so they carry no between-round invariant).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if any invariant is violated.
    pub fn debug_validate(&self) {
        #[cfg(debug_assertions)]
        {
            let mut full_tokens = 0usize;
            for (i, tok) in self.tokens.iter().enumerate() {
                assert!(tok.source < self.n, "token {i}: source out of range");
                assert!(
                    tok.holders.contains(tok.source),
                    "token {i}: source {} lost its own token",
                    tok.source
                );
                assert_eq!(
                    tok.holders.universe_size(),
                    self.n,
                    "token {i}: holder universe drifted from n"
                );
                for &f in &tok.frontier {
                    assert!(
                        f < self.n && (tok.holders.contains(f) || tok.deferred.contains(&f)),
                        "token {i}: frontier node {f} is neither a holder nor deferred"
                    );
                }
                for &d in &tok.deferred {
                    assert!(
                        d < self.n && !tok.holders.contains(d),
                        "token {i}: deferred node {d} is out of range or already a holder"
                    );
                }
                assert_eq!(
                    tok.full,
                    tok.holders.is_full(),
                    "token {i}: cached full flag disagrees with the holder set"
                );
                full_tokens += usize::from(tok.full);
            }
            assert_eq!(
                self.disseminated, full_tokens,
                "incremental disseminated count disagrees with the recount"
            );
            assert!(
                self.seen.is_empty(),
                "seen dedup bits not scrubbed between rounds"
            );
        }
    }

    /// Applies one synchronous round along `tree` (self-loops implied),
    /// with the edges incident to the sorted `offline` nodes masked out —
    /// the frontier mirror of the dense engine's masked round matrix.
    ///
    /// # Correctness of the candidate set
    ///
    /// A node `y` can newly receive a token this round only if
    /// `p = parent(y)` held it at the start of the round. Induction over
    /// rounds shows `y` is always among the candidates examined:
    /// if `p` became a holder last round, `y` is a child of the last
    /// frontier; if `y`'s parent edge changed, `y` is in the delta; and
    /// otherwise `y` was already a candidate last round and was either
    /// informed then (contradiction), dropped because `p` was not yet a
    /// holder (then `p` joined a later frontier — first case), or blocked
    /// by a fault and parked in `deferred`, where it stays until
    /// resolved. Fault-forgotten nodes re-enter through `deferred` too
    /// ([`FrontierState::forget`]).
    ///
    /// New holders are collected first and committed after the scan, so a
    /// token still travels exactly one hop per round.
    ///
    /// # Panics
    ///
    /// Panics if `tree.n() != self.n()`.
    pub fn apply_round(&mut self, tree: &RootedTree, delta: RoundDelta<'_>, offline: &[NodeId]) {
        assert_eq!(
            tree.n(),
            self.n,
            "round tree has {} nodes but the state has {}",
            tree.n(),
            self.n
        );
        debug_assert!(
            offline.windows(2).all(|w| w[0] < w[1]),
            "offline list must be sorted and deduplicated"
        );
        let n = self.n;
        let is_offline = |v: NodeId| offline.binary_search(&v).is_ok();
        let mut seen = std::mem::replace(&mut self.seen, BitSet::new(0));
        let mut fresh = std::mem::take(&mut self.fresh);
        let mut touched = std::mem::take(&mut self.touched);
        let mut pending = std::mem::take(&mut self.pending);
        let mut disseminated = self.disseminated;

        for tok in &mut self.tokens {
            if tok.full {
                // Nothing left to inform; candidates would all be
                // dropped as already-holders. A later `forget` re-enters
                // through `deferred`.
                tok.frontier.clear();
                continue;
            }

            // Phase 1: gather candidates. `RoundDelta::All` supersedes
            // the incremental lists (and resolves any deferred node as a
            // side effect of scanning everyone).
            pending.clear();
            match delta {
                RoundDelta::All => {
                    tok.deferred.clear();
                    pending.extend(0..n);
                }
                _ => {
                    pending.append(&mut tok.deferred);
                    for &f in &tok.frontier {
                        pending.extend_from_slice(tree.children(f));
                    }
                    if let RoundDelta::Changed(nodes) = delta {
                        pending.extend_from_slice(nodes);
                    }
                }
            }

            // Phase 2: resolve against the *pre-round* holder set.
            // `tok.deferred` is empty here and refills with this round's
            // fault-blocked candidates.
            fresh.clear();
            touched.clear();
            for &y in &pending {
                if seen.contains(y) {
                    continue;
                }
                seen.insert(y);
                touched.push(y);
                if tok.holders.contains(y) {
                    continue;
                }
                let Some(p) = tree.parent(y) else {
                    continue;
                };
                if !tok.holders.contains(p) {
                    continue;
                }
                if is_offline(y) || is_offline(p) {
                    tok.deferred.push(y);
                    continue;
                }
                fresh.push(y);
            }

            // Phase 3: commit. `fresh` becomes the next frontier; the old
            // frontier vector is recycled as the next token's scratch.
            for &y in &fresh {
                tok.holders.insert(y);
            }
            std::mem::swap(&mut tok.frontier, &mut fresh);
            for &y in &touched {
                seen.remove(y);
            }
            if tok.holders.is_full() {
                tok.full = true;
                disseminated += 1;
            }
        }

        self.disseminated = disseminated;
        self.seen = seen;
        self.fresh = fresh;
        self.touched = touched;
        self.pending = pending;
        self.round += 1;
    }

    /// Token-loss fault: node `y` drops every tracked token except its
    /// own — the sparse mirror of
    /// [`BroadcastState::forget`](crate::BroadcastState::forget) /
    /// [`TrackedTokens::forget`](crate::TrackedTokens::forget). The
    /// victim re-enters each affected token's `deferred` list so it can
    /// be re-informed as soon as its parent holds the token again.
    ///
    /// # Panics
    ///
    /// Panics if `y >= n`.
    pub fn forget(&mut self, y: NodeId) {
        assert!(y < self.n, "node {y} out of range for n = {}", self.n);
        for tok in &mut self.tokens {
            if tok.source == y {
                continue;
            }
            if tok.holders.remove(y) {
                if tok.full {
                    tok.full = false;
                    self.disseminated -= 1;
                }
                tok.deferred.push(y);
            }
        }
    }
}

enum SourceKind {
    Static(RootedTree),
    Sequence(Vec<RootedTree>),
    Seeded { seed: u64, n: usize },
}

/// A delta-reporting tree source for the frontier engine.
///
/// The dense [`TreeSource`] trait hands the adversary the full
/// [`BroadcastState`](crate::BroadcastState) every round, which a sparse
/// run cannot afford to materialize — so the frontier engine has its own
/// (state-oblivious) source type that additionally reports a
/// [`RoundDelta`] per round. Every variant has an exact dense twin
/// ([`FrontierSource::dense_twin`]) producing the identical tree
/// sequence, which is what the differential suite runs the oracle on.
///
/// # Examples
///
/// ```
/// use treecast_core::frontier::{run_workload_frontier, FrontierSource};
/// use treecast_core::{Broadcast, SimulationConfig};
/// use treecast_trees::generators;
///
/// let n = 1000;
/// let mut src = FrontierSource::fixed(generators::path(n));
/// let report = run_workload_frontier(n, &mut src, &Broadcast, SimulationConfig::for_n(n));
/// assert_eq!(report.completion_time, Some((n - 1) as u64));
/// ```
pub struct FrontierSource {
    kind: SourceKind,
    label: String,
    rng: Option<StdRng>,
    /// The seeded variant's tree of the current round.
    current: Option<RootedTree>,
    /// The re-rooted tree of the current round, when a reroot was asked.
    effective: Option<RootedTree>,
    rounds_started: u64,
    seq_idx: usize,
    /// Base-tree path of the previous round's reroot (nodes whose parent
    /// still differs from the base).
    prev_reroot_path: Vec<NodeId>,
    changed_buf: Vec<NodeId>,
}

/// One round as produced by [`FrontierSource::next_round`]: the effective
/// tree plus how it differs from the previous round's.
#[derive(Debug)]
pub struct FrontierRound<'a> {
    /// The round's (possibly re-rooted) tree.
    pub tree: &'a RootedTree,
    /// Difference against the previous round's effective tree.
    pub delta: RoundDelta<'a>,
}

impl FrontierSource {
    fn with_kind(kind: SourceKind, label: String) -> Self {
        FrontierSource {
            kind,
            label,
            rng: None,
            current: None,
            effective: None,
            rounds_started: 0,
            seq_idx: 0,
            prev_reroot_path: Vec::new(),
            changed_buf: Vec::new(),
        }
    }

    /// Repeats one fixed tree every round — the frontier twin of
    /// [`StaticSource`]. Quiet rounds report [`RoundDelta::Unchanged`],
    /// so a static-path broadcast runs in O(1) per round.
    pub fn fixed(tree: RootedTree) -> Self {
        let label = format!("static({})", summarize(&tree));
        Self::with_kind(SourceKind::Static(tree), label)
    }

    /// Plays a fixed schedule, then repeats the last tree — the frontier
    /// twin of [`SequenceSource`]. Rounds that advance the schedule
    /// report [`RoundDelta::All`]; the repeating tail is
    /// [`RoundDelta::Unchanged`].
    ///
    /// # Panics
    ///
    /// Panics if `trees` is empty.
    pub fn sequence(trees: Vec<RootedTree>) -> Self {
        assert!(!trees.is_empty(), "schedule needs at least one tree");
        let label = format!("sequence(len={})", trees.len());
        Self::with_kind(SourceKind::Sequence(trees), label)
    }

    /// A fresh uniform random tree ([`random::uniform`]) each round,
    /// deterministic in the seed. Every round is [`RoundDelta::All`].
    pub fn seeded(n: usize, seed: u64) -> Self {
        let label = format!("seeded-uniform(seed={seed})");
        Self::with_kind(SourceKind::Seeded { seed, n }, label)
    }

    /// Report name, matching the dense twin's where one exists.
    pub fn name(&self) -> String {
        self.label.clone()
    }

    /// A dense [`TreeSource`] producing the identical tree sequence for
    /// the first `max_rounds` rounds (the whole run, when the runner is
    /// capped at `max_rounds`) — the oracle side of the differential
    /// tests. Call it on a *fresh* source; the seeded variant replays its
    /// RNG from the seed.
    pub fn dense_twin(&self, max_rounds: u64) -> Box<dyn TreeSource> {
        match &self.kind {
            SourceKind::Static(tree) => Box::new(StaticSource::new(tree.clone())),
            SourceKind::Sequence(trees) => Box::new(SequenceSource::new(trees.clone())),
            SourceKind::Seeded { seed, n } => {
                let mut rng = StdRng::seed_from_u64(*seed);
                let trees: Vec<RootedTree> = (0..max_rounds.max(1))
                    .map(|_| random::uniform(*n, &mut rng))
                    .collect();
                Box::new(SequenceSource::new(trees).with_label(self.name()))
            }
        }
    }

    /// The current round's base (pre-reroot) tree.
    fn base(&self) -> &RootedTree {
        match &self.kind {
            SourceKind::Static(tree) => tree,
            SourceKind::Sequence(trees) => &trees[self.seq_idx],
            SourceKind::Seeded { .. } => self
                .current
                .as_ref()
                // analyze: allow(panic): next_round populates the seeded source's current tree before any access
                .expect("seeded source advanced by next_round"),
        }
    }

    /// Produces the next round's tree and its delta, applying the fault
    /// layer's re-rooting demand (the frontier mirror of the dense
    /// runner's `tree.rerooted(r)` step).
    ///
    /// # Panics
    ///
    /// Panics if the source's trees are not of size `n` or `reroot` names
    /// a node `>= n`.
    pub fn next_round(&mut self, n: usize, reroot: Option<NodeId>) -> FrontierRound<'_> {
        let first = self.rounds_started == 0;
        self.rounds_started += 1;
        let same_base = match &mut self.kind {
            SourceKind::Static(tree) => {
                assert_eq!(tree.n(), n, "source tree size mismatch");
                !first
            }
            SourceKind::Sequence(trees) => {
                let idx = ((self.rounds_started - 1) as usize).min(trees.len() - 1);
                assert_eq!(trees[idx].n(), n, "source tree size mismatch");
                let same = !first && idx == self.seq_idx;
                self.seq_idx = idx;
                same
            }
            SourceKind::Seeded { seed, n: sn } => {
                assert_eq!(*sn, n, "seeded source built for a different n");
                let rng = self.rng.get_or_insert_with(|| StdRng::seed_from_u64(*seed));
                self.current = Some(random::uniform(n, rng));
                false
            }
        };

        // Nodes whose parent this round's reroot changes, in base-tree
        // coordinates. The first round needs no delta at all (the initial
        // frontier *is* the source set), but feeding the reroot path is
        // harmless and keeps the cases uniform.
        let curr_path: Vec<NodeId> = match reroot {
            Some(r) => self.base().path_to_root(r),
            None => Vec::new(),
        };

        // Between two rounds over the same base, parents can differ only
        // on the previous and current reroot paths. A new base invalidates
        // everything.
        let use_all = !first && !same_base;
        self.changed_buf.clear();
        if !use_all {
            self.changed_buf.extend_from_slice(&self.prev_reroot_path);
            self.changed_buf.extend_from_slice(&curr_path);
        }
        self.prev_reroot_path = curr_path;
        self.effective = reroot.map(|r| self.base().rerooted(r));

        let tree = self.effective.as_ref().unwrap_or_else(|| self.base());
        let delta = if use_all {
            RoundDelta::All
        } else if self.changed_buf.is_empty() {
            RoundDelta::Unchanged
        } else {
            RoundDelta::Changed(&self.changed_buf)
        };
        FrontierRound { tree, delta }
    }
}

/// Runs `source` against `workload` on the frontier engine — the sparse
/// counterpart of [`crate::run_workload`], with identical report
/// semantics (and, like it, an empty `fault_log`).
///
/// # Examples
///
/// ```
/// use treecast_core::frontier::{run_workload_frontier, FrontierSource};
/// use treecast_core::{run_workload, Broadcast, SimulationConfig, StaticSource};
/// use treecast_trees::generators;
///
/// let n = 64;
/// let cfg = SimulationConfig::for_n(n);
/// let sparse = run_workload_frontier(
///     n,
///     &mut FrontierSource::fixed(generators::path(n)),
///     &Broadcast,
///     cfg,
/// );
/// let dense = run_workload(n, &mut StaticSource::new(generators::path(n)), &Broadcast, cfg);
/// assert_eq!(sparse.completion_time, dense.completion_time);
/// assert_eq!(sparse.rounds, dense.rounds);
/// ```
///
/// # Panics
///
/// Panics if `n == 0`, a source node is out of range, or the tree source
/// produces a tree of the wrong size.
pub fn run_workload_frontier<W: Workload + ?Sized>(
    n: usize,
    source: &mut FrontierSource,
    workload: &W,
    config: SimulationConfig,
) -> WorkloadReport {
    // Quiet rounds skip log recording entirely: a million-round run must
    // not retain a million `RoundFaults`.
    run_frontier_inner(
        n,
        source,
        workload,
        &mut NoFaults,
        config,
        false,
        |_, _, _| {},
    )
}

/// Runs `source` against `workload` under `faults` on the frontier engine
/// — the sparse counterpart of [`crate::run_workload_faulty`], mirroring
/// its per-round call sequence exactly (fault query, normalization,
/// re-rooting, offline masking, losses, logging) so the recorded
/// [`WorkloadReport::fault_log`] is bit-identical to the dense runner's
/// and replays through
/// [`FaultSchedule::replay`](crate::scenario::FaultSchedule::replay).
///
/// # Panics
///
/// Panics if `n == 0`, a fault names a node `>= n`, or the tree source
/// produces a tree of the wrong size.
pub fn run_workload_frontier_faulty<W, F>(
    n: usize,
    source: &mut FrontierSource,
    workload: &W,
    faults: &mut F,
    config: SimulationConfig,
) -> WorkloadReport
where
    W: Workload + ?Sized,
    F: FaultModel + ?Sized,
{
    run_frontier_inner(n, source, workload, faults, config, true, |_, _, _| {})
}

/// [`run_workload_frontier_faulty`] with a per-round hook, mirroring
/// [`crate::run_workload_faulty_traced`]: called after every executed
/// round (losses applied) with the round's faults, the effective tree,
/// and the state — the witness the differential suite compares
/// round-for-round against the dense oracle's trace.
///
/// # Panics
///
/// Panics under the same conditions as [`run_workload_frontier_faulty`].
pub fn run_workload_frontier_faulty_traced<W, F>(
    n: usize,
    source: &mut FrontierSource,
    workload: &W,
    faults: &mut F,
    config: SimulationConfig,
    on_round: impl FnMut(&RoundFaults, &RootedTree, &FrontierState),
) -> WorkloadReport
where
    W: Workload + ?Sized,
    F: FaultModel + ?Sized,
{
    run_frontier_inner(n, source, workload, faults, config, true, on_round)
}

fn run_frontier_inner<W, F>(
    n: usize,
    source: &mut FrontierSource,
    workload: &W,
    faults: &mut F,
    config: SimulationConfig,
    record_log: bool,
    mut on_round: impl FnMut(&RoundFaults, &RootedTree, &FrontierState),
) -> WorkloadReport
where
    W: Workload + ?Sized,
    F: FaultModel + ?Sized,
{
    let sources = match workload.sources(n) {
        SourceSet::All => (0..n).collect(),
        SourceSet::Nodes(nodes) => nodes,
    };
    let mut state = FrontierState::new(n, &sources);
    let mut progress = state.progress();
    let mut completion_time = workload.is_complete(&progress).then_some(0);
    let mut broadcast_time = (progress.disseminated >= 1).then_some(0);
    let mut fault_log: Vec<RoundFaults> = Vec::new();

    while completion_time.is_none() && state.round() < config.max_rounds {
        let mut rf = faults.faults(state.round() + 1, n);
        rf.normalize(n);
        let round = source.next_round(n, rf.root);
        state.apply_round(round.tree, round.delta, &rf.offline);
        for &y in &rf.losses {
            state.forget(y);
        }
        on_round(&rf, round.tree, &state);
        if record_log {
            fault_log.push(rf);
        }
        progress = state.progress();
        if workload.is_complete(&progress) {
            completion_time = Some(progress.round);
        }
        if broadcast_time.is_none() && progress.disseminated >= 1 {
            broadcast_time = Some(state.round());
        }
    }

    WorkloadReport {
        n,
        workload: workload.name(),
        source: source.name(),
        rounds: state.round(),
        outcome: if completion_time.is_some() {
            WorkloadOutcome::Completed
        } else {
            WorkloadOutcome::RoundLimit
        },
        completion_time,
        broadcast_time,
        disseminated: progress.disseminated,
        tokens: progress.tokens,
        fault_log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{run_workload_faulty, FaultSchedule, RotatingRoot, SeededFaults};
    use crate::workload::{run_workload, Broadcast, Gossip, KBroadcast};
    use treecast_trees::generators;

    fn assert_reports_match(sparse: &WorkloadReport, dense: &WorkloadReport, ctx: &str) {
        assert_eq!(sparse.completion_time, dense.completion_time, "{ctx}");
        assert_eq!(sparse.broadcast_time, dense.broadcast_time, "{ctx}");
        assert_eq!(sparse.rounds, dense.rounds, "{ctx}");
        assert_eq!(sparse.disseminated, dense.disseminated, "{ctx}");
        assert_eq!(sparse.tokens, dense.tokens, "{ctx}");
        assert_eq!(sparse.source, dense.source, "{ctx}");
    }

    #[test]
    fn static_path_matches_dense_broadcast() {
        for n in [2usize, 7, 64, 65] {
            let cfg = SimulationConfig::for_n(n);
            let mut src = FrontierSource::fixed(generators::path(n));
            let mut twin = src.dense_twin(cfg.max_rounds);
            let sparse = run_workload_frontier(n, &mut src, &Broadcast, cfg);
            let dense = run_workload(n, &mut twin, &Broadcast, cfg);
            assert_reports_match(&sparse, &dense, &format!("path n = {n}"));
        }
    }

    #[test]
    fn rotating_stars_match_dense_gossip() {
        let n = 9;
        let cfg = SimulationConfig::for_n(n);
        let schedule: Vec<_> = (0..n).map(|c| generators::star_with_center(n, c)).collect();
        let mut src = FrontierSource::sequence(schedule);
        let mut twin = src.dense_twin(cfg.max_rounds);
        let sparse = run_workload_frontier(n, &mut src, &Gossip, cfg);
        let dense = run_workload(n, &mut twin, &Gossip, cfg);
        assert_reports_match(&sparse, &dense, "rotating stars");
    }

    #[test]
    fn seeded_source_twin_replays_the_same_trees() {
        let n = 33;
        let cfg = SimulationConfig::for_n(n).with_max_rounds(48);
        let mut src = FrontierSource::seeded(n, 0xF007);
        let mut twin = src.dense_twin(cfg.max_rounds);
        let sparse = run_workload_frontier(n, &mut src, &Gossip, cfg);
        let dense = run_workload(n, &mut twin, &Gossip, cfg);
        assert_reports_match(&sparse, &dense, "seeded gossip");
    }

    #[test]
    fn faulty_run_matches_dense_and_replays() {
        let n = 24;
        let cfg = SimulationConfig::for_n(n).with_max_rounds(64);
        let mut model = SeededFaults::new(0xFE17)
            .with_token_loss(15)
            .with_dropout(10, 2)
            .with_root_changes(25);
        let mut src = FrontierSource::seeded(n, 42);
        let mut twin = src.dense_twin(cfg.max_rounds);
        let sparse =
            run_workload_frontier_faulty(n, &mut src, &KBroadcast::new(3), &mut model, cfg);
        let mut replay = FaultSchedule::replay(&sparse.fault_log);
        let dense = run_workload_faulty(n, &mut twin, &KBroadcast::new(3), &mut replay, cfg);
        assert_reports_match(&sparse, &dense, "seeded faults");
        assert_eq!(sparse.fault_log, dense.fault_log, "fault logs must replay");
    }

    #[test]
    fn rotating_root_on_static_path_matches_dense() {
        let n = 12;
        let cfg = SimulationConfig::for_n(n);
        let mut src = FrontierSource::fixed(generators::path(n));
        let mut twin = src.dense_twin(cfg.max_rounds);
        let sparse =
            run_workload_frontier_faulty(n, &mut src, &Broadcast, &mut RotatingRoot::new(2), cfg);
        let dense = run_workload_faulty(n, &mut twin, &Broadcast, &mut RotatingRoot::new(2), cfg);
        assert_reports_match(&sparse, &dense, "rotating root");
        assert_eq!(sparse.fault_log, dense.fault_log);
    }

    #[test]
    fn forget_reopens_a_full_token() {
        let n = 5;
        let mut state = FrontierState::new(n, &[0]);
        let star = generators::star(n);
        state.apply_round(&star, RoundDelta::Unchanged, &[]);
        assert_eq!(state.disseminated_count(), 1);
        state.forget(3);
        assert_eq!(state.disseminated_count(), 0);
        assert!(!state.holders(0).contains(3));
        state.apply_round(&star, RoundDelta::Unchanged, &[]);
        assert_eq!(state.disseminated_count(), 1, "deferred node re-informed");
    }

    #[test]
    fn offline_nodes_defer_but_keep_memory() {
        let n = 4;
        let mut state = FrontierState::new(n, &[0]);
        let path = generators::path(n);
        state.apply_round(&path, RoundDelta::Unchanged, &[1]);
        // Edge (0, 1) was masked: nothing moved, node 1 keeps its memory.
        assert_eq!(state.holders(0).len(), 1);
        state.apply_round(&path, RoundDelta::Unchanged, &[]);
        assert!(state.holders(0).contains(1), "deferred candidate caught up");
    }

    #[test]
    fn static_path_frontier_stays_constant_size() {
        // The O(1)-per-round claim: on the static path the per-round
        // candidate set never exceeds a couple of nodes.
        let n = 512;
        let mut src = FrontierSource::fixed(generators::path(n));
        let mut state = FrontierState::new(n, &[0]);
        for _ in 0..n - 1 {
            let round = src.next_round(n, None);
            state.apply_round(round.tree, round.delta, &[]);
            assert!(state.tokens[0].frontier.len() <= 1);
            assert!(state.tokens[0].deferred.is_empty());
        }
        assert!(state.holders(0).is_full());
    }

    #[test]
    fn single_node_completes_at_round_zero() {
        let mut src = FrontierSource::fixed(generators::star(1));
        let r = run_workload_frontier(1, &mut src, &Gossip, SimulationConfig::for_n(1));
        assert_eq!(r.completion_time, Some(0));
        assert_eq!(r.rounds, 0);
    }
}
