//! The broadcast-in-dynamic-rooted-trees model of El-Hayek, Henzinger &
//! Schmid (PODC 2022), executable.
//!
//! The paper studies `n` processes that communicate in synchronous rounds;
//! each round an adversary picks an arbitrary rooted tree (self-loops
//! added), and the **broadcast time** `t*` is the first round at which some
//! process has reached every other process through the product graph
//! `G(t) = G₁ ∘ … ∘ G_t`. Theorem 3.1 sandwiches the worst case:
//!
//! ```text
//! ⌈(3n−1)/2⌉ − 2  ≤  t*(T_n)  ≤  ⌈(1+√2)·n − 1⌉
//! ```
//!
//! This crate provides:
//!
//! * [`BroadcastState`] — the evolving product graph (Definitions 2.1–2.2)
//!   in an `O(n²/64)`-per-round column representation;
//! * [`simulate`] / [`simulate_observed`] and the [`TreeSource`] trait —
//!   the adversary interface (Definition 2.3) and run engine;
//! * [`bounds`] — every formula in the paper's Figure 1, in exact integer
//!   arithmetic;
//! * [`Workload`] / [`run_workload`] — the companion paper's variant
//!   workloads (arXiv:2211.10151): `k`-broadcast, all-to-all gossip, and
//!   batched token-subset dissemination ([`TrackedTokens`]);
//! * [`prefix`] / [`run_workload_prefixes`] — workload runs off a stream
//!   of precomposed prefix products ([`PrefixProvider`]), composing each
//!   reversed prefix exactly once for all sources — the hot path behind
//!   the `treecast-server` prefix cache;
//! * [`scenario`] / [`run_workload_faulty`] — the fault layer over the
//!   workload lattice (token loss, dynamic root reassignment, node
//!   dropout/rejoin), every run replayable from its recorded
//!   [`WorkloadReport::fault_log`];
//! * [`replica`] — the replica-source contract ([`ReplicaSource`],
//!   [`TreeSpec`], the per-mille [`FaultSpec`], the shared seed
//!   derivation) through which both the Monte Carlo layer and the gossip
//!   emulation fan out seeded replicas of one cell;
//! * [`frontier`] / [`run_workload_frontier`] — a second, frontier-sparse
//!   engine whose rounds cost O(newly informed) instead of O(n²/64),
//!   scaling the same workloads and faults to n = 10⁶ and pinned
//!   round-for-round to the dense engine by a differential test layer;
//! * [`MetricsRecorder`] — the matrix-evolution quantities of the paper's
//!   Section 3 analysis, observable round by round;
//! * [`CertObserver`] / [`cert::check_theorem`] — runtime certificates for
//!   monotonicity, strict progress, and the Theorem 3.1 sandwich.
//!
//! # Examples
//!
//! The static path (Section 2's warm-up adversary) takes exactly `n − 1`
//! rounds, well inside the theorem's window:
//!
//! ```
//! use treecast_core::{bounds, simulate, SimulationConfig, StaticSource};
//! use treecast_trees::generators;
//!
//! let n = 12;
//! let mut source = StaticSource::new(generators::path(n));
//! let report = simulate(n, &mut source, SimulationConfig::for_n(n));
//! let t = report.broadcast_time.unwrap();
//! assert_eq!(t, (n as u64) - 1);
//! assert!(t <= bounds::upper_bound(n as u64));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod cert;
mod engine;
pub mod frontier;
pub mod metrics;
mod model;
pub mod prefix;
pub mod replica;
pub mod scenario;
pub mod workload;

pub use cert::{CertObserver, TheoremVerdict, Violation};
pub use engine::{
    simulate, simulate_observed, Observer, RunOutcome, RunReport, SequenceSource, SimulationConfig,
    StaticSource, StopCondition, TreeSource,
};
pub use frontier::{
    run_workload_frontier, run_workload_frontier_faulty, run_workload_frontier_faulty_traced,
    FrontierRound, FrontierSource, FrontierState, RoundDelta,
};
pub use metrics::{MetricsRecorder, RoundMetrics};
pub use model::BroadcastState;
pub use prefix::{run_workload_prefixes, ComposedPrefixes, PrefixProvider, PrefixRound};
pub use replica::{
    default_budget, replica_seed, splitmix64, FaultSpec, ReplicaOutcome, ReplicaSource, TreeSpec,
    TREE_STREAM_TWEAK,
};
pub use scenario::{
    run_workload_faulty, run_workload_faulty_traced, FaultModel, FaultSchedule, NoFaults,
    RotatingRoot, RoundFaults, SeededFaults,
};
pub use workload::{
    run_workload, Broadcast, Gossip, KBroadcast, KSourceBroadcast, SourceSet, TrackedTokens,
    Workload, WorkloadOutcome, WorkloadProgress, WorkloadReport,
};
