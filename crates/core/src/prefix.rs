//! Precomposed prefix products: run any [`Workload`] off a stream of
//! round-prefix products instead of stepping a state per source.
//!
//! The paper reduces every dissemination variant to the product
//! `G(t) = A₁ ∘ … ∘ A_t` of per-round tree matrices: token `x` is
//! disseminated at round `t` iff row `x` of `G(t)` is full, broadcast
//! completes when some row is full, gossip when all rows are. The gossip
//! reduction used to be exercised per source — for each source `x` and
//! horizon `t` the reversed product `R(t) = A_tᵀ ∘ … ∘ A₁ᵀ = G(t)ᵀ` was
//! recomposed from scratch (`O(sources × rounds)` compositions, the shape
//! kept as [`gossip_time_naive_per_source`]). But `R(t)` extends by a
//! single **left** composition,
//!
//! ```text
//! R(t+1) = A_{t+1}ᵀ ∘ R(t),
//! ```
//!
//! whose left operand is a transposed round tree with at most `2n` edges —
//! the sparse kernel of `BoolMatrix::compose_into`. So one `O(n²/64)`
//! composition per round serves **every** source at once: row `y` of
//! `R(t)` is the heard-from set of node `y`, and AND-ing all rows yields
//! the set of disseminated tokens in one linear scan.
//!
//! This module provides:
//!
//! * [`PrefixProvider`] — the stream-of-prefix-products abstraction
//!   ([`run_workload_prefixes`] is generic over it, so the server's
//!   sharded cache can substitute warm products for fresh compositions);
//! * [`ComposedPrefixes`] — the direct provider over a tree sequence
//!   (`SequenceSource` semantics: the last tree repeats);
//! * [`run_workload_prefixes`] — the engine loop over a provider,
//!   producing a [`WorkloadReport`] field-for-field identical to
//!   [`crate::run_workload`] on the same schedule;
//! * [`gossip_time_naive_per_source`] — the superseded per-source
//!   recomputation, kept as the differential/microbench reference.
//!
//! Faulty rounds (token loss, re-rooting, dropout) break the pure product
//! structure, so scenario replays stay on
//! [`crate::run_workload_faulty`]; this module is the fault-free hot
//! path.

use treecast_bitmatrix::{BitSet, BoolMatrix};
use treecast_trees::RootedTree;

use crate::engine::SimulationConfig;
use crate::workload::{SourceSet, Workload, WorkloadOutcome, WorkloadProgress, WorkloadReport};

/// One round's precomposed prefix product, in heard view.
#[derive(Debug, Clone, Copy)]
pub struct PrefixRound<'a> {
    /// The 1-based round this prefix covers.
    pub round: u64,
    /// `R(t) = G(t)ᵀ`: row `y` is the heard-from set of node `y` after
    /// `t` rounds.
    pub heard: &'a BoolMatrix,
    /// The disseminated-token mask — bit `x` set iff every node has heard
    /// from `x` (row `x` of `G(t)` is full). The AND of all `heard` rows.
    pub disseminated: &'a BitSet,
}

/// A stream of round-prefix products `R(1), R(2), …` for one tree
/// schedule.
///
/// Implementations compose each prefix **once** regardless of how many
/// sources the consuming workload measures — [`ComposedPrefixes`] by
/// incremental left-composition, the server's cache by returning warm
/// products. `next_prefix` returns `None` when the schedule is exhausted
/// (providers with `SequenceSource` repeat-last semantics never are).
pub trait PrefixProvider {
    /// Number of processes.
    fn n(&self) -> usize;

    /// Advances to the next round and exposes its prefix product.
    fn next_prefix(&mut self) -> Option<PrefixRound<'_>>;

    /// Report label (mirrors `TreeSource::name`, so prefix-driven reports
    /// compare equal to engine-driven ones).
    fn name(&self) -> String;
}

/// Computes the disseminated-token mask of a heard-view product: the AND
/// of all rows. Exposed for providers that memoize the mask next to the
/// matrix (the server cache stores it per entry so warm rounds skip the
/// scan).
pub fn disseminated_mask(heard: &BoolMatrix, out: &mut BitSet) {
    let n = heard.n();
    assert_eq!(
        out.universe_size(),
        n,
        "mask universe must match the matrix"
    );
    if n == 0 {
        return;
    }
    out.copy_from(heard.row(0));
    for y in 1..n {
        out.intersect_with(heard.row(y));
    }
}

/// The direct [`PrefixProvider`]: left-composes `R(t+1) = A_{t+1}ᵀ ∘ R(t)`
/// over a tree sequence, repeating the last tree forever (the
/// `SequenceSource` convention, so a prefix-driven run sees the same
/// schedule as an engine-driven one).
///
/// Steady-state advancing performs no heap allocation: the product, its
/// double buffer, the transposed round matrix, and the mask are all
/// retained.
#[derive(Debug, Clone)]
pub struct ComposedPrefixes {
    n: usize,
    round: u64,
    trees: Vec<RootedTree>,
    /// `R(t)`; starts as the identity (`R(0)`).
    heard: BoolMatrix,
    scratch: BoolMatrix,
    /// Retained buffer for the transposed round matrix `A_tᵀ` (self-loops
    /// plus one `child → parent` edge per non-root node — at most `2n`
    /// edges, which keeps the composition on the sparse kernel).
    round_t: BoolMatrix,
    mask: BitSet,
    label: String,
}

impl ComposedPrefixes {
    /// A provider over `trees`, repeating the last tree once the sequence
    /// is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `trees` is empty or the trees disagree on `n`.
    pub fn new(trees: Vec<RootedTree>) -> Self {
        assert!(!trees.is_empty(), "need at least one tree");
        let n = trees[0].n();
        for t in &trees {
            assert_eq!(t.n(), n, "all trees must have the same node count");
        }
        let label = format!("sequence(len={})", trees.len());
        ComposedPrefixes {
            n,
            round: 0,
            trees,
            heard: BoolMatrix::identity(n),
            scratch: BoolMatrix::zeros(n),
            round_t: BoolMatrix::zeros(n),
            mask: BitSet::new(n),
            label,
        }
    }

    /// Overrides the report label.
    #[must_use]
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// The schedule (without the implied repetition).
    pub fn trees(&self) -> &[RootedTree] {
        &self.trees
    }
}

impl PrefixProvider for ComposedPrefixes {
    fn n(&self) -> usize {
        self.n
    }

    fn next_prefix(&mut self) -> Option<PrefixRound<'_>> {
        let idx = (self.round as usize).min(self.trees.len() - 1);
        let tree = &self.trees[idx];
        self.round_t.clear();
        self.round_t.add_self_loops();
        for y in 0..self.n {
            if let Some(p) = tree.parent(y) {
                self.round_t.set(y, p, true);
            }
        }
        self.round_t.compose_into(&self.heard, &mut self.scratch);
        std::mem::swap(&mut self.heard, &mut self.scratch);
        self.round += 1;
        disseminated_mask(&self.heard, &mut self.mask);
        Some(PrefixRound {
            round: self.round,
            heard: &self.heard,
            disseminated: &self.mask,
        })
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

/// Runs `workload` off `provider`'s prefix products until completion,
/// `config.max_rounds`, or provider exhaustion — the prefix-driven
/// counterpart of [`crate::run_workload`].
///
/// The report is field-for-field identical to a [`crate::run_workload`]
/// run of the same schedule (`tests/prefix_differential.rs` pins this
/// across the workload lattice), but the per-round cost is one shared
/// composition — the gossip and k-broadcast reductions no longer pay
/// anything per source. `config.until` is ignored; fault-free by
/// construction, so `fault_log` is empty.
///
/// # Examples
///
/// ```
/// use treecast_core::prefix::{run_workload_prefixes, ComposedPrefixes};
/// use treecast_core::{Broadcast, SimulationConfig};
/// use treecast_trees::generators;
///
/// let n = 12;
/// let mut prefixes = ComposedPrefixes::new(vec![generators::path(n)]);
/// let report = run_workload_prefixes(&mut prefixes, &Broadcast, SimulationConfig::for_n(n));
/// assert_eq!(report.completion_time, Some((n as u64) - 1));
/// ```
///
/// # Panics
///
/// Panics if `provider.n() == 0` or a workload source is out of range.
pub fn run_workload_prefixes<P, W>(
    provider: &mut P,
    workload: &W,
    config: SimulationConfig,
) -> WorkloadReport
where
    P: PrefixProvider + ?Sized,
    W: Workload + ?Sized,
{
    let n = provider.n();
    assert!(n > 0, "the model needs at least one process");
    let (tokens, source_bits) = match workload.sources(n) {
        SourceSet::All => (n, None),
        SourceSet::Nodes(sources) => {
            for &s in &sources {
                assert!(s < n, "source {s} out of range for n = {n}");
            }
            let k = sources.len();
            (k, Some(BitSet::from_indices(n, sources)))
        }
    };
    let count = |mask: &BitSet| match &source_bits {
        None => mask.len(),
        Some(bits) => mask.intersection_len(bits),
    };

    // Round 0: R(0) is the identity, so the mask is full iff n == 1.
    let mask0 = if n == 1 {
        BitSet::full(n)
    } else {
        BitSet::new(n)
    };
    let mut round = 0u64;
    let mut disseminated = count(&mask0);
    let mut completion_time = workload
        .is_complete(&WorkloadProgress {
            n,
            round,
            tokens,
            disseminated,
        })
        .then_some(0);
    let mut broadcast_time = (!mask0.is_empty()).then_some(0);

    while completion_time.is_none() && round < config.max_rounds {
        let Some(prefix) = provider.next_prefix() else {
            break;
        };
        round = prefix.round;
        disseminated = count(prefix.disseminated);
        let progress = WorkloadProgress {
            n,
            round,
            tokens,
            disseminated,
        };
        if workload.is_complete(&progress) {
            completion_time = Some(round);
        }
        if broadcast_time.is_none() && !prefix.disseminated.is_empty() {
            broadcast_time = Some(round);
        }
    }

    WorkloadReport {
        n,
        workload: workload.name(),
        source: provider.name(),
        rounds: round,
        outcome: if completion_time.is_some() {
            WorkloadOutcome::Completed
        } else {
            WorkloadOutcome::RoundLimit
        },
        completion_time,
        broadcast_time,
        disseminated,
        tokens,
        fault_log: Vec::new(),
    }
}

/// The superseded gossip reduction, verbatim: for every source `x` and
/// every horizon `t`, recompose the reversed product `R(t)` **from
/// scratch** and test row `x` — `O(sources × horizons)` full
/// compositions against the shared path's one per round.
///
/// Kept as the differential reference and the "before" half of the
/// workloads microbench; never call this on a hot path.
pub fn gossip_time_naive_per_source(trees: &[RootedTree], max_rounds: u64) -> Option<u64> {
    assert!(!trees.is_empty(), "need at least one tree");
    let n = trees[0].n();
    let reversed: Vec<BoolMatrix> = trees
        .iter()
        .map(|t| t.to_matrix(true).transpose())
        .collect();
    if n == 1 {
        return Some(0);
    }
    let eff = |t: usize| &reversed[t.min(reversed.len() - 1)];
    let mut max_source_time = 0u64;
    let mut product = BoolMatrix::zeros(n);
    let mut scratch = BoolMatrix::zeros(n);
    for x in 0..n {
        let mut sx = None;
        'horizon: for t in 1..=max_rounds {
            // The from-scratch replay this function exists to exhibit.
            product.clone_from(&BoolMatrix::identity(n));
            for s in (0..t as usize).rev() {
                eff(s).compose_into(&product, &mut scratch);
                std::mem::swap(&mut product, &mut scratch);
            }
            if product.row(x).is_full() {
                sx = Some(t);
                break 'horizon;
            }
        }
        max_source_time = max_source_time.max(sx?);
    }
    Some(max_source_time)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SequenceSource, StaticSource};
    use crate::workload::{run_workload, Broadcast, Gossip, KBroadcast, KSourceBroadcast};
    use treecast_trees::generators;

    fn rotating_stars(n: usize) -> Vec<RootedTree> {
        (0..n).map(|c| generators::star_with_center(n, c)).collect()
    }

    #[test]
    fn prefix_run_matches_engine_on_the_static_path() {
        for n in 2..10usize {
            let cfg = SimulationConfig::for_n(n);
            let mut engine = StaticSource::new(generators::path(n));
            let want = run_workload(n, &mut engine, &Broadcast, cfg);
            let mut prefixes =
                ComposedPrefixes::new(vec![generators::path(n)]).with_label(want.source.clone());
            let got = run_workload_prefixes(&mut prefixes, &Broadcast, cfg);
            assert_eq!(got.completion_time, want.completion_time, "n = {n}");
            assert_eq!(got.broadcast_time, want.broadcast_time, "n = {n}");
            assert_eq!(got.rounds, want.rounds, "n = {n}");
            assert_eq!(got.disseminated, want.disseminated, "n = {n}");
        }
    }

    #[test]
    fn gossip_and_k_broadcast_share_one_composition_per_round() {
        // The whole lattice over one rotating-star schedule: every
        // workload reads its completion off the same mask stream.
        let n = 6;
        let cfg = SimulationConfig::for_n(n);
        for k in 1..=n {
            let mut engine = SequenceSource::new(rotating_stars(n));
            let want = run_workload(n, &mut engine, &KBroadcast::new(k), cfg);
            let mut prefixes = ComposedPrefixes::new(rotating_stars(n));
            let got = run_workload_prefixes(&mut prefixes, &KBroadcast::new(k), cfg);
            assert_eq!(got.completion_time, want.completion_time, "k = {k}");
        }
        let mut engine = SequenceSource::new(rotating_stars(n));
        let want = run_workload(n, &mut engine, &Gossip, cfg);
        let mut prefixes = ComposedPrefixes::new(rotating_stars(n));
        let got = run_workload_prefixes(&mut prefixes, &Gossip, cfg);
        assert_eq!(got.completion_time, want.completion_time);
        assert_eq!(got.rounds, want.rounds);
    }

    #[test]
    fn tracked_sources_count_only_their_tokens() {
        let n = 6;
        let cfg = SimulationConfig::for_n(n);
        let workload = KSourceBroadcast::evenly_spread(n, 3);
        let mut engine = SequenceSource::new(rotating_stars(n));
        let want = run_workload(n, &mut engine, &workload, cfg);
        let mut prefixes = ComposedPrefixes::new(rotating_stars(n));
        let got = run_workload_prefixes(&mut prefixes, &workload, cfg);
        assert_eq!(got.completion_time, want.completion_time);
        assert_eq!(got.disseminated, want.disseminated);
        assert_eq!(got.tokens, 3);
    }

    #[test]
    fn shared_reduction_matches_the_naive_per_source_one() {
        let n = 5;
        let trees = rotating_stars(n);
        let cap = SimulationConfig::for_n(n).max_rounds;
        let naive = gossip_time_naive_per_source(&trees, cap);
        let mut prefixes = ComposedPrefixes::new(trees);
        let shared = run_workload_prefixes(&mut prefixes, &Gossip, SimulationConfig::for_n(n));
        assert_eq!(shared.completion_time, naive);
    }

    #[test]
    fn divergent_schedules_hit_the_round_cap() {
        // The static path never completes k ≥ 2; the prefix runner must
        // report the cap exactly like the engine.
        let n = 5;
        let cfg = SimulationConfig::for_n(n).with_max_rounds(40);
        let mut prefixes = ComposedPrefixes::new(vec![generators::path(n)]);
        let got = run_workload_prefixes(&mut prefixes, &KBroadcast::new(2), cfg);
        assert_eq!(got.outcome, WorkloadOutcome::RoundLimit);
        assert_eq!(got.rounds, 40);
        assert_eq!(got.disseminated, 1);
        assert_eq!(got.broadcast_time, Some((n - 1) as u64));
        assert_eq!(
            gossip_time_naive_per_source(&[generators::path(n)], 40),
            None
        );
    }

    #[test]
    fn single_node_completes_at_round_zero() {
        let mut prefixes = ComposedPrefixes::new(vec![generators::star(1)]);
        let got = run_workload_prefixes(&mut prefixes, &Gossip, SimulationConfig::for_n(1));
        assert_eq!(got.completion_time, Some(0));
        assert_eq!(got.rounds, 0);
        assert_eq!(got.disseminated, 1);
    }

    #[test]
    fn disseminated_mask_is_the_and_of_rows() {
        let n = 4;
        let mut m = BoolMatrix::ones(n);
        m.set(2, 1, false);
        let mut mask = BitSet::new(n);
        disseminated_mask(&m, &mut mask);
        assert_eq!(mask.iter().collect::<Vec<_>>(), vec![0, 2, 3]);
    }

    #[test]
    fn provider_label_defaults_to_sequence_semantics() {
        let p = ComposedPrefixes::new(vec![generators::path(3), generators::star(3)]);
        assert_eq!(p.name(), "sequence(len=2)");
        assert_eq!(p.trees().len(), 2);
    }
}
