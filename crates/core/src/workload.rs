//! Workloads: what the processes are trying to disseminate, and when a
//! run counts as finished.
//!
//! The source paper studies one workload — single-source broadcast
//! (Definition 2.2) — but its companion version (*Asymptotically Tight
//! Bounds on the Time Complexity of Broadcast and its Variants in Dynamic
//! Networks*, arXiv:2211.10151) generalizes the question to **k-broadcast**
//! and **all-to-all gossip**. This module makes the whole family pluggable:
//!
//! * a token model — every source node owns a distinct token, and a round
//!   graph moves tokens along its edges;
//! * the [`Workload`] trait — which nodes are sources, and a termination
//!   predicate over the per-token dissemination progress;
//! * ready-made workloads: [`Broadcast`], [`KBroadcast`], [`Gossip`],
//!   [`KSourceBroadcast`];
//! * [`run_workload`] — the engine loop generalizing
//!   [`crate::simulate`], plus [`TrackedTokens`], the batched `k`-row
//!   state that rides `BoolMatrix::compose_prefix_into`.
//!
//! # Semantics
//!
//! Every node `x` starts with its own token `x`; after `t` rounds node `y`
//! holds exactly the tokens `{x : (x, y) ∈ G(t)}` — the heard-from set
//! [`BroadcastState`] already tracks. A token is **disseminated** when
//! every node holds it (its source's row of `G(t)` is full, i.e. the
//! source has broadcast). The workload family is a threshold lattice over
//! the count of disseminated tokens:
//!
//! * [`Broadcast`] — 1 token disseminated (Definition 2.2 exactly);
//! * [`KBroadcast`] — `k` tokens disseminated (`k` distinct nodes have
//!   each completed a broadcast); `k = 1` recovers broadcast;
//! * [`Gossip`] — all `n` tokens disseminated (`G(t)` all-ones, the
//!   all-to-all mode previously reached via the engine's
//!   `StopCondition::Gossip` / the tournament's `measure_gossip` flag);
//! * [`KSourceBroadcast`] — only `k` chosen source tokens exist, all of
//!   which must be disseminated; tracked in a batched `k × n` holder
//!   matrix ([`TrackedTokens`]) instead of the full `n × n` state.
//!
//! A worst-case caveat the experiments exhibit (`E10 variants`): under the
//! unrestricted rooted-tree adversary only `k = 1` is guaranteed finite —
//! the static path reaches a state whose heard-from sets are nested after
//! `n − 1` rounds and then never makes progress again, so `k ≥ 2` and
//! gossip can be delayed forever ([`crate::bounds::tree_k_broadcast_diverges`]).
//! Under `c`-nonsplit round graphs every workload completes quickly.

use treecast_bitmatrix::BoolMatrix;
use treecast_trees::{NodeId, RootedTree};

use crate::engine::{SimulationConfig, TreeSource};
use crate::model::BroadcastState;

/// Which nodes start with a token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceSet {
    /// Every node is a source of its own token (the broadcast/gossip
    /// family; state = the full product graph).
    All,
    /// Only these nodes are sources; the engine tracks one holder row per
    /// token in a batched [`TrackedTokens`] state.
    Nodes(Vec<NodeId>),
}

/// Per-round dissemination progress handed to
/// [`Workload::is_complete`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadProgress {
    /// Number of processes.
    pub n: usize,
    /// Rounds applied so far.
    pub round: u64,
    /// Total tokens in flight (`n` for [`SourceSet::All`]).
    pub tokens: usize,
    /// Tokens currently held by every node.
    pub disseminated: usize,
}

/// A dissemination workload: sources, token semantics, and a termination
/// predicate.
///
/// Implementations are cheap value objects; the engine queries
/// [`Workload::sources`] once and [`Workload::is_complete`] every round.
pub trait Workload {
    /// Report name (`broadcast`, `k-broadcast(k=2)`, …).
    fn name(&self) -> String;

    /// Which nodes start with a token, given the run size.
    fn sources(&self, n: usize) -> SourceSet {
        let _ = n;
        SourceSet::All
    }

    /// Returns `true` once the run's goal is reached.
    fn is_complete(&self, progress: &WorkloadProgress) -> bool;
}

/// Single-source broadcast — Definition 2.2: stop at the first round where
/// some node's information has reached everyone.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Broadcast;

impl Workload for Broadcast {
    fn name(&self) -> String {
        "broadcast".into()
    }

    fn is_complete(&self, progress: &WorkloadProgress) -> bool {
        progress.disseminated >= 1
    }
}

/// `k`-broadcast — the companion paper's generalization: stop once `k`
/// distinct nodes have each completed a broadcast (`k` tokens are held by
/// everyone). `k = 1` is [`Broadcast`], `k = n` is [`Gossip`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KBroadcast {
    k: usize,
}

impl KBroadcast {
    /// A `k`-broadcast workload.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` (completion would be vacuous at round 0 for
    /// every run — almost certainly a bug at the call site).
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "k-broadcast needs at least one token");
        KBroadcast { k }
    }

    /// The dissemination threshold.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl Workload for KBroadcast {
    fn name(&self) -> String {
        format!("k-broadcast(k={})", self.k)
    }

    fn is_complete(&self, progress: &WorkloadProgress) -> bool {
        progress.disseminated >= self.k
    }
}

/// All-to-all gossip: stop once every node has heard from every node
/// (`G(t)` all-ones). Replaces the ad-hoc `measure_gossip` plumbing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Gossip;

impl Workload for Gossip {
    fn name(&self) -> String {
        "gossip".into()
    }

    fn is_complete(&self, progress: &WorkloadProgress) -> bool {
        progress.disseminated >= progress.tokens
    }
}

/// Broadcast from `k` chosen sources: only the sources' tokens exist, and
/// the run completes when all of them have been disseminated.
///
/// Unlike the [`SourceSet::All`] family this workload is measured on a
/// batched [`TrackedTokens`] state — `k` holder rows composed with the
/// round matrix through `BoolMatrix::compose_prefix_into`, which puts the
/// PR-2 tiled kernel on the hot path at `k ≪ n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KSourceBroadcast {
    sources: Vec<NodeId>,
}

impl KSourceBroadcast {
    /// Broadcast of the tokens owned by `sources`.
    ///
    /// # Panics
    ///
    /// Panics if `sources` is empty or contains duplicates.
    pub fn new(sources: Vec<NodeId>) -> Self {
        assert!(!sources.is_empty(), "need at least one source");
        let mut seen = sources.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), sources.len(), "duplicate source node");
        KSourceBroadcast { sources }
    }

    /// The `k` evenly spread canonical sources `{⌊0·n/k⌋, ⌊1·n/k⌋, …,
    /// ⌊(k−1)·n/k⌋}` used by the experiments.
    ///
    /// **Contract:** requires `1 ≤ k ≤ n`, and asserts it explicitly —
    /// `k = 0` has no tokens to disseminate (vacuous completion at round
    /// 0) and `k > n` cannot name `k` distinct sources (the floor formula
    /// would silently collide, e.g. `n = 4, k = 5` repeats node 0). For
    /// `1 ≤ k ≤ n` consecutive floors differ by at least `⌊n/k⌋ ≥ 1`, so
    /// the sources are always distinct and [`KSourceBroadcast::new`]'s
    /// duplicate check never fires. `k = 1` yields the single source
    /// `{0}`; `k = n` yields all nodes (the gossip source set).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > n`, with a message naming both values.
    pub fn evenly_spread(n: usize, k: usize) -> Self {
        assert!(
            k >= 1,
            "k-source broadcast needs at least one source (got k = 0, n = {n})"
        );
        assert!(
            k <= n,
            "cannot spread k = {k} distinct sources over n = {n} nodes"
        );
        Self::new((0..k).map(|i| i * n / k).collect())
    }

    /// The chosen sources.
    pub fn sources(&self) -> &[NodeId] {
        &self.sources
    }
}

impl Workload for KSourceBroadcast {
    fn name(&self) -> String {
        format!("k-source-broadcast(k={})", self.sources.len())
    }

    fn sources(&self, n: usize) -> SourceSet {
        assert!(
            self.sources.iter().all(|&s| s < n),
            "source out of range for n = {n}"
        );
        SourceSet::Nodes(self.sources.clone())
    }

    fn is_complete(&self, progress: &WorkloadProgress) -> bool {
        progress.disseminated >= progress.tokens
    }
}

/// Batched token-subset dissemination state: row `i` is the holder set of
/// token `i` (owned by `sources[i]`), kept in the first `k` rows of one
/// square [`BoolMatrix`].
///
/// Round application is one [`BoolMatrix::compose_prefix_into`] — a
/// `k × n` row block against the round's `n × n` matrix — so *stepping
/// this state* costs `k/n`-th of a full-state round and runs on the
/// PR-2 sparse/tiled kernels. The round matrix and output buffers are
/// retained, so steady-state stepping performs no heap allocation.
///
/// Note the engine entry points ([`run_workload`],
/// [`crate::run_workload_faulty`]) keep a full [`BroadcastState`] in
/// lockstep so state-reading adversaries see their usual interface —
/// end to end, a tracked run measures this state *in addition to* the
/// full one; the `k/n` saving is the standalone stepping cost (what
/// `bench_workloads` gates), not a reduction of the engine loop.
#[derive(Debug, Clone)]
pub struct TrackedTokens {
    n: usize,
    round: u64,
    sources: Vec<NodeId>,
    /// Rows `0..sources.len()` are live holder sets; the rest stay zero.
    holders: BoolMatrix,
    /// Retained double buffer for the compose output.
    scratch: BoolMatrix,
    /// Retained buffer for the round tree's matrix (`T + I`).
    round_matrix: BoolMatrix,
}

impl TrackedTokens {
    /// A fresh state: token `i` is held only by `sources[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `sources` is empty, or any source is `>= n`.
    pub fn new(n: usize, sources: &[NodeId]) -> Self {
        assert!(n > 0, "the model needs at least one process");
        assert!(!sources.is_empty(), "need at least one source");
        let mut holders = BoolMatrix::zeros(n);
        for (i, &s) in sources.iter().enumerate() {
            assert!(s < n, "source {s} out of range for n = {n}");
            holders.set(i, s, true);
        }
        TrackedTokens {
            n,
            round: 0,
            sources: sources.to_vec(),
            holders,
            scratch: BoolMatrix::zeros(n),
            round_matrix: BoolMatrix::zeros(n),
        }
    }

    /// Number of processes.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Rounds applied so far.
    #[inline]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The tracked sources, in token order.
    pub fn sources(&self) -> &[NodeId] {
        &self.sources
    }

    /// The holder set of token `i` as a zero-copy row view.
    ///
    /// # Panics
    ///
    /// Panics if `i >= sources().len()`.
    pub fn holders(&self, i: usize) -> treecast_bitmatrix::RowRef<'_> {
        assert!(i < self.sources.len(), "token {i} out of range");
        self.holders.row(i)
    }

    /// Number of tokens currently held by every node.
    pub fn disseminated_count(&self) -> usize {
        (0..self.sources.len())
            .filter(|&i| self.holders.row(i).is_full())
            .count()
    }

    /// Applies one synchronous round along `tree` (self-loops implied):
    /// each holder row becomes `row ∘ (T + I)`.
    ///
    /// # Panics
    ///
    /// Panics if `tree.n() != self.n()`.
    pub fn apply(&mut self, tree: &RootedTree) {
        assert_eq!(
            tree.n(),
            self.n,
            "round tree has {} nodes but the state has {}",
            tree.n(),
            self.n
        );
        self.round_matrix.clear();
        self.round_matrix.add_self_loops();
        for y in 0..self.n {
            if let Some(p) = tree.parent(y) {
                self.round_matrix.set(p, y, true);
            }
        }
        self.step();
    }

    /// Applies one synchronous round along an arbitrary directed graph
    /// `m` (self-loops are **not** implied).
    ///
    /// # Panics
    ///
    /// Panics if `m.n() != self.n()`.
    pub fn apply_matrix(&mut self, m: &BoolMatrix) {
        assert_eq!(
            m.n(),
            self.n,
            "round matrix has {} nodes but the state has {}",
            m.n(),
            self.n
        );
        self.round_matrix.clone_from(m);
        self.step();
    }

    fn step(&mut self) {
        self.holders
            .compose_prefix_into(self.sources.len(), &self.round_matrix, &mut self.scratch);
        std::mem::swap(&mut self.holders, &mut self.scratch);
        self.round += 1;
    }

    /// Token-loss fault: node `y` is removed from every tracked holder set
    /// except that of its own token (mirroring
    /// [`BroadcastState::forget`], restricted to the tracked rows).
    ///
    /// Scenario-layer primitive ([`crate::scenario`]); the round counter
    /// is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `y >= n`.
    pub fn forget(&mut self, y: NodeId) {
        assert!(y < self.n, "node {y} out of range for n = {}", self.n);
        for (i, &s) in self.sources.iter().enumerate() {
            if s != y {
                self.holders.row_mut(i).remove(y);
            }
        }
    }

    /// The progress summary the workload predicates consume.
    pub fn progress(&self) -> WorkloadProgress {
        WorkloadProgress {
            n: self.n,
            round: self.round,
            tokens: self.sources.len(),
            disseminated: self.disseminated_count(),
        }
    }
}

/// The dissemination progress of a full [`BroadcastState`]
/// ([`SourceSet::All`] semantics: every node sources its own token).
pub fn full_state_progress(state: &BroadcastState) -> WorkloadProgress {
    WorkloadProgress {
        n: state.n(),
        round: state.round(),
        tokens: state.n(),
        disseminated: state.disseminated_count(),
    }
}

/// Why a workload run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum WorkloadOutcome {
    /// The workload's termination predicate fired.
    Completed,
    /// The round cap was hit first (worst-case `k ≥ 2` tree runs do this
    /// by design — see [`crate::bounds::tree_k_broadcast_diverges`]).
    RoundLimit,
}

/// Summary of a finished workload run.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WorkloadReport {
    /// Number of processes.
    pub n: usize,
    /// Workload name.
    pub workload: String,
    /// Tree-source name.
    pub source: String,
    /// Rounds executed.
    pub rounds: u64,
    /// Why the run stopped.
    pub outcome: WorkloadOutcome,
    /// First round at which the workload was complete, if reached.
    pub completion_time: Option<u64>,
    /// First round with at least one token disseminated (the classic
    /// broadcast time), if reached.
    pub broadcast_time: Option<u64>,
    /// Tokens disseminated when the run stopped.
    pub disseminated: usize,
    /// Total tokens in flight.
    pub tokens: usize,
    /// The faults actually applied, one entry per executed round (empty
    /// for fault-free runs). Replaying this log through
    /// [`crate::scenario::FaultSchedule::replay`] reproduces the run
    /// bit-identically.
    pub fault_log: Vec<crate::scenario::RoundFaults>,
}

impl WorkloadReport {
    /// The completion time, panicking with context if the run capped out.
    ///
    /// # Panics
    ///
    /// Panics if the workload did not complete.
    pub fn completion_time_or_panic(&self) -> u64 {
        self.completion_time.unwrap_or_else(|| {
            // analyze: allow(panic): documented panicking accessor (the _or_panic suffix is the contract)
            panic!(
                "workload {:?} under {:?} did not complete within {} rounds at n = {} \
                 ({}/{} tokens disseminated)",
                self.workload, self.source, self.rounds, self.n, self.disseminated, self.tokens
            )
        })
    }
}

/// Runs `source` against a fresh `n`-process state until `workload`
/// completes or `config.max_rounds` passes.
///
/// For [`SourceSet::All`] workloads the state is a [`BroadcastState`]
/// (identical stepping to [`crate::simulate`]); for
/// [`SourceSet::Nodes`] workloads the measured object is a batched
/// [`TrackedTokens`] state, with a full [`BroadcastState`] kept in
/// lockstep so state-reading adversaries ([`TreeSource`]) see the same
/// interface as everywhere else.
///
/// `config.until` is ignored — the workload is the stop condition.
///
/// # Examples
///
/// ```
/// use treecast_core::{run_workload, Gossip, KBroadcast, SimulationConfig, StaticSource};
/// use treecast_trees::generators;
///
/// let n = 6;
/// // One star round disseminates the center's token:
/// let mut star = StaticSource::new(generators::star(n));
/// let report = run_workload(n, &mut star, &KBroadcast::new(1), SimulationConfig::for_n(n));
/// assert_eq!(report.completion_time, Some(1));
///
/// // ... but a static star never completes gossip (leaf tokens are stuck).
/// let mut star = StaticSource::new(generators::star(n));
/// let report = run_workload(n, &mut star, &Gossip, SimulationConfig::for_n(n));
/// assert_eq!(report.completion_time, None);
/// ```
///
/// # Panics
///
/// Panics if `n == 0`, a source node is out of range, or the tree source
/// produces a tree of the wrong size.
pub fn run_workload<S: TreeSource + ?Sized, W: Workload + ?Sized>(
    n: usize,
    source: &mut S,
    workload: &W,
    config: SimulationConfig,
) -> WorkloadReport {
    // The fault-free engine *is* the scenario runner under `NoFaults`:
    // quiet rounds take the cheap tree-apply stepping inside the runner,
    // so delegation costs nothing per round and the two engines cannot
    // drift (the round-for-round equivalence is also property-tested in
    // `tests/scenarios.rs`).
    let mut report = crate::scenario::run_workload_faulty(
        n,
        source,
        workload,
        &mut crate::scenario::NoFaults,
        config,
    );
    // Fault-free reports carry no log (every entry would be quiet).
    report.fault_log.clear();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, SequenceSource, StaticSource};
    use treecast_trees::generators;

    #[test]
    fn broadcast_workload_matches_simulate() {
        for n in 2..10 {
            let mut a = StaticSource::new(generators::path(n));
            let mut b = StaticSource::new(generators::path(n));
            let legacy = simulate(n, &mut a, SimulationConfig::for_n(n));
            let report = run_workload(n, &mut b, &Broadcast, SimulationConfig::for_n(n));
            assert_eq!(report.completion_time, legacy.broadcast_time, "n = {n}");
            assert_eq!(report.broadcast_time, legacy.broadcast_time, "n = {n}");
            assert_eq!(report.rounds, legacy.rounds, "n = {n}");
        }
    }

    #[test]
    fn k_equals_one_is_broadcast_and_k_equals_n_is_gossip() {
        let n = 5;
        // A rotating star completes gossip after a star on every center.
        let schedule: Vec<_> = (0..n).map(|c| generators::star_with_center(n, c)).collect();
        let mut s1 = SequenceSource::new(schedule.clone());
        let mut s2 = SequenceSource::new(schedule.clone());
        let mut s3 = SequenceSource::new(schedule.clone());
        let mut s4 = SequenceSource::new(schedule);
        let cfg = SimulationConfig::for_n(n);
        let b = run_workload(n, &mut s1, &Broadcast, cfg);
        let k1 = run_workload(n, &mut s2, &KBroadcast::new(1), cfg);
        let kn = run_workload(n, &mut s3, &KBroadcast::new(n), cfg);
        let g = run_workload(n, &mut s4, &Gossip, cfg);
        assert_eq!(b.completion_time, k1.completion_time);
        assert_eq!(kn.completion_time, g.completion_time);
        assert!(g.completion_time.unwrap() >= b.completion_time.unwrap());
    }

    #[test]
    fn k_broadcast_monotone_in_k() {
        let n = 6;
        let schedule: Vec<_> = (0..n).map(|c| generators::star_with_center(n, c)).collect();
        let mut prev = 0;
        for k in 1..=n {
            let mut src = SequenceSource::new(schedule.clone());
            let r = run_workload(n, &mut src, &KBroadcast::new(k), SimulationConfig::for_n(n));
            let t = r.completion_time_or_panic();
            assert!(t >= prev, "k-broadcast must be monotone in k ({k})");
            prev = t;
        }
    }

    #[test]
    fn static_path_diverges_for_k_at_least_2() {
        // The worst-case witness behind bounds::tree_k_broadcast_diverges:
        // after n − 1 path rounds the heard sets are nested and no further
        // round of the same path makes progress.
        let n = 5;
        let mut src = StaticSource::new(generators::path(n));
        let r = run_workload(
            n,
            &mut src,
            &KBroadcast::new(2),
            SimulationConfig::for_n(n).with_max_rounds(200),
        );
        assert_eq!(r.outcome, WorkloadOutcome::RoundLimit);
        assert_eq!(r.disseminated, 1, "only the path root's token spreads");
        assert_eq!(r.broadcast_time, Some((n - 1) as u64));
    }

    #[test]
    fn tracked_tokens_agree_with_full_state() {
        // Holder row i of a tracked run must equal the reach set of
        // sources[i] in the full product state, round for round.
        let n = 7;
        let sources = vec![0usize, 3, 6];
        let mut tracked = TrackedTokens::new(n, &sources);
        let mut full = BroadcastState::new(n);
        let rounds = [
            generators::path(n),
            generators::star_with_center(n, 3),
            generators::broom(n, 2),
            generators::caterpillar(n, 3),
            generators::path(n),
        ];
        for tree in &rounds {
            tracked.apply(tree);
            full.apply(tree);
            for (i, &s) in sources.iter().enumerate() {
                assert_eq!(
                    tracked.holders(i).to_bitset(),
                    full.reach_set(s),
                    "token {i} (source {s}) diverged at round {}",
                    full.round()
                );
            }
        }
    }

    #[test]
    fn tracked_tokens_matrix_rounds() {
        let n = 6;
        let sources = vec![1usize, 4];
        let mut tracked = TrackedTokens::new(n, &sources);
        let mut full = BroadcastState::new(n);
        let m = BoolMatrix::from_edges(n, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let mut reflexive = m.clone();
        reflexive.add_self_loops();
        for _ in 0..4 {
            tracked.apply_matrix(&reflexive);
            full.apply_matrix(&reflexive);
            for (i, &s) in sources.iter().enumerate() {
                assert_eq!(tracked.holders(i).to_bitset(), full.reach_set(s));
            }
        }
    }

    #[test]
    fn k_source_broadcast_completes_under_rotating_stars() {
        let n = 6;
        let workload = KSourceBroadcast::evenly_spread(n, 3);
        let schedule: Vec<_> = (0..n).map(|c| generators::star_with_center(n, c)).collect();
        let mut src = SequenceSource::new(schedule);
        let r = run_workload(n, &mut src, &workload, SimulationConfig::for_n(n));
        let t = r.completion_time_or_panic();
        assert!(t <= n as u64);
        assert_eq!(r.tokens, 3);
        assert_eq!(r.disseminated, 3);
    }

    #[test]
    fn k_source_names_and_sources() {
        let w = KSourceBroadcast::evenly_spread(8, 4);
        assert_eq!(w.sources(), &[0, 2, 4, 6]);
        assert!(Workload::name(&w).contains("k=4"));
        assert!(matches!(Workload::sources(&w, 8), SourceSet::Nodes(_)));
    }

    #[test]
    #[should_panic(expected = "at least one token")]
    fn k_zero_rejected() {
        KBroadcast::new(0);
    }

    #[test]
    #[should_panic(expected = "duplicate source")]
    fn duplicate_sources_rejected() {
        KSourceBroadcast::new(vec![1, 1]);
    }

    #[test]
    #[should_panic(expected = "at least one source")]
    fn evenly_spread_rejects_k_zero() {
        KSourceBroadcast::evenly_spread(6, 0);
    }

    #[test]
    #[should_panic(expected = "cannot spread k = 7 distinct sources over n = 6")]
    fn evenly_spread_rejects_k_above_n() {
        KSourceBroadcast::evenly_spread(6, 7);
    }

    #[test]
    fn evenly_spread_edges_of_the_contract() {
        // k = 1: the single canonical source.
        assert_eq!(KSourceBroadcast::evenly_spread(6, 1).sources(), &[0]);
        // k = n: every node, i.e. the gossip source set — and the floor
        // formula must yield each node exactly once.
        let all = KSourceBroadcast::evenly_spread(6, 6);
        assert_eq!(all.sources(), &[0, 1, 2, 3, 4, 5]);
        // Distinctness holds across the whole legal range (the contract's
        // "consecutive floors differ" argument, checked exhaustively).
        for n in 1..=24usize {
            for k in 1..=n {
                let w = KSourceBroadcast::evenly_spread(n, k);
                assert_eq!(w.sources().len(), k, "n = {n}, k = {k}");
            }
        }
    }

    #[test]
    fn tracked_forget_mirrors_full_state_forget() {
        let n = 6;
        let sources = vec![0usize, 2, 4];
        let mut tracked = TrackedTokens::new(n, &sources);
        let mut full = BroadcastState::new(n);
        for tree in &[generators::star(n), generators::path(n)] {
            tracked.apply(tree);
            full.apply(tree);
        }
        tracked.forget(2);
        full.forget(2);
        for (i, &s) in sources.iter().enumerate() {
            assert_eq!(
                tracked.holders(i).to_bitset(),
                full.reach_set(s),
                "token {i} diverged after forget"
            );
        }
        // Node 2 keeps its own token.
        assert!(tracked.holders(1).contains(2));
    }

    #[test]
    fn single_node_everything_is_instant() {
        let mut src = StaticSource::new(generators::star(1));
        let r = run_workload(1, &mut src, &Gossip, SimulationConfig::for_n(1));
        assert_eq!(r.completion_time, Some(0));
        assert_eq!(r.rounds, 0);
    }

    #[test]
    fn workload_names() {
        assert_eq!(Broadcast.name(), "broadcast");
        assert_eq!(KBroadcast::new(3).name(), "k-broadcast(k=3)");
        assert_eq!(Gossip.name(), "gossip");
    }
}
