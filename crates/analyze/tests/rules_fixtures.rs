//! Fixture-driven rule tests: every rule L1–L6 is demonstrated by a
//! mini-workspace pair under `tests/fixtures/` — a clean variant the
//! rule must accept and a dirty variant it must reject, with the
//! expected diagnostics pinned by message fragment.
//!
//! The fixtures use real `treecast-*` crate names so the checked-in
//! layering DAG applies to them unchanged; they are plain directory
//! trees, not cargo workspace members (the root `crates/*` glob is
//! single-level and never descends into `tests/fixtures/`).

use std::path::PathBuf;

use treecast_analyze::{run_rules, Finding, RuleId, Workspace};

fn fixture(name: &str) -> Workspace {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    Workspace::load(&dir).unwrap_or_else(|e| panic!("fixture `{name}` should load: {e}"))
}

fn run(name: &str, rule: RuleId) -> Vec<Finding> {
    run_rules(&fixture(name), &[rule])
}

/// Asserts exactly one finding in `findings` mentions `fragment`.
#[track_caller]
fn assert_one(findings: &[Finding], fragment: &str) {
    let hits = findings
        .iter()
        .filter(|f| f.message.contains(fragment))
        .count();
    assert_eq!(
        hits, 1,
        "want exactly one finding containing {fragment:?}, got {hits} in {findings:#?}"
    );
}

// ---------------------------------------------------------------- L1

#[test]
fn l1_clean_layering_passes() {
    assert_eq!(run("l1_clean", RuleId::Layering), vec![]);
}

#[test]
fn l1_dirty_layering_fires() {
    let findings = run("l1_dirty", RuleId::Layering);
    assert_eq!(findings.len(), 3, "{findings:#?}");
    // The base layer declares a dependency on a crate above it.
    assert_one(
        &findings,
        "`treecast-bitmatrix` must not depend on `treecast-core`",
    );
    // Source reaches a crate the manifest never declared.
    assert_one(
        &findings,
        "uses `treecast_solver` without declaring `treecast-solver`",
    );
    // A treecast crate that never registered in the DAG table.
    assert_one(
        &findings,
        "`treecast-rogue` is not registered in the layering DAG",
    );
}

// ---------------------------------------------------------------- L2

#[test]
fn l2_clean_panics_pass() {
    // Annotated expect, test-module unwrap, and bin-target unwrap are
    // all outside the policy.
    assert_eq!(run("l2_clean", RuleId::PanicPolicy), vec![]);
}

#[test]
fn l2_dirty_panics_fire() {
    let findings = run("l2_dirty", RuleId::PanicPolicy);
    assert_eq!(findings.len(), 4, "{findings:#?}");
    assert_one(&findings, ".unwrap() in library code");
    assert_one(&findings, "panic! in library code");
    assert_one(&findings, ".expect() in library code");
    assert_one(&findings, "annotation is missing its reason");
}

// ---------------------------------------------------------------- L3

#[test]
fn l3_clean_unsafe_hygiene_passes() {
    // `#![forbid(unsafe_code)]` in the lib, `// SAFETY:` on the one
    // unsafe block in test support code.
    assert_eq!(run("l3_clean", RuleId::UnsafeHygiene), vec![]);
}

#[test]
fn l3_dirty_unsafe_hygiene_fires() {
    let findings = run("l3_dirty", RuleId::UnsafeHygiene);
    assert_eq!(findings.len(), 2, "{findings:#?}");
    assert_one(&findings, "must carry `#![forbid(unsafe_code)]`");
    assert_one(&findings, "`unsafe` without a `// SAFETY:` comment");
}

// ---------------------------------------------------------------- L4

#[test]
fn l4_clean_bench_gates_pass() {
    // bench_demo has a baseline, a ci.sh invocation, and a README row.
    assert_eq!(run("l4_clean", RuleId::GateCoverage), vec![]);
}

#[test]
fn l4_dirty_bench_gates_fire() {
    let findings = run("l4_dirty", RuleId::GateCoverage);
    assert_eq!(findings.len(), 3, "{findings:#?}");
    assert_one(
        &findings,
        "has no checked-in baseline `results/BENCH_orphan_baseline.json`",
    );
    assert_one(&findings, "`bench_orphan` is never invoked from ci.sh");
    assert_one(&findings, "BENCH_orphan.json");
}

// ---------------------------------------------------------------- L5

#[test]
fn l5_clean_features_pass() {
    // Both `#[cfg(feature = …)]` and `cfg!(feature = …)` name a feature
    // the manifest declares.
    assert_eq!(run("l5_clean", RuleId::FeatureHygiene), vec![]);
}

#[test]
fn l5_dirty_features_fire() {
    let findings = run("l5_dirty", RuleId::FeatureHygiene);
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_one(&findings, "cfg names feature \"sered\"");
}

// ---------------------------------------------------------------- L6

#[test]
fn l6_clean_docs_pass() {
    // Documented items, attributes between doc and item, struct fields
    // and `pub(crate)` visibility out of scope.
    assert_eq!(run("l6_clean", RuleId::DocCoverage), vec![]);
}

#[test]
fn l6_dirty_docs_fire() {
    let findings = run("l6_dirty", RuleId::DocCoverage);
    assert_eq!(findings.len(), 3, "{findings:#?}");
    assert_one(&findings, "public fn `bare` has no doc comment");
    assert_one(&findings, "public struct `Naked` has no doc comment");
    assert_one(&findings, "public const `LIMIT` has no doc comment");
}

// ------------------------------------------------- cross-rule sanity

#[test]
fn dirty_fixtures_are_quiet_outside_their_rule() {
    // The L5 dirty fixture must not trip the panic policy, and the L2
    // dirty fixture must not trip feature hygiene: each fixture isolates
    // exactly one rule's failure mode.
    assert_eq!(run("l5_dirty", RuleId::PanicPolicy), vec![]);
    assert_eq!(run("l2_dirty", RuleId::FeatureHygiene), vec![]);
}
