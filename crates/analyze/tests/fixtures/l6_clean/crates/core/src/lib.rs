#![forbid(unsafe_code)]
//! Fully documented surface.

/// A documented function.
#[inline]
pub fn documented() {}

/// A documented struct.
pub struct S {
    /// A documented field (fields are in scope for rustdoc, not L6).
    pub field: u32,
    not_public: u32,
}

/// Restricted visibility is out of scope.
pub(crate) fn internal() -> u32 {
    S { field: 0, not_public: 1 }.not_public
}
