#![forbid(unsafe_code)]
//! Gated items name declared features.

/// Only compiled with the declared feature.
#[cfg(feature = "serde")]
pub fn gated() {}

/// Macro form checks too.
pub fn probe() -> bool {
    cfg!(feature = "serde")
}
