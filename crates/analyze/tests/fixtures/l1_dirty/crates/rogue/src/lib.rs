#![forbid(unsafe_code)]
//! A crate that never registered in the layering DAG.
