#![forbid(unsafe_code)]
//! Base layer that illegally reaches up into core.

/// Uses a crate outside the declared manifest closure, too.
pub fn bad() {
    treecast_solver::poke();
}
