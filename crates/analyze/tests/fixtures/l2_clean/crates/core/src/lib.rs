#![forbid(unsafe_code)]
//! Library code under the panic policy.

/// Annotated sites and test-module sites are fine.
pub fn ok(x: Option<u32>) -> u32 {
    // analyze: allow(panic): the caller guarantees Some by construction.
    x.expect("always Some")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
