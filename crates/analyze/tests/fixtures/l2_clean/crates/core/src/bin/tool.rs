//! Binaries are outside the panic policy.

fn main() {
    let v: Option<u32> = Some(1);
    println!("{}", v.unwrap());
}
