#![forbid(unsafe_code)]
//! A gated item that can never compile in.

/// Inert: no such feature exists in the manifest.
#[cfg(feature = "sered")]
pub fn never() {}
