//! A gate that silently stopped gating.

fn main() {}
