//! Library missing `#![forbid(unsafe_code)]`.

/// Nothing else wrong.
pub fn fine() {}
