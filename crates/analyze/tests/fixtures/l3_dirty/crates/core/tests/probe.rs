//! Unsafe without a SAFETY contract.

#[test]
fn reads_a_raw_pointer() {
    let x = 7u32;
    let p = &x as *const u32;
    let y = unsafe { *p };
    assert_eq!(y, 7);
}
