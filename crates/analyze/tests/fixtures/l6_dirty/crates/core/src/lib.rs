#![forbid(unsafe_code)]
//! Undocumented public surface.

pub fn bare() {}

pub struct Naked;

pub const LIMIT: usize = 8;
