#!/usr/bin/env bash
cargo run --bin bench_demo -- --check results/BENCH_demo_baseline.json
