#![forbid(unsafe_code)]
//! Bench harness.
