//! A wired-up gate.

fn main() {}
