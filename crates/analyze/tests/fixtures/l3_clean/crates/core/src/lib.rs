#![forbid(unsafe_code)]
//! Safe library.

/// Nothing unsafe here.
pub fn fine() {}
