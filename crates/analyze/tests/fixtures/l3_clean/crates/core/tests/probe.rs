//! Test support code may use unsafe with a stated contract.

#[test]
fn reads_a_raw_pointer() {
    let x = 7u32;
    let p = &x as *const u32;
    // SAFETY: `p` points at a live stack value for the whole block.
    let y = unsafe { *p };
    assert_eq!(y, 7);
}
