#![forbid(unsafe_code)]
//! Library code violating the panic policy.

/// A naked unwrap.
pub fn naked(x: Option<u32>) -> u32 {
    x.unwrap()
}

/// A naked expect and a panic.
pub fn shouting(x: Option<u32>) -> u32 {
    if x.is_none() {
        panic!("boom");
    }
    x.expect("checked above")
}

/// An annotation that forgot its reason.
pub fn unreasoned(x: Option<u32>) -> u32 {
    // analyze: allow(panic):
    x.expect("why though")
}
