#![forbid(unsafe_code)]
//! Trees layer: may use the bitmatrix layer below it.

/// Re-wrap a word.
pub fn wrap(w: treecast_bitmatrix::Word) -> treecast_bitmatrix::Word {
    w
}
