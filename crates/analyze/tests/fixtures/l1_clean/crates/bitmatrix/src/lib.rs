#![forbid(unsafe_code)]
//! Base layer.

/// A word.
pub struct Word(pub u64);
