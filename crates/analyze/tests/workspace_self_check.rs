//! The analyzer must pass on its own workspace: all six rules over the
//! real repository, with the checked-in `analyze.allow`, yield zero
//! live findings and zero stale allowlist entries — the same contract
//! `ci.sh` enforces, kept honest from inside `cargo test`.

use std::path::PathBuf;

use treecast_analyze::{report, run_rules, Allowlist, RuleId, Workspace};

fn repo_root() -> PathBuf {
    // crates/analyze/../.. — the workspace root this crate lives in.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn the_real_workspace_is_clean_under_the_checked_in_allowlist() {
    let ws = Workspace::load(&repo_root()).expect("the real workspace loads");
    assert!(
        ws.crates.len() >= 10,
        "expected the full workspace, found only {} crates",
        ws.crates.len()
    );

    let mut findings = run_rules(&ws, &RuleId::ALL);
    let allow_text = std::fs::read_to_string(repo_root().join("analyze.allow"))
        .expect("analyze.allow is checked in");
    let warnings = Allowlist::parse(&allow_text).apply(&mut findings);
    assert_eq!(
        warnings,
        Vec::<String>::new(),
        "stale allowlist entries — shrink analyze.allow"
    );

    let live: Vec<_> = findings.iter().filter(|f| !f.allowlisted).collect();
    assert!(
        live.is_empty(),
        "live findings in the real workspace:\n{}",
        live.iter()
            .map(|f| f.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn the_checked_in_baseline_matches_the_workspace() {
    let ws = Workspace::load(&repo_root()).expect("the real workspace loads");
    let mut findings = run_rules(&ws, &RuleId::ALL);
    let allow_text = std::fs::read_to_string(repo_root().join("analyze.allow"))
        .expect("analyze.allow is checked in");
    Allowlist::parse(&allow_text).apply(&mut findings);

    let baseline = std::fs::read_to_string(repo_root().join("results/ANALYZE_baseline.json"))
        .expect("results/ANALYZE_baseline.json is checked in");
    if let Err(mismatches) = report::check_baseline(&findings, &baseline) {
        panic!(
            "baseline drift — rerun `analyze --write-baseline`:\n{}",
            mismatches.join("\n")
        );
    }
}

#[test]
fn the_server_crate_needs_no_allowlist() {
    // Hard policy: the serving path carries no grandfathered panics.
    let allow_text = std::fs::read_to_string(repo_root().join("analyze.allow"))
        .expect("analyze.allow is checked in");
    for line in allow_text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        assert!(
            !line.contains("crates/server/"),
            "the server crate must stay allowlist-free: `{line}`"
        );
    }
}
