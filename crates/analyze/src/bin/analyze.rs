//! The `analyze` CLI: lexical rules, allowlist ratchet, baseline gate,
//! determinism audit.
//!
//! ```text
//! analyze [--root DIR] [--rules all|L1,L3,…] [--determinism]
//!         [--allowlist FILE] [--json FILE] [--check FILE]
//!         [--write-baseline FILE]
//! ```
//!
//! Defaults: `--root .`, `--rules all`, allowlist `<root>/analyze.allow`
//! (when present), JSON report `<root>/results/ANALYZE.json`.
//!
//! Exit codes: `0` clean, `1` findings / determinism mismatch / baseline
//! mismatch, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use treecast_analyze::report;
use treecast_analyze::rules::run_rules;
use treecast_analyze::{Allowlist, DeterminismReport, RuleId, Workspace};

struct Options {
    root: PathBuf,
    rules: Vec<RuleId>,
    determinism: bool,
    allowlist: Option<PathBuf>,
    json: Option<PathBuf>,
    check: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
}

fn usage() -> String {
    "usage: analyze [--root DIR] [--rules all|L1,L2,…] [--determinism]\n\
     \x20              [--allowlist FILE] [--json FILE] [--check FILE]\n\
     \x20              [--write-baseline FILE]"
        .to_string()
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        rules: Vec::new(),
        determinism: false,
        allowlist: None,
        json: None,
        check: None,
        write_baseline: None,
    };
    let mut ran_rules = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value\n{}", usage()))
        };
        match arg.as_str() {
            "--root" => opts.root = PathBuf::from(value("--root")?),
            "--rules" => {
                ran_rules = true;
                let spec = value("--rules")?;
                if spec.eq_ignore_ascii_case("all") {
                    opts.rules = RuleId::ALL.to_vec();
                } else {
                    for code in spec.split(',') {
                        let rule = RuleId::from_code(code.trim())
                            .ok_or_else(|| format!("unknown rule `{code}` (want L1…L6)"))?;
                        if !opts.rules.contains(&rule) {
                            opts.rules.push(rule);
                        }
                    }
                }
            }
            "--determinism" => opts.determinism = true,
            "--allowlist" => opts.allowlist = Some(PathBuf::from(value("--allowlist")?)),
            "--json" => opts.json = Some(PathBuf::from(value("--json")?)),
            "--check" => opts.check = Some(PathBuf::from(value("--check")?)),
            "--write-baseline" => {
                opts.write_baseline = Some(PathBuf::from(value("--write-baseline")?));
            }
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    // Bare `analyze` means "all rules"; bare `analyze --determinism`
    // runs only the audit (the lexical pass has its own CI step).
    if !ran_rules && !opts.determinism {
        opts.rules = RuleId::ALL.to_vec();
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let ws = match Workspace::load(&opts.root) {
        Ok(ws) => ws,
        Err(err) => {
            eprintln!(
                "analyze: cannot load workspace at {}: {err}",
                opts.root.display()
            );
            return ExitCode::from(2);
        }
    };
    println!(
        "analyze: {} crates, {} source files under {}",
        ws.crates.len(),
        ws.crates.iter().map(|c| c.files.len()).sum::<usize>(),
        opts.root.display()
    );

    let mut findings = run_rules(&ws, &opts.rules);

    // Allowlist: explicit path, or `<root>/analyze.allow` when present.
    // Skipped when no rules ran (a determinism-only run has no findings,
    // so every entry would look stale).
    let allow_path = opts
        .allowlist
        .clone()
        .filter(|_| !opts.rules.is_empty())
        .or_else(|| {
            let default = opts.root.join("analyze.allow");
            (!opts.rules.is_empty() && default.is_file()).then_some(default)
        });
    if let Some(path) = &allow_path {
        match std::fs::read_to_string(path) {
            Ok(text) => {
                let allowlist = Allowlist::parse(&text);
                for warning in allowlist.apply(&mut findings) {
                    eprintln!("analyze: warning: {warning}");
                }
            }
            Err(err) => {
                eprintln!("analyze: cannot read allowlist {}: {err}", path.display());
                return ExitCode::from(2);
            }
        }
    }

    let mut failed = false;
    let live: Vec<_> = findings.iter().filter(|f| !f.allowlisted).collect();
    for f in &live {
        println!("{}", f.render());
    }
    let allowlisted = findings.len() - live.len();
    println!(
        "analyze: rules [{}]: {} finding(s), {} allowlisted",
        opts.rules
            .iter()
            .map(|r| r.code())
            .collect::<Vec<_>>()
            .join(","),
        live.len(),
        allowlisted
    );
    if !live.is_empty() {
        failed = true;
    }

    let determinism = if opts.determinism {
        let audit = DeterminismReport::run();
        print!("{}", audit.render_text());
        if !audit.passed() {
            failed = true;
        }
        Some(audit)
    } else {
        None
    };

    // The JSON report: explicit path, or `<root>/results/ANALYZE.json`
    // when the results directory exists (ci.sh guarantees it does).
    let json_path = opts.json.clone().or_else(|| {
        let dir = opts.root.join("results");
        dir.is_dir().then(|| dir.join("ANALYZE.json"))
    });
    if let Some(path) = &json_path {
        let json = report::render_json(&findings, &opts.rules, determinism.as_ref());
        if let Err(err) = std::fs::write(path, json) {
            eprintln!("analyze: cannot write report {}: {err}", path.display());
            return ExitCode::from(2);
        }
        println!("analyze: report written to {}", path.display());
    }

    if let Some(path) = &opts.write_baseline {
        if let Err(err) = std::fs::write(path, report::render_baseline(&findings)) {
            eprintln!("analyze: cannot write baseline {}: {err}", path.display());
            return ExitCode::from(2);
        }
        println!("analyze: baseline written to {}", path.display());
    }

    if let Some(path) = &opts.check {
        match std::fs::read_to_string(path) {
            Ok(text) => {
                if let Err(mismatches) = report::check_baseline(&findings, &text) {
                    for m in &mismatches {
                        eprintln!("analyze: baseline mismatch: {m}");
                    }
                    failed = true;
                } else {
                    println!("analyze: baseline {} … ok", path.display());
                }
            }
            Err(err) => {
                eprintln!("analyze: cannot read baseline {}: {err}", path.display());
                return ExitCode::from(2);
            }
        }
    }

    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
