//! `treecast-analyze` — the workspace invariant linter and
//! concurrency-determinism auditor.
//!
//! Two halves, one binary (`analyze`):
//!
//! * **The lexical pass** (`analyze --rules all`) walks every crate in
//!   the workspace with a hand-rolled lexer ([`lexer`]) and manifest
//!   reader ([`manifest`]) — no `syn`, no `toml`, no dependencies — and
//!   enforces six structural rules ([`rules`]):
//!
//!   | code | rule |
//!   |------|------|
//!   | L1 | crate-layering DAG (manifests *and* `treecast_*` usage) |
//!   | L2 | panic policy in library code |
//!   | L3 | unsafe hygiene (`forbid(unsafe_code)`, `SAFETY:` notes) |
//!   | L4 | bench-gate coverage (baseline + ci.sh + README row) |
//!   | L5 | cfg/feature hygiene |
//!   | L6 | doc coverage of public items |
//!
//!   Findings print as `path:line: [L2 panic-policy] …` and land in
//!   `results/ANALYZE.json` ([`report`]). Pre-existing findings are
//!   grandfathered by the `analyze.allow` count-ratchet
//!   ([`rules::Allowlist`]); the baseline gate pins allowlisted counts
//!   exactly so they can only go down.
//!
//! * **The determinism audit** (`analyze --determinism`,
//!   [`determinism`]) drives the three threaded subsystems across
//!   thread counts {1, 2, 4, 8} on seeded inputs and fails on any
//!   deviation from the single-threaded reference, exercising the
//!   workspace's `debug_validate` invariant checkers along the way.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod determinism;
pub mod lexer;
pub mod manifest;
pub mod report;
pub mod rules;
pub mod workspace;

pub use determinism::DeterminismReport;
pub use rules::{run_rules, Allowlist, Finding, RuleId};
pub use workspace::Workspace;
