//! A minimal `Cargo.toml` reader — the TOML subset Cargo manifests in
//! this workspace actually use, parsed with no `toml` dependency.
//!
//! Understood: `[section]` / `[section.key]` headers, `key = "string"`,
//! `key = true/false`, `key = { inline = "table", … }`, and multi-line
//! arrays (ignored except for detecting their extent). That covers what
//! the rules need: the package name, the declared `[features]`, and the
//! dependency names of every dependency section (with `optional = true`
//! detection for implicit features).

/// One dependency entry.
#[derive(Debug, Clone)]
pub struct Dep {
    /// Dependency name as written (dashes kept).
    pub name: String,
    /// `true` when declared with `optional = true` (such a dependency
    /// implicitly declares a feature of the same name unless referenced
    /// only via `dep:` syntax — close enough for the L5 audit).
    pub optional: bool,
    /// `true` when the entry sits in `[dev-dependencies]`.
    pub dev: bool,
    /// 1-based line of the declaration.
    pub line: usize,
}

/// The parsed subset of one `Cargo.toml`.
#[derive(Debug, Clone, Default)]
pub struct Manifest {
    /// `package.name`, empty for a virtual (workspace-only) manifest.
    pub package_name: String,
    /// Keys of `[features]`, with their declaration lines.
    pub features: Vec<(String, usize)>,
    /// All dependencies across `[dependencies]`, `[dev-dependencies]`
    /// and `[build-dependencies]` (target-specific sections included).
    pub deps: Vec<Dep>,
}

impl Manifest {
    /// `true` when `name` is usable inside `#[cfg(feature = "…")]` for
    /// this crate: an explicit `[features]` key or an implicit
    /// optional-dependency feature.
    #[must_use]
    pub fn declares_feature(&self, name: &str) -> bool {
        self.features.iter().any(|(f, _)| f == name)
            || self.deps.iter().any(|d| d.optional && d.name == name)
    }

    /// The dependency entry named `name`, if any.
    #[must_use]
    pub fn dep(&self, name: &str) -> Option<&Dep> {
        self.deps.iter().find(|d| d.name == name)
    }
}

/// Parses the supported subset of `text`. Unknown constructs are skipped
/// line-by-line; the parser never fails.
#[must_use]
pub fn parse(text: &str) -> Manifest {
    let mut m = Manifest::default();
    let mut section = String::new();
    let mut in_array = false;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if in_array {
            if line.ends_with(']') {
                in_array = false;
            }
            continue;
        }
        if line.starts_with('[') && line.ends_with(']') {
            section = line[1..line.len() - 1].trim().to_string();
            // `[dependencies.foo]` / `[target.'cfg(x)'.dependencies.foo]`
            // declare the dependency `foo` directly from the header.
            if let Some(dep_name) = dep_from_section_header(&section) {
                // `optional = true` inside the section body is handled
                // by the key scan below (section context retained).
                m.deps.push(Dep {
                    name: dep_name,
                    optional: false,
                    dev: section.contains("dev-dependencies"),
                    line: lineno,
                });
            }
            continue;
        }
        let Some((key, value)) = split_key_value(&line) else {
            continue;
        };
        if value.starts_with('[') && !value.ends_with(']') {
            in_array = true;
        }
        match section_kind(&section) {
            SectionKind::Package if key == "name" => {
                m.package_name = string_value(value).unwrap_or_default();
            }
            SectionKind::Features => {
                m.features.push((key.to_string(), lineno));
            }
            SectionKind::Deps { dev } => {
                let optional = value.contains("optional") && value.contains("true");
                m.deps.push(Dep {
                    name: key.to_string(),
                    optional,
                    dev,
                    line: lineno,
                });
            }
            SectionKind::DepDetail => {
                // Body of `[dependencies.foo]`: attach `optional` to the
                // dependency the header declared.
                if key == "optional" && value == "true" {
                    if let Some(d) = m.deps.last_mut() {
                        d.optional = true;
                    }
                }
            }
            _ => {}
        }
    }
    m
}

enum SectionKind {
    Package,
    Features,
    Deps { dev: bool },
    DepDetail,
    Other,
}

fn section_kind(section: &str) -> SectionKind {
    match section {
        "package" => SectionKind::Package,
        "features" => SectionKind::Features,
        "dependencies" | "build-dependencies" => SectionKind::Deps { dev: false },
        "dev-dependencies" => SectionKind::Deps { dev: true },
        _ if dep_from_section_header(section).is_some() => SectionKind::DepDetail,
        _ => SectionKind::Other,
    }
}

/// `dependencies.foo` → `Some("foo")`, also for dev/build/target forms.
fn dep_from_section_header(section: &str) -> Option<String> {
    for marker in ["dependencies.", "dev-dependencies.", "build-dependencies."] {
        if let Some(pos) = section.find(marker) {
            // Reject e.g. `dependencies.foo.bar` (does not occur; be safe).
            let name = &section[pos + marker.len()..];
            if !name.is_empty() && !name.contains('.') {
                return Some(name.to_string());
            }
        }
    }
    None
}

/// Strips a `#` comment that is not inside a string value.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn split_key_value(line: &str) -> Option<(&str, &str)> {
    let eq = line.find('=')?;
    let key = line[..eq].trim().trim_matches('"');
    let value = line[eq + 1..].trim();
    if key.is_empty() {
        None
    } else {
        Some((key, value))
    }
}

fn string_value(value: &str) -> Option<String> {
    let v = value.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Some(v[1..v.len() - 1].to_string())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
[package]
name = "treecast-sample"    # trailing comment
version.workspace = true

[dependencies]
treecast-core = { workspace = true }
serde = { workspace = true, optional = true }

[dependencies.treecast-trees]
workspace = true
optional = true

[dev-dependencies]
proptest = { workspace = true }

[features]
serde = ["dep:serde"]
extra = []
"#;

    #[test]
    fn parses_the_manifest_subset() {
        let m = parse(SAMPLE);
        assert_eq!(m.package_name, "treecast-sample");
        let features: Vec<_> = m.features.iter().map(|(f, _)| f.as_str()).collect();
        assert_eq!(features, vec!["serde", "extra"]);
        assert!(m.dep("treecast-core").is_some());
        assert!(!m.dep("treecast-core").unwrap().optional);
        assert!(m.dep("serde").unwrap().optional);
        assert!(m.dep("treecast-trees").unwrap().optional);
        assert!(m.dep("proptest").unwrap().dev);
        assert!(!m.dep("treecast-core").unwrap().dev);
    }

    #[test]
    fn feature_declarations_cover_optional_deps() {
        let m = parse(SAMPLE);
        assert!(m.declares_feature("serde"));
        assert!(m.declares_feature("extra"));
        assert!(
            m.declares_feature("treecast-trees"),
            "implicit optional-dep feature"
        );
        assert!(!m.declares_feature("proptest"), "dev-deps are not features");
        assert!(!m.declares_feature("nope"));
    }

    #[test]
    fn multiline_arrays_are_skipped() {
        let m = parse(
            "[package]\nname = \"x\"\nexclude = [\n  \"a\",\n  \"b\",\n]\n\n[features]\nf = []\n",
        );
        assert_eq!(m.package_name, "x");
        assert!(m.declares_feature("f"));
    }
}
