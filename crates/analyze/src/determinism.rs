//! The concurrency-determinism audit (`analyze --determinism`).
//!
//! The workspace has five threaded subsystems, and all five promise
//! *bit-identical* outputs regardless of thread count:
//!
//! * the row-sharded boolean composition kernel
//!   ([`BoolMatrix::compose_into_sharded`]),
//! * the solver's sharded layer expansion
//!   ([`treecast_solver::SolveOptions::threads`]),
//! * the server's worker pool
//!   ([`treecast_server::Server::serve_batch`]),
//! * the Monte Carlo replica pool
//!   ([`treecast_montecarlo::estimate`]),
//! * the gossip-emulation replica pool
//!   ([`treecast_montecarlo::estimate_from`] over
//!   [`treecast_emulation::EmulationSpec`] cells).
//!
//! Each audit runs its subsystem across thread counts {1, 2, 4, 8} on
//! seeded inputs and compares every output against the single-threaded
//! reference with `==` (the types compare structurally, so this is
//! bit-identity of the results). A further, single-threaded audit replays
//! the frontier engine to exercise [`FrontierState::debug_validate`]
//! between rounds.
//!
//! The audits also call the workspace's `debug_validate` invariant
//! checkers ([`BoolMatrix::debug_validate`],
//! [`FrontierState::debug_validate`],
//! [`treecast_server::PrefixCache::debug_validate`]) — their bodies are
//! compiled only under `debug_assertions`, which is why ci.sh runs this
//! pass in a debug build.

use treecast_bitmatrix::BoolMatrix;
use treecast_core::{FrontierSource, FrontierState, RoundFaults};
use treecast_emulation::{EmulationSpec, GossipKnobs};
use treecast_montecarlo::{
    estimate, estimate_from, FaultSpec, MonteCarloEstimate, RunSpec, TreeSpec,
};
use treecast_server::{
    CacheConfig, ObjectiveSpec, PoolSpec, Request, Response, Schedule, Server, ServerConfig,
    WorkloadSpec,
};
use treecast_solver::{solve_with, SolveOptions};
use treecast_trees::generators;

use crate::report::escape;

/// The audited thread counts.
pub const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One subsystem's verdict.
#[derive(Debug, Clone)]
pub struct SubsystemAudit {
    /// Subsystem name (`compose`, `solver`, `server`, `montecarlo`,
    /// `emulation`, `frontier-invariants`).
    pub name: &'static str,
    /// Thread counts exercised.
    pub threads: Vec<usize>,
    /// Seeded configurations compared against the reference.
    pub cases: usize,
    /// Splitmix64 fold of the reference outputs (ties the report to the
    /// exact outputs, not just "they matched each other").
    pub fingerprint: u64,
    /// Mismatch descriptions; empty means the audit passed.
    pub mismatches: Vec<String>,
}

impl SubsystemAudit {
    /// Whether every configuration matched the reference.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// The full audit: one entry per subsystem.
#[derive(Debug, Clone)]
pub struct DeterminismReport {
    /// Per-subsystem verdicts.
    pub audits: Vec<SubsystemAudit>,
}

impl DeterminismReport {
    /// Runs all six audits. Deterministic by construction — every input
    /// is seeded.
    #[must_use]
    pub fn run() -> Self {
        DeterminismReport {
            audits: vec![
                audit_compose(),
                audit_solver(),
                audit_server(),
                audit_montecarlo(),
                audit_emulation(),
                audit_frontier_invariants(),
            ],
        }
    }

    /// Whether every subsystem passed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.audits.iter().all(SubsystemAudit::passed)
    }

    /// Human-readable summary, one line per subsystem plus mismatches.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for a in &self.audits {
            out.push_str(&format!(
                "determinism {:<20} threads={:?} cases={} fingerprint={:016x} … {}\n",
                a.name,
                a.threads,
                a.cases,
                a.fingerprint,
                if a.passed() { "ok" } else { "MISMATCH" }
            ));
            for m in &a.mismatches {
                out.push_str(&format!("  {m}\n"));
            }
        }
        out
    }

    /// The `"determinism"` JSON cell, indented by `indent` (the opening
    /// brace is not indented so the value can follow a key in-line).
    #[must_use]
    pub fn render_json(&self, indent: &str) -> String {
        let mut out = format!("{{\n{indent}  \"passed\": {},\n", self.passed());
        out.push_str(&format!("{indent}  \"audits\": [\n"));
        let rows: Vec<String> = self
            .audits
            .iter()
            .map(|a| {
                let mismatches: Vec<String> = a
                    .mismatches
                    .iter()
                    .map(|m| format!("\"{}\"", escape(m)))
                    .collect();
                format!(
                    "{indent}    {{ \"name\": \"{}\", \"threads\": {:?}, \"cases\": {}, \
                     \"fingerprint\": \"{:016x}\", \"passed\": {}, \"mismatches\": [{}] }}",
                    a.name,
                    a.threads,
                    a.cases,
                    a.fingerprint,
                    a.passed(),
                    mismatches.join(", ")
                )
            })
            .collect();
        out.push_str(&rows.join(",\n"));
        out.push_str(&format!("\n{indent}  ]\n{indent}}}"));
        out
    }
}

/// The same mix as the fingerprint module's chain hash; duplicated here
/// so the audit does not depend on the serving stack for its arithmetic.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn fold(acc: u64, x: u64) -> u64 {
    splitmix64(acc ^ x)
}

fn matrix_fingerprint(acc: u64, m: &BoolMatrix) -> u64 {
    m.as_words()
        .iter()
        .fold(fold(acc, m.n() as u64), |a, &w| fold(a, w))
}

/// A seeded boolean matrix at roughly 1-in-8 density (sparse enough that
/// the product of two is not all-ones, so mismatches would show).
fn seeded_matrix(n: usize, seed: u64) -> BoolMatrix {
    let mut m = BoolMatrix::zeros(n);
    for x in 0..n {
        for y in 0..n {
            if splitmix64(seed ^ ((x * n + y) as u64)) & 0x7 == 0 {
                m.set(x, y, true);
            }
        }
    }
    m
}

fn audit_compose() -> SubsystemAudit {
    let mut mismatches = Vec::new();
    let mut fingerprint = 0u64;
    let mut cases = 0;
    // 129 straddles a tile boundary; 512 spans several row shards.
    for &n in &[129usize, 512] {
        for seed in 1..=3u64 {
            let a = seeded_matrix(n, seed);
            let b = seeded_matrix(n, seed ^ 0xdead_beef);
            let mut reference = BoolMatrix::zeros(n);
            a.compose_into(&b, &mut reference);
            reference.debug_validate();
            fingerprint = matrix_fingerprint(fingerprint, &reference);
            for &shards in &THREAD_COUNTS {
                let mut sharded = BoolMatrix::zeros(n);
                a.compose_into_sharded(&b, &mut sharded, shards);
                sharded.debug_validate();
                cases += 1;
                if sharded != reference {
                    mismatches.push(format!(
                        "compose n={n} seed={seed} shards={shards}: product differs \
                         from the serial reference"
                    ));
                }
            }
        }
    }
    SubsystemAudit {
        name: "compose",
        threads: THREAD_COUNTS.to_vec(),
        cases,
        fingerprint,
        mismatches,
    }
}

fn audit_solver() -> SubsystemAudit {
    let mut mismatches = Vec::new();
    let mut fingerprint = 0u64;
    let mut cases = 0;
    for &n in &[4usize, 5, 6] {
        let solve = |threads: usize| {
            solve_with(
                n,
                SolveOptions {
                    threads,
                    ..SolveOptions::default()
                },
            )
            // analyze: allow(panic): the audit must abort loudly on a failed
            // solve; there is no caller to hand an error to.
            .expect("exact solve for n <= 6 fits the default limits")
        };
        let reference = solve(1);
        fingerprint = fold(fingerprint, reference.t_star);
        fingerprint = fold(fingerprint, reference.stats.states_explored as u64);
        fingerprint = fold(fingerprint, reference.schedule.len() as u64);
        for &threads in &THREAD_COUNTS[1..] {
            let r = solve(threads);
            cases += 1;
            if r.t_star != reference.t_star {
                mismatches.push(format!(
                    "solver n={n} threads={threads}: t* = {} vs serial {}",
                    r.t_star, reference.t_star
                ));
            }
            if r.schedule != reference.schedule {
                mismatches.push(format!(
                    "solver n={n} threads={threads}: extracted schedule differs"
                ));
            }
            if r.stats != reference.stats {
                mismatches.push(format!(
                    "solver n={n} threads={threads}: search stats differ \
                     ({:?} vs {:?})",
                    r.stats, reference.stats
                ));
            }
        }
    }
    SubsystemAudit {
        name: "solver",
        threads: THREAD_COUNTS.to_vec(),
        cases,
        fingerprint,
        mismatches,
    }
}

/// A fixed mixed batch: cached broadcast-time queries, a scenario
/// replay, an adversary plan, and an invalid request (the error path
/// must be deterministic too).
fn server_batch() -> Vec<Request> {
    let n = 48;
    let mut requests = Vec::new();
    let sequences: [Vec<_>; 4] = [
        vec![generators::path(n)],
        vec![
            generators::star(n),
            generators::path(n),
            generators::broom(n, 8),
        ],
        vec![
            generators::caterpillar(n, 12),
            generators::complete_binary(n),
        ],
        vec![generators::spider(n, 6), generators::double_broom(n, 5, 10)],
    ];
    for (i, trees) in sequences.into_iter().enumerate() {
        let workload = match i % 3 {
            0 => WorkloadSpec::Broadcast,
            1 => WorkloadSpec::KBroadcast { k: 2 },
            _ => WorkloadSpec::Gossip,
        };
        requests.push(Request::BroadcastTime {
            tree_sequence: trees,
            workload,
            rounds: 0,
        });
    }
    requests.push(Request::ScenarioReplay {
        schedule: Schedule {
            trees: vec![generators::star(12), generators::path(12)],
            faults: vec![
                RoundFaults {
                    losses: vec![3],
                    root: Some(2),
                    offline: vec![5],
                },
                RoundFaults::default(),
            ],
            workload: WorkloadSpec::Gossip,
            rounds: 0,
        },
    });
    requests.push(Request::AdversaryPlan {
        n: 6,
        pool: PoolSpec::Sampled { count: 12, seed: 7 },
        objective: ObjectiveSpec::MinDisseminated,
        width: 3,
        workload: WorkloadSpec::Broadcast,
    });
    requests.push(Request::BroadcastTime {
        tree_sequence: vec![generators::path(8)],
        workload: WorkloadSpec::KBroadcast { k: 0 }, // invalid: k = 0
        rounds: 0,
    });
    requests
}

fn response_fingerprint(acc: u64, responses: &[Response]) -> u64 {
    responses.iter().fold(acc, |a, r| {
        let x = match r {
            Response::BroadcastTime { report } | Response::ScenarioReplay { report } => {
                fold(report.rounds, report.disseminated as u64)
            }
            Response::AdversaryPlan { report } => {
                fold(report.replay.rounds, report.schedule.len() as u64)
            }
            Response::Error { message } => message.len() as u64,
        };
        fold(a, x)
    })
}

fn audit_server() -> SubsystemAudit {
    let requests = server_batch();
    let serve = |workers: usize| {
        let server = Server::new(ServerConfig {
            workers,
            cache: CacheConfig {
                shards: 4,
                byte_budget: 1 << 20,
            },
        });
        // Two passes per worker count: the second hits the warm cache,
        // so cached and uncached serving paths both face the audit.
        let cold = server.serve_batch(&requests);
        server.cache().debug_validate();
        let warm = server.serve_batch(&requests);
        server.cache().debug_validate();
        (cold, warm)
    };
    let (reference_cold, reference_warm) = serve(1);
    if reference_cold != reference_warm {
        return SubsystemAudit {
            name: "server",
            threads: THREAD_COUNTS.to_vec(),
            cases: 1,
            fingerprint: response_fingerprint(0, &reference_cold),
            mismatches: vec![
                "server workers=1: warm-cache answers differ from cold answers".into(),
            ],
        };
    }
    let mut mismatches = Vec::new();
    let mut cases = 0;
    for &workers in &THREAD_COUNTS[1..] {
        let (cold, warm) = serve(workers);
        cases += 2;
        if cold != reference_cold {
            mismatches.push(format!(
                "server workers={workers}: cold-cache batch differs from serial"
            ));
        }
        if warm != reference_warm {
            mismatches.push(format!(
                "server workers={workers}: warm-cache batch differs from serial"
            ));
        }
    }
    SubsystemAudit {
        name: "server",
        threads: THREAD_COUNTS.to_vec(),
        cases,
        fingerprint: response_fingerprint(0, &reference_cold),
        mismatches,
    }
}

/// Folds an estimate's statistics into the audit fingerprint: the exact
/// integer cells plus the IEEE bit patterns of the derived floats, so a
/// single ULP of drift in any thread count's merge would show.
fn estimate_fingerprint(acc: u64, est: &MonteCarloEstimate) -> u64 {
    let ints = [
        est.stats.completed(),
        est.stats.censored(),
        est.stats.total_rounds(),
        est.stats.min().unwrap_or(0),
        est.stats.max().unwrap_or(0),
    ];
    let floats = [
        est.stats.mean(),
        est.stats.std_dev(),
        est.stats.p50().unwrap_or(0.0),
        est.stats.p90().unwrap_or(0.0),
        est.stats.p99().unwrap_or(0.0),
    ];
    let acc = ints.iter().fold(acc, |a, &x| fold(a, x));
    floats.iter().fold(acc, |a, &x| fold(a, x.to_bits()))
}

/// Drives the Monte Carlo replica pool — the workspace's fourth threaded
/// subsystem — across the audited thread counts on one cell per engine
/// (dense static, dense seeded-dynamic, frontier-sparse) and compares the
/// full estimates (moments, P² quantile markers, censor counts) against
/// the single-threaded reference with `==`. The slot-per-replica merge
/// promises bit identity, not mere statistical agreement.
fn audit_montecarlo() -> SubsystemAudit {
    let specs = [
        RunSpec::new(64, 1, TreeSpec::Path, FaultSpec::loss(25))
            .with_replicas(24)
            .with_seed(21),
        RunSpec::new(48, 2, TreeSpec::SeededUniform, FaultSpec::dropout(10, 2))
            .with_replicas(24)
            .with_seed(22),
        // n > DENSE_MAX_N: the frontier-sparse engine path.
        RunSpec::new(2048, 4, TreeSpec::SeededUniform, FaultSpec::loss(10))
            .with_replicas(8)
            .with_budget(512)
            .with_seed(23),
    ];
    let mut mismatches = Vec::new();
    let mut fingerprint = 0u64;
    let mut cases = 0;
    for spec in &specs {
        let reference = estimate(spec, 1);
        fingerprint = estimate_fingerprint(fingerprint, &reference);
        for &threads in &THREAD_COUNTS[1..] {
            let r = estimate(spec, threads);
            cases += 1;
            if r != reference {
                mismatches.push(format!(
                    "montecarlo n={} k={} {} threads={threads}: estimate differs \
                     from the serial reference",
                    spec.n,
                    spec.k,
                    spec.faults.label()
                ));
            }
        }
    }
    SubsystemAudit {
        name: "montecarlo",
        threads: THREAD_COUNTS.to_vec(),
        cases,
        fingerprint,
        mismatches,
    }
}

/// Drives the gossip-emulation replica pool — the workspace's fifth
/// threaded subsystem — across the audited thread counts: the generic
/// [`estimate_from`] pool over [`EmulationSpec`] cells, one per
/// protocol regime (unconstrained quiet, bandwidth-capped under a
/// fault cocktail, fan-out/batch-capped on seeded trees), compared
/// against the single-threaded reference with `==`. The unconstrained
/// quiet cell doubles as a cross-subsystem pin: its fingerprint folds
/// an estimate that must equal the synchronous model's.
fn audit_emulation() -> SubsystemAudit {
    let free = GossipKnobs::unconstrained();
    let specs = [
        EmulationSpec::new(48, 1, TreeSpec::Path, FaultSpec::none(), free)
            .with_replicas(24)
            .with_seed(31),
        EmulationSpec::new(
            32,
            2,
            TreeSpec::Star,
            FaultSpec::loss(20),
            free.with_bandwidth(2),
        )
        .with_replicas(24)
        .with_budget(256)
        .with_seed(32),
        EmulationSpec::new(
            40,
            4,
            TreeSpec::SeededUniform,
            FaultSpec::dropout(10, 2),
            free.with_fanout(2).with_batch(3),
        )
        .with_replicas(24)
        .with_budget(192)
        .with_seed(33),
    ];
    let mut mismatches = Vec::new();
    let mut fingerprint = 0u64;
    let mut cases = 0;
    for spec in &specs {
        let reference = estimate_from(spec, 1);
        fingerprint = estimate_fingerprint(fingerprint, &reference);
        for &threads in &THREAD_COUNTS[1..] {
            let r = estimate_from(spec, threads);
            cases += 1;
            if r != reference {
                mismatches.push(format!(
                    "emulation n={} k={} {} knobs={} threads={threads}: estimate \
                     differs from the serial reference",
                    spec.n,
                    spec.k,
                    spec.faults.label(),
                    spec.knobs.label()
                ));
            }
        }
    }
    // The cross-subsystem pin: the unconstrained quiet cell must equal
    // its synchronous twin estimate-for-estimate (shared seed, shared
    // streams, pinned protocol).
    let emulated = estimate_from(&specs[0], 2);
    let model = estimate(
        &RunSpec::new(48, 1, TreeSpec::Path, FaultSpec::none())
            .with_replicas(24)
            .with_budget(specs[0].round_budget)
            .with_seed(31),
        2,
    );
    cases += 1;
    if emulated.stats != model.stats {
        mismatches.push(
            "emulation unconstrained quiet cell: statistics differ from the \
             synchronous model twin"
                .into(),
        );
    }
    SubsystemAudit {
        name: "emulation",
        threads: THREAD_COUNTS.to_vec(),
        cases,
        fingerprint,
        mismatches,
    }
}

/// Replays the frontier engine on seeded dynamic trees, validating the
/// state's structural invariants every round and checking that a second
/// replay reproduces the first bit-for-bit.
fn audit_frontier_invariants() -> SubsystemAudit {
    let mut mismatches = Vec::new();
    let mut fingerprint = 0u64;
    let mut cases = 0;
    for &(n, seed) in &[(64usize, 11u64), (257, 12), (1000, 13)] {
        let run = || {
            let sources: Vec<usize> = vec![0, n / 2, n - 1];
            let mut state = FrontierState::new(n, &sources);
            let mut src = FrontierSource::seeded(n, seed);
            state.debug_validate();
            let mut trace = 0u64;
            for round in 0..64u64 {
                let reroot = if round % 7 == 3 {
                    Some((round as usize) % n)
                } else {
                    None
                };
                let r = src.next_round(n, reroot);
                state.apply_round(r.tree, r.delta, &[]);
                if round % 5 == 4 {
                    state.forget(((round as usize) * 31) % n);
                }
                state.debug_validate();
                trace = fold(trace, state.disseminated_count() as u64);
            }
            trace
        };
        let first = run();
        let second = run();
        cases += 1;
        fingerprint = fold(fingerprint, first);
        if first != second {
            mismatches.push(format!(
                "frontier n={n} seed={seed}: replay diverged ({first:016x} vs {second:016x})"
            ));
        }
    }
    SubsystemAudit {
        name: "frontier-invariants",
        threads: vec![1],
        cases,
        fingerprint,
        mismatches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_matrices_are_deterministic_and_sparse() {
        let a = seeded_matrix(64, 9);
        let b = seeded_matrix(64, 9);
        assert_eq!(a, b);
        let ones: usize = (0..64).map(|x| a.row(x).len()).sum();
        assert!(ones > 0 && ones < 64 * 32, "density off: {ones}");
    }

    #[test]
    fn json_cell_shape() {
        let report = DeterminismReport {
            audits: vec![SubsystemAudit {
                name: "compose",
                threads: vec![1, 2],
                cases: 2,
                fingerprint: 0xabc,
                mismatches: vec!["a \"quoted\" mismatch".into()],
            }],
        };
        assert!(!report.passed());
        let json = report.render_json("  ");
        assert!(json.contains("\"passed\": false"));
        assert!(json.contains("\"fingerprint\": \"0000000000000abc\""));
        assert!(json.contains("a \\\"quoted\\\" mismatch"));
        assert!(report.render_text().contains("MISMATCH"));
    }

    #[test]
    fn compose_audit_passes() {
        let audit = audit_compose();
        assert!(audit.passed(), "{:?}", audit.mismatches);
        assert!(audit.cases > 0);
    }

    #[test]
    fn frontier_audit_passes() {
        let audit = audit_frontier_invariants();
        assert!(audit.passed(), "{:?}", audit.mismatches);
    }

    #[test]
    fn montecarlo_audit_passes() {
        let audit = audit_montecarlo();
        assert!(audit.passed(), "{:?}", audit.mismatches);
        assert!(audit.cases > 0);
        assert_ne!(audit.fingerprint, 0, "fingerprint must bind the outputs");
    }

    #[test]
    fn emulation_audit_passes() {
        let audit = audit_emulation();
        assert!(audit.passed(), "{:?}", audit.mismatches);
        assert!(audit.cases > 0);
        assert_ne!(audit.fingerprint, 0, "fingerprint must bind the outputs");
    }
}
