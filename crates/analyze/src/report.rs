//! Machine-readable output: `results/ANALYZE.json` and the baseline
//! gate.
//!
//! The JSON is written by hand (the lexical pass stays dependency-free;
//! the vendored serde shim belongs to the serving stack, not here). The
//! schema is intentionally flat:
//!
//! ```json
//! {
//!   "schema": "treecast-analyze/v1",
//!   "rules": { "L2": { "name": "panic-policy", "findings": 0, "allowlisted": 34 }, … },
//!   "findings": [ { "rule": "L2", "path": "…", "line": 12, "allowlisted": true, "message": "…" }, … ],
//!   "determinism": { … }            // only with --determinism
//! }
//! ```
//!
//! The baseline (`results/ANALYZE_baseline.json`) pins the per-rule
//! *allowlisted* counts exactly — non-allowlisted findings already fail
//! the run — so grandfathered findings can only go down: fixing one
//! forces a baseline (and allowlist) ratchet in the same commit, and a
//! new one cannot hide in the grandfathered pool.

use std::collections::BTreeMap;

use crate::determinism::DeterminismReport;
use crate::rules::{Finding, RuleId};

/// Per-rule counters split by allowlist status.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuleCounts {
    /// Live findings (these fail the run).
    pub findings: usize,
    /// Grandfathered findings (gated exactly by the baseline).
    pub allowlisted: usize,
}

/// Counts findings per rule over all six rules (rules that did not run
/// still appear with zeros, keeping the JSON shape stable).
#[must_use]
pub fn count_by_rule(findings: &[Finding]) -> BTreeMap<RuleId, RuleCounts> {
    let mut counts: BTreeMap<RuleId, RuleCounts> = RuleId::ALL
        .iter()
        .map(|r| (*r, RuleCounts::default()))
        .collect();
    for f in findings {
        let c = counts.entry(f.rule).or_default();
        if f.allowlisted {
            c.allowlisted += 1;
        } else {
            c.findings += 1;
        }
    }
    counts
}

/// Renders the full report JSON.
#[must_use]
pub fn render_json(
    findings: &[Finding],
    ran: &[RuleId],
    determinism: Option<&DeterminismReport>,
) -> String {
    let counts = count_by_rule(findings);
    let mut out = String::from("{\n  \"schema\": \"treecast-analyze/v1\",\n");
    out.push_str(&format!(
        "  \"rules_run\": [{}],\n",
        ran.iter()
            .map(|r| format!("\"{}\"", r.code()))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str("  \"rules\": {\n");
    let rows: Vec<String> = counts
        .iter()
        .map(|(rule, c)| {
            format!(
                "    \"{}\": {{ \"name\": \"{}\", \"findings\": {}, \"allowlisted\": {} }}",
                rule.code(),
                rule.name(),
                c.findings,
                c.allowlisted
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  },\n");
    out.push_str("  \"findings\": [\n");
    let rows: Vec<String> = findings
        .iter()
        .map(|f| {
            format!(
                "    {{ \"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \
                 \"allowlisted\": {}, \"message\": \"{}\" }}",
                f.rule.code(),
                escape(&f.path),
                f.line,
                f.allowlisted,
                escape(&f.message)
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str(if findings.is_empty() {
        "  ],\n"
    } else {
        "\n  ],\n"
    });
    match determinism {
        Some(d) => {
            out.push_str("  \"determinism\": ");
            out.push_str(&d.render_json("  "));
            out.push('\n');
        }
        None => out.push_str("  \"determinism\": null\n"),
    }
    out.push_str("}\n");
    out
}

/// Renders the baseline file content for the current counts.
#[must_use]
pub fn render_baseline(findings: &[Finding]) -> String {
    let counts = count_by_rule(findings);
    let rows: Vec<String> = counts
        .iter()
        .map(|(rule, c)| format!("    \"{}\": {}", rule.code(), c.allowlisted))
        .collect();
    format!(
        "{{\n  \"schema\": \"treecast-analyze-baseline/v1\",\n  \"allowlisted\": {{\n{}\n  }}\n}}\n",
        rows.join(",\n")
    )
}

/// Compares current counts against a baseline file's text: every rule's
/// allowlisted count must match exactly. Returns one message per
/// mismatch.
///
/// # Errors
///
/// A list of human-readable mismatch messages (also covers an unreadable
/// baseline value).
pub fn check_baseline(findings: &[Finding], baseline_text: &str) -> Result<(), Vec<String>> {
    let counts = count_by_rule(findings);
    let mut failures = Vec::new();
    for (rule, c) in &counts {
        match baseline_value(baseline_text, rule.code()) {
            Some(base) if base == c.allowlisted => {}
            Some(base) => failures.push(format!(
                "{} allowlisted findings: measured {}, baseline {} — findings may only \
                 ratchet down; regenerate the baseline (and allowlist) in the same \
                 commit as the fix",
                rule.code(),
                c.allowlisted,
                base
            )),
            None => failures.push(format!(
                "baseline has no \"{}\" cell — regenerate it with --write-baseline",
                rule.code()
            )),
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures)
    }
}

/// Extracts `"code": <int>` from the baseline text. A full JSON parser
/// would be overkill for a file this tool itself generates.
fn baseline_value(text: &str, code: &str) -> Option<usize> {
    let needle = format!("\"{code}\"");
    let pos = text.find(&needle)?;
    let rest = &text[pos + needle.len()..];
    let colon = rest.find(':')?;
    let digits: String = rest[colon + 1..]
        .trim_start()
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Escapes a string for JSON embedding.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: RuleId, allowlisted: bool) -> Finding {
        let mut f = Finding::new(rule, "some/file.rs", 3, "msg with \"quotes\"".into());
        f.allowlisted = allowlisted;
        f
    }

    #[test]
    fn baseline_roundtrip_is_exact() {
        let findings = vec![
            finding(RuleId::PanicPolicy, true),
            finding(RuleId::PanicPolicy, true),
            finding(RuleId::DocCoverage, true),
        ];
        let baseline = render_baseline(&findings);
        assert!(check_baseline(&findings, &baseline).is_ok());
        // One fewer allowlisted finding fails the exact gate.
        let fewer = &findings[..2];
        let err = check_baseline(fewer, &baseline).unwrap_err();
        assert_eq!(err.len(), 1);
        assert!(err[0].contains("L6"));
        // One more does too.
        let mut more = findings.clone();
        more.push(finding(RuleId::Layering, true));
        let err = check_baseline(&more, &baseline).unwrap_err();
        assert!(err[0].contains("L1"));
    }

    #[test]
    fn missing_cell_is_a_failure() {
        let err = check_baseline(&[], "{ \"allowlisted\": { \"L1\": 0 } }").unwrap_err();
        assert!(err.iter().any(|m| m.contains("\"L2\"")));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let json = render_json(&[finding(RuleId::PanicPolicy, false)], &RuleId::ALL, None);
        assert!(json.contains("msg with \\\"quotes\\\""));
        assert!(json.contains("\"determinism\": null"));
    }
}
