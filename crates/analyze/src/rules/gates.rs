//! L4 — bench-gate coverage.
//!
//! Every `bench_*` binary in the bench crate is a CI gate, and a gate
//! that is not wired up is a gate that silently stops gating. For each
//! `crates/bench/src/bin/bench_<x>.rs` the rule requires:
//!
//! * a checked-in baseline `results/BENCH_<x>_baseline.json`,
//! * an invocation of `bench_<x>` somewhere in `ci.sh`,
//! * a schema row mentioning `BENCH_<x>.json` in `crates/bench/README.md`.

use std::fs;

use crate::rules::{Finding, RuleId};
use crate::workspace::Workspace;

/// Runs L4 over the workspace.
#[must_use]
pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    let Some(bench) = ws.crates.iter().find(|c| c.rel_dir == "crates/bench") else {
        return findings; // no bench crate, nothing to gate
    };
    let ci_text = fs::read_to_string(ws.root.join("ci.sh")).unwrap_or_default();
    let readme_rel = format!("{}/README.md", bench.rel_dir);
    let readme_text = fs::read_to_string(ws.root.join(&readme_rel)).unwrap_or_default();
    for file in &bench.files {
        let Some(stem) = file
            .rel_path
            .rsplit('/')
            .next()
            .and_then(|name| name.strip_suffix(".rs"))
        else {
            continue;
        };
        if !file.rel_path.contains("/src/bin/") || !stem.starts_with("bench_") {
            continue;
        }
        let suffix = &stem["bench_".len()..];
        let baseline_rel = format!("results/BENCH_{suffix}_baseline.json");
        if !ws.root.join(&baseline_rel).is_file() {
            findings.push(Finding::new(
                RuleId::GateCoverage,
                &file.rel_path,
                0,
                format!("bench bin `{stem}` has no checked-in baseline `{baseline_rel}`"),
            ));
        }
        if !ci_text.contains(stem) {
            findings.push(Finding::new(
                RuleId::GateCoverage,
                &file.rel_path,
                0,
                format!("bench bin `{stem}` is never invoked from ci.sh"),
            ));
        }
        if !readme_text.contains(&format!("BENCH_{suffix}.json")) {
            findings.push(Finding::new(
                RuleId::GateCoverage,
                &file.rel_path,
                0,
                format!(
                    "bench bin `{stem}` has no `BENCH_{suffix}.json` schema row in \
                     {readme_rel}"
                ),
            ));
        }
    }
    findings
}
