//! The rule engine: rule identities, findings, shared token-stream
//! utilities, and the allowlist ratchet.
//!
//! Each rule is a pure function from the lexed [`Workspace`] to a list
//! of [`Finding`]s. Rules are independently toggleable from the CLI
//! (`--rules L1,L3`); `--rules all` runs every one.

use crate::lexer::{LexFile, Tok, TokKind};
use crate::workspace::Workspace;

pub mod docs;
pub mod features;
pub mod gates;
pub mod layering;
pub mod panics;
pub mod unsafety;

/// The six workspace rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// L1 — crate-layering DAG (manifest deps and `treecast_*` usage).
    Layering,
    /// L2 — panic policy (`unwrap`/`expect`/`panic!` in library code).
    PanicPolicy,
    /// L3 — unsafe hygiene (`#![forbid(unsafe_code)]`, `SAFETY:` notes).
    UnsafeHygiene,
    /// L4 — bench-gate coverage (baseline JSON + ci.sh + README row).
    GateCoverage,
    /// L5 — cfg/feature hygiene (`feature = "…"` names a declared one).
    FeatureHygiene,
    /// L6 — doc coverage of public items in library code.
    DocCoverage,
}

impl RuleId {
    /// All rules, in code order.
    pub const ALL: [RuleId; 6] = [
        RuleId::Layering,
        RuleId::PanicPolicy,
        RuleId::UnsafeHygiene,
        RuleId::GateCoverage,
        RuleId::FeatureHygiene,
        RuleId::DocCoverage,
    ];

    /// The short code (`L1` … `L6`).
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            RuleId::Layering => "L1",
            RuleId::PanicPolicy => "L2",
            RuleId::UnsafeHygiene => "L3",
            RuleId::GateCoverage => "L4",
            RuleId::FeatureHygiene => "L5",
            RuleId::DocCoverage => "L6",
        }
    }

    /// The human name used in reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RuleId::Layering => "layering",
            RuleId::PanicPolicy => "panic-policy",
            RuleId::UnsafeHygiene => "unsafe-hygiene",
            RuleId::GateCoverage => "gate-coverage",
            RuleId::FeatureHygiene => "cfg-feature-hygiene",
            RuleId::DocCoverage => "doc-coverage",
        }
    }

    /// Parses `L1`…`L6` (case-insensitive).
    #[must_use]
    pub fn from_code(code: &str) -> Option<RuleId> {
        RuleId::ALL
            .into_iter()
            .find(|r| r.code().eq_ignore_ascii_case(code))
    }

    /// Runs this rule over the workspace.
    #[must_use]
    pub fn run(self, ws: &Workspace) -> Vec<Finding> {
        match self {
            RuleId::Layering => layering::check(ws),
            RuleId::PanicPolicy => panics::check(ws),
            RuleId::UnsafeHygiene => unsafety::check(ws),
            RuleId::GateCoverage => gates::check(ws),
            RuleId::FeatureHygiene => features::check(ws),
            RuleId::DocCoverage => docs::check(ws),
        }
    }
}

/// One diagnostic: rule, location, message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired.
    pub rule: RuleId,
    /// Path relative to the workspace root.
    pub path: String,
    /// 1-based line (0 when the finding is about a whole file or a
    /// missing artifact).
    pub line: usize,
    /// What is wrong and what to do about it.
    pub message: String,
    /// Set by the allowlist pass: `true` for grandfathered findings.
    pub allowlisted: bool,
}

impl Finding {
    /// A finding at `path:line`.
    #[must_use]
    pub fn new(rule: RuleId, path: impl Into<String>, line: usize, message: String) -> Finding {
        Finding {
            rule,
            path: path.into(),
            line,
            message,
            allowlisted: false,
        }
    }

    /// `path:line: [L2 panic-policy] message` (line elided when 0).
    #[must_use]
    pub fn render(&self) -> String {
        let loc = if self.line == 0 {
            self.path.clone()
        } else {
            format!("{}:{}", self.path, self.line)
        };
        format!(
            "{loc}: [{} {}] {}",
            self.rule.code(),
            self.rule.name(),
            self.message
        )
    }
}

/// Runs `rules` in order and returns all findings, sorted by
/// (rule, path, line) for stable output.
#[must_use]
pub fn run_rules(ws: &Workspace, rules: &[RuleId]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for rule in rules {
        findings.extend(rule.run(ws));
    }
    findings.sort_by(|a, b| {
        (a.rule, &a.path, a.line, &a.message).cmp(&(b.rule, &b.path, b.line, &b.message))
    });
    findings
}

// ---------------------------------------------------------------------
// Allowlist: the grandfathering ratchet.
// ---------------------------------------------------------------------

/// One allowlist entry: up to `count` findings of `rule` in `path` are
/// grandfathered. Counts ratchet *down*: fixing a finding and leaving
/// the entry produces a stale-entry warning, and the baseline gate
/// pins the total so it cannot silently creep back up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule the entry applies to.
    pub rule: RuleId,
    /// File path relative to the workspace root.
    pub path: String,
    /// Number of findings grandfathered in that file.
    pub count: usize,
}

/// The parsed allowlist plus any parse warnings.
#[derive(Debug, Default)]
pub struct Allowlist {
    /// Entries in file order.
    pub entries: Vec<AllowEntry>,
    /// Malformed lines, reported but not fatal.
    pub warnings: Vec<String>,
}

impl Allowlist {
    /// Parses the allowlist format: one entry per line,
    /// `<rule> <path> <count>`, `#` comments and blank lines ignored.
    #[must_use]
    pub fn parse(text: &str) -> Allowlist {
        let mut list = Allowlist::default();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            let parsed = match fields.as_slice() {
                [rule, path, count] => RuleId::from_code(rule).and_then(|r| {
                    count.parse::<usize>().ok().map(|c| AllowEntry {
                        rule: r,
                        path: (*path).to_string(),
                        count: c,
                    })
                }),
                _ => None,
            };
            match parsed {
                Some(entry) => list.entries.push(entry),
                None => list.warnings.push(format!(
                    "allowlist line {} is malformed (want `<rule> <path> <count>`): {line}",
                    idx + 1
                )),
            }
        }
        list
    }

    /// Marks up to `count` findings per `(rule, path)` as allowlisted,
    /// in line order. Returns warnings for stale entries (fewer findings
    /// than grandfathered — time to ratchet the entry down).
    #[must_use]
    pub fn apply(&self, findings: &mut [Finding]) -> Vec<String> {
        let mut warnings = self.warnings.clone();
        for entry in &self.entries {
            let mut remaining = entry.count;
            let mut matched = 0usize;
            for f in findings.iter_mut() {
                if f.rule == entry.rule && f.path == entry.path {
                    matched += 1;
                    if remaining > 0 {
                        f.allowlisted = true;
                        remaining -= 1;
                    }
                }
            }
            if matched < entry.count {
                warnings.push(format!(
                    "stale allowlist entry: {} {} grandfathers {} finding(s) but only {} remain — ratchet it down",
                    entry.rule.code(),
                    entry.path,
                    entry.count,
                    matched
                ));
            }
        }
        warnings
    }
}

// ---------------------------------------------------------------------
// Shared token-stream utilities.
// ---------------------------------------------------------------------

/// Token-index ranges (inclusive start, exclusive end) of `#[…]` and
/// `#![…]` attributes.
#[must_use]
pub fn attr_ranges(lex: &LexFile) -> Vec<(usize, usize)> {
    let toks = &lex.tokens;
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct('#') {
            let mut j = i + 1;
            if j < toks.len() && toks[j].is_punct('!') {
                j += 1;
            }
            if j < toks.len() && toks[j].is_punct('[') {
                let end = match_bracket(toks, j, '[', ']');
                ranges.push((i, end));
                i = end;
                continue;
            }
        }
        i += 1;
    }
    ranges
}

/// Token-index ranges of `#[cfg(test)] mod … { … }` bodies (any `cfg`
/// attribute whose argument list mentions the `test` flag counts, so
/// `cfg(all(test, …))` is covered too).
#[must_use]
pub fn test_mod_ranges(lex: &LexFile) -> Vec<(usize, usize)> {
    let toks = &lex.tokens;
    let mut ranges = Vec::new();
    for (start, end) in attr_ranges(lex) {
        let body = &toks[start..end];
        let is_cfg_test =
            body.iter().any(|t| t.is_ident("cfg")) && body.iter().any(|t| t.is_ident("test"));
        if !is_cfg_test {
            continue;
        }
        // Skip further attributes / doc comments between the cfg and the
        // item it gates.
        let mut i = end;
        loop {
            if i >= toks.len() {
                break;
            }
            if toks[i].is_punct('#') {
                let j = i + 1;
                if j < toks.len() && toks[j].is_punct('[') {
                    i = match_bracket(toks, j, '[', ']');
                    continue;
                }
            }
            if matches!(toks[i].kind, TokKind::DocOuter | TokKind::DocInner) {
                i += 1;
                continue;
            }
            break;
        }
        if i < toks.len() && toks[i].is_ident("mod") {
            // mod <name> { … }
            let mut j = i + 1;
            while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                j += 1;
            }
            if j < toks.len() && toks[j].is_punct('{') {
                let close = match_bracket(toks, j, '{', '}');
                ranges.push((i, close));
            }
        }
    }
    ranges
}

/// `true` when token index `i` falls inside any of `ranges`.
#[must_use]
pub fn in_ranges(ranges: &[(usize, usize)], i: usize) -> bool {
    ranges.iter().any(|&(s, e)| i >= s && i < e)
}

/// The index just past the bracket group opening at `open_idx` (which
/// must hold `open`). Tolerates unbalanced input by running to the end.
#[must_use]
pub fn match_bracket(toks: &[Tok], open_idx: usize, open: char, close: char) -> usize {
    let mut depth = 0usize;
    let mut i = open_idx;
    while i < toks.len() {
        if toks[i].is_punct(open) {
            depth += 1;
        } else if toks[i].is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    toks.len()
}
