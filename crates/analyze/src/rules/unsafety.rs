//! L3 — unsafe hygiene.
//!
//! Two halves:
//!
//! * every library crate's `src/lib.rs` carries `#![forbid(unsafe_code)]`
//!   — so `unsafe` in library code is impossible by construction;
//! * the `unsafe` that legitimately remains (test/bench support code,
//!   e.g. counting `GlobalAlloc` impls) must carry a `// SAFETY:`
//!   comment on the same line or in the contiguous comment block
//!   directly above each `unsafe` token.

use crate::lexer::TokKind;
use crate::rules::{Finding, RuleId};
use crate::workspace::Workspace;

/// Runs L3 over the workspace.
#[must_use]
pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for krate in &ws.crates {
        // Half one: the lib entry point must forbid unsafe code.
        let lib_rel = if krate.rel_dir.is_empty() {
            "src/lib.rs".to_string()
        } else {
            format!("{}/src/lib.rs", krate.rel_dir)
        };
        if let Some(lib) = krate.files.iter().find(|f| f.rel_path == lib_rel) {
            let toks = &lib.lex.tokens;
            let has_forbid = (0..toks.len()).any(|i| {
                i + 5 < toks.len()
                    && toks[i].is_punct('#')
                    && toks[i + 1].is_punct('!')
                    && toks[i + 2].is_punct('[')
                    && toks[i + 3].is_ident("forbid")
                    && toks[i + 4].is_punct('(')
                    && toks[i + 5].is_ident("unsafe_code")
            });
            if !has_forbid {
                findings.push(Finding::new(
                    RuleId::UnsafeHygiene,
                    &lib.rel_path,
                    1,
                    format!(
                        "library crate `{}` must carry `#![forbid(unsafe_code)]` at \
                         the crate root",
                        krate.name
                    ),
                ));
            }
        }
        // Half two: every remaining `unsafe` needs a SAFETY: comment.
        for file in &krate.files {
            for tok in &file.lex.tokens {
                if tok.kind != TokKind::Ident || tok.text != "unsafe" {
                    continue;
                }
                let nearby = file.lex.annotation_text(tok.line);
                if !nearby.contains("SAFETY:") {
                    findings.push(Finding::new(
                        RuleId::UnsafeHygiene,
                        &file.rel_path,
                        tok.line,
                        "`unsafe` without a `// SAFETY:` comment on the same line or \
                         directly above — state the contract that makes it sound"
                            .to_string(),
                    ));
                }
            }
        }
    }
    findings
}
