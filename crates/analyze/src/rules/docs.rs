//! L6 — doc coverage of public items.
//!
//! Every `pub` item (`fn`, `struct`, `enum`, `trait`, `type`, `const`,
//! `static`, `mod`, `union`) in library code must carry an outer doc
//! comment (`///` or `/** … */`), directly or above its attributes.
//! Restricted visibility (`pub(crate)`, `pub(super)`, …), `pub use`
//! re-exports (documented at their definition), struct fields (no item
//! keyword) and `#[cfg(test)]` modules are out of scope.
//!
//! This is a token-level mirror of `#![warn(missing_docs)]`, turned
//! from a warning into a gated finding.

use crate::lexer::{Tok, TokKind};
use crate::rules::{in_ranges, match_bracket, test_mod_ranges, Finding, RuleId};
use crate::workspace::{FileKind, SourceFile, Workspace};

/// Item keywords that take documentation.
const ITEM_KEYWORDS: &[&str] = &[
    "fn", "struct", "enum", "trait", "type", "const", "static", "mod", "union",
];

/// Modifier keywords that may sit between `pub` and the item keyword
/// (plus an ABI string for `pub extern "C" fn`; `const` is special-cased
/// in the scan because it doubles as an item keyword).
const MODIFIERS: &[&str] = &["unsafe", "async", "extern"];

/// Runs L6 over the workspace.
#[must_use]
pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for krate in &ws.crates {
        for file in &krate.files {
            if file.kind != FileKind::LibSrc {
                continue;
            }
            scan_file(file, &mut findings);
        }
    }
    findings
}

fn scan_file(file: &SourceFile, findings: &mut Vec<Finding>) {
    let toks = &file.lex.tokens;
    let skip = test_mod_ranges(&file.lex);
    let mut has_doc = false;
    let mut i = 0usize;
    while i < toks.len() {
        if in_ranges(&skip, i) {
            has_doc = false;
            i += 1;
            continue;
        }
        match &toks[i].kind {
            TokKind::DocOuter => {
                has_doc = true;
                i += 1;
            }
            TokKind::DocInner => {
                has_doc = false;
                i += 1;
            }
            // Attributes keep a pending doc comment attached (both the
            // `/// doc #[attr] pub` and `#[attr] /// doc pub` orders).
            TokKind::Punct('#') => {
                let mut j = i + 1;
                if j < toks.len() && toks[j].is_punct('!') {
                    j += 1;
                }
                if j < toks.len() && toks[j].is_punct('[') {
                    i = match_bracket(toks, j, '[', ']');
                } else {
                    has_doc = false;
                    i += 1;
                }
            }
            TokKind::Ident if toks[i].text == "pub" => {
                i = check_pub_item(file, toks, i, has_doc, findings);
                has_doc = false;
            }
            _ => {
                has_doc = false;
                i += 1;
            }
        }
    }
}

/// Handles the token run starting at the `pub` at index `i`; returns the
/// index to continue scanning from.
fn check_pub_item(
    file: &SourceFile,
    toks: &[Tok],
    i: usize,
    has_doc: bool,
    findings: &mut Vec<Finding>,
) -> usize {
    let mut j = i + 1;
    if j < toks.len() && toks[j].is_punct('(') {
        // Restricted visibility: not public API.
        return match_bracket(toks, j, '(', ')');
    }
    while j < toks.len() {
        let t = &toks[j];
        let is_modifier = match &t.kind {
            TokKind::Str => true, // ABI string of `pub extern "C" fn`
            // `const` is both a modifier (`pub const fn`) and an item
            // keyword (`pub const FOO: …`): modifier only before `fn`.
            TokKind::Ident if t.text == "const" => {
                toks.get(j + 1).is_some_and(|n| n.is_ident("fn"))
            }
            TokKind::Ident => MODIFIERS.contains(&t.text.as_str()),
            _ => false,
        };
        if !is_modifier {
            break;
        }
        j += 1;
    }
    if j >= toks.len() || toks[j].kind != TokKind::Ident {
        return i + 1;
    }
    let keyword = toks[j].text.as_str();
    if keyword == "use" {
        return j + 1; // re-exports are documented at the definition
    }
    if !ITEM_KEYWORDS.contains(&keyword) {
        return i + 1; // a struct field or something else doc-exempt
    }
    // `pub mod foo;` loads another file, whose `//!` inner docs are the
    // module documentation — only inline `pub mod foo { … }` needs an
    // outer doc here (inner `//!` right after the brace counts too).
    if keyword == "mod" {
        if toks.get(j + 2).is_some_and(|t| t.is_punct(';')) {
            return j + 2;
        }
        if toks.get(j + 2).is_some_and(|t| t.is_punct('{'))
            && toks.get(j + 3).is_some_and(|t| t.kind == TokKind::DocInner)
        {
            return j + 3;
        }
    }
    if !has_doc {
        let item_name = toks
            .get(j + 1)
            .filter(|t| matches!(t.kind, TokKind::Ident | TokKind::RawIdent))
            .map_or_else(String::new, |t| format!(" `{}`", t.text));
        findings.push(Finding::new(
            RuleId::DocCoverage,
            &file.rel_path,
            toks[i].line,
            format!("public {keyword}{item_name} has no doc comment"),
        ));
    }
    j + 1
}
