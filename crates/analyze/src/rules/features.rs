//! L5 — cfg/feature hygiene.
//!
//! Every `feature = "name"` inside a `#[cfg(…)]` / `#[cfg_attr(…)]`
//! attribute or a `cfg!(…)` macro must name a feature the owning
//! crate's manifest declares (an explicit `[features]` key or an
//! implicit optional-dependency feature). An undeclared name makes the
//! whole gated item silently inert — the PR 7 serde-hook bug this rule
//! makes un-reintroducible.

use crate::lexer::TokKind;
use crate::rules::{attr_ranges, in_ranges, Finding, RuleId};
use crate::workspace::Workspace;

/// Runs L5 over the workspace.
#[must_use]
pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for krate in &ws.crates {
        for file in &krate.files {
            let toks = &file.lex.tokens;
            let attrs = attr_ranges(&file.lex);
            for i in 0..toks.len() {
                if !(toks[i].is_ident("feature")
                    && i + 2 < toks.len()
                    && toks[i + 1].is_punct('=')
                    && toks[i + 2].kind == TokKind::Str)
                {
                    continue;
                }
                // Context: an attribute, or a `cfg!(…)` within reach.
                let in_attr = in_ranges(&attrs, i);
                let in_cfg_macro = (i.saturating_sub(12)..i).any(|j| {
                    toks[j].is_ident("cfg")
                        && j + 2 < toks.len()
                        && toks[j + 1].is_punct('!')
                        && toks[j + 2].is_punct('(')
                });
                if !in_attr && !in_cfg_macro {
                    continue;
                }
                let name = &toks[i + 2].text;
                if !krate.manifest.declares_feature(name) {
                    findings.push(Finding::new(
                        RuleId::FeatureHygiene,
                        &file.rel_path,
                        toks[i].line,
                        format!(
                            "cfg names feature \"{name}\" but `{}` declares no such \
                             feature in {} — the gated item can never compile in",
                            krate.name, krate.manifest_rel_path
                        ),
                    ));
                }
            }
        }
    }
    findings
}
