//! L2 — the panic policy.
//!
//! Library code (files under `src/`, excluding `src/bin/` and
//! `#[cfg(test)]` modules) must not call `.unwrap()`, `.expect(…)` or
//! `panic!(…)` unless the call site carries a justified annotation:
//!
//! ```text
//! // analyze: allow(panic): <one-line reason>
//! ```
//!
//! on the same line or in the contiguous comment block directly above.
//! An annotation without a reason is itself a finding — the reason is
//! the point.
//!
//! The bench harness crate (`treecast-bench`) is exempt: its bins and
//! measurement loops treat process death as the correct failure mode
//! for a broken gate, and its panics print the diagnostics CI wants.

use crate::rules::{in_ranges, test_mod_ranges, Finding, RuleId};
use crate::workspace::{FileKind, Workspace};

/// The annotation marker.
pub const ANNOTATION: &str = "analyze: allow(panic)";

/// Crates where the policy does not apply.
pub const EXEMPT_CRATES: &[&str] = &["treecast-bench"];

/// Runs L2 over the workspace.
#[must_use]
pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for krate in &ws.crates {
        if EXEMPT_CRATES.contains(&krate.name.as_str()) {
            continue;
        }
        for file in &krate.files {
            if file.kind != FileKind::LibSrc {
                continue;
            }
            let toks = &file.lex.tokens;
            let skip = test_mod_ranges(&file.lex);
            for i in 0..toks.len() {
                if in_ranges(&skip, i) {
                    continue;
                }
                let call = if i + 2 < toks.len()
                    && toks[i].is_punct('.')
                    && (toks[i + 1].is_ident("unwrap") || toks[i + 1].is_ident("expect"))
                    && toks[i + 2].is_punct('(')
                {
                    Some((toks[i + 1].line, format!(".{}()", toks[i + 1].text)))
                } else if i + 1 < toks.len()
                    && toks[i].is_ident("panic")
                    && toks[i + 1].is_punct('!')
                {
                    Some((toks[i].line, "panic!".to_string()))
                } else {
                    None
                };
                let Some((line, what)) = call else { continue };
                let annotation = file.lex.annotation_text(line);
                match annotation.find(ANNOTATION) {
                    None => findings.push(Finding::new(
                        RuleId::PanicPolicy,
                        &file.rel_path,
                        line,
                        format!(
                            "{what} in library code — return a typed error, or annotate \
                             with `// {ANNOTATION}: <reason>`"
                        ),
                    )),
                    Some(pos) => {
                        let reason = annotation[pos + ANNOTATION.len()..]
                            .trim_start_matches([':', '-', ' ', '\u{2014}'])
                            .trim();
                        if reason.is_empty() {
                            findings.push(Finding::new(
                                RuleId::PanicPolicy,
                                &file.rel_path,
                                line,
                                format!(
                                    "{what} annotation is missing its reason — write \
                                     `// {ANNOTATION}: <why this cannot fire / why \
                                     dying is right>`"
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }
    findings
}
