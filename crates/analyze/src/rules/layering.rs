//! L1 — the crate-layering DAG.
//!
//! The workspace architecture is a strict DAG:
//!
//! ```text
//! bitmatrix → trees → core → {adversary, solver, nonsplit, montecarlo,
//!                              emulation} → {server, client} → bench
//! ```
//!
//! [`DAG`] records each crate's *direct* upstream edges; a crate may
//! depend (in `Cargo.toml`, any section) and `use` (in source) exactly
//! the crates in the transitive closure of its edges. Everything else is
//! a finding:
//!
//! * a `treecast-*` crate absent from the table (new crates must
//!   register — see CONTRIBUTING.md),
//! * a manifest dependency outside the closure (a layering violation),
//! * a `treecast_*` path used in source without a manifest dependency
//!   (an undeclared-dependency skip),
//! * a cycle in the declared table itself (cannot happen without editing
//!   this file, but the check keeps the table honest).

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::TokKind;
use crate::rules::{Finding, RuleId};
use crate::workspace::Workspace;

/// The declared layering DAG: `(crate, direct upstream dependencies)`.
/// New crates MUST register here (and in CONTRIBUTING.md's table).
pub const DAG: &[(&str, &[&str])] = &[
    ("treecast-bitmatrix", &[]),
    ("treecast-trees", &["treecast-bitmatrix"]),
    ("treecast-core", &["treecast-trees", "treecast-bitmatrix"]),
    ("treecast-adversary", &["treecast-core"]),
    ("treecast-solver", &["treecast-core"]),
    ("treecast-nonsplit", &["treecast-core"]),
    ("treecast-montecarlo", &["treecast-core"]),
    ("treecast-emulation", &["treecast-core", "treecast-trees"]),
    ("treecast-server", &["treecast-adversary", "treecast-core"]),
    ("treecast-client", &["treecast-server", "treecast-core"]),
    (
        "treecast-bench",
        &[
            "treecast-adversary",
            "treecast-client",
            "treecast-emulation",
            "treecast-montecarlo",
            "treecast-nonsplit",
            "treecast-server",
            "treecast-solver",
        ],
    ),
    (
        "treecast-analyze",
        &[
            "treecast-emulation",
            "treecast-montecarlo",
            "treecast-server",
            "treecast-solver",
        ],
    ),
    (
        "treecast",
        &[
            "treecast-adversary",
            "treecast-client",
            "treecast-emulation",
            "treecast-montecarlo",
            "treecast-nonsplit",
            "treecast-server",
            "treecast-solver",
        ],
    ),
];

/// The transitive closure of a crate's allowed dependencies, or `None`
/// when the crate is not registered.
#[must_use]
pub fn allowed_deps(name: &str) -> Option<BTreeSet<&'static str>> {
    let direct = DAG.iter().find(|(c, _)| *c == name)?.1;
    let mut closed: BTreeSet<&'static str> = BTreeSet::new();
    let mut stack: Vec<&'static str> = direct.to_vec();
    while let Some(dep) = stack.pop() {
        if closed.insert(dep) {
            if let Some((_, ups)) = DAG.iter().find(|(c, _)| *c == dep) {
                stack.extend(ups.iter().copied());
            }
        }
    }
    Some(closed)
}

/// `Some(cycle member)` when the declared table is not a DAG.
#[must_use]
pub fn table_cycle() -> Option<&'static str> {
    // Kahn's algorithm over the declared edges.
    let mut indegree: BTreeMap<&str, usize> = DAG.iter().map(|(c, _)| (*c, 0)).collect();
    for (_, ups) in DAG {
        for up in *ups {
            if let Some(d) = indegree.get_mut(up) {
                *d += 1;
            }
        }
    }
    let mut queue: Vec<&str> = indegree
        .iter()
        .filter(|(_, d)| **d == 0)
        .map(|(c, _)| *c)
        .collect();
    let mut seen = 0usize;
    while let Some(c) = queue.pop() {
        seen += 1;
        if let Some((_, ups)) = DAG.iter().find(|(name, _)| *name == c) {
            for up in *ups {
                if let Some(d) = indegree.get_mut(up) {
                    *d -= 1;
                    if *d == 0 {
                        queue.push(up);
                    }
                }
            }
        }
    }
    if seen == DAG.len() {
        None
    } else {
        indegree.iter().find(|(_, d)| **d > 0).map(|(c, _)| *c)
    }
}

/// Runs L1 over the workspace.
#[must_use]
pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    if let Some(member) = table_cycle() {
        findings.push(Finding::new(
            RuleId::Layering,
            "crates/analyze/src/rules/layering.rs",
            0,
            format!("the declared layering table has a cycle through `{member}`"),
        ));
    }
    for krate in &ws.crates {
        if !krate.name.starts_with("treecast") {
            continue;
        }
        let Some(allowed) = allowed_deps(&krate.name) else {
            findings.push(Finding::new(
                RuleId::Layering,
                &krate.manifest_rel_path,
                0,
                format!(
                    "crate `{}` is not registered in the layering DAG — add it to \
                     `crates/analyze/src/rules/layering.rs` (see CONTRIBUTING.md)",
                    krate.name
                ),
            ));
            continue;
        };
        // Manifest side: every treecast dependency must be in the closure.
        for dep in &krate.manifest.deps {
            if !dep.name.starts_with("treecast") || dep.name == krate.name {
                continue;
            }
            if !allowed.contains(dep.name.as_str()) {
                findings.push(Finding::new(
                    RuleId::Layering,
                    &krate.manifest_rel_path,
                    dep.line,
                    format!(
                        "`{}` must not depend on `{}`: the layering DAG allows {:?}",
                        krate.name,
                        dep.name,
                        allowed.iter().collect::<Vec<_>>()
                    ),
                ));
            }
        }
        // Source side: every `treecast_*` path must have a manifest
        // dependency behind it (no skipping layers through re-exports of
        // a crate you never declared).
        let self_ident = krate.name.replace('-', "_");
        for file in &krate.files {
            let mut reported: BTreeSet<&str> = BTreeSet::new();
            for tok in &file.lex.tokens {
                if tok.kind != TokKind::Ident {
                    continue;
                }
                if tok.text != "treecast" && !tok.text.starts_with("treecast_") {
                    continue;
                }
                if tok.text == self_ident || reported.contains(tok.text.as_str()) {
                    continue;
                }
                let dep_name = tok.text.replace('_', "-");
                if krate.manifest.dep(&dep_name).is_none() {
                    reported.insert(tok.text.as_str());
                    findings.push(Finding::new(
                        RuleId::Layering,
                        &file.rel_path,
                        tok.line,
                        format!(
                            "`{}` uses `{}` without declaring `{}` in {} — layering \
                             skips must go through a declared dependency",
                            krate.name, tok.text, dep_name, krate.manifest_rel_path
                        ),
                    ));
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declared_table_is_acyclic() {
        assert_eq!(table_cycle(), None);
    }

    #[test]
    fn closure_walks_transitively() {
        let solver = allowed_deps("treecast-solver").unwrap();
        assert!(solver.contains("treecast-core"));
        assert!(solver.contains("treecast-trees"), "via core");
        assert!(solver.contains("treecast-bitmatrix"), "via trees");
        assert!(!solver.contains("treecast-server"));
        let bitmatrix = allowed_deps("treecast-bitmatrix").unwrap();
        assert!(bitmatrix.is_empty());
        assert!(allowed_deps("treecast-widgets").is_none());
    }

    #[test]
    fn bench_and_facade_reach_everything() {
        for top in ["treecast-bench", "treecast"] {
            let allowed = allowed_deps(top).unwrap();
            for (name, _) in DAG {
                if *name != top
                    && *name != "treecast"
                    && *name != "treecast-bench"
                    && *name != "treecast-analyze"
                {
                    assert!(allowed.contains(name), "{top} should reach {name}");
                }
            }
        }
    }
}
