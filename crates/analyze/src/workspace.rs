//! Workspace discovery: find the crates, classify their source files,
//! lex everything once.
//!
//! The walker is deliberately convention-driven rather than
//! Cargo-metadata-driven: it scans `<root>/Cargo.toml` (the facade
//! package, if present) plus every `<root>/crates/*/Cargo.toml`, and
//! classifies `.rs` files by directory (`src/`, `src/bin/`, `tests/`,
//! `benches/`, `examples/`). That convention *is* one of the invariants
//! the tool guards, and it lets the fixture mini-workspaces under
//! `tests/fixtures/` be analyzed with the identical code path.
//!
//! `tests/fixtures/` subtrees are never collected as source: they are
//! analyzer *input data*, not code of the crate that carries them.

use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer::{self, LexFile};
use crate::manifest::{self, Manifest};

/// How a source file participates in the crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code under `src/` (excluding `src/bin/`).
    LibSrc,
    /// A binary target under `src/bin/`.
    BinSrc,
    /// An integration test under `tests/`.
    Test,
    /// A bench target under `benches/`.
    Bench,
    /// An example under `examples/`.
    Example,
}

impl FileKind {
    /// `true` for test/bench/example support code, where the panic
    /// policy does not apply.
    #[must_use]
    pub fn is_support(self) -> bool {
        !matches!(self, FileKind::LibSrc)
    }
}

/// One lexed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// Directory classification.
    pub kind: FileKind,
    /// Raw text.
    pub text: String,
    /// The token stream and comment table.
    pub lex: LexFile,
}

/// One crate: manifest plus lexed sources.
#[derive(Debug)]
pub struct CrateInfo {
    /// `package.name` from the manifest.
    pub name: String,
    /// Crate directory relative to the workspace root (empty for the
    /// root package).
    pub rel_dir: String,
    /// Parsed manifest subset.
    pub manifest: Manifest,
    /// Manifest path relative to the workspace root.
    pub manifest_rel_path: String,
    /// All `.rs` files of the crate.
    pub files: Vec<SourceFile>,
}

/// The analyzed workspace.
#[derive(Debug)]
pub struct Workspace {
    /// Absolute root directory.
    pub root: PathBuf,
    /// Discovered crates, facade package first when present.
    pub crates: Vec<CrateInfo>,
}

impl Workspace {
    /// Discovers and lexes the workspace under `root`.
    ///
    /// # Errors
    ///
    /// An I/O-flavored message when `root` has no readable crate at all.
    pub fn load(root: &Path) -> Result<Workspace, String> {
        let root = root
            .canonicalize()
            .map_err(|e| format!("cannot resolve workspace root {}: {e}", root.display()))?;
        let mut crates = Vec::new();
        // The root facade package, when the root manifest has [package].
        let root_manifest = root.join("Cargo.toml");
        if root_manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&root_manifest) {
                let m = manifest::parse(&text);
                if !m.package_name.is_empty() {
                    crates.push(load_crate(&root, &root, m)?);
                }
            }
        }
        // Member crates by convention: crates/*/Cargo.toml.
        let crates_dir = root.join("crates");
        let mut members: Vec<PathBuf> = match fs::read_dir(&crates_dir) {
            Ok(entries) => entries
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.join("Cargo.toml").is_file())
                .collect(),
            Err(_) => Vec::new(),
        };
        members.sort();
        for dir in members {
            let text = fs::read_to_string(dir.join("Cargo.toml"))
                .map_err(|e| format!("unreadable {}: {e}", dir.join("Cargo.toml").display()))?;
            let m = manifest::parse(&text);
            crates.push(load_crate(&root, &dir, m)?);
        }
        if crates.is_empty() {
            return Err(format!("no crates found under {}", root.display()));
        }
        Ok(Workspace { root, crates })
    }

    /// The crate named `name`, if discovered.
    #[must_use]
    pub fn crate_named(&self, name: &str) -> Option<&CrateInfo> {
        self.crates.iter().find(|c| c.name == name)
    }
}

fn load_crate(root: &Path, dir: &Path, manifest: Manifest) -> Result<CrateInfo, String> {
    let rel_dir = rel_to(root, dir);
    let mut files = Vec::new();
    for (sub, kind_of) in [
        ("src", FileKind::LibSrc),
        ("tests", FileKind::Test),
        ("benches", FileKind::Bench),
        ("examples", FileKind::Example),
    ] {
        collect_rs(root, &dir.join(sub), kind_of, &mut files)?;
    }
    files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    let name = if manifest.package_name.is_empty() {
        format!("<unnamed {rel_dir}>")
    } else {
        manifest.package_name.clone()
    };
    Ok(CrateInfo {
        name,
        rel_dir,
        manifest,
        manifest_rel_path: rel_to(root, &dir.join("Cargo.toml")),
        files,
    })
}

/// Recursively collects `.rs` files under `dir`, classifying `src/bin/`
/// as binaries and skipping `fixtures/` subtrees (analyzer input data).
fn collect_rs(
    root: &Path,
    dir: &Path,
    kind: FileKind,
    out: &mut Vec<SourceFile>,
) -> Result<(), String> {
    let Ok(entries) = fs::read_dir(dir) else {
        return Ok(()); // missing target dirs are fine
    };
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        let file_name = entry.file_name();
        let file_name = file_name.to_string_lossy();
        if path.is_dir() {
            if file_name == "fixtures" {
                continue;
            }
            let sub_kind = if kind == FileKind::LibSrc && file_name == "bin" {
                FileKind::BinSrc
            } else {
                kind
            };
            collect_rs(root, &path, sub_kind, out)?;
        } else if file_name.ends_with(".rs") {
            let text = fs::read_to_string(&path)
                .map_err(|e| format!("unreadable {}: {e}", path.display()))?;
            let lex = lexer::lex(&text);
            out.push(SourceFile {
                rel_path: rel_to(root, &path),
                kind,
                text,
                lex,
            });
        }
    }
    Ok(())
}

/// `path` relative to `root`, `/`-separated (stable across hosts for
/// diagnostics, allowlists and baselines).
fn rel_to(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}
