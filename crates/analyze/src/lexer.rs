//! A lightweight Rust lexer — just enough token structure for the
//! workspace rules, with none of `syn`'s weight (or its dependency
//! tree, which the offline vendored-shim policy rules out).
//!
//! The lexer turns a source file into
//!
//! * a flat [`Tok`] stream (identifiers, literals, single-character
//!   punctuation, doc comments) with 1-based line numbers, and
//! * a per-line table of ordinary comments ([`LexFile::comments`]), which
//!   is where the `// analyze: allow(panic)` and `// SAFETY:`
//!   annotations live.
//!
//! It understands the lexical constructs that break naive `grep`-style
//! scanning: nested block comments, string escapes, raw strings
//! (`r"…"`, `r#"…"#`, any number of `#`s), byte and raw-byte strings,
//! raw identifiers (`r#match`), char literals vs. lifetimes, and
//! numeric literals containing `.` (without swallowing `..` ranges).
//! It does **not** build a syntax tree: rules pattern-match the token
//! stream directly.

/// What a token is. Punctuation is kept single-character: the rules only
/// ever match short sequences (`# [ cfg (`, `. unwrap (`), so multi-char
/// operators need no special treatment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `unsafe`, `unwrap`, …).
    Ident,
    /// A raw identifier: `r#ident` (text carries `ident`, without `r#`).
    RawIdent,
    /// A lifetime: `'a` (text carries `a`).
    Lifetime,
    /// A string literal of any flavor (text carries the *contents*).
    Str,
    /// A char or byte literal (contents not preserved).
    Char,
    /// A numeric literal (contents not preserved).
    Num,
    /// One punctuation character.
    Punct(char),
    /// An outer doc comment: `///` or `/** … */`.
    DocOuter,
    /// An inner doc comment: `//!` or `/*! … */`.
    DocInner,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// The token class.
    pub kind: TokKind,
    /// Identifier text, raw-identifier text, or string contents;
    /// empty for punctuation and skipped literal classes.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
}

impl Tok {
    /// `true` when the token is the identifier `word`.
    #[must_use]
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokKind::Ident && self.text == word
    }

    /// `true` when the token is the punctuation character `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// A lexed source file: the token stream plus the ordinary-comment text
/// per line (doc comments are tokens instead, so rules can attach them
/// to items).
#[derive(Debug, Default)]
pub struct LexFile {
    /// The token stream, in source order.
    pub tokens: Vec<Tok>,
    /// `(line, text)` for every non-doc comment, in source order. Block
    /// comments are recorded once at their starting line with their full
    /// text (newlines included).
    pub comments: Vec<(usize, String)>,
}

impl LexFile {
    /// The concatenated ordinary-comment text on `line`.
    #[must_use]
    pub fn comment_on(&self, line: usize) -> Option<String> {
        let mut joined = String::new();
        for (l, text) in &self.comments {
            if *l == line {
                joined.push_str(text);
                joined.push(' ');
            }
        }
        if joined.is_empty() {
            None
        } else {
            Some(joined)
        }
    }

    /// Walks upward from `line - 1` through contiguous comment-only lines
    /// (lines holding a comment and no token) and returns their text, plus
    /// any trailing comment on `line` itself. This is the annotation
    /// scope: an annotation binds to the item on the next code line.
    #[must_use]
    pub fn annotation_text(&self, line: usize) -> String {
        let mut text = self.comment_on(line).unwrap_or_default();
        let mut l = line;
        while l > 1 {
            l -= 1;
            let has_comment = self.comment_on(l).is_some();
            let has_token = self.tokens.iter().any(|t| t.line == l);
            if has_comment && !has_token {
                // Prepend: upper lines come first in reading order.
                let mut upper = self.comment_on(l).unwrap_or_default();
                upper.push(' ');
                upper.push_str(&text);
                text = upper;
            } else {
                break;
            }
        }
        text
    }
}

/// Lexes `source` into tokens and comments. Unterminated constructs
/// (strings, block comments) are tolerated: the rest of the file becomes
/// part of the construct, which is the useful behavior for a linter that
/// must never panic on weird input.
#[must_use]
pub fn lex(source: &str) -> LexFile {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    out: LexFile,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            src: source.as_bytes(),
            pos: 0,
            line: 1,
            out: LexFile::default(),
        }
    }

    fn peek(&self, ahead: usize) -> u8 {
        self.src.get(self.pos + ahead).copied().unwrap_or(0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek(0);
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        b
    }

    fn push(&mut self, kind: TokKind, text: String, line: usize) {
        self.out.tokens.push(Tok { kind, text, line });
    }

    fn run(mut self) -> LexFile {
        while self.pos < self.src.len() {
            let b = self.peek(0);
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'r' if self.peek(1) == b'#' && is_ident_start(self.peek(2)) => self.raw_ident(),
                b'r' if is_raw_string_start(self.peek(1)) => {
                    let line = self.line;
                    self.bump(); // r
                    let text = self.raw_string_body();
                    self.push(TokKind::Str, text, line);
                }
                b'b' if self.peek(1) == b'"' => {
                    let line = self.line;
                    self.bump(); // b
                    let text = self.quoted_string();
                    self.push(TokKind::Str, text, line);
                }
                b'b' if self.peek(1) == b'r' && is_raw_string_start(self.peek(2)) => {
                    let line = self.line;
                    self.bump(); // b
                    self.bump(); // r
                    let text = self.raw_string_body();
                    self.push(TokKind::Str, text, line);
                }
                b'b' if self.peek(1) == b'\'' => {
                    let line = self.line;
                    self.bump(); // b
                    self.char_literal();
                    self.push(TokKind::Char, String::new(), line);
                }
                b'"' => {
                    let line = self.line;
                    let text = self.quoted_string();
                    self.push(TokKind::Str, text, line);
                }
                b'\'' => self.quote(),
                b'0'..=b'9' => self.number(),
                _ if is_ident_start(b) => self.ident(),
                _ => {
                    let line = self.line;
                    let c = self.bump();
                    // Multi-byte UTF-8 (in identifiers we don't emit, or
                    // stray unicode punctuation) collapses to one token.
                    if c < 0x80 {
                        self.push(TokKind::Punct(c as char), String::new(), line);
                    }
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump(); // //
        let third = self.peek(0);
        let start = self.pos;
        while self.pos < self.src.len() && self.peek(0) != b'\n' {
            self.bump();
        }
        let body = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        match third {
            // `///` is outer doc, but `////…` is an ordinary comment
            // (rustc quirk we mirror: 4+ slashes are not doc). `body`
            // starts at the third character, so doc means "exactly one
            // more slash": body[0] == '/' and body[1] != '/'.
            b'/' if !body[1..].starts_with('/') => {
                self.push(TokKind::DocOuter, body[1..].to_string(), line);
            }
            b'!' => self.push(TokKind::DocInner, body[1..].to_string(), line),
            _ => self.out.comments.push((line, body)),
        }
    }

    fn block_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump(); // /*
        let third = self.peek(0);
        // `/**/` is empty ordinary; `/**x` is doc; `/*!` is inner doc.
        let is_outer_doc = third == b'*' && self.peek(1) != b'/' && self.peek(1) != b'*';
        let is_inner_doc = third == b'!';
        if is_outer_doc || is_inner_doc {
            self.bump(); // the * or !
        }
        let start = self.pos;
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.bump();
                self.bump();
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.bump();
                self.bump();
            } else {
                self.bump();
            }
        }
        let end = self.pos.saturating_sub(2).max(start);
        let body = String::from_utf8_lossy(&self.src[start..end]).into_owned();
        if is_outer_doc {
            self.push(TokKind::DocOuter, body, line);
        } else if is_inner_doc {
            self.push(TokKind::DocInner, body, line);
        } else {
            self.out.comments.push((line, body));
        }
    }

    fn raw_ident(&mut self) {
        let line = self.line;
        self.bump();
        self.bump(); // r#
        let start = self.pos;
        while is_ident_continue(self.peek(0)) {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokKind::RawIdent, text, line);
    }

    /// Lexes `"…"#…#` after the leading `r` (and optional `b`) was eaten.
    fn raw_string_body(&mut self) -> String {
        let mut hashes = 0usize;
        while self.peek(0) == b'#' {
            hashes += 1;
            self.bump();
        }
        if self.peek(0) != b'"' {
            return String::new(); // not actually a raw string; tolerate
        }
        self.bump(); // opening quote
        let start = self.pos;
        loop {
            if self.pos >= self.src.len() {
                return String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
            }
            if self.peek(0) == b'"' {
                let mut ok = true;
                for i in 0..hashes {
                    if self.peek(1 + i) != b'#' {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                    self.bump(); // closing quote
                    for _ in 0..hashes {
                        self.bump();
                    }
                    return text;
                }
            }
            self.bump();
        }
    }

    /// Lexes `"…"` with escape handling; the opening quote is at `pos`.
    fn quoted_string(&mut self) -> String {
        self.bump(); // opening quote
        let start = self.pos;
        loop {
            match self.peek(0) {
                0 if self.pos >= self.src.len() => {
                    return String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                }
                b'\\' => {
                    self.bump();
                    self.bump();
                }
                b'"' => {
                    let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                    self.bump();
                    return text;
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    /// A `'`: either a char literal or a lifetime.
    fn quote(&mut self) {
        let line = self.line;
        // Lifetime: 'ident not followed by a closing quote.
        if is_ident_start(self.peek(1)) && self.peek(2) != b'\'' {
            self.bump(); // '
            let start = self.pos;
            while is_ident_continue(self.peek(0)) {
                self.bump();
            }
            let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
            self.push(TokKind::Lifetime, text, line);
            return;
        }
        self.char_literal();
        self.push(TokKind::Char, String::new(), line);
    }

    /// Lexes `'…'` with escapes; the opening quote is at `pos`.
    fn char_literal(&mut self) {
        self.bump(); // opening '
        loop {
            match self.peek(0) {
                0 if self.pos >= self.src.len() => return,
                b'\\' => {
                    self.bump();
                    self.bump();
                }
                b'\'' => {
                    self.bump();
                    return;
                }
                b'\n' => return, // tolerate stray quote
                _ => {
                    self.bump();
                }
            }
        }
    }

    fn number(&mut self) {
        let line = self.line;
        while is_ident_continue(self.peek(0)) {
            self.bump();
        }
        // `1.5` continues the literal, `1..n` does not.
        if self.peek(0) == b'.' && self.peek(1).is_ascii_digit() {
            self.bump();
            while is_ident_continue(self.peek(0)) {
                self.bump();
            }
        }
        self.push(TokKind::Num, String::new(), line);
    }

    fn ident(&mut self) {
        let line = self.line;
        let start = self.pos;
        while is_ident_continue(self.peek(0)) {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokKind::Ident, text, line);
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

fn is_raw_string_start(b: u8) -> bool {
    b == b'"' || b == b'#'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(file: &LexFile) -> Vec<&str> {
        file.tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect()
    }

    #[test]
    fn plain_tokens_with_lines() {
        let f = lex("fn main() {\n    x.unwrap();\n}\n");
        assert_eq!(idents(&f), vec!["fn", "main", "x", "unwrap"]);
        let unwrap = f.tokens.iter().find(|t| t.is_ident("unwrap")).unwrap();
        assert_eq!(unwrap.line, 2);
    }

    #[test]
    fn line_comments_are_recorded_not_tokenized() {
        let f = lex("let a = 1; // trailing note\n// full line\nlet b = 2;\n");
        assert!(f.tokens.iter().all(|t| t.kind != TokKind::Punct('/')));
        assert_eq!(f.comments.len(), 2);
        assert_eq!(f.comment_on(1).unwrap().trim(), "trailing note");
        assert_eq!(f.comment_on(2).unwrap().trim(), "full line");
    }

    #[test]
    fn doc_comments_are_tokens() {
        let f = lex("/// Outer doc.\n//! Inner doc.\n/** block doc */\npub fn f() {}\n");
        let kinds: Vec<_> = f.tokens.iter().map(|t| t.kind.clone()).collect();
        assert_eq!(kinds[0], TokKind::DocOuter);
        assert_eq!(kinds[1], TokKind::DocInner);
        assert_eq!(kinds[2], TokKind::DocOuter);
        assert!(f.comments.is_empty());
        assert_eq!(f.tokens[0].text.trim(), "Outer doc.");
    }

    #[test]
    fn four_slashes_is_not_doc() {
        let f = lex("//// separator\nfn f() {}\n");
        assert!(f.tokens.iter().all(|t| t.kind != TokKind::DocOuter));
        assert_eq!(f.comments.len(), 1);
    }

    #[test]
    fn nested_block_comments() {
        let f = lex("/* outer /* inner */ still outer */ fn f() {}\n");
        assert_eq!(idents(&f), vec!["fn", "f"]);
        assert_eq!(f.comments.len(), 1);
        assert!(f.comments[0].1.contains("inner"));
        assert!(f.comments[0].1.contains("still outer"));
    }

    #[test]
    fn strings_hide_their_contents() {
        let f = lex(r#"let s = "fn fake() { x.unwrap() } // not a comment";"#);
        assert_eq!(idents(&f), vec!["let", "s"]);
        assert!(f.comments.is_empty());
        let s = f
            .tokens
            .iter()
            .find(|t| t.kind == TokKind::Str)
            .expect("string token");
        assert!(s.text.contains("unwrap"));
    }

    #[test]
    fn string_escapes_do_not_end_early() {
        let f = lex(r#"let s = "a \" b"; let t = 1;"#);
        assert_eq!(idents(&f), vec!["let", "s", "let", "t"]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let f = lex("let s = r#\"quote \" and // slash\"#; let t = r\"plain\"; done();");
        assert_eq!(idents(&f), vec!["let", "s", "let", "t", "done"]);
        assert!(f.comments.is_empty());
        let texts: Vec<_> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(texts, vec!["quote \" and // slash", "plain"]);
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let f = lex("let a = b\"bytes\"; let b2 = br#\"raw \" bytes\"#; end();");
        assert_eq!(idents(&f), vec!["let", "a", "let", "b2", "end"]);
    }

    #[test]
    fn raw_identifiers() {
        let f = lex("fn r#match(r#fn: u8) {}\n");
        let raws: Vec<_> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::RawIdent)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(raws, vec!["match", "fn"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let f = lex("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; }\n");
        let lifetimes: Vec<_> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a"]);
        assert_eq!(
            f.tokens.iter().filter(|t| t.kind == TokKind::Char).count(),
            2
        );
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let f = lex("for i in 0..n { let x = 1.5e3 + 0xFF + 1_000; }\n");
        assert_eq!(idents(&f), vec!["for", "i", "in", "n", "let", "x"]);
        // The `..` survives as two dots.
        assert_eq!(f.tokens.iter().filter(|t| t.is_punct('.')).count(), 2);
    }

    #[test]
    fn annotation_text_walks_comment_block_upward() {
        let f = lex(
            "// analyze: allow(panic): reason one\n// continued\nx.unwrap();\ny.unwrap(); // analyze: allow(panic): inline\n",
        );
        let a = f.annotation_text(3);
        assert!(a.contains("allow(panic)"));
        assert!(a.contains("continued"));
        let b = f.annotation_text(4);
        assert!(b.contains("inline"));
        // A code line above breaks the comment block.
        assert!(!b.contains("reason one"));
    }

    #[test]
    fn cfg_gated_items_lex_plainly() {
        let f = lex("#[cfg(feature = \"serde\")]\nmod wire {}\n#[cfg(test)]\nmod tests {}\n");
        assert_eq!(
            idents(&f),
            vec!["cfg", "feature", "mod", "wire", "cfg", "test", "mod", "tests"]
        );
        let feature_val = f
            .tokens
            .iter()
            .find(|t| t.kind == TokKind::Str)
            .expect("feature value");
        assert_eq!(feature_val.text, "serde");
    }
}
