//! Minimum spanning arborescence (Chu-Liu/Edmonds).
//!
//! Given a complete weighted digraph, find the spanning tree rooted at `r`
//! (all edges directed away from `r` in our parent-array convention —
//! equivalently, every non-root node picks exactly one in-edge) minimizing
//! the total weight of the chosen in-edges.
//!
//! This is the optimization at the heart of the strongest delaying
//! adversaries: with edge weight `w(p → y) = cost of the information `y`
//! would gain from parent `p`, the minimum arborescence is the exact
//! minimum-progress round tree — something no path-shaped candidate pool
//! can express.

use crate::tree::{NodeId, RootedTree, TreeError};

/// Error returned when no arborescence exists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArborescenceError {
    /// `node` has no incoming edge, so it cannot be spanned.
    Unreachable {
        /// The node without in-edges.
        node: NodeId,
    },
    /// The weight matrix is not square or the root is out of range.
    BadInput,
}

impl core::fmt::Display for ArborescenceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            ArborescenceError::Unreachable { node } => {
                write!(f, "node {node} has no incoming edge")
            }
            ArborescenceError::BadInput => write!(f, "weights must be square and root in range"),
        }
    }
}

impl std::error::Error for ArborescenceError {}

#[derive(Debug, Clone, Copy)]
struct Edge {
    from: usize,
    to: usize,
    weight: i64,
    /// Index into the parent level's edge list (or original edge id at the
    /// top level).
    parent_index: usize,
}

/// Computes a minimum spanning arborescence rooted at `root` over the
/// dense weight matrix `weights`, where `weights[p][y]` is the cost of
/// making `p` the parent of `y`. Entries may be any `i64`; `weights[v][v]`
/// is ignored, and `i64::MAX` marks a missing edge.
///
/// Returns the parent array of the optimal tree.
///
/// # Errors
///
/// [`ArborescenceError::BadInput`] if `weights` is ragged or `root` out of
/// range; [`ArborescenceError::Unreachable`] if some node has no usable
/// in-edge.
///
/// # Examples
///
/// ```
/// use treecast_trees::arborescence::min_arborescence;
///
/// // Cheap chain 0 → 1 → 2, expensive everything else.
/// let w = vec![
///     vec![0, 1, 9],
///     vec![9, 0, 1],
///     vec![9, 9, 0],
/// ];
/// let parents = min_arborescence(&w, 0)?;
/// assert_eq!(parents, vec![None, Some(0), Some(1)]);
/// # Ok::<(), treecast_trees::arborescence::ArborescenceError>(())
/// ```
pub fn min_arborescence(
    weights: &[Vec<i64>],
    root: NodeId,
) -> Result<Vec<Option<NodeId>>, ArborescenceError> {
    let n = weights.len();
    if root >= n || weights.iter().any(|row| row.len() != n) {
        return Err(ArborescenceError::BadInput);
    }
    if n == 1 {
        return Ok(vec![None]);
    }
    let mut edges = Vec::with_capacity(n * (n - 1));
    for (p, row) in weights.iter().enumerate() {
        for (y, &w) in row.iter().enumerate() {
            if p != y && y != root && w != i64::MAX {
                edges.push(Edge {
                    from: p,
                    to: y,
                    weight: w,
                    parent_index: edges.len(),
                });
            }
        }
    }
    let chosen = solve(n, root, &edges)?;
    let mut parent = vec![None; n];
    for idx in chosen {
        let e = edges[idx];
        parent[e.to] = Some(e.from);
    }
    Ok(parent)
}

/// Convenience wrapper returning a validated [`RootedTree`].
///
/// # Errors
///
/// Propagates [`ArborescenceError`] (wrapped in `Err(Ok(..))`-free form:
/// returns the tree error if validation fails, which indicates a bug and
/// is surfaced for debuggability rather than panicking).
pub fn min_arborescence_tree(
    weights: &[Vec<i64>],
    root: NodeId,
) -> Result<RootedTree, ArborescenceError> {
    let parent = min_arborescence(weights, root)?;
    RootedTree::from_parents(parent).map_err(|e: TreeError| {
        // A correct Edmonds cannot produce a non-tree; treat as bad input.
        debug_assert!(false, "Edmonds produced an invalid tree: {e}");
        ArborescenceError::BadInput
    })
}

/// Recursive Chu-Liu/Edmonds on an edge list over nodes `0..n_nodes`.
/// Returns the indices (into `edges`) of the selected in-edges.
fn solve(n_nodes: usize, root: usize, edges: &[Edge]) -> Result<Vec<usize>, ArborescenceError> {
    // 1. Cheapest in-edge per node.
    let mut best: Vec<Option<usize>> = vec![None; n_nodes];
    for (i, e) in edges.iter().enumerate() {
        debug_assert_ne!(e.to, root);
        if best[e.to]
            .map(|b| edges[b].weight > e.weight)
            .unwrap_or(true)
        {
            best[e.to] = Some(i);
        }
    }
    for v in 0..n_nodes {
        if v != root && best[v].is_none() {
            return Err(ArborescenceError::Unreachable { node: v });
        }
    }

    // 2. Find cycles in the best-in-edge functional graph.
    const UNSEEN: usize = usize::MAX;
    let mut comp = vec![UNSEEN; n_nodes]; // component id per node
    let mut mark = vec![UNSEEN; n_nodes]; // walk marker
    let mut cycles: Vec<Vec<usize>> = Vec::new();
    let mut next_comp = 0usize;

    for start in 0..n_nodes {
        if comp[start] != UNSEEN {
            continue;
        }
        // Walk up best-in edges until hitting root, a labeled node, or a
        // node visited in THIS walk (a fresh cycle).
        let mut v = start;
        while v != root && comp[v] == UNSEEN && mark[v] != start {
            mark[v] = start;
            // analyze: allow(panic): best[v] was set for every non-root node before the cycle walk
            v = edges[best[v].expect("checked above")].from;
        }
        if v != root && comp[v] == UNSEEN && mark[v] == start {
            // Fresh cycle through v.
            let mut cyc = vec![v];
            // analyze: allow(panic): cycle nodes are non-root, so their best incoming edge exists
            let mut u = edges[best[v].expect("cycle node")].from;
            while u != v {
                cyc.push(u);
                // analyze: allow(panic): cycle nodes are non-root, so their best incoming edge exists
                u = edges[best[u].expect("cycle node")].from;
            }
            let id = next_comp;
            next_comp += 1;
            for &c in &cyc {
                comp[c] = id;
            }
            cycles.push(cyc);
        }
        // Label the rest of the walk path as singleton components.
        let mut u = start;
        while u != root && comp[u] == UNSEEN {
            comp[u] = next_comp;
            next_comp += 1;
            // analyze: allow(panic): the walk stays on non-root nodes, which all have a best edge
            u = edges[best[u].expect("non-root")].from;
        }
    }
    if comp[root] == UNSEEN {
        comp[root] = next_comp;
        next_comp += 1;
    }

    // 3. No cycle: the best in-edges are the answer.
    if cycles.is_empty() {
        return Ok((0..n_nodes)
            .filter(|&v| v != root)
            // analyze: allow(panic): the no-cycle branch: every non-root node kept its best edge
            .map(|v| best[v].expect("non-root"))
            .collect());
    }

    // 4. Contract every cycle; adjust weights of edges entering a cycle.
    let in_cycle: Vec<bool> = {
        let mut f = vec![false; n_nodes];
        for cyc in &cycles {
            for &c in cyc {
                f[c] = true;
            }
        }
        f
    };
    let mut new_edges: Vec<Edge> = Vec::with_capacity(edges.len());
    for (i, e) in edges.iter().enumerate() {
        let (cu, cv) = (comp[e.from], comp[e.to]);
        if cu == cv {
            continue;
        }
        let weight = if in_cycle[e.to] {
            // analyze: allow(panic): in_cycle nodes are non-root, so their best incoming edge exists
            e.weight - edges[best[e.to].expect("cycle node")].weight
        } else {
            e.weight
        };
        new_edges.push(Edge {
            from: cu,
            to: cv,
            weight,
            parent_index: i,
        });
    }
    let sub = solve(next_comp, comp[root], &new_edges)?;

    // 5. Expand: selected reduced edges map back; each contracted cycle
    //    keeps all its best edges except the one into its entry node.
    let mut selected: Vec<usize> = Vec::with_capacity(n_nodes - 1);
    let mut entered = vec![false; n_nodes];
    for j in sub {
        let original_index = new_edges[j].parent_index;
        selected.push(original_index);
        entered[edges[original_index].to] = true;
    }
    for cyc in &cycles {
        for &v in cyc {
            if !entered[v] {
                // analyze: allow(panic): cycle nodes are non-root, so their best incoming edge exists
                selected.push(best[v].expect("cycle node"));
            }
        }
    }
    Ok(selected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate;

    /// Brute-force minimum over all rooted trees with the given root.
    fn brute(weights: &[Vec<i64>], root: usize) -> i64 {
        let n = weights.len();
        let mut best = i64::MAX;
        enumerate::for_each_rooted_tree(n, |t| {
            if t.root() != root {
                return;
            }
            let total: i64 = (0..n)
                .filter_map(|y| t.parent(y).map(|p| weights[p][y]))
                .sum();
            best = best.min(total);
        });
        best
    }

    fn total_of(weights: &[Vec<i64>], parent: &[Option<usize>]) -> i64 {
        parent
            .iter()
            .enumerate()
            .filter_map(|(y, &p)| p.map(|p| weights[p][y]))
            .sum()
    }

    #[test]
    fn simple_chain() {
        let w = vec![vec![0, 1, 9], vec![9, 0, 1], vec![9, 9, 0]];
        assert_eq!(
            min_arborescence(&w, 0).unwrap(),
            vec![None, Some(0), Some(1)]
        );
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        // Deterministic xorshift so the test is reproducible without rand.
        let mut state = 0x1234_5678_9ABC_DEFu64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..300 {
            let n = 2 + (trial % 5);
            let root = (next() % n as u64) as usize;
            let mut w = vec![vec![0i64; n]; n];
            for p in 0..n {
                for y in 0..n {
                    w[p][y] = (next() % 25) as i64;
                }
            }
            let parent = min_arborescence(&w, root).unwrap();
            let tree = RootedTree::from_parents(parent.clone())
                .unwrap_or_else(|e| panic!("trial {trial}: invalid tree {parent:?}: {e}"));
            assert_eq!(tree.root(), root, "trial {trial}");
            assert_eq!(
                total_of(&w, &parent),
                brute(&w, root),
                "trial {trial}: suboptimal result"
            );
        }
    }

    #[test]
    fn handles_negative_weights() {
        let mut state = 0xFEED_FACE_u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..100 {
            let n = 3 + (trial % 4);
            let root = (next() % n as u64) as usize;
            let mut w = vec![vec![0i64; n]; n];
            for p in 0..n {
                for y in 0..n {
                    w[p][y] = (next() % 41) as i64 - 20;
                }
            }
            let parent = min_arborescence(&w, root).unwrap();
            assert_eq!(
                total_of(&w, &parent),
                brute(&w, root),
                "trial {trial} (negative weights)"
            );
        }
    }

    #[test]
    fn single_node() {
        assert_eq!(min_arborescence(&[vec![0]], 0).unwrap(), vec![None]);
    }

    #[test]
    fn two_nodes() {
        let w = vec![vec![0, 7], vec![3, 0]];
        assert_eq!(min_arborescence(&w, 0).unwrap(), vec![None, Some(0)]);
        assert_eq!(min_arborescence(&w, 1).unwrap(), vec![Some(1), None]);
    }

    #[test]
    fn respects_missing_edges() {
        // Only path edges exist: 0→1, 1→2.
        let m = i64::MAX;
        let w = vec![vec![0, 5, m], vec![m, 0, 5], vec![m, m, 0]];
        let parent = min_arborescence(&w, 0).unwrap();
        assert_eq!(parent, vec![None, Some(0), Some(1)]);
    }

    #[test]
    fn unreachable_is_reported() {
        let m = i64::MAX;
        let w = vec![vec![0, m], vec![m, 0]];
        assert_eq!(
            min_arborescence(&w, 0),
            Err(ArborescenceError::Unreachable { node: 1 })
        );
    }

    #[test]
    fn bad_input_is_reported() {
        assert_eq!(
            min_arborescence(&[vec![0, 1]], 0),
            Err(ArborescenceError::BadInput)
        );
        assert_eq!(
            min_arborescence(&[vec![0]], 5),
            Err(ArborescenceError::BadInput)
        );
    }

    #[test]
    fn tree_wrapper_roundtrips() {
        let w = vec![vec![0, 1, 1], vec![1, 0, 1], vec![1, 1, 0]];
        let t = min_arborescence_tree(&w, 2).unwrap();
        assert_eq!(t.root(), 2);
        assert_eq!(t.n(), 3);
    }

    #[test]
    fn forced_cycle_contraction() {
        // 0 is root; 1 and 2 mutually cheap (cycle), expensive from root —
        // the classic contraction case.
        let w = vec![vec![0, 10, 10], vec![99, 0, 1], vec![99, 1, 0]];
        let parent = min_arborescence(&w, 0).unwrap();
        let total = total_of(&w, &parent);
        assert_eq!(total, 11, "break the 1↔2 cycle with one root edge");
    }
}
