//! Deterministic tree families.
//!
//! These are the structured shapes the broadcast literature keeps reaching
//! for: paths (slowest static tree), stars (fastest), brooms and
//! caterpillars (the shapes behind lower-bound constructions), spiders and
//! complete k-ary trees (baseline variety). Every generator is
//! deterministic; randomized variants live in [`crate::random`].

use crate::tree::{NodeId, RootedTree};

/// The path `0 → 1 → … → n−1`, rooted at node 0.
///
/// Repeating this tree yields broadcast time exactly `n − 1`, the paper's
/// Section 2 observation.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// use treecast_trees::generators::path;
/// let t = path(4);
/// assert!(t.is_path());
/// assert_eq!(t.height(), 3);
/// ```
pub fn path(n: usize) -> RootedTree {
    path_with_order(&(0..n).collect::<Vec<_>>())
}

/// A path visiting the nodes in the given order (first element is the
/// root).
///
/// # Panics
///
/// Panics if `order` is empty or not a permutation of `0..order.len()`.
pub fn path_with_order(order: &[NodeId]) -> RootedTree {
    assert!(!order.is_empty(), "path needs at least one node");
    let n = order.len();
    let mut parent = vec![None; n];
    for w in order.windows(2) {
        parent[w[1]] = Some(w[0]);
    }
    // analyze: allow(panic): chaining a permutation into a path is acyclic by construction
    RootedTree::from_parents(parent).expect("a node order defines a valid path")
}

/// The star with center (and root) 0.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn star(n: usize) -> RootedTree {
    star_with_center(n, 0)
}

/// The star rooted at `center`.
///
/// # Panics
///
/// Panics if `n == 0` or `center >= n`.
///
/// # Examples
///
/// ```
/// use treecast_trees::generators::star_with_center;
/// let t = star_with_center(5, 3);
/// assert!(t.is_star());
/// assert_eq!(t.root(), 3);
/// ```
pub fn star_with_center(n: usize, center: NodeId) -> RootedTree {
    assert!(n > 0, "star needs at least one node");
    assert!(center < n, "center {center} out of range for n = {n}");
    let parent = (0..n)
        .map(|v| if v == center { None } else { Some(center) })
        .collect();
    // analyze: allow(panic): the star parent array has one root and no chains to cycle
    RootedTree::from_parents(parent).expect("star parent array is valid")
}

/// A broom: a handle path of `handle_len` nodes rooted at node 0, with all
/// remaining nodes attached as leaves to the end of the handle.
///
/// `broom(n, 1)` is the star; `broom(n, n−1)` (and `broom(n, n)`) is the
/// path.
///
/// # Panics
///
/// Panics if `n == 0` or `handle_len == 0` or `handle_len > n`.
///
/// # Examples
///
/// ```
/// use treecast_trees::generators::broom;
/// let t = broom(6, 3); // 0 → 1 → 2, leaves 3, 4, 5 under node 2
/// assert_eq!(t.leaf_count(), 3);
/// assert_eq!(t.height(), 3);
/// ```
pub fn broom(n: usize, handle_len: usize) -> RootedTree {
    assert!(n > 0, "broom needs at least one node");
    assert!(
        (1..=n).contains(&handle_len),
        "handle length {handle_len} out of range for n = {n}"
    );
    let mut parent = vec![None; n];
    for v in 1..handle_len {
        parent[v] = Some(v - 1);
    }
    for v in handle_len..n {
        parent[v] = Some(handle_len - 1);
    }
    // analyze: allow(panic): the broom parent array is acyclic by construction
    RootedTree::from_parents(parent).expect("broom parent array is valid")
}

/// A double broom: `head_leaves` leaves attached to the root, a handle
/// path, and the remaining nodes as leaves at the bottom of the handle.
///
/// Node layout: node 0 is the root; nodes `1..=head_leaves` are its leaf
/// children; the handle continues from the root; whatever is left hangs
/// off the handle's last node.
///
/// # Panics
///
/// Panics if the three parts don't fit: requires
/// `head_leaves + handle_len + 1 ≤ n` and `handle_len ≥ 1`.
pub fn double_broom(n: usize, head_leaves: usize, handle_len: usize) -> RootedTree {
    assert!(handle_len >= 1, "double broom needs a handle");
    assert!(
        1 + head_leaves + handle_len < n,
        "root + head ({head_leaves}) + handle ({handle_len}) must leave at least one tail node in n = {n}"
    );
    let mut parent = vec![None; n];
    for v in 1..=head_leaves {
        parent[v] = Some(0);
    }
    let handle_start = head_leaves + 1;
    parent[handle_start] = Some(0);
    for v in handle_start + 1..handle_start + handle_len {
        parent[v] = Some(v - 1);
    }
    let handle_end = handle_start + handle_len - 1;
    for v in handle_start + handle_len..n {
        parent[v] = Some(handle_end);
    }
    // analyze: allow(panic): the double-broom parent array is acyclic by construction
    RootedTree::from_parents(parent).expect("double broom parent array is valid")
}

/// A caterpillar: a spine path of `spine_len` nodes rooted at node 0 with
/// the remaining `n − spine_len` nodes attached round-robin as leaves along
/// the spine.
///
/// # Panics
///
/// Panics if `n == 0` or `spine_len == 0` or `spine_len > n`.
pub fn caterpillar(n: usize, spine_len: usize) -> RootedTree {
    assert!(n > 0, "caterpillar needs at least one node");
    assert!(
        (1..=n).contains(&spine_len),
        "spine length {spine_len} out of range for n = {n}"
    );
    let mut parent = vec![None; n];
    for v in 1..spine_len {
        parent[v] = Some(v - 1);
    }
    for (i, v) in (spine_len..n).enumerate() {
        parent[v] = Some(i % spine_len);
    }
    // analyze: allow(panic): the caterpillar parent array is acyclic by construction
    RootedTree::from_parents(parent).expect("caterpillar parent array is valid")
}

/// A spider: `legs` paths of near-equal length radiating from the root
/// (node 0).
///
/// # Panics
///
/// Panics if `n == 0`, `legs == 0`, or `legs > n − 1` (unless `n == 1`,
/// where any `legs` collapses to the single node).
pub fn spider(n: usize, legs: usize) -> RootedTree {
    assert!(n > 0, "spider needs at least one node");
    if n == 1 {
        // analyze: allow(panic): a single-node parent array is trivially a valid tree
        return RootedTree::from_parents(vec![None]).expect("single node");
    }
    assert!(
        (1..n).contains(&legs),
        "legs {legs} out of range for n = {n}"
    );
    let mut parent = vec![None; n];
    // Distribute the n−1 non-root nodes into `legs` chains.
    let mut prev: Vec<NodeId> = vec![0; legs];
    for v in 1..n {
        let leg = (v - 1) % legs;
        parent[v] = Some(prev[leg]);
        prev[leg] = v;
    }
    // analyze: allow(panic): the spider parent array is acyclic by construction
    RootedTree::from_parents(parent).expect("spider parent array is valid")
}

/// The complete binary tree in heap order: `parent(v) = (v − 1) / 2`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn complete_binary(n: usize) -> RootedTree {
    complete_kary(n, 2)
}

/// The complete k-ary tree in heap order: `parent(v) = (v − 1) / k`.
///
/// # Panics
///
/// Panics if `n == 0` or `k == 0`.
pub fn complete_kary(n: usize, k: usize) -> RootedTree {
    assert!(n > 0, "tree needs at least one node");
    assert!(k > 0, "arity must be positive");
    let parent = (0..n)
        .map(|v| if v == 0 { None } else { Some((v - 1) / k) })
        .collect();
    // analyze: allow(panic): the heap parent array points strictly downward, so it is acyclic
    RootedTree::from_parents(parent).expect("heap parent array is valid")
}

/// A caterpillar with **exactly** `k` leaves: spine of `n − k` inner nodes,
/// `k` leaves distributed along it with the spine end guaranteed one.
///
/// Building block for the "k leaves" restricted adversary (Figure 1 row 2).
///
/// # Panics
///
/// Panics unless `1 ≤ k ≤ n − 1` (a path is `k = 1`), or if `n < 2`.
///
/// # Examples
///
/// ```
/// use treecast_trees::generators::exact_leaf_caterpillar;
/// for k in 1..8 {
///     assert_eq!(exact_leaf_caterpillar(8, k).leaf_count(), k);
/// }
/// ```
pub fn exact_leaf_caterpillar(n: usize, k: usize) -> RootedTree {
    assert!(n >= 2, "need at least two nodes to control leaf count");
    assert!(
        (1..n).contains(&k),
        "leaf count {k} out of range for n = {n} (need 1 ≤ k ≤ n − 1)"
    );
    let spine = n - k;
    let mut parent = vec![None; n];
    for v in 1..spine {
        parent[v] = Some(v - 1);
    }
    // First leaf pins the spine end so it stays inner... i.e. the spine end
    // receives the first leaf, making every spine node inner.
    parent[spine] = Some(spine - 1);
    for (i, v) in (spine + 1..n).enumerate() {
        parent[v] = Some(i % spine);
    }
    // analyze: allow(panic): the exact-leaf caterpillar parent array is acyclic by construction
    RootedTree::from_parents(parent).expect("exact-leaf caterpillar is valid")
}

/// A broom with **exactly** `k` inner nodes: an inner path of `k` nodes and
/// `n − k` leaves all attached to its last node... except that would make
/// only the last node carry leaves; instead leaves go to the last inner
/// node to keep every inner node inner (each spine node has its successor
/// as a child).
///
/// Building block for the "k inner nodes" restricted adversary (Figure 1
/// row 3).
///
/// # Panics
///
/// Panics unless `1 ≤ k ≤ n − 1`, or if `n < 2`.
///
/// # Examples
///
/// ```
/// use treecast_trees::generators::exact_inner_broom;
/// for k in 1..8 {
///     assert_eq!(exact_inner_broom(8, k).inner_count(), k);
/// }
/// ```
pub fn exact_inner_broom(n: usize, k: usize) -> RootedTree {
    assert!(n >= 2, "need at least two nodes to control inner count");
    assert!(
        (1..n).contains(&k),
        "inner count {k} out of range for n = {n} (need 1 ≤ k ≤ n − 1)"
    );
    // Inner path 0 → 1 → … → k−1; all n − k leaves under node k−1.
    broom(n, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_shape() {
        for n in 1..10 {
            let t = path(n);
            assert!(t.is_path());
            assert_eq!(t.n(), n);
            assert_eq!(t.height(), n - 1);
            assert_eq!(t.leaf_count(), 1);
        }
    }

    #[test]
    fn path_with_custom_order() {
        let t = path_with_order(&[2, 0, 1]);
        assert_eq!(t.root(), 2);
        assert_eq!(t.parent(0), Some(2));
        assert_eq!(t.parent(1), Some(0));
    }

    #[test]
    fn star_shape() {
        for n in 1..10 {
            let t = star(n);
            assert!(t.is_star());
            assert_eq!(t.leaf_count(), if n == 1 { 1 } else { n - 1 });
            assert_eq!(t.height(), usize::from(n > 1));
        }
    }

    #[test]
    fn broom_interpolates_star_and_path() {
        assert!(broom(6, 1).is_star());
        assert!(broom(6, 6).is_path());
        assert!(broom(6, 5).is_path());
        let t = broom(7, 3);
        assert_eq!(t.height(), 3);
        assert_eq!(t.leaf_count(), 4);
        assert_eq!(t.inner_count(), 3);
    }

    #[test]
    fn double_broom_shape() {
        let t = double_broom(10, 3, 2);
        // Root 0 with leaves 1,2,3; handle 4 → 5; leaves 6..9 under 5.
        assert_eq!(t.root(), 0);
        assert_eq!(t.children(0).len(), 4);
        assert_eq!(t.parent(5), Some(4));
        assert_eq!(t.children(5).len(), 4);
        assert_eq!(t.leaf_count(), 3 + 4);
    }

    #[test]
    #[should_panic(expected = "must leave at least one tail node")]
    fn double_broom_needs_tail() {
        double_broom(5, 3, 1);
    }

    #[test]
    fn caterpillar_covers_all_spine() {
        let t = caterpillar(11, 4);
        assert_eq!(t.n(), 11);
        assert_eq!(t.height(), 4);
        for v in 0..3 {
            assert!(t.is_inner(v));
        }
    }

    #[test]
    fn spider_legs_balanced() {
        let t = spider(10, 3);
        assert_eq!(t.children(0).len(), 3);
        assert_eq!(t.leaf_count(), 3);
        assert_eq!(t.height(), 3);
        assert!(spider(1, 5).is_star());
    }

    #[test]
    fn complete_binary_shape() {
        let t = complete_binary(7);
        assert_eq!(t.height(), 2);
        assert_eq!(t.leaf_count(), 4);
        assert_eq!(t.children(0), &[1, 2]);
        let t15 = complete_binary(15);
        assert_eq!(t15.height(), 3);
        assert_eq!(t15.leaf_count(), 8);
    }

    #[test]
    fn complete_kary_shape() {
        let t = complete_kary(13, 3);
        assert_eq!(t.children(0), &[1, 2, 3]);
        assert_eq!(t.height(), 2);
    }

    #[test]
    fn exact_leaf_caterpillar_hits_every_k() {
        for n in 2..12 {
            for k in 1..n {
                let t = exact_leaf_caterpillar(n, k);
                assert_eq!(t.leaf_count(), k, "n = {n}, k = {k}");
                assert_eq!(t.n(), n);
            }
        }
    }

    #[test]
    fn exact_inner_broom_hits_every_k() {
        for n in 2..12 {
            for k in 1..n {
                let t = exact_inner_broom(n, k);
                assert_eq!(t.inner_count(), k, "n = {n}, k = {k}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn exact_leaf_rejects_k_equals_n() {
        exact_leaf_caterpillar(5, 5);
    }
}
