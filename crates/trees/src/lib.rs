//! Rooted labeled trees: the adversary's alphabet.
//!
//! In the broadcast model of *"Broadcasting Time in Dynamic Rooted Trees is
//! Linear"* (El-Hayek, Henzinger & Schmid, PODC 2022), the adversary picks
//! one rooted tree over `n` nodes per round from the pool `T_n` of all
//! `n^(n−1)` labeled rooted trees (self-loops are added by the model). This
//! crate supplies everything about that pool:
//!
//! * [`RootedTree`] — validated parent-array representation with cached
//!   children and depths, plus conversions to adjacency matrices.
//! * [`generators`] — deterministic families: paths, stars, brooms,
//!   caterpillars, spiders, k-ary trees, exact-leaf/exact-inner shapes.
//! * [`random`] — seeded random generation: uniform over `T_n` via Prüfer
//!   sequences, random recursive trees, exact-leaf-count sampling.
//! * [`pruefer`] — the Prüfer bijection itself.
//! * [`enumerate`] — exhaustive enumeration of `T_n` for `n ≤ 8` (the
//!   exact solver's substrate).
//! * [`canonical`] — AHU codes for unlabeled-rooted-tree isomorphism.
//!
//! # Examples
//!
//! ```
//! use treecast_trees::{generators, RootedTree};
//!
//! let t = generators::broom(6, 3);
//! assert_eq!(t.inner_count(), 3);
//! let m = t.to_matrix(true); // with self-loops, as the model requires
//! assert!(m.is_reflexive());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arborescence;
pub mod canonical;
pub mod enumerate;
pub mod generators;
pub mod pruefer;
pub mod random;
mod tree;

pub use tree::{NodeId, RootedTree, TreeError, TreeShape};
