//! Canonical forms for rooted trees (AHU encoding).
//!
//! Two rooted trees are isomorphic (as *unlabeled* rooted trees) iff their
//! AHU codes match. The workspace uses this to de-duplicate structurally
//! equivalent adversary candidates and to test that generators produce the
//! shapes they promise under relabeling.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use crate::tree::{NodeId, RootedTree};

/// The AHU canonical code of the subtree rooted at `v`: `(` + the sorted
/// codes of the children + `)`.
fn code_of(tree: &RootedTree, v: NodeId) -> String {
    let mut child_codes: Vec<String> = tree.children(v).iter().map(|&c| code_of(tree, c)).collect();
    child_codes.sort_unstable();
    let mut s = String::with_capacity(2 + child_codes.iter().map(String::len).sum::<usize>());
    s.push('(');
    for c in child_codes {
        s.push_str(&c);
    }
    s.push(')');
    s
}

/// The AHU canonical code of the whole tree.
///
/// Isomorphic rooted trees (ignoring labels) have equal codes; a leaf is
/// `"()"`, a 3-path is `"((()))"`.
///
/// # Examples
///
/// ```
/// use treecast_trees::{canonical::canonical_code, generators};
/// assert_eq!(canonical_code(&generators::path(3)), "((()))");
/// assert_eq!(canonical_code(&generators::star(3)), "(()())");
/// ```
pub fn canonical_code(tree: &RootedTree) -> String {
    code_of(tree, tree.root())
}

/// A 64-bit hash of the canonical code, for cheap de-duplication.
pub fn canonical_hash(tree: &RootedTree) -> u64 {
    let mut h = DefaultHasher::new();
    canonical_code(tree).hash(&mut h);
    h.finish()
}

/// Returns `true` if the two rooted trees are isomorphic as unlabeled
/// rooted trees.
///
/// # Examples
///
/// ```
/// use treecast_trees::{canonical::are_isomorphic, generators};
/// let a = generators::broom(7, 3);
/// let b = a.relabel(&[6, 5, 4, 3, 2, 1, 0]);
/// assert!(are_isomorphic(&a, &b));
/// assert!(!are_isomorphic(&a, &generators::path(7)));
/// ```
pub fn are_isomorphic(a: &RootedTree, b: &RootedTree) -> bool {
    a.n() == b.n() && canonical_code(a) == canonical_code(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{enumerate, generators};

    #[test]
    fn leaf_code() {
        let single = RootedTree::from_parents(vec![None]).unwrap();
        assert_eq!(canonical_code(&single), "()");
    }

    #[test]
    fn relabeling_is_invariant() {
        let t = generators::caterpillar(8, 4);
        let r = t.relabel(&[7, 6, 5, 4, 3, 2, 1, 0]);
        assert_eq!(canonical_code(&t), canonical_code(&r));
        assert_eq!(canonical_hash(&t), canonical_hash(&r));
    }

    #[test]
    fn distinguishes_shapes() {
        let codes: Vec<String> = [
            generators::path(6),
            generators::star(6),
            generators::broom(6, 3),
            generators::spider(6, 2),
            generators::complete_binary(6),
        ]
        .iter()
        .map(canonical_code)
        .collect();
        let set: std::collections::HashSet<_> = codes.iter().collect();
        assert_eq!(
            set.len(),
            codes.len(),
            "all five shapes distinct: {codes:?}"
        );
    }

    #[test]
    fn counts_unlabeled_rooted_trees() {
        // OEIS A000081: number of unlabeled rooted trees on n nodes:
        // 1, 1, 2, 4, 9, 20 for n = 1..6.
        let expected = [1usize, 1, 2, 4, 9, 20];
        for (i, &want) in expected.iter().enumerate() {
            let n = i + 1;
            if n > 6 {
                break;
            }
            let mut codes = std::collections::HashSet::new();
            enumerate::for_each_rooted_tree(n, |t| {
                codes.insert(canonical_code(t));
            });
            assert_eq!(codes.len(), want, "n = {n}");
        }
    }

    #[test]
    fn root_placement_matters() {
        // A 3-path rooted at the end vs rooted in the middle.
        let end = generators::path(3);
        let middle = RootedTree::from_parents(vec![Some(1), None, Some(1)]).unwrap();
        assert!(!are_isomorphic(&end, &middle));
    }
}
