//! The rooted labeled tree type and its validation.

use core::fmt;

use treecast_bitmatrix::{BoolMatrix, PackedMatrix};

/// Index of a node in `{0, …, n−1}`.
pub type NodeId = usize;

/// Error returned when a parent array does not describe a rooted tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// The tree has no nodes.
    Empty,
    /// More than one node has no parent.
    MultipleRoots {
        /// The first root encountered.
        first: NodeId,
        /// The second root encountered.
        second: NodeId,
    },
    /// No node lacks a parent (so the structure contains a cycle).
    NoRoot,
    /// A node names a parent outside `{0, …, n−1}`.
    ParentOutOfRange {
        /// The offending node.
        node: NodeId,
        /// Its out-of-range parent.
        parent: NodeId,
        /// The number of nodes.
        n: usize,
    },
    /// A node is its own parent.
    SelfParent {
        /// The offending node.
        node: NodeId,
    },
    /// Following parent pointers from `node` never reaches the root.
    Cyclic {
        /// A node on or leading into the cycle.
        node: NodeId,
    },
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TreeError::Empty => write!(f, "a rooted tree needs at least one node"),
            TreeError::MultipleRoots { first, second } => {
                write!(f, "nodes {first} and {second} both lack a parent")
            }
            TreeError::NoRoot => write!(f, "every node has a parent, so there is no root"),
            TreeError::ParentOutOfRange { node, parent, n } => {
                write!(f, "node {node} names parent {parent}, outside 0..{n}")
            }
            TreeError::SelfParent { node } => write!(f, "node {node} is its own parent"),
            TreeError::Cyclic { node } => {
                write!(f, "parent pointers from node {node} never reach the root")
            }
        }
    }
}

impl std::error::Error for TreeError {}

/// A rooted labeled tree on nodes `{0, …, n−1}`, edges directed from parent
/// to child (information flows away from the root).
///
/// This is one element of the paper's adversary pool `T_n`: at every round
/// the adversary picks some `RootedTree`, the model adds a self-loop at
/// every node, and information propagates along `parent → child` edges.
///
/// The representation is a validated parent array plus cached children
/// lists and depths, so adversaries can traverse cheaply in both
/// directions.
///
/// # Examples
///
/// ```
/// use treecast_trees::RootedTree;
///
/// // The path 2 → 0 → 1 (rooted at 2).
/// let t = RootedTree::from_parents(vec![Some(2), Some(0), None])?;
/// assert_eq!(t.root(), 2);
/// assert_eq!(t.depth(1), 2);
/// assert_eq!(t.leaves(), vec![1]);
/// # Ok::<(), treecast_trees::TreeError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RootedTree {
    root: NodeId,
    parent: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
    depth: Vec<usize>,
}

impl RootedTree {
    /// Builds a tree from a parent array; the unique `None` entry is the
    /// root.
    ///
    /// # Errors
    ///
    /// Returns a [`TreeError`] if the array is empty, has zero or multiple
    /// `None` entries, names an out-of-range parent, or contains a cycle.
    pub fn from_parents(parent: Vec<Option<NodeId>>) -> Result<Self, TreeError> {
        let n = parent.len();
        if n == 0 {
            return Err(TreeError::Empty);
        }
        let mut root = None;
        for (v, &p) in parent.iter().enumerate() {
            match p {
                None => match root {
                    None => root = Some(v),
                    Some(first) => {
                        return Err(TreeError::MultipleRoots { first, second: v });
                    }
                },
                Some(p) if p >= n => {
                    return Err(TreeError::ParentOutOfRange {
                        node: v,
                        parent: p,
                        n,
                    });
                }
                Some(p) if p == v => return Err(TreeError::SelfParent { node: v }),
                Some(_) => {}
            }
        }
        let root = root.ok_or(TreeError::NoRoot)?;

        // Depth computation doubles as the acyclicity check: a walk to the
        // root from any node must terminate within n steps.
        let mut depth = vec![usize::MAX; n];
        depth[root] = 0;
        for v in 0..n {
            if depth[v] != usize::MAX {
                continue;
            }
            // Walk up until a node of known depth, recording the path.
            let mut path = Vec::new();
            let mut cur = v;
            while depth[cur] == usize::MAX {
                path.push(cur);
                if path.len() > n {
                    return Err(TreeError::Cyclic { node: v });
                }
                // analyze: allow(panic): the cycle walk only stands on non-root nodes, which have parents
                cur = parent[cur].expect("only the root lacks a parent");
                if cur == v {
                    return Err(TreeError::Cyclic { node: v });
                }
            }
            let mut d = depth[cur];
            for &u in path.iter().rev() {
                d += 1;
                depth[u] = d;
            }
        }

        let mut children = vec![Vec::new(); n];
        for (v, &p) in parent.iter().enumerate() {
            if let Some(p) = p {
                children[p].push(v);
            }
        }

        Ok(RootedTree {
            root,
            parent,
            children,
            depth,
        })
    }

    /// Builds a tree from `(parent, child)` edges.
    ///
    /// # Errors
    ///
    /// Returns a [`TreeError`] if the edges do not form a rooted tree on
    /// `{0, …, n−1}` (e.g. a node with two parents shows up as a cycle or a
    /// lost root).
    ///
    /// # Examples
    ///
    /// ```
    /// use treecast_trees::RootedTree;
    /// let star = RootedTree::from_edges(4, [(0, 1), (0, 2), (0, 3)])?;
    /// assert_eq!(star.root(), 0);
    /// assert_eq!(star.leaf_count(), 3);
    /// # Ok::<(), treecast_trees::TreeError>(())
    /// ```
    pub fn from_edges<I: IntoIterator<Item = (NodeId, NodeId)>>(
        n: usize,
        edges: I,
    ) -> Result<Self, TreeError> {
        if n == 0 {
            return Err(TreeError::Empty);
        }
        let mut parent = vec![None; n];
        let mut have_parent = vec![false; n];
        for (p, c) in edges {
            if c >= n {
                return Err(TreeError::ParentOutOfRange {
                    node: c,
                    parent: p,
                    n,
                });
            }
            if p >= n {
                return Err(TreeError::ParentOutOfRange {
                    node: c,
                    parent: p,
                    n,
                });
            }
            if have_parent[c] {
                // Two parents: not a tree. Surface as a cycle at c.
                return Err(TreeError::Cyclic { node: c });
            }
            have_parent[c] = true;
            parent[c] = Some(p);
        }
        Self::from_parents(parent)
    }

    /// Builds a rooted tree from undirected edges by orienting everything
    /// away from `root`.
    ///
    /// # Errors
    ///
    /// Returns a [`TreeError`] if the edges do not form a spanning tree of
    /// `{0, …, n−1}` or `root` is out of range.
    pub fn from_undirected_edges(
        n: usize,
        edges: &[(NodeId, NodeId)],
        root: NodeId,
    ) -> Result<Self, TreeError> {
        if n == 0 {
            return Err(TreeError::Empty);
        }
        if root >= n {
            return Err(TreeError::ParentOutOfRange {
                node: root,
                parent: root,
                n,
            });
        }
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in edges {
            if a >= n || b >= n {
                return Err(TreeError::ParentOutOfRange {
                    node: a.max(b),
                    parent: a.min(b),
                    n,
                });
            }
            adj[a].push(b);
            adj[b].push(a);
        }
        let mut parent = vec![None; n];
        let mut visited = vec![false; n];
        let mut queue = std::collections::VecDeque::from([root]);
        visited[root] = true;
        while let Some(v) = queue.pop_front() {
            for &w in &adj[v] {
                if !visited[w] {
                    visited[w] = true;
                    parent[w] = Some(v);
                    queue.push_back(w);
                }
            }
        }
        if let Some(unreached) = visited.iter().position(|&v| !v) {
            return Err(TreeError::Cyclic { node: unreached });
        }
        Self::from_parents(parent)
    }

    /// The number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.parent.len()
    }

    /// The root node.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The parent of `v`, or `None` for the root.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent[v]
    }

    /// The full parent array (root entry is `None`).
    #[inline]
    pub fn parents(&self) -> &[Option<NodeId>] {
        &self.parent
    }

    /// The children of `v` in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[inline]
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        &self.children[v]
    }

    /// The depth of `v` (root has depth 0).
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[inline]
    pub fn depth(&self, v: NodeId) -> usize {
        self.depth[v]
    }

    /// The height of the tree: the maximum depth.
    pub fn height(&self) -> usize {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// Returns `true` if `v` has no children.
    ///
    /// A single-node tree's root is a leaf.
    #[inline]
    pub fn is_leaf(&self, v: NodeId) -> bool {
        self.children[v].is_empty()
    }

    /// Returns `true` if `v` has at least one child.
    #[inline]
    pub fn is_inner(&self, v: NodeId) -> bool {
        !self.is_leaf(v)
    }

    /// All leaves, in increasing node order.
    pub fn leaves(&self) -> Vec<NodeId> {
        (0..self.n()).filter(|&v| self.is_leaf(v)).collect()
    }

    /// Number of leaves.
    ///
    /// This is the quantity `k` of the Zeiner–Schwarz–Schmid restricted
    /// adversary ("k leaves" row of Figure 1).
    pub fn leaf_count(&self) -> usize {
        (0..self.n()).filter(|&v| self.is_leaf(v)).count()
    }

    /// All inner (non-leaf) nodes, in increasing node order.
    pub fn inner_nodes(&self) -> Vec<NodeId> {
        (0..self.n()).filter(|&v| self.is_inner(v)).collect()
    }

    /// Number of inner nodes ("k inner nodes" row of Figure 1).
    pub fn inner_count(&self) -> usize {
        self.n() - self.leaf_count()
    }

    /// Nodes in breadth-first order starting at the root.
    ///
    /// # Examples
    ///
    /// ```
    /// use treecast_trees::RootedTree;
    /// let t = RootedTree::from_edges(4, [(0, 2), (2, 1), (2, 3)])?;
    /// assert_eq!(t.bfs_order()[0], 0);
    /// assert_eq!(t.bfs_order().len(), 4);
    /// # Ok::<(), treecast_trees::TreeError>(())
    /// ```
    pub fn bfs_order(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.n());
        let mut queue = std::collections::VecDeque::from([self.root]);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            queue.extend(self.children[v].iter().copied());
        }
        order
    }

    /// Nodes on the path from `v` up to and including the root.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn path_to_root(&self, v: NodeId) -> Vec<NodeId> {
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent[cur] {
            path.push(p);
            cur = p;
        }
        path
    }

    /// Size of the subtree rooted at `v` (including `v`).
    pub fn subtree_size(&self, v: NodeId) -> usize {
        let mut count = 0;
        let mut stack = vec![v];
        while let Some(u) = stack.pop() {
            count += 1;
            stack.extend(self.children[u].iter().copied());
        }
        count
    }

    /// The set of nodes in the subtree rooted at `v`, as a bitset.
    pub fn subtree_set(&self, v: NodeId) -> treecast_bitmatrix::BitSet {
        let mut set = treecast_bitmatrix::BitSet::new(self.n());
        let mut stack = vec![v];
        while let Some(u) = stack.pop() {
            set.insert(u);
            stack.extend(self.children[u].iter().copied());
        }
        set
    }

    /// Returns `true` if the tree is a path rooted at one end.
    pub fn is_path(&self) -> bool {
        (0..self.n()).all(|v| self.children[v].len() <= 1)
    }

    /// Returns `true` if the tree is a star (root adjacent to every other
    /// node). Single-node and two-node trees count as stars.
    pub fn is_star(&self) -> bool {
        self.children[self.root].len() == self.n() - 1
    }

    /// The adjacency matrix of the tree: entry `(p, c)` for every edge,
    /// plus the diagonal if `self_loops` is set.
    ///
    /// The broadcast model of the paper always adds self-loops ("no process
    /// forgets any piece of information").
    ///
    /// # Examples
    ///
    /// ```
    /// use treecast_trees::{generators, RootedTree};
    /// let m = generators::path(3).to_matrix(true);
    /// assert!(m.is_reflexive());
    /// assert!(m.get(0, 1) && m.get(1, 2));
    /// ```
    pub fn to_matrix(&self, self_loops: bool) -> BoolMatrix {
        let n = self.n();
        let mut m = if self_loops {
            BoolMatrix::identity(n)
        } else {
            BoolMatrix::zeros(n)
        };
        for (c, &p) in self.parent.iter().enumerate() {
            if let Some(p) = p {
                m.set(p, c, true);
            }
        }
        m
    }

    /// The adjacency matrix in packed form, for `n ≤ 8`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 8`.
    pub fn to_packed(&self, self_loops: bool) -> PackedMatrix {
        let n = self.n();
        let mut m = if self_loops {
            PackedMatrix::identity(n)
        } else {
            PackedMatrix::zeros(n)
        };
        for (c, &p) in self.parent.iter().enumerate() {
            if let Some(p) = p {
                m.set(p, c, true);
            }
        }
        m
    }

    /// Relabels nodes: node `v` becomes `perm[v]`.
    ///
    /// Used to turn structured tree families (brooms, caterpillars, …) into
    /// adversary candidates over arbitrary node subsets.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..n`.
    pub fn relabel(&self, perm: &[NodeId]) -> RootedTree {
        let n = self.n();
        assert_eq!(perm.len(), n, "permutation length must equal n");
        let mut seen = vec![false; n];
        for &p in perm {
            assert!(p < n && !seen[p], "perm is not a permutation of 0..{n}");
            seen[p] = true;
        }
        let mut parent = vec![None; n];
        for (v, &p) in self.parent.iter().enumerate() {
            parent[perm[v]] = p.map(|p| perm[p]);
        }
        // analyze: allow(panic): relabeling by a permutation preserves tree-ness
        RootedTree::from_parents(parent).expect("relabeling preserves tree-ness")
    }

    /// The same undirected tree re-rooted at `new_root`: every edge on the
    /// path from `new_root` to the old root flips direction, all other
    /// parent pointers are kept.
    ///
    /// This is the *dynamic root reassignment* fault of the scenario layer
    /// (`treecast-core`'s `scenario` module): the adversary commits to a
    /// tree, then the fault layer hands the root role to another node
    /// without changing the communication topology.
    ///
    /// # Panics
    ///
    /// Panics if `new_root >= n`.
    ///
    /// # Examples
    ///
    /// ```
    /// use treecast_trees::generators;
    ///
    /// let path = generators::path(4); // 0 → 1 → 2 → 3
    /// let flipped = path.rerooted(3);
    /// assert_eq!(flipped.root(), 3);
    /// assert_eq!(flipped.parent(0), Some(1)); // every edge reversed
    /// assert_eq!(path.rerooted(0).parents(), path.parents());
    /// ```
    pub fn rerooted(&self, new_root: NodeId) -> RootedTree {
        let n = self.n();
        assert!(new_root < n, "new root {new_root} out of range for n = {n}");
        let mut parent = self.parent.clone();
        let mut v = new_root;
        let mut prev: Option<NodeId> = None;
        while let Some(p) = parent[v] {
            parent[v] = prev;
            prev = Some(v);
            v = p;
        }
        parent[v] = prev;
        // analyze: allow(panic): rerooting flips root-path edges only, preserving tree-ness
        RootedTree::from_parents(parent).expect("rerooting preserves tree-ness")
    }

    /// A compact structural summary, handy in logs and test assertions.
    pub fn shape(&self) -> TreeShape {
        TreeShape {
            n: self.n(),
            leaf_count: self.leaf_count(),
            inner_count: self.inner_count(),
            height: self.height(),
            max_children: (0..self.n())
                .map(|v| self.children[v].len())
                .max()
                .unwrap_or(0),
        }
    }
}

impl fmt::Debug for RootedTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RootedTree({self})")
    }
}

/// Renders as `root=r; parents=[., 0, 1, …]` with `.` at the root.
impl fmt::Display for RootedTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "root={}; parents=[", self.root)?;
        for (v, &p) in self.parent.iter().enumerate() {
            if v > 0 {
                f.write_str(", ")?;
            }
            match p {
                None => f.write_str(".")?,
                Some(p) => write!(f, "{p}")?,
            }
        }
        f.write_str("]")
    }
}

/// Structural summary of a [`RootedTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TreeShape {
    /// Number of nodes.
    pub n: usize,
    /// Number of leaves.
    pub leaf_count: usize,
    /// Number of inner nodes.
    pub inner_count: usize,
    /// Maximum depth.
    pub height: usize,
    /// Maximum number of children of any node.
    pub max_children: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node() {
        let t = RootedTree::from_parents(vec![None]).unwrap();
        assert_eq!(t.n(), 1);
        assert_eq!(t.root(), 0);
        assert!(t.is_leaf(0));
        assert_eq!(t.leaf_count(), 1);
        assert_eq!(t.inner_count(), 0);
        assert_eq!(t.height(), 0);
        assert!(t.is_path());
        assert!(t.is_star());
    }

    #[test]
    fn path_structure() {
        let t = RootedTree::from_parents(vec![None, Some(0), Some(1), Some(2)]).unwrap();
        assert!(t.is_path());
        assert!(!t.is_star());
        assert_eq!(t.height(), 3);
        assert_eq!(t.depth(3), 3);
        assert_eq!(t.leaves(), vec![3]);
        assert_eq!(t.inner_nodes(), vec![0, 1, 2]);
        assert_eq!(t.path_to_root(3), vec![3, 2, 1, 0]);
        assert_eq!(t.bfs_order(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn star_structure() {
        let t = RootedTree::from_edges(5, [(2, 0), (2, 1), (2, 3), (2, 4)]).unwrap();
        assert_eq!(t.root(), 2);
        assert!(t.is_star());
        assert!(!t.is_path());
        assert_eq!(t.leaf_count(), 4);
        assert_eq!(t.height(), 1);
        assert_eq!(t.subtree_size(2), 5);
        assert_eq!(t.subtree_size(0), 1);
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(RootedTree::from_parents(vec![]), Err(TreeError::Empty));
    }

    #[test]
    fn rejects_two_roots() {
        assert_eq!(
            RootedTree::from_parents(vec![None, None]),
            Err(TreeError::MultipleRoots {
                first: 0,
                second: 1
            })
        );
    }

    #[test]
    fn rejects_cycle() {
        // 1 → 2 → 1 cycle beside root 0.
        let r = RootedTree::from_parents(vec![None, Some(2), Some(1)]);
        assert!(matches!(r, Err(TreeError::Cyclic { .. })));
    }

    #[test]
    fn rejects_all_cycle() {
        let r = RootedTree::from_parents(vec![Some(1), Some(0)]);
        assert_eq!(r, Err(TreeError::NoRoot));
    }

    #[test]
    fn rejects_self_parent() {
        let r = RootedTree::from_parents(vec![None, Some(1)]);
        assert_eq!(r, Err(TreeError::SelfParent { node: 1 }));
    }

    #[test]
    fn rejects_out_of_range() {
        let r = RootedTree::from_parents(vec![None, Some(7)]);
        assert_eq!(
            r,
            Err(TreeError::ParentOutOfRange {
                node: 1,
                parent: 7,
                n: 2
            })
        );
    }

    #[test]
    fn rejects_double_parent_edge_list() {
        let r = RootedTree::from_edges(3, [(0, 1), (2, 1)]);
        assert!(matches!(r, Err(TreeError::Cyclic { node: 1 })));
    }

    #[test]
    fn from_undirected_orients_away_from_root() {
        let t = RootedTree::from_undirected_edges(4, &[(0, 1), (1, 2), (2, 3)], 3).unwrap();
        assert_eq!(t.root(), 3);
        assert_eq!(t.parent(0), Some(1));
        assert_eq!(t.depth(0), 3);
    }

    #[test]
    fn from_undirected_rejects_disconnected() {
        let r = RootedTree::from_undirected_edges(4, &[(0, 1), (2, 3)], 0);
        assert!(matches!(r, Err(TreeError::Cyclic { .. })));
    }

    #[test]
    fn matrix_conversion() {
        let t = RootedTree::from_parents(vec![None, Some(0), Some(0)]).unwrap();
        let m = t.to_matrix(true);
        assert!(m.is_reflexive());
        assert!(m.get(0, 1) && m.get(0, 2));
        assert_eq!(m.edge_count(), 5);
        let bare = t.to_matrix(false);
        assert_eq!(bare.edge_count(), 2);
        assert_eq!(t.to_packed(true).to_matrix(), m);
    }

    #[test]
    fn relabel_moves_root() {
        let t = RootedTree::from_parents(vec![None, Some(0), Some(1)]).unwrap();
        let r = t.relabel(&[2, 1, 0]);
        assert_eq!(r.root(), 2);
        assert_eq!(r.parent(1), Some(2));
        assert_eq!(r.parent(0), Some(1));
        assert_eq!(r.shape(), t.shape());
    }

    #[test]
    fn display_format() {
        let t = RootedTree::from_parents(vec![None, Some(0), Some(1)]).unwrap();
        assert_eq!(t.to_string(), "root=0; parents=[., 0, 1]");
    }

    #[test]
    fn subtree_set_matches_size() {
        let t = RootedTree::from_edges(6, [(0, 1), (1, 2), (1, 3), (0, 4), (4, 5)]).unwrap();
        let s = t.subtree_set(1);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(t.subtree_size(1), 3);
        assert_eq!(t.subtree_size(0), 6);
    }

    #[test]
    fn shape_summary() {
        let t = RootedTree::from_edges(5, [(0, 1), (0, 2), (2, 3), (2, 4)]).unwrap();
        let s = t.shape();
        assert_eq!(s.n, 5);
        assert_eq!(s.leaf_count, 3);
        assert_eq!(s.inner_count, 2);
        assert_eq!(s.height, 2);
        assert_eq!(s.max_children, 2);
    }

    #[test]
    fn rerooted_flips_the_root_path_only() {
        // Star with an arm: 0 → {1, 2}, 2 → 3. Re-root at 3.
        let t = RootedTree::from_edges(4, [(0, 1), (0, 2), (2, 3)]).unwrap();
        let r = t.rerooted(3);
        assert_eq!(r.root(), 3);
        assert_eq!(r.parent(2), Some(3));
        assert_eq!(r.parent(0), Some(2));
        assert_eq!(r.parent(1), Some(0), "off-path edges keep direction");
    }

    #[test]
    fn rerooted_is_involutive_through_the_old_root() {
        let t = RootedTree::from_edges(6, [(0, 1), (1, 2), (1, 3), (0, 4), (4, 5)]).unwrap();
        let back = t.rerooted(5).rerooted(0);
        assert_eq!(back.parents(), t.parents());
    }

    #[test]
    fn rerooted_at_current_root_is_identity() {
        let t = RootedTree::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(t.rerooted(0).parents(), t.parents());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rerooted_rejects_out_of_range() {
        RootedTree::from_parents(vec![None, Some(0)])
            .unwrap()
            .rerooted(2);
    }
}
