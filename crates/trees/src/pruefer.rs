//! Prüfer sequences: the classic bijection between labeled trees on `n`
//! nodes and sequences in `{0, …, n−1}^(n−2)`.
//!
//! Uniform sampling over the `n^(n−1)` labeled **rooted** trees — the
//! adversary pool `T_n` of the paper — follows by drawing a uniform Prüfer
//! sequence (a uniform labeled tree among `n^(n−2)`) and then a uniform
//! root among the `n` nodes.

use crate::tree::{NodeId, RootedTree, TreeError};

/// Decodes a Prüfer sequence into the undirected edge list of the unique
/// labeled tree on `n = seq.len() + 2` nodes.
///
/// Runs in O(n) with the standard pointer technique.
///
/// # Panics
///
/// Panics if any sequence entry is `≥ seq.len() + 2`.
///
/// # Examples
///
/// ```
/// use treecast_trees::pruefer::decode;
/// // The empty sequence is the single edge on two nodes.
/// assert_eq!(decode(&[]), vec![(0, 1)]);
/// // A constant sequence is a star.
/// let edges = decode(&[3, 3]);
/// assert!(edges.iter().all(|&(a, b)| a == 3 || b == 3));
/// ```
pub fn decode(seq: &[NodeId]) -> Vec<(NodeId, NodeId)> {
    let n = seq.len() + 2;
    for &s in seq {
        assert!(s < n, "Prüfer entry {s} out of range for n = {n}");
    }
    let mut degree = vec![1usize; n];
    for &s in seq {
        degree[s] += 1;
    }
    let mut edges = Vec::with_capacity(n - 1);
    // `ptr` scans for the smallest fresh leaf; `leaf` may dip below `ptr`
    // when removing an edge re-leafs a smaller node.
    let mut ptr = 0;
    while degree[ptr] != 1 {
        ptr += 1;
    }
    let mut leaf = ptr;
    for &s in seq {
        edges.push((leaf, s));
        degree[s] -= 1;
        if degree[s] == 1 && s < ptr {
            leaf = s;
        } else {
            ptr += 1;
            while degree[ptr] != 1 {
                ptr += 1;
            }
            leaf = ptr;
        }
    }
    edges.push((leaf, n - 1));
    edges
}

/// Encodes the undirected skeleton of a labeled tree as its Prüfer
/// sequence.
///
/// The orientation (root) of the input is ignored: Prüfer codes describe
/// unrooted trees.
///
/// # Examples
///
/// ```
/// use treecast_trees::{generators, pruefer};
/// let t = generators::star(5); // center 0
/// assert_eq!(pruefer::encode(&t), vec![0, 0, 0]);
/// ```
pub fn encode(tree: &RootedTree) -> Vec<NodeId> {
    let n = tree.n();
    if n <= 2 {
        return Vec::new();
    }
    // Undirected degrees and neighbor sets via parent pointers.
    let mut degree = vec![0usize; n];
    for v in 0..n {
        if let Some(p) = tree.parent(v) {
            degree[v] += 1;
            degree[p] += 1;
        }
    }
    // To delete leaves we need undirected adjacency; emulate with parent +
    // children and a removed mask.
    let mut removed = vec![false; n];
    let neighbor = |v: NodeId, removed: &[bool], tree: &RootedTree| -> NodeId {
        if let Some(p) = tree.parent(v) {
            if !removed[p] {
                return p;
            }
        }
        *tree
            .children(v)
            .iter()
            .find(|&&c| !removed[c])
            // analyze: allow(panic): Pruefer decode invariant: a live leaf's parent keeps a live child
            .expect("a live leaf has exactly one live neighbor")
    };
    let mut seq = Vec::with_capacity(n - 2);
    let mut ptr = 0;
    while degree[ptr] != 1 {
        ptr += 1;
    }
    let mut leaf = ptr;
    for _ in 0..n - 2 {
        let nb = neighbor(leaf, &removed, tree);
        seq.push(nb);
        removed[leaf] = true;
        degree[nb] -= 1;
        if degree[nb] == 1 && nb < ptr {
            leaf = nb;
        } else {
            ptr += 1;
            while degree[ptr] != 1 {
                ptr += 1;
            }
            leaf = ptr;
        }
    }
    seq
}

/// Decodes a Prüfer sequence directly into a [`RootedTree`] rooted at
/// `root`.
///
/// # Errors
///
/// Returns [`TreeError`] if `root` is out of range.
///
/// # Panics
///
/// Panics if any sequence entry is out of range (see [`decode`]).
pub fn decode_rooted(seq: &[NodeId], root: NodeId) -> Result<RootedTree, TreeError> {
    let n = seq.len() + 2;
    let edges = decode(seq);
    RootedTree::from_undirected_edges(n, &edges, root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn decode_empty_is_edge() {
        assert_eq!(decode(&[]), vec![(0, 1)]);
    }

    #[test]
    fn decode_star() {
        let edges = decode(&[0, 0, 0]);
        assert_eq!(edges.len(), 4);
        let mut non_center: Vec<_> = edges
            .iter()
            .map(|&(a, b)| if a == 0 { b } else { a })
            .collect();
        non_center.sort_unstable();
        assert_eq!(non_center, vec![1, 2, 3, 4]);
    }

    #[test]
    fn encode_decode_roundtrip_families() {
        for t in [
            generators::path(7),
            generators::star(7),
            generators::broom(7, 3),
            generators::caterpillar(7, 4),
            generators::spider(7, 3),
            generators::complete_binary(7),
        ] {
            let seq = encode(&t);
            assert_eq!(seq.len(), 5);
            let back = decode_rooted(&seq, t.root()).unwrap();
            // Same undirected skeleton ⇒ identical parent structure once
            // re-rooted at the original root.
            assert_eq!(back.parents(), t.parents(), "tree {t}");
        }
    }

    #[test]
    fn decode_all_sequences_n4_gives_16_distinct_trees() {
        // 4^2 = 16 labeled trees on 4 nodes.
        let mut seen = std::collections::HashSet::new();
        for a in 0..4 {
            for b in 0..4 {
                let mut edges = decode(&[a, b]);
                for e in &mut edges {
                    *e = (e.0.min(e.1), e.0.max(e.1));
                }
                edges.sort_unstable();
                seen.insert(edges);
            }
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn path_roundtrip_every_root() {
        let t = generators::path(6);
        let seq = encode(&t);
        for root in 0..6 {
            let rt = decode_rooted(&seq, root).unwrap();
            assert_eq!(rt.root(), root);
            assert!(
                rt.is_path() || root != 0 && root != 5,
                "re-rooted path stays a path only from the ends"
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn decode_rejects_bad_entry() {
        decode(&[5, 0]);
    }
}
