//! Randomized tree generation.
//!
//! All generators take a caller-supplied [`Rng`], so every experiment in
//! the workspace is reproducible from a seed.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::pruefer;
use crate::tree::{NodeId, RootedTree};

/// Draws a uniform random element of `T_n`: each of the `n^(n−1)` labeled
/// rooted trees is equally likely.
///
/// Implementation: uniform Prüfer sequence (uniform over the `n^(n−2)`
/// labeled trees) plus an independent uniform root.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use treecast_trees::random::uniform;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let t = uniform(10, &mut rng);
/// assert_eq!(t.n(), 10);
/// ```
pub fn uniform<R: Rng + ?Sized>(n: usize, rng: &mut R) -> RootedTree {
    assert!(n > 0, "tree needs at least one node");
    if n == 1 {
        // analyze: allow(panic): a single-node parent array is trivially a valid tree
        return RootedTree::from_parents(vec![None]).expect("single node");
    }
    let seq: Vec<NodeId> = (0..n.saturating_sub(2))
        .map(|_| rng.gen_range(0..n))
        .collect();
    let root = rng.gen_range(0..n);
    // analyze: allow(panic): Pruefer decode is total on sequences drawn from 0..n
    pruefer::decode_rooted(&seq, root).expect("Prüfer decode always yields a tree")
}

/// A random recursive tree: node `v` (in a random insertion order) attaches
/// to a uniform random earlier node. Produces shallow, star-like trees
/// (expected height Θ(log n)) — a useful contrast to [`uniform`].
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn recursive<R: Rng + ?Sized>(n: usize, rng: &mut R) -> RootedTree {
    assert!(n > 0, "tree needs at least one node");
    let mut order: Vec<NodeId> = (0..n).collect();
    order.shuffle(rng);
    let mut parent = vec![None; n];
    for i in 1..n {
        let p = order[rng.gen_range(0..i)];
        parent[order[i]] = Some(p);
    }
    // analyze: allow(panic): attaching each node to an earlier one is acyclic by construction
    RootedTree::from_parents(parent).expect("recursive attachment is acyclic")
}

/// A path visiting all nodes in uniform random order.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_path<R: Rng + ?Sized>(n: usize, rng: &mut R) -> RootedTree {
    assert!(n > 0, "tree needs at least one node");
    let mut order: Vec<NodeId> = (0..n).collect();
    order.shuffle(rng);
    crate::generators::path_with_order(&order)
}

/// A star with a uniform random center.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_star<R: Rng + ?Sized>(n: usize, rng: &mut R) -> RootedTree {
    assert!(n > 0, "tree needs at least one node");
    crate::generators::star_with_center(n, rng.gen_range(0..n))
}

/// A random relabeling of `tree` under a uniform random permutation.
pub fn relabeled<R: Rng + ?Sized>(tree: &RootedTree, rng: &mut R) -> RootedTree {
    let mut perm: Vec<NodeId> = (0..tree.n()).collect();
    perm.shuffle(rng);
    tree.relabel(&perm)
}

/// A random tree with **exactly** `leaves` leaves.
///
/// Strategy: draw a random inner skeleton on `n − leaves` nodes, pin one
/// leaf onto every skeleton leaf (so all skeleton nodes stay inner),
/// scatter the remaining leaves uniformly, then relabel uniformly. If a
/// uniformly drawn skeleton has more leaves than we can pin (rare for
/// small `leaves`), it falls back to a path skeleton, which always works.
///
/// # Panics
///
/// Panics unless `1 ≤ leaves ≤ n − 1` (for `n ≥ 2`), or if `n < 2`.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use treecast_trees::random::with_exact_leaves;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// for k in 1..9 {
///     assert_eq!(with_exact_leaves(9, k, &mut rng).leaf_count(), k);
/// }
/// ```
pub fn with_exact_leaves<R: Rng + ?Sized>(n: usize, leaves: usize, rng: &mut R) -> RootedTree {
    assert!(n >= 2, "need at least two nodes to control leaf count");
    assert!(
        (1..n).contains(&leaves),
        "leaf count {leaves} out of range for n = {n}"
    );
    let inner = n - leaves;

    // Draw an inner skeleton whose own leaves we can all pin.
    let skeleton = if inner == 1 {
        // analyze: allow(panic): a single-node parent array is trivially a valid tree
        RootedTree::from_parents(vec![None]).expect("single node")
    } else {
        let mut candidate = None;
        for _ in 0..8 {
            let t = uniform(inner, rng);
            if t.leaf_count() <= leaves {
                candidate = Some(t);
                break;
            }
        }
        candidate.unwrap_or_else(|| crate::generators::path(inner))
    };

    // Attach the `leaves` leaf nodes (ids inner..n) onto the skeleton:
    // one per skeleton leaf first, the rest uniformly.
    let mut parent: Vec<Option<NodeId>> = skeleton.parents().to_vec();
    parent.resize(n, None);
    let skeleton_leaves = skeleton.leaves();
    debug_assert!(skeleton_leaves.len() <= leaves);
    let mut next_leaf = inner;
    for &sl in &skeleton_leaves {
        parent[next_leaf] = Some(sl);
        next_leaf += 1;
    }
    for v in next_leaf..n {
        parent[v] = Some(rng.gen_range(0..inner));
    }
    // analyze: allow(panic): a validated skeleton plus fresh leaves stays acyclic
    let tree = RootedTree::from_parents(parent).expect("skeleton plus leaves is a tree");
    debug_assert_eq!(tree.leaf_count(), leaves);
    relabeled(&tree, rng)
}

/// A random tree with **exactly** `inner` inner (non-leaf) nodes.
///
/// Dual of [`with_exact_leaves`]: a tree on `n` nodes has exactly `inner`
/// inner nodes iff it has exactly `n − inner` leaves.
///
/// # Panics
///
/// Panics unless `1 ≤ inner ≤ n − 1` (for `n ≥ 2`), or if `n < 2`.
pub fn with_exact_inner<R: Rng + ?Sized>(n: usize, inner: usize, rng: &mut R) -> RootedTree {
    assert!(n >= 2, "need at least two nodes to control inner count");
    assert!(
        (1..n).contains(&inner),
        "inner count {inner} out of range for n = {n}"
    );
    with_exact_leaves(n, n - inner, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xDEC0DE)
    }

    #[test]
    fn uniform_is_valid_and_varied() {
        let mut rng = rng();
        let mut roots = std::collections::HashSet::new();
        for _ in 0..50 {
            let t = uniform(8, &mut rng);
            assert_eq!(t.n(), 8);
            roots.insert(t.root());
        }
        assert!(roots.len() > 1, "roots should vary across draws");
    }

    #[test]
    fn uniform_tiny() {
        let mut rng = rng();
        assert_eq!(uniform(1, &mut rng).n(), 1);
        let t2 = uniform(2, &mut rng);
        assert_eq!(t2.n(), 2);
        assert!(t2.is_path());
    }

    #[test]
    fn uniform_hits_all_rooted_trees_n3() {
        // 3^2 = 9 rooted labeled trees on 3 nodes; a few hundred draws
        // should see them all.
        let mut rng = rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            let t = uniform(3, &mut rng);
            seen.insert(t.parents().to_vec());
        }
        assert_eq!(seen.len(), 9);
    }

    #[test]
    fn recursive_is_valid() {
        let mut rng = rng();
        let t = recursive(40, &mut rng);
        assert_eq!(t.n(), 40);
        // Recursive trees are shallow with overwhelming probability.
        assert!(t.height() < 20);
    }

    #[test]
    fn random_path_and_star() {
        let mut rng = rng();
        assert!(random_path(12, &mut rng).is_path());
        assert!(random_star(12, &mut rng).is_star());
    }

    #[test]
    fn exact_leaves_all_k() {
        let mut rng = rng();
        for n in [2usize, 3, 5, 9, 16, 33] {
            for k in 1..n.min(12) {
                let t = with_exact_leaves(n, k, &mut rng);
                assert_eq!(t.leaf_count(), k, "n = {n}, k = {k}");
                assert_eq!(t.n(), n);
            }
        }
    }

    #[test]
    fn exact_inner_all_k() {
        let mut rng = rng();
        for n in [2usize, 4, 8, 17] {
            for k in 1..n.min(10) {
                let t = with_exact_inner(n, k, &mut rng);
                assert_eq!(t.inner_count(), k, "n = {n}, k = {k}");
            }
        }
    }

    #[test]
    fn relabeled_preserves_shape() {
        let mut rng = rng();
        let t = crate::generators::broom(9, 4);
        let r = relabeled(&t, &mut rng);
        assert_eq!(r.shape(), t.shape());
    }
}
