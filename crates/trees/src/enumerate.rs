//! Exhaustive enumeration of all labeled rooted trees on `n` nodes.
//!
//! By Cayley's formula there are `n^(n−1)` of them. The exact solver
//! iterates over this pool at every state expansion, so enumeration is
//! deliberately allocation-light: candidates are generated as parent
//! digit vectors and validated with an in-place cycle walk before a
//! [`RootedTree`] is materialized.

use crate::tree::{NodeId, RootedTree};

/// Largest `n` enumeration accepts (8^7 ≈ 2.1 M trees).
pub const MAX_ENUM_N: usize = 8;

/// Number of labeled rooted trees on `n` nodes: `n^(n−1)` (Cayley).
///
/// # Examples
///
/// ```
/// use treecast_trees::enumerate::count_rooted_trees;
/// assert_eq!(count_rooted_trees(1), 1);
/// assert_eq!(count_rooted_trees(3), 9);
/// assert_eq!(count_rooted_trees(6), 7776);
/// ```
pub fn count_rooted_trees(n: usize) -> u128 {
    (n as u128).pow(n.saturating_sub(1) as u32)
}

/// Calls `f` once for every labeled rooted tree on `n` nodes.
///
/// Trees are visited in a deterministic order (by root, then
/// lexicographically by parent assignment).
///
/// # Panics
///
/// Panics if `n == 0` or `n > MAX_ENUM_N`.
///
/// # Examples
///
/// ```
/// use treecast_trees::enumerate::for_each_rooted_tree;
/// let mut count = 0u64;
/// for_each_rooted_tree(4, |_t| count += 1);
/// assert_eq!(count, 64); // 4^3
/// ```
pub fn for_each_rooted_tree<F: FnMut(&RootedTree)>(n: usize, mut f: F) {
    assert!(
        (1..=MAX_ENUM_N).contains(&n),
        "enumeration supports 1 ≤ n ≤ {MAX_ENUM_N}, got {n}"
    );
    if n == 1 {
        // analyze: allow(panic): a single-node parent array is trivially a valid tree
        f(&RootedTree::from_parents(vec![None]).expect("single node"));
        return;
    }
    // For each root: every non-root node picks one of the n−1 other nodes
    // as parent; keep the assignments that are acyclic.
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    for root in 0..n {
        let slots: Vec<NodeId> = (0..n).filter(|&v| v != root).collect();
        // Digit odometer: digits[i] indexes into the allowed parents of
        // slots[i] (all nodes except slots[i] itself).
        let choices: Vec<Vec<NodeId>> = slots
            .iter()
            .map(|&v| (0..n).filter(|&p| p != v).collect())
            .collect();
        let mut digits = vec![0usize; slots.len()];
        loop {
            for (i, &v) in slots.iter().enumerate() {
                parent[v] = Some(choices[i][digits[i]]);
            }
            parent[root] = None;
            if is_acyclic(&parent, root) {
                // analyze: allow(panic): acyclicity of the parent array was checked on the line above
                let tree = RootedTree::from_parents(parent.clone()).expect("acyclic parent array");
                f(&tree);
            }
            // Advance odometer.
            let mut i = 0;
            loop {
                if i == digits.len() {
                    // Overflow: done with this root.
                    break;
                }
                digits[i] += 1;
                if digits[i] < choices[i].len() {
                    break;
                }
                digits[i] = 0;
                i += 1;
            }
            if i == digits.len() {
                break;
            }
        }
    }
}

/// Collects every labeled rooted tree on `n` nodes.
///
/// Memory grows as `n^(n−1)`; prefer [`for_each_rooted_tree`] for `n ≥ 7`.
///
/// # Panics
///
/// Panics if `n == 0` or `n > MAX_ENUM_N`.
pub fn all_rooted_trees(n: usize) -> Vec<RootedTree> {
    let mut trees = Vec::with_capacity(count_rooted_trees(n).min(1 << 24) as usize);
    for_each_rooted_tree(n, |t| trees.push(t.clone()));
    trees
}

/// Checks that following parent pointers from every node reaches `root`
/// without revisiting, using Floyd-free bounded walks (n is tiny here).
fn is_acyclic(parent: &[Option<NodeId>], root: NodeId) -> bool {
    let n = parent.len();
    for start in 0..n {
        let mut cur = start;
        let mut steps = 0;
        while cur != root {
            match parent[cur] {
                Some(p) => cur = p,
                None => return false,
            }
            steps += 1;
            if steps >= n {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_cayley() {
        for n in 1..=6 {
            let mut count = 0u128;
            for_each_rooted_tree(n, |_| count += 1);
            assert_eq!(count, count_rooted_trees(n), "n = {n}");
        }
    }

    #[test]
    fn all_trees_distinct() {
        let trees = all_rooted_trees(4);
        let set: std::collections::HashSet<_> =
            trees.iter().map(|t| t.parents().to_vec()).collect();
        assert_eq!(set.len(), trees.len());
    }

    #[test]
    fn every_enumerated_tree_is_valid() {
        for_each_rooted_tree(5, |t| {
            assert_eq!(t.n(), 5);
            // Depth of every node is finite and bounded.
            for v in 0..5 {
                assert!(t.depth(v) < 5);
            }
        });
    }

    #[test]
    fn n1_and_n2() {
        assert_eq!(all_rooted_trees(1).len(), 1);
        let two = all_rooted_trees(2);
        assert_eq!(two.len(), 2);
        assert!(two.iter().any(|t| t.root() == 0));
        assert!(two.iter().any(|t| t.root() == 1));
    }

    #[test]
    #[should_panic(expected = "enumeration supports")]
    fn rejects_big_n() {
        for_each_rooted_tree(9, |_| {});
    }

    #[test]
    fn enumeration_contains_path_and_star() {
        let trees = all_rooted_trees(4);
        assert!(trees.iter().any(|t| t.is_path()));
        assert!(trees.iter().any(|t| t.is_star()));
    }
}
