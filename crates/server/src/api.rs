//! The batched request/response API: plain serializable data types.
//!
//! Three request classes cover the ROADMAP's serving surface:
//!
//! * [`Request::BroadcastTime`] — workload completion time over a tree
//!   sequence, answered from the prefix-product cache;
//! * [`Request::ScenarioReplay`] — a recorded fault schedule replayed
//!   bit-identically on the scenario engine (faults break the pure
//!   product structure, so these bypass the cache by design);
//! * [`Request::AdversaryPlan`] — a beam-search plan job over a
//!   candidate pool and objective, its schedule replayed through the
//!   cache for the reported completion time.
//!
//! Everything here derives the vendored `serde` shim, so requests and
//! responses cross a wire (or land in bench artifacts) as JSON.

use treecast_core::scenario::RoundFaults;
use treecast_core::workload::{
    Broadcast, Gossip, KBroadcast, KSourceBroadcast, Workload, WorkloadReport,
};
use treecast_trees::RootedTree;

/// Which workload a query measures. A serializable mirror of the
/// [`Workload`] implementations.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum WorkloadSpec {
    /// Single-source broadcast.
    Broadcast,
    /// `k` tokens disseminated.
    KBroadcast {
        /// The dissemination threshold (`k ≥ 1`).
        k: usize,
    },
    /// All tokens disseminated.
    Gossip,
    /// Only the named sources' tokens exist and must all disseminate.
    KSourceBroadcast {
        /// The source nodes (distinct, `< n`).
        sources: Vec<usize>,
    },
}

impl WorkloadSpec {
    /// The executable workload, if the spec is valid for `n` processes.
    ///
    /// # Errors
    ///
    /// A message naming the invalid parameter (`k = 0`, duplicate or
    /// out-of-range sources) — returned as [`Response::Error`] instead of
    /// panicking inside a worker thread.
    pub fn workload(&self, n: usize) -> Result<Box<dyn Workload + Send + Sync>, String> {
        match self {
            WorkloadSpec::Broadcast => Ok(Box::new(Broadcast)),
            WorkloadSpec::KBroadcast { k } => {
                if *k == 0 {
                    return Err("k-broadcast needs k >= 1".into());
                }
                Ok(Box::new(KBroadcast::new(*k)))
            }
            WorkloadSpec::Gossip => Ok(Box::new(Gossip)),
            WorkloadSpec::KSourceBroadcast { sources } => {
                if sources.is_empty() {
                    return Err("k-source broadcast needs at least one source".into());
                }
                let mut seen = sources.clone();
                seen.sort_unstable();
                seen.dedup();
                if seen.len() != sources.len() {
                    return Err("duplicate source node".into());
                }
                if let Some(&s) = sources.iter().find(|&&s| s >= n) {
                    return Err(format!("source {s} out of range for n = {n}"));
                }
                Ok(Box::new(KSourceBroadcast::new(sources.clone())))
            }
        }
    }
}

/// A recorded scenario: trees plus the per-round fault log, replayable
/// bit-identically ([`treecast_core::scenario::FaultSchedule::replay`]).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Schedule {
    /// The per-round trees (`SequenceSource` semantics: the last one
    /// repeats if the run outlives the list).
    pub trees: Vec<RootedTree>,
    /// The fault log, one entry per round (quiet beyond the end).
    pub faults: Vec<RoundFaults>,
    /// The workload to measure.
    pub workload: WorkloadSpec,
    /// Round cap; 0 means the engine default (`8n + 16`).
    pub rounds: u64,
}

/// Which candidate pool a plan job searches over.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum PoolSpec {
    /// The structured family pool (paths, stars, brooms, …).
    Structured,
    /// `count` seeded uniform random trees per round.
    Sampled {
        /// Candidates per round.
        count: usize,
        /// RNG seed (plans stay deterministic per seed).
        seed: u64,
    },
    /// Every rooted tree on `n` nodes — exact, only sensible for `n ≤ 6`.
    Exhaustive,
}

/// Which objective ranks the beam's states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ObjectiveSpec {
    /// Minimize newly added product edges.
    MinNewEdges,
    /// Minimize the largest reach set.
    MinMaxReach,
    /// Minimize the total reach.
    MinSumReach,
    /// Minimize nodes close to completing a broadcast.
    MinNearWinners,
    /// Minimize disseminated tokens.
    MinDisseminated,
}

impl ObjectiveSpec {
    /// The report label.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ObjectiveSpec::MinNewEdges => "min-new-edges",
            ObjectiveSpec::MinMaxReach => "min-max-reach",
            ObjectiveSpec::MinSumReach => "min-sum-reach",
            ObjectiveSpec::MinNearWinners => "min-near-winners",
            ObjectiveSpec::MinDisseminated => "min-disseminated",
        }
    }
}

/// One query. Batches of these go to `Server::serve_batch`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Request {
    /// Completion time of `workload` over `tree_sequence` (last tree
    /// repeating), answered from the prefix-product cache.
    BroadcastTime {
        /// The per-round trees; all must share `n`.
        tree_sequence: Vec<RootedTree>,
        /// The workload to measure.
        workload: WorkloadSpec,
        /// Round cap; 0 means the engine default (`8n + 16`).
        rounds: u64,
    },
    /// Bit-identical replay of a recorded fault scenario (uncached — the
    /// scenario engine, exactly as `run_workload_faulty` runs it).
    ScenarioReplay {
        /// The recorded scenario.
        schedule: Schedule,
    },
    /// A beam-search adversary plan, replayed through the cache.
    AdversaryPlan {
        /// Number of processes.
        n: usize,
        /// Candidate pool.
        pool: PoolSpec,
        /// Ranking objective.
        objective: ObjectiveSpec,
        /// Beam width (`≥ 1`).
        width: usize,
        /// The workload the plan delays.
        workload: WorkloadSpec,
    },
}

/// A plan job's result: the schedule found and its replayed outcome.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PlanReport {
    /// Number of processes.
    pub n: usize,
    /// Workload name.
    pub workload: String,
    /// Objective label.
    pub objective: String,
    /// Beam width used.
    pub width: usize,
    /// The planned schedule.
    pub schedule: Vec<RootedTree>,
    /// The schedule replayed against the workload (through the cache).
    pub replay: WorkloadReport,
}

/// One query's answer, index-aligned with the request batch.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Response {
    /// Answer to [`Request::BroadcastTime`].
    BroadcastTime {
        /// The workload report — field-for-field what `run_workload`
        /// returns on the same schedule.
        report: WorkloadReport,
    },
    /// Answer to [`Request::ScenarioReplay`].
    ScenarioReplay {
        /// The scenario engine's report (fault log included).
        report: WorkloadReport,
    },
    /// Answer to [`Request::AdversaryPlan`].
    AdversaryPlan {
        /// The plan and its replay.
        report: PlanReport,
    },
    /// The request was invalid; nothing was executed.
    Error {
        /// What was wrong with it.
        message: String,
    },
}

impl Response {
    /// The workload report inside, if this is a successful query answer.
    #[must_use]
    pub fn report(&self) -> Option<&WorkloadReport> {
        match self {
            Response::BroadcastTime { report } | Response::ScenarioReplay { report } => {
                Some(report)
            }
            Response::AdversaryPlan { report } => Some(&report.replay),
            Response::Error { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treecast_trees::generators;

    #[test]
    fn workload_spec_validates_instead_of_panicking() {
        assert!(WorkloadSpec::KBroadcast { k: 0 }.workload(4).is_err());
        assert!(WorkloadSpec::KSourceBroadcast { sources: vec![] }
            .workload(4)
            .is_err());
        assert!(WorkloadSpec::KSourceBroadcast {
            sources: vec![1, 1]
        }
        .workload(4)
        .is_err());
        assert!(WorkloadSpec::KSourceBroadcast { sources: vec![4] }
            .workload(4)
            .is_err());
        let w = WorkloadSpec::KSourceBroadcast {
            sources: vec![0, 3],
        }
        .workload(4)
        .unwrap();
        assert_eq!(w.name(), "k-source-broadcast(k=2)");
    }

    #[test]
    fn requests_round_trip_through_json() {
        let requests = vec![
            Request::BroadcastTime {
                tree_sequence: vec![generators::path(5), generators::star(5)],
                workload: WorkloadSpec::KBroadcast { k: 2 },
                rounds: 40,
            },
            Request::ScenarioReplay {
                schedule: Schedule {
                    trees: vec![generators::star(4)],
                    faults: vec![RoundFaults {
                        losses: vec![1],
                        root: Some(2),
                        offline: vec![3],
                    }],
                    workload: WorkloadSpec::Gossip,
                    rounds: 0,
                },
            },
            Request::AdversaryPlan {
                n: 5,
                pool: PoolSpec::Sampled { count: 8, seed: 7 },
                objective: ObjectiveSpec::MinDisseminated,
                width: 4,
                workload: WorkloadSpec::Broadcast,
            },
        ];
        let text = serde::json::to_string(&requests);
        let back: Vec<Request> = serde::json::from_str(&text).unwrap();
        assert_eq!(back, requests);
    }

    #[test]
    fn objective_names_are_stable() {
        assert_eq!(ObjectiveSpec::MinNewEdges.name(), "min-new-edges");
        assert_eq!(ObjectiveSpec::MinDisseminated.name(), "min-disseminated");
    }
}
