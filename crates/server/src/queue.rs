//! A minimal closeable MPMC job queue: `Mutex<VecDeque>` + `Condvar`.
//!
//! The server's worker pool pops jobs until the queue is closed *and*
//! drained; producers push then close. No async runtime, no lock-free
//! cleverness — at treecast query granularity (micro- to milliseconds
//! per job) the mutex is nowhere near the bottleneck, and the blocking
//! semantics compose directly with `std::thread::scope`.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A multi-producer multi-consumer FIFO with explicit close.
pub struct JobQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
}

impl<T> Default for JobQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> JobQueue<T> {
    /// An empty, open queue.
    #[must_use]
    pub fn new() -> Self {
        JobQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// Enqueues a job and wakes one waiting consumer.
    ///
    /// # Panics
    ///
    /// Panics if the queue is already closed — closing is a promise that
    /// no more work arrives, and a push after it is a caller bug.
    pub fn push(&self, item: T) {
        // analyze: allow(panic): queue-mutex poisoning means a producer or
        // consumer panicked holding the lock; the batch is already lost.
        let mut state = self.state.lock().expect("job queue poisoned");
        assert!(!state.closed, "push after close");
        state.items.push_back(item);
        drop(state);
        self.available.notify_one();
    }

    /// Closes the queue: consumers drain the remaining jobs, then every
    /// [`JobQueue::pop`] returns `None`.
    pub fn close(&self) {
        // analyze: allow(panic): see `push` — poisoning propagates the abort.
        self.state.lock().expect("job queue poisoned").closed = true;
        self.available.notify_all();
    }

    /// Dequeues the next job, blocking while the queue is open and empty.
    /// `None` means closed-and-drained — the worker's exit signal.
    pub fn pop(&self) -> Option<T> {
        // analyze: allow(panic): see `push` — poisoning propagates the abort.
        let mut state = self.state.lock().expect("job queue poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            // analyze: allow(panic): see `push` — poisoning propagates the abort.
            state = self.available.wait(state).expect("job queue poisoned");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_then_none_after_close() {
        let q = JobQueue::new();
        q.push(1);
        q.push(2);
        q.close();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "closed queues stay closed");
    }

    #[test]
    #[should_panic(expected = "push after close")]
    fn push_after_close_is_a_bug() {
        let q = JobQueue::new();
        q.close();
        q.push(1);
    }

    #[test]
    fn workers_drain_a_shared_queue() {
        let q = JobQueue::new();
        for i in 0..100u32 {
            q.push(i);
        }
        q.close();
        let total: u32 = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|| {
                        let mut sum = 0u32;
                        while let Some(i) = q.pop() {
                            sum += i;
                        }
                        sum
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(total, (0..100).sum());
    }

    #[test]
    fn pop_blocks_until_work_or_close() {
        let q = JobQueue::new();
        std::thread::scope(|s| {
            let consumer = s.spawn(|| q.pop());
            std::thread::sleep(std::time::Duration::from_millis(10));
            q.push(7);
            assert_eq!(consumer.join().unwrap(), Some(7));
            let waiter = s.spawn(|| q.pop());
            std::thread::sleep(std::time::Duration::from_millis(10));
            q.close();
            assert_eq!(waiter.join().unwrap(), None);
        });
    }
}
