//! The query engine: request validation, the cache-backed
//! [`PrefixProvider`], and the scoped-thread worker pool.
//!
//! `serve` answers one request on the calling thread (deterministic —
//! the bench's exact cells come from this path); `serve_batch` fans a
//! batch over `std::thread::scope` workers draining a shared
//! [`JobQueue`]. All workers share one [`PrefixCache`], so a batch with
//! repeated or stem-sharing schedules pays each prefix composition once
//! across the whole pool.

use std::sync::{Arc, Mutex};

use treecast_adversary::{
    beam_search_workload_plan, BeamOptions, CandidateGen, ExhaustivePool, MinDisseminated,
    MinMaxReach, MinNearWinners, MinNewEdges, MinSumReach, SampledPool, SearchState,
    StructuredPool, TrackedSearchState,
};
use treecast_bitmatrix::BoolMatrix;
use treecast_core::prefix::{run_workload_prefixes, PrefixProvider, PrefixRound};
use treecast_core::{
    run_workload_faulty, BroadcastState, FaultSchedule, SequenceSource, SimulationConfig, Workload,
};
use treecast_trees::RootedTree;

use crate::api::{ObjectiveSpec, PlanReport, PoolSpec, Request, Response, WorkloadSpec};
use crate::cache::{CacheConfig, CacheStats, PrefixCache, PrefixEntry};
use crate::fingerprint::{chain, tree_hash, SEED};
use crate::queue::JobQueue;

/// Exhaustive pools enumerate all `n^(n-1)`-ish rooted trees per round;
/// past this they are a denial-of-service request, not a query.
const EXHAUSTIVE_MAX_N: usize = 6;

/// Server geometry: worker threads and cache shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Worker threads for [`Server::serve_batch`] (capped at the batch
    /// size; 1 degenerates to serial serving).
    pub workers: usize,
    /// Prefix-product cache geometry; [`CacheConfig::disabled`] is the
    /// uncached baseline.
    pub cache: CacheConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            cache: CacheConfig::default(),
        }
    }
}

/// The batched treecast query engine.
pub struct Server {
    workers: usize,
    cache: PrefixCache,
}

impl Server {
    /// A server with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `config.workers == 0` or `config.cache.shards == 0`.
    #[must_use]
    pub fn new(config: ServerConfig) -> Self {
        assert!(config.workers >= 1, "need at least one worker");
        Server {
            workers: config.workers,
            cache: PrefixCache::new(config.cache),
        }
    }

    /// The shared prefix-product cache.
    #[must_use]
    pub fn cache(&self) -> &PrefixCache {
        &self.cache
    }

    /// Current cache counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Answers one request on the calling thread. Invalid requests come
    /// back as [`Response::Error`]; this never panics on bad input.
    #[must_use]
    pub fn serve(&self, request: &Request) -> Response {
        match self.handle(request) {
            Ok(response) => response,
            Err(message) => Response::Error { message },
        }
    }

    /// Answers a batch over the worker pool, responses index-aligned
    /// with the requests. The pool is `min(workers, batch len)` scoped
    /// threads draining a shared FIFO; a single worker (or an empty
    /// batch) short-circuits to the serial path.
    #[must_use]
    pub fn serve_batch(&self, requests: &[Request]) -> Vec<Response> {
        let workers = self.workers.min(requests.len());
        if workers <= 1 {
            return requests.iter().map(|r| self.serve(r)).collect();
        }
        let queue: JobQueue<(usize, &Request)> = JobQueue::new();
        let results: Vec<Mutex<Option<Response>>> =
            requests.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| {
                    while let Some((i, request)) = queue.pop() {
                        let response = self.serve(request);
                        // analyze: allow(panic): a poisoned slot means another
                        // worker died mid-batch; propagate the abort.
                        *results[i].lock().expect("result slot poisoned") = Some(response);
                    }
                });
            }
            for job in requests.iter().enumerate() {
                queue.push(job);
            }
            queue.close();
        });
        results
            .into_iter()
            .map(|slot| {
                // Both expects are worker-death signals: a poisoned slot or a
                // missing answer means a worker panicked and the batch is lost.
                slot.into_inner()
                    .expect("result slot poisoned") // analyze: allow(panic): worker died mid-batch
                    .expect("every job is answered") // analyze: allow(panic): worker died mid-batch
            })
            .collect()
    }

    fn handle(&self, request: &Request) -> Result<Response, String> {
        match request {
            Request::BroadcastTime {
                tree_sequence,
                workload,
                rounds,
            } => {
                let n = validate_sequence(tree_sequence)?;
                let workload = workload.workload(n)?;
                let mut prefixes = CachedPrefixes::new(tree_sequence, &self.cache);
                let report =
                    run_workload_prefixes(&mut prefixes, &*workload, config_for(n, *rounds));
                Ok(Response::BroadcastTime { report })
            }
            Request::ScenarioReplay { schedule } => {
                let n = validate_sequence(&schedule.trees)?;
                let workload = schedule.workload.workload(n)?;
                // Faults break the pure product structure, so replays run
                // on the scenario engine, bit-identical to a direct
                // `run_workload_faulty` call — never through the cache.
                let mut source = SequenceSource::new(schedule.trees.clone());
                let mut faults = FaultSchedule::replay(&schedule.faults);
                let report = run_workload_faulty(
                    n,
                    &mut source,
                    &*workload,
                    &mut faults,
                    config_for(n, schedule.rounds),
                );
                Ok(Response::ScenarioReplay { report })
            }
            Request::AdversaryPlan {
                n,
                pool,
                objective,
                width,
                workload,
            } => {
                let n = *n;
                if n < 2 {
                    return Err("adversary planning needs n >= 2".into());
                }
                if *width == 0 {
                    return Err("beam width must be >= 1".into());
                }
                let executable = workload.workload(n)?;
                let mut pool = build_pool(pool, n)?;
                let options = BeamOptions::for_n(n).with_width(*width);
                // `k`-source workloads search over the batched tracked
                // state; everything else over the full product state.
                let schedule = match workload {
                    WorkloadSpec::KSourceBroadcast { sources } => plan_with_objective(
                        &TrackedSearchState::new(n, sources),
                        &mut *pool,
                        *objective,
                        &*executable,
                        options,
                    ),
                    _ => plan_with_objective(
                        &BroadcastState::new(n),
                        &mut *pool,
                        *objective,
                        &*executable,
                        options,
                    ),
                };
                if schedule.is_empty() {
                    return Err("planner returned an empty schedule".into());
                }
                let mut prefixes = CachedPrefixes::new(&schedule, &self.cache);
                let replay =
                    run_workload_prefixes(&mut prefixes, &*executable, SimulationConfig::for_n(n));
                Ok(Response::AdversaryPlan {
                    report: PlanReport {
                        n,
                        workload: executable.name(),
                        objective: objective.name().to_string(),
                        width: *width,
                        schedule,
                        replay,
                    },
                })
            }
        }
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("workers", &self.workers)
            .field("cache", &self.cache)
            .finish()
    }
}

fn validate_sequence(trees: &[RootedTree]) -> Result<usize, String> {
    let Some(first) = trees.first() else {
        return Err("empty tree sequence".into());
    };
    let n = first.n();
    if trees.iter().any(|t| t.n() != n) {
        return Err("trees in a sequence must share n".into());
    }
    Ok(n)
}

fn config_for(n: usize, rounds: u64) -> SimulationConfig {
    if rounds == 0 {
        SimulationConfig::for_n(n)
    } else {
        SimulationConfig::for_n(n).with_max_rounds(rounds)
    }
}

fn build_pool(spec: &PoolSpec, n: usize) -> Result<Box<dyn CandidateGen>, String> {
    match spec {
        PoolSpec::Structured => Ok(Box::new(StructuredPool::new())),
        PoolSpec::Sampled { count, seed } => {
            if *count == 0 {
                return Err("sampled pool needs count >= 1".into());
            }
            Ok(Box::new(SampledPool::new(*count, *seed)))
        }
        PoolSpec::Exhaustive => {
            if n > EXHAUSTIVE_MAX_N {
                return Err(format!(
                    "exhaustive pool is limited to n <= {EXHAUSTIVE_MAX_N} (got n = {n})"
                ));
            }
            Ok(Box::new(ExhaustivePool::new(n)))
        }
    }
}

/// The objective dispatch: `Objective<S>` is generic over the state, so
/// the spec fans out to concrete objective values here.
fn plan_with_objective<S: SearchState>(
    start: &S,
    pool: &mut dyn CandidateGen,
    objective: ObjectiveSpec,
    workload: &(dyn Workload + Send + Sync),
    options: BeamOptions,
) -> Vec<RootedTree> {
    match objective {
        ObjectiveSpec::MinNewEdges => {
            beam_search_workload_plan(start, pool, &MinNewEdges, workload, options)
        }
        ObjectiveSpec::MinMaxReach => {
            beam_search_workload_plan(start, pool, &MinMaxReach, workload, options)
        }
        ObjectiveSpec::MinSumReach => {
            beam_search_workload_plan(start, pool, &MinSumReach, workload, options)
        }
        ObjectiveSpec::MinNearWinners => {
            beam_search_workload_plan(start, pool, &MinNearWinners::default(), workload, options)
        }
        ObjectiveSpec::MinDisseminated => {
            beam_search_workload_plan(start, pool, &MinDisseminated::default(), workload, options)
        }
    }
}

/// A [`PrefixProvider`] that answers each round from the shared
/// [`PrefixCache`] when warm, and composes + publishes the product when
/// cold.
///
/// The provider chains the sequence fingerprint incrementally
/// (`fp_t = splitmix64(fp_{t-1} ^ tree_hash(A_t))`, with the last tree
/// repeating per `SequenceSource` semantics), so schedules sharing a stem
/// share cache entries up to the first differing round — a warm round is
/// one shard lookup plus the memoized mask, never a composition.
pub struct CachedPrefixes<'a> {
    n: usize,
    round: u64,
    /// Borrowed from the request — trees are never cloned on the serving
    /// path (a `RootedTree` clone is `n` nested child-list allocations,
    /// which would dwarf a warm round).
    trees: &'a [RootedTree],
    /// `tree_hash` of each tree, memoized lazily — a query that completes
    /// at round `t` never pays for hashing the trees past `t`.
    tree_hashes: Vec<Option<u64>>,
    /// The chained fingerprint of the prefix served so far.
    fingerprint: u64,
    cache: &'a PrefixCache,
    /// `R(round)`; `None` is the un-materialized identity `R(0)` (a
    /// round-1 miss composes `A₁ᵀ ∘ I = A₁ᵀ` directly, so the warm path
    /// never allocates an `n × n` identity).
    current: Option<Arc<PrefixEntry>>,
    /// Retained buffer for the transposed round matrix `A_tᵀ`.
    round_t: BoolMatrix,
    label: String,
}

impl<'a> CachedPrefixes<'a> {
    /// A provider over `trees` backed by `cache`.
    ///
    /// # Panics
    ///
    /// Panics if `trees` is empty or the trees disagree on `n`.
    pub fn new(trees: &'a [RootedTree], cache: &'a PrefixCache) -> Self {
        assert!(!trees.is_empty(), "need at least one tree");
        let n = trees[0].n();
        for t in trees {
            assert_eq!(t.n(), n, "all trees must have the same node count");
        }
        let label = format!("sequence(len={})", trees.len());
        CachedPrefixes {
            n,
            round: 0,
            tree_hashes: vec![None; trees.len()],
            trees,
            fingerprint: SEED,
            cache,
            current: None,
            round_t: BoolMatrix::zeros(n),
            label,
        }
    }

    /// Overrides the report label.
    #[must_use]
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

impl PrefixProvider for CachedPrefixes<'_> {
    fn n(&self) -> usize {
        self.n
    }

    fn next_prefix(&mut self) -> Option<PrefixRound<'_>> {
        let idx = (self.round as usize).min(self.trees.len() - 1);
        let hash = *self.tree_hashes[idx].get_or_insert_with(|| tree_hash(&self.trees[idx]));
        let next_fp = chain(self.fingerprint, hash);
        let next_round = self.round + 1;
        let entry = match self.cache.get(next_fp, next_round) {
            Some(entry) => entry,
            None => {
                // Cold: one sparse left-composition A_{t+1}ᵀ ∘ R(t), then
                // publish so every later query of this prefix is warm.
                let tree = &self.trees[idx];
                self.round_t.clear();
                self.round_t.add_self_loops();
                for y in 0..self.n {
                    if let Some(p) = tree.parent(y) {
                        self.round_t.set(y, p, true);
                    }
                }
                let next = match &self.current {
                    Some(prev) => {
                        let mut next = BoolMatrix::zeros(self.n);
                        self.round_t.compose_into(prev.heard(), &mut next);
                        next
                    }
                    // Round 1 from the identity: A₁ᵀ ∘ I = A₁ᵀ.
                    None => self.round_t.clone(),
                };
                let entry = Arc::new(PrefixEntry::new(next));
                self.cache.insert(next_fp, next_round, Arc::clone(&entry));
                entry
            }
        };
        self.fingerprint = next_fp;
        self.round = next_round;
        let current = self.current.insert(entry);
        Some(PrefixRound {
            round: self.round,
            heard: current.heard(),
            disseminated: current.disseminated(),
        })
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treecast_core::prefix::ComposedPrefixes;
    use treecast_core::{run_workload, Gossip, KBroadcast, RoundFaults, SeededFaults};
    use treecast_trees::generators;

    use crate::api::Schedule;

    fn rotating_stars(n: usize) -> Vec<RootedTree> {
        (0..n).map(|c| generators::star_with_center(n, c)).collect()
    }

    fn server(cache: CacheConfig) -> Server {
        Server::new(ServerConfig { workers: 4, cache })
    }

    #[test]
    fn broadcast_time_matches_the_direct_engine() {
        let n = 8;
        let s = server(CacheConfig::default());
        let request = Request::BroadcastTime {
            tree_sequence: rotating_stars(n),
            workload: WorkloadSpec::Gossip,
            rounds: 0,
        };
        let mut engine = SequenceSource::new(rotating_stars(n));
        let want = run_workload(n, &mut engine, &Gossip, SimulationConfig::for_n(n));
        let Response::BroadcastTime { report } = s.serve(&request) else {
            panic!("expected a broadcast-time response");
        };
        assert_eq!(report, want);
    }

    #[test]
    fn warm_requests_hit_the_cache() {
        let n = 8;
        let s = server(CacheConfig::default());
        let request = Request::BroadcastTime {
            tree_sequence: rotating_stars(n),
            workload: WorkloadSpec::KBroadcast { k: 3 },
            rounds: 0,
        };
        let cold = s.serve(&request);
        let after_cold = s.stats();
        assert_eq!(after_cold.hits, 0, "first pass is all misses");
        assert!(after_cold.misses > 0);
        let warm = s.serve(&request);
        assert_eq!(warm, cold);
        let after_warm = s.stats();
        assert_eq!(
            after_warm.misses, after_cold.misses,
            "second pass composes nothing"
        );
        assert_eq!(after_warm.hits, after_cold.misses);
    }

    #[test]
    fn stem_sharing_sequences_share_entries() {
        let n = 6;
        let s = server(CacheConfig::default());
        let stem = rotating_stars(n);
        let mut other = stem.clone();
        other.push(generators::path(n));
        let first = Request::BroadcastTime {
            tree_sequence: stem,
            workload: WorkloadSpec::Gossip,
            rounds: 0,
        };
        let second = Request::BroadcastTime {
            tree_sequence: other,
            workload: WorkloadSpec::Gossip,
            rounds: 0,
        };
        let _ = s.serve(&first);
        let cold = s.stats();
        let _ = s.serve(&second);
        let warm = s.stats();
        assert!(
            warm.hits > cold.hits,
            "the shared stem must come from the cache: {warm:?}"
        );
    }

    #[test]
    fn cached_provider_matches_the_uncached_one() {
        let n = 7;
        let cache = PrefixCache::new(CacheConfig::default());
        for trees in [rotating_stars(n), vec![generators::path(n)]] {
            let cfg = SimulationConfig::for_n(n);
            let mut direct = ComposedPrefixes::new(trees.clone());
            let want = run_workload_prefixes(&mut direct, &Gossip, cfg);
            // Twice: the cold pass and the warm pass must agree exactly.
            for pass in 0..2 {
                let mut cached = CachedPrefixes::new(&trees, &cache);
                let got = run_workload_prefixes(&mut cached, &Gossip, cfg);
                assert_eq!(got, want, "pass {pass}");
            }
        }
    }

    #[test]
    fn scenario_replay_is_bit_identical_to_the_scenario_engine() {
        let n = 8;
        let s = server(CacheConfig::default());
        // Record a seeded cocktail's log, then replay it via the server.
        let mut source = SequenceSource::new(rotating_stars(n));
        let mut faults = SeededFaults::new(0xFA)
            .with_token_loss(20)
            .with_dropout(15, 2)
            .with_root_changes(10);
        let recorded = run_workload_faulty(
            n,
            &mut source,
            &KBroadcast::new(3),
            &mut faults,
            SimulationConfig::for_n(n),
        );
        let request = Request::ScenarioReplay {
            schedule: Schedule {
                trees: rotating_stars(n),
                faults: recorded.fault_log.clone(),
                workload: WorkloadSpec::KBroadcast { k: 3 },
                rounds: 0,
            },
        };
        let Response::ScenarioReplay { report } = s.serve(&request) else {
            panic!("expected a scenario-replay response");
        };
        assert_eq!(report, recorded);
        assert!(!report.fault_log.is_empty(), "the cocktail must have fired");
    }

    #[test]
    fn quiet_fault_schedules_replay_too() {
        let n = 5;
        let s = server(CacheConfig::default());
        let request = Request::ScenarioReplay {
            schedule: Schedule {
                trees: vec![generators::path(n)],
                faults: vec![RoundFaults::default(); 3],
                workload: WorkloadSpec::Broadcast,
                rounds: 0,
            },
        };
        let Response::ScenarioReplay { report } = s.serve(&request) else {
            panic!("expected a scenario-replay response");
        };
        assert_eq!(report.completion_time, Some(n as u64 - 1));
    }

    #[test]
    fn adversary_plans_beat_the_static_path() {
        let n = 8;
        let s = server(CacheConfig::default());
        let request = Request::AdversaryPlan {
            n,
            pool: PoolSpec::Structured,
            objective: ObjectiveSpec::MinNearWinners,
            width: 8,
            workload: WorkloadSpec::Broadcast,
        };
        let Response::AdversaryPlan { report } = s.serve(&request) else {
            panic!("expected a plan response");
        };
        assert_eq!(report.schedule.len() as u64, report.replay.rounds);
        let t = report.replay.completion_time.expect("plans complete");
        // The structured pool contains the path, so a searched plan is at
        // least as slow as the static path's n − 1.
        assert!(t >= n as u64 - 1, "plan completed suspiciously fast: {t}");
        assert!(report.replay.fault_log.is_empty());
    }

    #[test]
    fn plans_are_deterministic_per_seed() {
        let n = 6;
        let request = Request::AdversaryPlan {
            n,
            pool: PoolSpec::Sampled { count: 12, seed: 9 },
            objective: ObjectiveSpec::MinDisseminated,
            width: 6,
            workload: WorkloadSpec::KBroadcast { k: 2 },
        };
        let a = server(CacheConfig::default()).serve(&request);
        let b = server(CacheConfig::disabled()).serve(&request);
        assert_eq!(a, b, "plan and replay are cache-independent");
    }

    #[test]
    fn invalid_requests_become_error_responses() {
        let s = server(CacheConfig::default());
        let bad = vec![
            Request::BroadcastTime {
                tree_sequence: vec![],
                workload: WorkloadSpec::Broadcast,
                rounds: 0,
            },
            Request::BroadcastTime {
                tree_sequence: vec![generators::path(4), generators::path(5)],
                workload: WorkloadSpec::Broadcast,
                rounds: 0,
            },
            Request::BroadcastTime {
                tree_sequence: vec![generators::path(4)],
                workload: WorkloadSpec::KBroadcast { k: 0 },
                rounds: 0,
            },
            Request::AdversaryPlan {
                n: 1,
                pool: PoolSpec::Structured,
                objective: ObjectiveSpec::MinNewEdges,
                width: 4,
                workload: WorkloadSpec::Broadcast,
            },
            Request::AdversaryPlan {
                n: 12,
                pool: PoolSpec::Exhaustive,
                objective: ObjectiveSpec::MinNewEdges,
                width: 4,
                workload: WorkloadSpec::Broadcast,
            },
            Request::AdversaryPlan {
                n: 6,
                pool: PoolSpec::Structured,
                objective: ObjectiveSpec::MinNewEdges,
                width: 0,
                workload: WorkloadSpec::Broadcast,
            },
        ];
        for (i, request) in bad.iter().enumerate() {
            assert!(
                matches!(s.serve(request), Response::Error { .. }),
                "request {i} must be rejected"
            );
        }
    }

    #[test]
    fn batches_are_index_aligned_with_serial_serving() {
        let n = 7;
        let requests: Vec<Request> = (1..=n)
            .map(|k| Request::BroadcastTime {
                tree_sequence: rotating_stars(n),
                workload: WorkloadSpec::KBroadcast { k },
                rounds: 0,
            })
            .chain(std::iter::once(Request::BroadcastTime {
                tree_sequence: vec![],
                workload: WorkloadSpec::Broadcast,
                rounds: 0,
            }))
            .collect();
        let serial = server(CacheConfig::default());
        let want: Vec<Response> = requests.iter().map(|r| serial.serve(r)).collect();
        let threaded = server(CacheConfig::default());
        let got = threaded.serve_batch(&requests);
        assert_eq!(got, want);
        assert!(matches!(got.last(), Some(Response::Error { .. })));
    }

    #[test]
    fn uncached_server_answers_identically() {
        let n = 9;
        let request = Request::BroadcastTime {
            tree_sequence: rotating_stars(n),
            workload: WorkloadSpec::Gossip,
            rounds: 0,
        };
        let cached = server(CacheConfig::default()).serve(&request);
        let uncached = server(CacheConfig::disabled()).serve(&request);
        assert_eq!(cached, uncached);
    }
}
