//! Tree-sequence fingerprints: splitmix64 chaining over per-tree hashes.
//!
//! The cache keys every prefix product by `(fingerprint, round)`, where
//! the fingerprint of a prefix `A₁, …, A_t` is a splitmix64 chain over
//! the trees' structural hashes — the same finalizer family as
//! `SearchState::fingerprint` and the solver's state table, chained so
//! that prefixes sharing a stem share their fingerprints up to the first
//! differing round:
//!
//! ```text
//! fp₀ = SEED,    fp_t = splitmix64(fp_{t-1} ^ tree_hash(A_t))
//! ```
//!
//! Two *different* sequences can collide only by a 64-bit hash accident
//! (≈ 2⁻⁶⁴ per pair); the round component of the key is exact, so a
//! collision can never confuse prefixes of different lengths — only two
//! same-length prefixes with colliding chains (the residual risk every
//! fingerprint cache carries).

use treecast_trees::RootedTree;

/// The chain's initial value — an arbitrary odd constant, fixed so
/// fingerprints are stable across runs and hosts.
pub const SEED: u64 = 0x51ED_2702_7F1E_CA5F;

/// David Stafford's splitmix64 finalizer — the workspace's standard
/// 64-bit mixer.
#[inline]
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Structural hash of one round tree: `n`, the root, and the parent
/// vector, splitmix-chained. Equal trees hash equal; any edge or root
/// change reroutes the whole chain.
#[must_use]
pub fn tree_hash(tree: &RootedTree) -> u64 {
    let mut h = splitmix64(tree.n() as u64 ^ SEED);
    h = splitmix64(h ^ tree.root() as u64);
    for parent in tree.parents() {
        // +1 keeps `Some(0)` distinct from `None` (the root slot).
        let token = parent.map_or(0, |p| p as u64 + 1);
        h = splitmix64(h ^ token);
    }
    h
}

/// Extends a prefix fingerprint by one round.
#[inline]
#[must_use]
pub fn chain(prefix: u64, tree_hash: u64) -> u64 {
    splitmix64(prefix ^ tree_hash)
}

/// The fingerprint of the full prefix `trees[..len]` (a convenience for
/// tests; the provider chains incrementally).
#[must_use]
pub fn sequence_fingerprint(trees: &[RootedTree]) -> u64 {
    trees
        .iter()
        .fold(SEED, |fp, tree| chain(fp, tree_hash(tree)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use treecast_trees::generators;

    #[test]
    fn equal_sequences_share_fingerprints() {
        let a = vec![generators::path(6), generators::star(6)];
        let b = vec![generators::path(6), generators::star(6)];
        assert_eq!(sequence_fingerprint(&a), sequence_fingerprint(&b));
    }

    #[test]
    fn any_tree_change_reroutes_the_chain() {
        let base = vec![generators::path(6), generators::star(6)];
        let other_tree = vec![generators::path(6), generators::star_with_center(6, 1)];
        let other_order = vec![generators::star(6), generators::path(6)];
        let shorter = vec![generators::path(6)];
        let fp = sequence_fingerprint(&base);
        assert_ne!(fp, sequence_fingerprint(&other_tree));
        assert_ne!(fp, sequence_fingerprint(&other_order));
        assert_ne!(fp, sequence_fingerprint(&shorter));
    }

    #[test]
    fn shared_stems_share_prefix_fingerprints() {
        // The chaining property the cache's cross-sequence sharing rides:
        // sequences agreeing on their first t trees agree on fp_t.
        let stem = vec![generators::path(5), generators::star(5)];
        let mut a = stem.clone();
        a.push(generators::path(5));
        let mut b = stem.clone();
        b.push(generators::star(5));
        assert_eq!(sequence_fingerprint(&a[..2]), sequence_fingerprint(&b[..2]));
        assert_ne!(sequence_fingerprint(&a), sequence_fingerprint(&b));
    }

    #[test]
    fn root_and_size_are_part_of_the_hash() {
        assert_ne!(
            tree_hash(&generators::star_with_center(6, 0)),
            tree_hash(&generators::star_with_center(6, 1))
        );
        assert_ne!(
            tree_hash(&generators::path(6)),
            tree_hash(&generators::path(7))
        );
    }
}
