//! `treecast-server`: a batched treecast query engine — a std-threaded
//! worker pool over a **sharded prefix-product cache**.
//!
//! The paper's reductions funnel every dissemination question through the
//! prefix products `G(t) = A₁ ∘ … ∘ A_t` of a tree schedule, and real
//! query mixes (benchmark sweeps, adversary tournaments, regression
//! gates) re-ask the same schedules constantly. This crate serves those
//! questions from memoized products instead of recomposing them:
//!
//! * [`fingerprint`] — splitmix64-chained sequence fingerprints; prefixes
//!   sharing a stem share fingerprints up to the first differing round,
//!   so cache sharing works *across* distinct schedules.
//! * [`cache`] — [`PrefixCache`]: `(fingerprint, round) → Arc<PrefixEntry>`
//!   over N independently locked shards, per-shard intrusive-LRU with
//!   byte-budget eviction. Each entry memoizes the heard-view product
//!   `R(t) = G(t)ᵀ` *and* its disseminated-token mask, so a warm round is
//!   a hash lookup plus a popcount.
//! * [`api`] — the serializable request/response surface:
//!   [`Request::BroadcastTime`] (cached), [`Request::ScenarioReplay`]
//!   (uncached by design — faults break the product structure), and
//!   [`Request::AdversaryPlan`] (beam search, replayed through the
//!   cache).
//! * [`server`] — [`Server::serve`] (serial, deterministic) and
//!   [`Server::serve_batch`]: `std::thread::scope` workers draining a
//!   closeable MPMC [`queue::JobQueue`]; no async runtime anywhere.
//!
//! The companion `treecast-client` crate layers an in-process client and
//! a Zipf load generator on top; `bench_server` gates the warm/cold
//! throughput ratio in CI.
//!
//! # Examples
//!
//! ```
//! use treecast_server::{CacheConfig, Request, Server, ServerConfig, WorkloadSpec};
//! use treecast_trees::generators;
//!
//! let server = Server::new(ServerConfig::default());
//! let request = Request::BroadcastTime {
//!     tree_sequence: vec![generators::path(16)],
//!     workload: WorkloadSpec::Broadcast,
//!     rounds: 0,
//! };
//! let cold = server.serve(&request);
//! let warm = server.serve(&request); // answered from the cache
//! assert_eq!(cold, warm);
//! assert_eq!(cold.report().unwrap().completion_time, Some(15));
//! assert!(server.stats().hits > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod cache;
pub mod fingerprint;
pub mod queue;
pub mod server;

pub use api::{ObjectiveSpec, PlanReport, PoolSpec, Request, Response, Schedule, WorkloadSpec};
pub use cache::{CacheConfig, CacheStats, PrefixCache, PrefixEntry};
pub use server::{CachedPrefixes, Server, ServerConfig};

#[cfg(test)]
mod serde_tests {
    use super::*;
    use treecast_core::{run_workload_faulty, SequenceSource, SimulationConfig};
    use treecast_core::{RoundFaults, SeededFaults};
    use treecast_trees::generators;

    #[test]
    fn workload_reports_round_trip_with_fault_logs() {
        let n = 8;
        let mut source = SequenceSource::new(vec![generators::path(n), generators::star(n)]);
        let mut faults = SeededFaults::new(3)
            .with_token_loss(25)
            .with_root_changes(10);
        let report = run_workload_faulty(
            n,
            &mut source,
            &treecast_core::KBroadcast::new(2),
            &mut faults,
            SimulationConfig::for_n(n),
        );
        let text = serde::json::to_string_pretty(&report);
        let back: treecast_core::WorkloadReport = serde::json::from_str(&text).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn responses_round_trip_through_json() {
        let server = Server::new(ServerConfig {
            workers: 1,
            cache: CacheConfig::default(),
        });
        let responses = server.serve_batch(&[
            Request::BroadcastTime {
                tree_sequence: vec![generators::star(6)],
                workload: WorkloadSpec::Gossip,
                rounds: 0,
            },
            Request::ScenarioReplay {
                schedule: Schedule {
                    trees: vec![generators::path(6)],
                    faults: vec![RoundFaults {
                        losses: vec![2],
                        root: None,
                        offline: vec![],
                    }],
                    workload: WorkloadSpec::Broadcast,
                    rounds: 12,
                },
            },
            Request::BroadcastTime {
                tree_sequence: vec![],
                workload: WorkloadSpec::Broadcast,
                rounds: 0,
            },
        ]);
        let text = serde::json::to_string(&responses);
        let back: Vec<Response> = serde::json::from_str(&text).unwrap();
        assert_eq!(back, responses);
        assert!(matches!(back[2], Response::Error { .. }));
    }

    #[test]
    fn cache_stats_serialize_for_bench_artifacts() {
        let stats = CacheStats {
            hits: 10,
            misses: 2,
            entries: 4,
            bytes: 4096,
        };
        let text = serde::json::to_string(&stats);
        let back: CacheStats = serde::json::from_str(&text).unwrap();
        assert_eq!(back, stats);
    }
}
